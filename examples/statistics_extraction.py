#!/usr/bin/env python3
"""The statistics-extraction subsystem of Figure 2, demonstrated.

Shows the two sniffer flavours on a live run: count-logging sniffers
producing per-window counter deltas, an event-logging sniffer capturing
individual cache events, software toggling a sniffer through its
memory-mapped registers, and the Ethernet dispatcher's accounting —
including a deliberately starved link that forces the VPCM to freeze
the platform's virtual clocks.

Run:  python examples/statistics_extraction.py
"""

from repro import (
    CacheConfig,
    CoreConfig,
    MPSoCConfig,
    SnifferBank,
    build_platform,
    matrix_programs,
)
from repro.core.dispatcher import BramBuffer, EthernetDispatcher
from repro.core.sniffers import REG_ENABLE
from repro.emulation.engine import EventDrivenEngine
from repro.emulation.ethernet import EthernetLink
from repro.mpsoc.platform import MMIO_BASE
from repro.util.units import KB


def main():
    platform = build_platform(
        MPSoCConfig(
            name="sniffed",
            cores=[CoreConfig(f"cpu{i}") for i in range(2)],
            icache=CacheConfig(name="i", size=2 * KB, line_size=16),
            dcache=CacheConfig(name="d", size=2 * KB, line_size=16),
        )
    )
    # Count-logging everywhere, plus one event-logging sniffer on cpu0's
    # D-cache.
    dcache_name = platform.dcaches[0].name
    bank = SnifferBank.from_platform(platform, event_logging=[dcache_name])
    print(f"{len(bank)} sniffers instantiated "
          f"({len(bank.count_sniffers())} count-logging, "
          f"{len(bank.event_sniffers())} event-logging)")
    print(f"modelled FPGA overhead: {bank.fpga_overhead_percent():.1f}% "
          f"of the V2VP30\n")

    platform.load_program_all(matrix_programs(2, n=6, iterations=1))
    engine = EventDrivenEngine(platform)

    # Window 1: run a slice and collect.
    engine.run_window(2000)
    records = bank.collect_window()
    print("Window 1 counter deltas (selection):")
    for name in sorted(records):
        if name.endswith(".cnt"):
            interesting = {
                k: v for k, v in records[name].items()
                if isinstance(v, (int, float)) and v
            }
            if interesting:
                print(f"  {name:24s} {interesting}")
    events = records.get(f"{dcache_name}.evt", [])
    print(f"\nEvent-logging sniffer captured {len(events)} D-cache events;"
          " first five:")
    for event in events[:5]:
        print(f"  cycle {event.cycle:6d}  {event.kind:12s}  info={event.info}")

    # Software disables cpu1's core sniffer through its MMIO window, the
    # way the emulated application would (Section 4.1).
    target = bank.count_sniffers()[1]
    offset = bank.mmio_offsets[target.name]
    platform.memctrls[0].store(MMIO_BASE + offset + REG_ENABLE, 4, 0, t=0)
    print(f"\nDisabled sniffer {target.name!r} via MMIO "
          f"(address 0x{MMIO_BASE + offset:08x})")
    engine.run_window(4000)
    records = bank.collect_window()
    print(f"  its window-2 record: {records[target.name]!r}")

    # Dispatcher accounting: a healthy link vs a starved one.
    payload = bank.window_payload_bytes()
    print(f"\nOne window currently produces {payload} bytes of statistics.")
    for label, bandwidth in [("100 Mbit/s", 100e6), ("100 kbit/s", 100e3)]:
        dispatcher = EthernetDispatcher(
            link=EthernetLink(bandwidth_bps=bandwidth),
            buffer=BramBuffer(capacity_bytes=1 * KB),
        )
        total_freeze = 0.0
        for _ in range(10):
            total_freeze += dispatcher.dispatch_window(
                payload, real_window_seconds=0.010, num_sensors=8
            )
        stats = dispatcher.stats()
        print(
            f"  {label:11s}: {stats['mac_frames']} MAC frames, "
            f"buffer peak {stats['buffer_peak_bytes']} B, "
            f"VPCM freezes {stats['freeze_events']} "
            f"({total_freeze * 1e3:.1f} ms frozen)"
        )
    print("\nThe starved link reproduces Section 4.2's congestion behaviour:"
          "\nthe VPCM transparently stops the platform until the BRAM buffer"
          "\ndrains, trading emulation wall-clock for lossless statistics.")


if __name__ == "__main__":
    main()
