#!/usr/bin/env python3
"""Farm demo: a 32-variant sweep drained by a 4-worker local farm.

The paper's pitch is exploration throughput — many MPSoC/thermal
variants per afternoon, not one.  :mod:`repro.farm` turns one machine
(or several sharing a filesystem) into a small run-farm: a persistent
job queue, N worker processes, and a shared concurrency-safe
:class:`~repro.trace.store.TraceStore`.  Structure-sharing sweeps
dedup automatically: scenarios that differ only in thermal-side knobs
share one boundary-stream digest, so the fleet emulates each unique
digest exactly **once** and replays everything else from the shared
store — the queue's digest leases guarantee it even across concurrent
workers.

This demo expands 2 emulation-side x 16 thermal-side variants (= 32
jobs, 2 unique digests), drains them through ``LocalFarm(workers=4)``
and prints the per-job provenance: who ran what, and how few live
emulations 32 results actually cost.

Run:  python examples/farm_demo.py [--workers 4] [--dir DIR]
"""

import argparse
import tempfile
import time
import urllib.request

from repro.farm import FarmService, LocalFarm
from repro.scenario.presets import PRESETS
from repro.scenario.sweep import Variant, sweep
from repro.util.records import Table


def thirty_two_variants():
    """2 run bounds x (4 die resolutions x 2 spreaders x 2 backends)."""
    members = []
    for seconds in (1.0, 2.0):  # emulation-side: 2 unique digests
        base = PRESETS.get("matrix_tm_unmanaged")()
        base.max_emulated_seconds = seconds
        members.extend(sweep(
            base,
            {
                "config.die_resolution": [
                    Variant(f"{n}x{n}", [n, n]) for n in (4, 6, 8, 10)
                ],
                "config.spreader_resolution": [
                    Variant(f"sp{n}", [n, n]) for n in (2, 3)
                ],
                "config.solver_backend": ["sparse_be", "cached_lu"],
            },
            name=f"farm_demo_{seconds:g}s",
        ))
    return members


HEADLINE_METRICS = (
    "repro_farm_jobs",
    "repro_farm_emulated_jobs",
    "repro_farm_replayed_jobs",
    "repro_farm_store_hit_ratio",
    "repro_farm_claims_total",
)


def scrape_metrics(url):
    """GET /metrics from the demo's own service (Prometheus text)."""
    with urllib.request.urlopen(url + "/metrics", timeout=10) as response:
        return response.read().decode("utf-8")


def run_demo(base_dir, workers):
    members = thirty_two_variants()
    print(f"Submitting {len(members)} scenario variants to a "
          f"{workers}-worker farm under {base_dir} ...")
    start = time.perf_counter()
    with LocalFarm(base_dir, workers=workers) as farm:
        # Serve the queue over HTTP alongside the workers so the demo
        # can end with a real Prometheus scrape of its own farm.
        with FarmService(farm.queue) as service:
            jobs = farm.run(members, timeout=600.0)
            metrics_text = scrape_metrics(service.url)
    wall = time.perf_counter() - start

    emulated = [j for j in jobs if j.provenance["mode"] == "emulated"]
    replayed = [j for j in jobs if j.provenance["mode"] == "replayed"]
    digests = {j.trace_digest for j in jobs}

    table = Table(
        ["job", "digest", "worker", "mode", "peak T (K)"],
        title=f"{len(jobs)} jobs through {workers} workers "
        f"(shared store: {len(digests)} unique boundary streams)",
    )
    for job in jobs[:8]:
        table.add_row(
            job.name, job.trace_digest[:10], job.provenance["worker"],
            job.provenance["mode"],
            f"{job.result['report']['peak_temperature_k']:.2f}",
        )
    if len(jobs) > 8:
        table.add_row("...", "...", "...", "...", "...")
    print(table)

    by_worker = {}
    for job in jobs:
        by_worker[job.provenance["worker"]] = (
            by_worker.get(job.provenance["worker"], 0) + 1
        )
    share = ", ".join(f"{w}: {n}" for w, n in sorted(by_worker.items()))
    print(f"\nWork share               : {share}")
    print(f"Live emulations          : {len(emulated)} "
          f"(= {len(digests)} unique digests — the farm's dedup floor)")
    print(f"Replays from shared store: {len(replayed)}")
    print(f"Wall time                : {wall:.2f} s for {len(jobs)} results")

    headline = [
        line for line in metrics_text.splitlines()
        if line.split("{")[0].split(" ")[0] in HEADLINE_METRICS
        and not line.startswith("#")
    ]
    print("\nGET /metrics (farm service, headline series):")
    for line in headline:
        print(f"  {line}")

    failed = [j for j in jobs if j.state != "done"]
    if failed:
        print(f"FAILED jobs: {[j.name for j in failed]}")
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--dir", default=None,
        help="farm directory (queue + store); default: a temp dir. "
        "Point several invocations at the same dir to see warm-store "
        "resubmission answer instantly.",
    )
    args = parser.parse_args(argv)
    if args.dir:
        return run_demo(args.dir, args.workers)
    with tempfile.TemporaryDirectory(prefix="repro-farm-demo-") as tmp:
        return run_demo(tmp, args.workers)


if __name__ == "__main__":
    raise SystemExit(main())
