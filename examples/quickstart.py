#!/usr/bin/env python3
"""Quickstart: build an emulated MPSoC, run a real workload, read the
statistics and temperatures the framework extracts.

This walks the paper's Figure 1 architecture and Figure 5 flow in one
page: four Microblaze-class cores with I/D caches and private memories,
a shared memory on the custom bus, count-logging sniffers everywhere,
and the SW thermal model closing the loop every 10 ms of emulated time.

Run:  python examples/quickstart.py
"""

from repro import (
    CacheConfig,
    CoreConfig,
    EmulationFramework,
    FrameworkConfig,
    MPSoCConfig,
    NoManagementPolicy,
    build_platform,
    floorplan_4xarm7,
    matrix_programs,
)
from repro.util.records import Table
from repro.util.units import KB, MHZ


def main():
    # --- Phase 1: define the HW architecture (Figure 1) -------------------
    config = MPSoCConfig(
        name="quickstart",
        cores=[CoreConfig(f"cpu{i}", spec="microblaze") for i in range(4)],
        icache=CacheConfig(name="icache", size=4 * KB, line_size=16),
        dcache=CacheConfig(name="dcache", size=4 * KB, line_size=16),
        private_mem_size=16 * KB,
        shared_mem_size=64 * KB,
        interconnect="bus",
    )
    platform = build_platform(config)
    print(f"Platform '{platform.name}':")
    for name, _ in platform.components():
        print(f"  - {name}")
    resources = platform.resource_report(num_count_sniffers=10)
    print(
        f"FPGA utilization estimate: {resources['percent']:.0f}% of a "
        f"Virtex-2 Pro VP30 ({resources['total']} slices)\n"
    )

    # --- Phase 1b: compile & load the SW driver ---------------------------
    platform.load_program_all(matrix_programs(4, n=8, iterations=2))

    # --- Phase 2: floorplan + co-emulation parameters ----------------------
    framework = EmulationFramework(
        platform=platform,
        floorplan=floorplan_4xarm7(),
        policy=NoManagementPolicy(),
        config=FrameworkConfig(
            virtual_hz=100 * MHZ,
            sampling_period_s=100e-6,  # small windows: the kernel is short
        ),
    )

    # --- Phase 3: the autonomous co-emulation run --------------------------
    report = framework.run(max_windows=100)

    print("Run report:")
    print(f"  emulated time       : {report.emulated_seconds * 1e3:.2f} ms")
    print(f"  board (FPGA) time   : {report.fpga_real_seconds * 1e3:.2f} ms")
    print(f"  instructions        : {report.instructions:.0f}")
    print(f"  sampling windows    : {report.windows}")
    print(f"  workload completed  : {report.workload_done}")
    print(f"  peak temperature    : {report.peak_temperature_k:.2f} K")
    print(f"  statistics traffic  : {report.dispatcher['bytes_sent']} bytes "
          f"in {report.dispatcher['mac_frames']} MAC frames\n")

    table = Table(["core", "instructions", "cycles", "CPI", "activity"],
                  title="Per-core statistics (from the count-logging sniffers)")
    for core in platform.cores:
        stats = core.stats()
        table.add_row(
            core.name,
            stats["instructions"],
            stats["cycles"],
            f"{stats['cpi']:.2f}",
            f"{stats['activity'] * 100:.0f}%",
        )
    print(table)

    print("\nCache behaviour:")
    for cache in platform.icaches + platform.dcaches:
        stats = cache.stats()
        print(
            f"  {cache.name}: {stats['accesses']} accesses, "
            f"{stats['miss_rate'] * 100:.2f}% miss rate"
        )

    bus = platform.interconnect.stats()
    print(
        f"\nBus: {bus['transactions']} transactions, "
        f"{bus['wait_cycles']} cycles of arbitration wait"
    )

    print("\nComponent temperatures after the run:")
    for name, temp in sorted(framework.solver.component_temperatures().items()):
        if not name.startswith("fill"):
            print(f"  {name:12s} {temp:8.3f} K")


if __name__ == "__main__":
    main()
