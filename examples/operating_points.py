#!/usr/bin/env python3
"""Thermal operating-point analysis: designing a DFS policy offline.

Before committing to the paper's 500/100 MHz dual-point policy, a
designer wants to know which operating points can hold which ceilings
at all.  This example sweeps the clock for both Figure 4 floorplans,
prints the steady-state map, and answers the two design questions the
DFS ablation raises: what is the slowest clock that still holds 350 K,
and why a 250 MHz low point silently fails.

Run:  python examples/operating_points.py
"""

from repro.thermal import OperatingPointAnalyzer, floorplan_4xarm7, floorplan_4xarm11
from repro.util.records import Table
from repro.util.units import MHZ

WORKLOAD_UTILIZATION = 0.95  # a MATRIX-TM-class stress workload
CEILING = 350.0


def sweep_floorplan(plan, frequencies):
    analyzer = OperatingPointAnalyzer(plan, spreader_resolution=(2, 2))
    table = Table(
        ["clock", "total power", "max steady temp", f"holds {CEILING:.0f} K?"],
        title=f"Floorplan {plan.name}: steady-state operating points "
        f"(uniform {WORKLOAD_UTILIZATION * 100:.0f}% activity)",
    )
    for f in frequencies:
        point = analyzer.steady_state(f, WORKLOAD_UTILIZATION)
        table.add_row(
            f"{f / MHZ:.0f} MHz",
            f"{point.total_power_w:.2f} W",
            f"{point.max_temperature_k:.1f} K",
            "yes" if point.holds(CEILING) else "NO",
        )
    print(table)
    return analyzer


def main():
    # The ARM7 floorplan barely warms: tens of mW cannot heat a package
    # with 20 K/W to any interesting temperature.
    sweep_floorplan(floorplan_4xarm7(), [50 * MHZ, 100 * MHZ, 200 * MHZ])
    print()
    analyzer = sweep_floorplan(
        floorplan_4xarm11(),
        [100 * MHZ, 200 * MHZ, 250 * MHZ, 300 * MHZ, 400 * MHZ, 500 * MHZ],
    )

    print()
    f_min = analyzer.minimum_holding_frequency(
        CEILING, WORKLOAD_UTILIZATION, low_hz=50 * MHZ, high_hz=500 * MHZ,
        tol_hz=2 * MHZ,
    )
    print(f"Slowest clock that holds {CEILING:.0f} K on the ARM11 floorplan: "
          f"{f_min / MHZ:.0f} MHz")
    for low in (100 * MHZ, 250 * MHZ):
        verdict = analyzer.dfs_low_point_holds(low, CEILING, WORKLOAD_UTILIZATION)
        outcome = (
            "yes"
            if verdict
            else "NO — the die settles above the threshold, the policy "
            "latches low and still overshoots"
        )
        print(f"DFS low point {low / MHZ:.0f} MHz holds the ceiling: {outcome}")
    print("\nThis is why the paper's policy drops all the way to 100 MHz: "
          "the low point must sit below the ceiling's holding frequency, "
          "with margin for sensor hysteresis.")


if __name__ == "__main__":
    main()
