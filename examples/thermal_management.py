#!/usr/bin/env python3
"""Run-time thermal management: the Figure 6 experiment, scaled down.

Profiles the MATRIX kernel cycle-accurately on a 4x ARM11 platform at
500 MHz, then replays a long thermal-stress run (MATRIX-TM) twice:
unmanaged, and under the paper's dual-threshold DFS policy (scale to
100 MHz above 350 K, back to 500 MHz below 340 K).  Prints both
temperature traces as ASCII charts and the management summary.

Run:  python examples/thermal_management.py [--seconds 30]
"""

import argparse

from repro import (
    CacheConfig,
    CoreConfig,
    DualThresholdDfsPolicy,
    EmulationFramework,
    FrameworkConfig,
    MPSoCConfig,
    NoManagementPolicy,
    PowerModel,
    ProfiledWorkload,
    StopGoPolicy,
    build_platform,
    floorplan_4xarm11,
    matrix_programs,
    profile_platform_run,
)
from repro.util.units import KB, MHZ


def build_arm11_platform():
    return build_platform(
        MPSoCConfig(
            name="matrix-tm",
            cores=[
                CoreConfig(f"cpu{i}", spec="arm11", frequency_hz=500 * MHZ)
                for i in range(4)
            ],
            icache=CacheConfig(name="icache", size=8 * KB, line_size=16),
            dcache=CacheConfig(name="dcache", size=8 * KB, line_size=16, assoc=2),
            private_mem_size=32 * KB,
            shared_mem_size=32 * KB,
        )
    )


def run_policy(profile, iterations, policy, horizon_s):
    framework = EmulationFramework(
        platform=None,
        floorplan=floorplan_4xarm11(),
        workload=ProfiledWorkload(profile, total_iterations=iterations),
        policy=policy,
        config=FrameworkConfig(virtual_hz=500 * MHZ),
    )
    report = framework.run(max_emulated_seconds=horizon_s)
    return framework, report


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=30.0,
                        help="emulated seconds of stress at full speed")
    args = parser.parse_args()

    print("Profiling one MATRIX iteration cycle-accurately...")
    platform = build_arm11_platform()
    platform.load_program_all(matrix_programs(4, n=16, iterations=1))
    power_model = PowerModel(floorplan_4xarm11())
    profile = profile_platform_run(platform, power_model, iterations=1,
                                   name="matrix")
    print(f"  {profile.cycles_per_iteration:.0f} cycles per iteration, "
          f"core utilization "
          f"{profile.utilization[('core', 0)] * 100:.0f}%\n")

    iterations = int(args.seconds * 500e6 / profile.cycles_per_iteration)
    horizon = args.seconds * 6  # DFS runs slower; give it room to finish
    policies = [
        ("no management", NoManagementPolicy()),
        ("dual-threshold DFS 350/340 K", DualThresholdDfsPolicy(500 * MHZ, 100 * MHZ)),
        ("stop-go clock gating", StopGoPolicy(run_hz=500 * MHZ)),
    ]
    for label, policy in policies:
        framework, report = run_policy(profile, iterations, policy, horizon)
        print("=" * 74)
        print(f"Policy: {label}")
        print(
            f"  peak {report.peak_temperature_k:.1f} K | "
            f"final {report.final_temperature_k:.1f} K | "
            f"emulated {report.emulated_seconds:.1f} s | "
            f"board {report.fpga_real_seconds:.1f} s | "
            f"DFS switches {report.frequency_transitions}"
        )
        if report.frequency_transitions:
            duty = framework.trace.duty_cycle(100 * MHZ)
            gated = framework.trace.duty_cycle(0.0)
            print(f"  time at 100 MHz: {duty * 100:.0f}%  |  gated: {gated * 100:.0f}%")
        print(framework.trace.ascii_chart(width=66, height=12))
        crossings = framework.sensors.crossings()
        if crossings:
            first = crossings[0]
            print(f"  first threshold crossing: {first[1]} at {first[0]:.2f} s "
                  f"({first[3]:.1f} K)")


if __name__ == "__main__":
    main()
