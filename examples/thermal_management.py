#!/usr/bin/env python3
"""Run-time thermal management: the Figure 6 experiment, scaled down.

Profiles the MATRIX kernel cycle-accurately on a 4x ARM11 platform at
500 MHz, then declares the policy comparison as one base
:class:`Scenario` carrying the measured profile and sweeps the policy
spec — unmanaged, the paper's dual-threshold DFS, and stop-go clock
gating — executing all variants in parallel through :class:`Runner`.
Prints each temperature trace as an ASCII chart and the management
summary.

Run:  python examples/thermal_management.py [--seconds 30]
"""

import argparse

from repro import (
    CacheConfig,
    CoreConfig,
    FrameworkConfig,
    MPSoCConfig,
    PolicySpec,
    PowerModel,
    Runner,
    Scenario,
    Variant,
    WorkloadSpec,
    build_platform,
    floorplan_4xarm11,
    matrix_programs,
    profile_platform_run,
    sweep,
)
from repro.util.units import KB, MHZ


def build_arm11_platform():
    return build_platform(
        MPSoCConfig(
            name="matrix-tm",
            cores=[
                CoreConfig(f"cpu{i}", spec="arm11", frequency_hz=500 * MHZ)
                for i in range(4)
            ],
            icache=CacheConfig(name="icache", size=8 * KB, line_size=16),
            dcache=CacheConfig(name="dcache", size=8 * KB, line_size=16, assoc=2),
            private_mem_size=32 * KB,
            shared_mem_size=32 * KB,
        )
    )


def first_crossing(trace):
    """(time, component, temperature) of the first sensor event, or None."""
    for sample in trace.samples:
        if sample.events:
            component = sample.events[0][0]
            return sample.time_s, component, sample.component_temps[component]
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=30.0,
                        help="emulated seconds of stress at full speed")
    args = parser.parse_args()

    print("Profiling one MATRIX iteration cycle-accurately...")
    platform = build_arm11_platform()
    platform.load_program_all(matrix_programs(4, n=16, iterations=1))
    power_model = PowerModel(floorplan_4xarm11())
    profile = profile_platform_run(platform, power_model, iterations=1,
                                   name="matrix")
    print(f"  {profile.cycles_per_iteration:.0f} cycles per iteration, "
          f"core utilization "
          f"{profile.utilization[('core', 0)] * 100:.0f}%\n")

    iterations = int(args.seconds * 500e6 / profile.cycles_per_iteration)
    horizon = args.seconds * 6  # DFS runs slower; give it room to finish
    base = Scenario(
        name="matrix-tm",
        workload=WorkloadSpec(
            "profiled",
            {"profile": profile.to_dict(), "total_iterations": iterations},
        ),
        floorplan="4xarm11",
        config=FrameworkConfig(virtual_hz=500 * MHZ),
        max_emulated_seconds=horizon,
    )
    policies = [
        Variant("no management", {"name": "none"}),
        Variant(
            "dual-threshold DFS 350/340 K",
            {"name": "dual_threshold",
             "params": {"high_hz": 500 * MHZ, "low_hz": 100 * MHZ}},
        ),
        Variant(
            "stop-go clock gating",
            {"name": "stop_go", "params": {"run_hz": 500 * MHZ}},
        ),
    ]
    scenarios = sweep(base, {"policy": policies})
    results = Runner(workers=len(scenarios), capture_trace=True).run(scenarios)

    for result, policy in zip(results, policies):
        print("=" * 74)
        print(f"Policy: {policy.label}")
        if not result.ok:
            print(f"  FAILED — {result.error}")
            continue
        report = result.report
        print(
            f"  peak {report.peak_temperature_k:.1f} K | "
            f"final {report.final_temperature_k:.1f} K | "
            f"emulated {report.emulated_seconds:.1f} s | "
            f"board {report.fpga_real_seconds:.1f} s | "
            f"DFS switches {report.frequency_transitions}"
        )
        if report.frequency_transitions:
            duty = result.trace.duty_cycle(100 * MHZ)
            gated = result.trace.duty_cycle(0.0)
            print(f"  time at 100 MHz: {duty * 100:.0f}%  |  gated: {gated * 100:.0f}%")
        print(result.trace.ascii_chart(width=66, height=12))
        crossing = first_crossing(result.trace)
        if crossing:
            time_s, component, temp = crossing
            print(f"  first threshold crossing: {component} at {time_s:.2f} s "
                  f"({temp:.1f} K)")


if __name__ == "__main__":
    main()
