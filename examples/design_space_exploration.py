#!/usr/bin/env python3
"""Architecture exploration: bus vs NoC on the DITHERING driver.

The paper positions the framework as an architecture-exploration
vehicle: swap interconnects, caches or arbitration policies and get
cycle-accurate statistics in minutes.  This example dithers two images
on four cores under several platform variants and prints the
performance/traffic comparison the statistics fabric extracts.

Run:  python examples/design_space_exploration.py [--size 32]
"""

import argparse
import time

from repro import (
    BusConfig,
    CacheConfig,
    CoreConfig,
    MPSoCConfig,
    build_platform,
    dithering_programs,
    generate_custom,
    generate_mesh,
    load_images,
)
from repro.emulation.engine import EventDrivenEngine
from repro.util.records import Table
from repro.util.units import KB


def build_variant(name, interconnect="bus", bus_kwargs=None, noc=None,
                  dcache_assoc=1):
    return build_platform(
        MPSoCConfig(
            name=name,
            cores=[CoreConfig(f"cpu{i}") for i in range(4)],
            icache=CacheConfig(name="i", size=4 * KB, line_size=16),
            dcache=CacheConfig(name="d", size=4 * KB, line_size=16,
                               assoc=dcache_assoc),
            shared_mem_size=256 * KB,
            interconnect=interconnect,
            bus=BusConfig(name=f"{name}.bus", **(bus_kwargs or {}))
            if interconnect == "bus"
            else None,
            noc=noc,
        )
    )


def run_variant(platform, width, height):
    load_images(platform, width, height, num_images=2)
    platform.load_program_all(dithering_programs(4, width, height, 2))
    engine = EventDrivenEngine(platform)
    t0 = time.perf_counter()
    instructions, end_cycle = engine.run_to_completion()
    wall = time.perf_counter() - t0
    inter = platform.interconnect.stats()
    contention = inter.get("wait_cycles", 0)
    traffic = inter.get("words", inter.get("flits", 0))
    return {
        "cycles": end_cycle,
        "instructions": instructions,
        "wall_s": wall,
        "traffic": traffic,
        "contention": contention,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=32,
                        help="image edge length (pixels)")
    args = parser.parse_args()
    width = height = args.size

    variants = [
        ("OPB bus", build_variant("opb", bus_kwargs={"kind": "opb"})),
        ("PLB bus", build_variant("plb", bus_kwargs={"kind": "plb"})),
        (
            "custom bus (round-robin)",
            build_variant(
                "rr", bus_kwargs={"kind": "custom", "arbitration": "round-robin"}
            ),
        ),
        (
            "NoC 2 switches (paper's dithering NoC)",
            build_variant(
                "noc2", interconnect="noc",
                noc=generate_custom("noc2", 2, ring=False),
            ),
        ),
        (
            "NoC 2x2 mesh",
            build_variant("mesh", interconnect="noc", noc=generate_mesh("m", 2, 2)),
        ),
        (
            "custom bus + 2-way D-cache",
            build_variant("wb", dcache_assoc=2),
        ),
    ]

    table = Table(
        ["variant", "cycles", "vs best", "interconnect traffic", "wait cycles"],
        title=f"DITHERING (2x {width}x{height} images, 4 cores)",
    )
    results = []
    for label, platform in variants:
        result = run_variant(platform, width, height)
        results.append((label, result))
    best = min(r["cycles"] for _, r in results)
    for label, result in results:
        table.add_row(
            label,
            result["cycles"],
            f"{result['cycles'] / best:.2f}x",
            result["traffic"],
            result["contention"],
        )
    print(table)
    print(
        "\n(cycle counts from the emulated platform; 'wait cycles' is the "
        "arbitration wait the bus sniffers count — the NoC rows report "
        "flits instead of words)"
    )


if __name__ == "__main__":
    main()
