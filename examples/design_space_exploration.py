#!/usr/bin/env python3
"""Architecture exploration: bus vs NoC on the DITHERING driver.

The paper positions the framework as an architecture-exploration
vehicle: swap interconnects, caches or arbitration policies and get
cycle-accurate statistics in minutes.  This example declares the sweep
as data — one base :class:`Scenario` plus a list of labelled platform
variants — expands it with :func:`sweep` and executes the batch through
a two-worker :class:`Runner`, then prints the performance/traffic
comparison the statistics fabric extracts.

Run:  python examples/design_space_exploration.py [--size 32] [--workers 2]
"""

import argparse

from repro import (
    BusConfig,
    CacheConfig,
    CoreConfig,
    MPSoCConfig,
    Runner,
    Scenario,
    Variant,
    WorkloadSpec,
    generate_custom,
    generate_mesh,
    sweep,
)
from repro.util.records import Table
from repro.util.units import KB


def variant_platform(name, interconnect="bus", bus_kwargs=None, noc=None,
                     dcache_assoc=1):
    return MPSoCConfig(
        name=name,
        cores=[CoreConfig(f"cpu{i}") for i in range(4)],
        icache=CacheConfig(name="i", size=4 * KB, line_size=16),
        dcache=CacheConfig(name="d", size=4 * KB, line_size=16,
                           assoc=dcache_assoc),
        shared_mem_size=256 * KB,
        interconnect=interconnect,
        bus=BusConfig(name=f"{name}.bus", **(bus_kwargs or {}))
        if interconnect == "bus"
        else None,
        noc=noc,
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=32,
                        help="image edge length (pixels)")
    parser.add_argument("--workers", type=int, default=2,
                        help="parallel scenario workers")
    args = parser.parse_args()
    width = height = args.size

    base = Scenario(
        name="dithering-dse",
        platform=variant_platform("base"),
        floorplan="4xarm7",
        workload=WorkloadSpec(
            "dithering", {"width": width, "height": height, "num_images": 2}
        ),
    )
    platforms = [
        Variant("OPB bus",
                variant_platform("opb", bus_kwargs={"kind": "opb"}).to_dict()),
        Variant("PLB bus",
                variant_platform("plb", bus_kwargs={"kind": "plb"}).to_dict()),
        Variant(
            "custom bus (round-robin)",
            variant_platform(
                "rr", bus_kwargs={"kind": "custom", "arbitration": "round-robin"}
            ).to_dict(),
        ),
        Variant(
            "NoC 2 switches (paper's dithering NoC)",
            variant_platform(
                "noc2", interconnect="noc",
                noc=generate_custom("noc2", 2, ring=False),
            ).to_dict(),
        ),
        Variant(
            "NoC 2x2 mesh",
            variant_platform(
                "mesh", interconnect="noc", noc=generate_mesh("m", 2, 2)
            ).to_dict(),
        ),
        Variant(
            "custom bus + 2-way D-cache",
            variant_platform("wb", dcache_assoc=2).to_dict(),
        ),
    ]
    scenarios = sweep(base, {"platform": platforms})
    results = Runner(workers=args.workers).run(scenarios)

    table = Table(
        ["variant", "cycles", "vs best", "interconnect traffic", "wait cycles",
         "wall s"],
        title=f"DITHERING (2x {width}x{height} images, 4 cores)",
    )
    good = [r for r in results if r.ok]
    for failed in (r for r in results if not r.ok):
        print(failed.summary())
    if not good:
        print("every variant failed")
        return
    best = min(r.report.extras["end_cycle"] for r in good)
    for result, variant in zip(results, platforms):
        if not result.ok:
            continue
        inter = result.report.extras["interconnect"]
        cycles = result.report.extras["end_cycle"]
        table.add_row(
            variant.label,
            cycles,
            f"{cycles / best:.2f}x",
            inter.get("words", inter.get("flits", 0)),
            inter.get("wait_cycles", 0),
            f"{result.wall_seconds:.2f}",
        )
    print(table)
    print(
        "\n(cycle counts from the emulated platform; 'wait cycles' is the "
        "arbitration wait the bus sniffers count — the NoC rows report "
        "flits instead of words)"
    )


if __name__ == "__main__":
    main()
