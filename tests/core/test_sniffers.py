"""Sniffer tests: counting, event capture, MMIO control, bank building."""

import pytest

from repro.core.sniffers import (
    KIND_COUNT_LOGGING,
    KIND_EVENT_LOGGING,
    REG_ENABLE,
    REG_KIND,
    REG_SELECT,
    REG_VALUE,
    CountLoggingSniffer,
    EventLoggingSniffer,
    SnifferBank,
)
from repro.mpsoc.cache import Cache, CacheConfig
from repro.mpsoc.events import Observable


def make_cache():
    return Cache(CacheConfig(name="d", size=256, line_size=16))


def test_count_sniffer_deltas():
    cache = make_cache()
    sniffer = CountLoggingSniffer("d.cnt", cache)
    cache.access(0x00, False)
    cache.access(0x00, False)
    first = sniffer.collect()
    assert first["accesses"] == 2
    assert first["hits"] == 1
    cache.access(0x40, False)
    second = sniffer.collect()
    assert second["accesses"] == 1
    assert second["misses"] == 1


def test_count_sniffer_disabled_reports_nothing():
    cache = make_cache()
    sniffer = CountLoggingSniffer("d.cnt", cache)
    sniffer.enabled = False
    cache.access(0x00, False)
    assert sniffer.collect() == {}
    assert sniffer.window_payload_bytes() == 0


def test_count_sniffer_mmio_interface():
    cache = make_cache()
    sniffer = CountLoggingSniffer("d.cnt", cache)
    assert sniffer.mmio_read(REG_KIND) == KIND_COUNT_LOGGING
    assert sniffer.mmio_read(REG_ENABLE) == 1
    sniffer.mmio_write(REG_ENABLE, 0)
    assert not sniffer.enabled
    cache.access(0x00, False)
    names = sniffer.counter_names()
    index = names.index("accesses")
    sniffer.mmio_write(REG_SELECT, index)
    assert sniffer.mmio_read(REG_SELECT) == index
    assert sniffer.mmio_read(REG_VALUE) == 1
    sniffer.mmio_write(REG_SELECT, 999)
    assert sniffer.mmio_read(REG_VALUE) == 0


def test_count_sniffer_payload_sizing():
    cache = make_cache()
    sniffer = CountLoggingSniffer("d.cnt", cache)
    payload = sniffer.window_payload_bytes()
    assert payload == 8 + 8 * len(sniffer.counter_names())


class _Emitter(Observable):
    def __init__(self):
        super().__init__()
        self.name = "emitter"

    def stats(self):
        return {}


def test_event_sniffer_captures_and_drains():
    emitter = _Emitter()
    sniffer = EventLoggingSniffer("e.evt", emitter)
    emitter.emit(1, "emitter", "cache.hit", (0x40,))
    emitter.emit(2, "emitter", "cache.miss", (0x80,))
    assert sniffer.mmio_read(REG_VALUE) == 2
    assert sniffer.window_payload_bytes() == 24
    events = sniffer.collect()
    assert [e.kind for e in events] == ["cache.hit", "cache.miss"]
    assert sniffer.collect() == []


def test_event_sniffer_respects_enable_and_bound():
    emitter = _Emitter()
    sniffer = EventLoggingSniffer("e.evt", emitter, max_events=2)
    sniffer.enabled = False
    emitter.emit(1, "emitter", "x")
    assert sniffer.collect() == []
    sniffer.enabled = True
    for cycle in range(5):
        emitter.emit(cycle, "emitter", "x")
    assert len(sniffer.collect()) == 2
    assert sniffer.dropped == 3


def test_event_sniffer_kind_code():
    sniffer = EventLoggingSniffer("e.evt", _Emitter())
    assert sniffer.mmio_read(REG_KIND) == KIND_EVENT_LOGGING


def test_bank_from_platform(platform2):
    bank = SnifferBank.from_platform(platform2)
    # One count sniffer per component: 2 cores + 2 memory controllers +
    # 4 caches + 2 private memories + shared + bus.
    assert len(bank) == 12
    assert len(bank.count_sniffers()) == 12
    assert bank.window_payload_bytes() > 0
    assert bank.fpga_overhead_percent() == pytest.approx(0.3 * 12)


def test_bank_with_event_logging(platform2):
    name = platform2.icaches[0].name
    bank = SnifferBank.from_platform(platform2, event_logging=[name])
    assert len(bank.event_sniffers()) == 1


def test_bank_mmio_mapping(platform2):
    bank = SnifferBank.from_platform(platform2)
    # Every sniffer got a distinct MMIO window.
    offsets = list(bank.mmio_offsets.values())
    assert len(offsets) == len(set(offsets))
    # Software can disable the first sniffer through MMIO.
    from repro.mpsoc.platform import MMIO_BASE

    ctrl = platform2.memctrls[0]
    first = bank.sniffers[0]
    ctrl.store(MMIO_BASE + bank.mmio_offsets[first.name] + REG_ENABLE, 4, 0, t=0)
    assert not first.enabled


def test_bank_collect_window(platform2):
    bank = SnifferBank.from_platform(platform2)
    records = bank.collect_window()
    assert set(records) == {s.name for s in bank.sniffers}
