"""Statistics helpers and thermal-trace tests."""

import math

import pytest

from repro.core.stats import ThermalTrace, TraceSample, diff_stats, flatten_numeric


def test_diff_stats_numeric():
    new = {"a": 10, "b": {"c": 5.5, "d": 2}}
    old = {"a": 4, "b": {"c": 0.5}}
    assert diff_stats(new, old) == {"a": 6, "b": {"c": 5.0, "d": 2}}


def test_diff_stats_missing_old_counts_from_zero():
    assert diff_stats({"x": 3}, {}) == {"x": 3}
    assert diff_stats({"x": 3}, None) == {"x": 3}


def test_diff_stats_preserves_non_numeric():
    new = {"name": "bus", "n": 2, "flags": [1, 2]}
    out = diff_stats(new, {"name": "bus", "n": 1})
    assert out["name"] == "bus"
    assert out["flags"] == [1, 2]
    assert out["n"] == 1


def test_diff_stats_bools_copied_not_diffed():
    assert diff_stats({"on": True}, {"on": True})["on"] is True


def test_flatten_numeric():
    flat = flatten_numeric({"a": {"b": 1, "c": {"d": 2.5}}, "e": 3, "s": "x"})
    assert flat == {"a.b": 1, "a.c.d": 2.5, "e": 3}


def make_trace(freqs=(500e6, 500e6, 100e6, 100e6), temps=(310, 350, 345, 339)):
    trace = ThermalTrace()
    for index, (f, t) in enumerate(zip(freqs, temps)):
        trace.append(
            TraceSample(
                time_s=0.01 * (index + 1),
                frequency_hz=f,
                total_power_w=5.0,
                max_temp_k=float(t),
                component_temps={"core0": float(t) - 1.0},
            )
        )
    return trace


def test_trace_accessors():
    trace = make_trace()
    assert len(trace) == 4
    assert trace.peak_temperature() == 350.0
    assert trace.final_temperature() == 339.0
    assert trace.times() == pytest.approx([0.01, 0.02, 0.03, 0.04])
    assert trace.series("core0")[0] == pytest.approx(309.0)
    assert math.isnan(trace.series("missing")[0])


def test_duty_cycle():
    trace = make_trace()
    assert trace.duty_cycle(100e6) == pytest.approx(0.5)
    assert trace.duty_cycle(500e6) == pytest.approx(0.5)
    assert trace.duty_cycle(250e6) == 0.0
    assert ThermalTrace().duty_cycle(100e6) == 0.0


def test_time_above():
    trace = make_trace(temps=(330, 355, 356, 330))
    assert trace.time_above(350.0) == pytest.approx(0.02)


def test_csv_output():
    csv = make_trace().to_csv()
    lines = csv.strip().splitlines()
    assert lines[0] == "time_s,frequency_hz,total_power_w,max_temp_k,core0"
    assert len(lines) == 5
    assert ThermalTrace().to_csv() == ""


def test_ascii_chart_renders():
    chart = make_trace().ascii_chart(width=20, height=5, title="demo")
    lines = chart.splitlines()
    assert lines[0] == "demo"
    assert any("*" in line for line in lines)
    assert ThermalTrace().ascii_chart() == "(empty trace)"


def test_ascii_chart_flat_trace():
    trace = make_trace(temps=(320, 320, 320, 320))
    assert "*" in trace.ascii_chart(width=10, height=3)


def test_empty_trace_temperatures_are_nan_not_zero_kelvin():
    """Regression: the 0.0 K sentinel used to flow into
    RunReport.peak_temperature_k and read as a real temperature."""
    trace = ThermalTrace()
    assert math.isnan(trace.peak_temperature())
    assert math.isnan(trace.final_temperature())
    digest = trace.digest()
    assert digest["samples"] == 0
    assert digest["peak_temperature_k"] is None  # NaN is not JSON
    assert digest["final_temperature_k"] is None


def test_sample_round_trip_is_lossless():
    sample = TraceSample(
        time_s=0.02,
        frequency_hz=5e8,
        total_power_w=4.25,
        max_temp_k=351.5,
        component_temps={"core0": 350.5, "mem": 320.0},
        events=(("core0", "over-upper"),),
    )
    back = TraceSample.from_dict(sample.to_dict())
    assert back == sample
    assert isinstance(back.events, tuple)
    assert isinstance(back.events[0], tuple)


def test_sample_to_dict_is_json_compatible():
    import json

    sample = TraceSample(
        time_s=0.01, frequency_hz=1e8, total_power_w=1.0, max_temp_k=300.0,
        events=(("c", "under-lower"),),
    )
    encoded = json.dumps(sample.to_dict())
    assert TraceSample.from_dict(json.loads(encoded)) == sample


def test_trace_round_trip_preserves_every_sample():
    trace = make_trace()
    trace.samples[1].events = (("core0", "over-upper"),)
    back = ThermalTrace.from_dict(trace.to_dict())
    assert back.samples == trace.samples
    assert back.digest() == trace.digest()
    assert ThermalTrace.from_dict(ThermalTrace().to_dict()).samples == []
