"""Workload-model tests: direct execution and profiled replay."""

import pytest

from repro.core.workload_model import (
    ActivityProfile,
    DirectWorkload,
    ProfiledWorkload,
    profile_platform_run,
)
from repro.mpsoc.asm import assemble
from repro.power.models import PowerModel
from repro.thermal.floorplan import floorplan_4xarm7


def make_profile(cycles=1000, core_util=0.9):
    return ActivityProfile(
        name="k",
        cycles_per_iteration=cycles,
        utilization={("core", 0): core_util, ("icache", 0): 0.5},
        instructions_per_iteration=800,
    )


def test_profile_validation():
    with pytest.raises(ValueError):
        ActivityProfile(name="k", cycles_per_iteration=0)


def test_profiled_depletion():
    workload = ProfiledWorkload(make_profile(cycles=1000), total_iterations=10)
    activity = workload.advance(4000)
    assert workload.completed_iterations == pytest.approx(4)
    assert activity.get(("core", 0)) == pytest.approx(0.9)
    workload.advance(8000)  # only 6 iterations remain
    assert workload.done
    assert workload.instructions == pytest.approx(8000)


def test_profiled_partial_window_scales_activity():
    workload = ProfiledWorkload(make_profile(cycles=1000), total_iterations=2)
    activity = workload.advance(8000)  # work fills only a quarter of it
    assert activity.get(("core", 0)) == pytest.approx(0.9 * 0.25)
    assert workload.done


def test_profiled_zero_window():
    workload = ProfiledWorkload(make_profile(), total_iterations=1)
    activity = workload.advance(0)
    assert activity.get(("core", 0)) == 0.0
    assert not workload.done


def test_profiled_validates():
    with pytest.raises(ValueError):
        ProfiledWorkload(make_profile(), total_iterations=0)


def test_direct_workload_runs_platform(platform1):
    program = assemble(
        """
        main:   li   r1, 200
        loop:   addi r1, r1, -1
                bgt  r1, r0, loop
                halt
        """
    )
    platform1.load_program(0, program)
    model = PowerModel(floorplan_4xarm7())
    workload = DirectWorkload(platform1, model)
    assert not workload.done
    activity = workload.advance(100)
    assert 0.0 < activity.get(("core", 0)) <= 1.0
    while not workload.done:
        workload.advance(200)
    assert platform1.cores[0].halted
    assert workload.instructions == platform1.cores[0].instructions
    # After completion, windows report idle-only activity.
    tail = workload.advance(100)
    assert tail.get(("core", 0)) < 0.2


def test_direct_workload_rejects_negative_window(platform1):
    program = assemble("main: halt")
    platform1.load_program(0, program)
    workload = DirectWorkload(platform1, PowerModel(floorplan_4xarm7()))
    with pytest.raises(ValueError):
        workload.advance(-1)


def test_profile_platform_run(platform1):
    program = assemble(
        """
        main:   li   r1, 50
        loop:   addi r1, r1, -1
                bgt  r1, r0, loop
                halt
        """
    )
    platform1.load_program(0, program)
    model = PowerModel(floorplan_4xarm7())
    profile = profile_platform_run(platform1, model, iterations=50, name="loop")
    assert profile.name == "loop"
    assert profile.cycles_per_iteration > 0
    assert profile.instructions_per_iteration == pytest.approx(
        platform1.cores[0].instructions / 50
    )
    assert 0.0 < profile.utilization[("core", 0)] <= 1.0
