"""BRAM buffer and Ethernet dispatcher tests."""

import pytest

from repro.core.dispatcher import BramBuffer, EthernetDispatcher, StatisticsFrame
from repro.emulation.ethernet import EthernetLink


def test_buffer_push_and_drain():
    buf = BramBuffer(capacity_bytes=100)
    assert buf.push(60) == 0
    assert buf.level_bytes == 60
    assert buf.push(60) == 20  # 20 bytes overflow
    assert buf.level_bytes == 100
    assert buf.drain(30) == 30
    assert buf.level_bytes == 70
    assert buf.drain(1000) == 70
    assert buf.peak_bytes == 100


def test_buffer_validation():
    with pytest.raises(ValueError):
        BramBuffer(capacity_bytes=0)
    buf = BramBuffer()
    with pytest.raises(ValueError):
        buf.push(-1)


def test_dispatch_without_congestion():
    dispatcher = EthernetDispatcher(
        link=EthernetLink(bandwidth_bps=100e6), buffer=BramBuffer(64 * 1024)
    )
    # 1 kB per 10 ms window: far below 100 Mbit/s.
    freeze = dispatcher.dispatch_window(1000, real_window_seconds=0.01, num_sensors=4)
    assert freeze == 0.0
    stats = dispatcher.stats()
    assert stats["windows"] == 1
    assert stats["freeze_events"] == 0
    assert stats["bytes_sent"] > 1000  # payload + feedback


def test_dispatch_congestion_freezes():
    # A 1 kB buffer and a slow link: a 100 kB window must freeze.
    dispatcher = EthernetDispatcher(
        link=EthernetLink(bandwidth_bps=1e6), buffer=BramBuffer(1024)
    )
    freeze = dispatcher.dispatch_window(100_000, real_window_seconds=0.01)
    assert freeze > 0.0
    stats = dispatcher.stats()
    assert stats["freeze_events"] == 1
    assert stats["freeze_seconds"] == pytest.approx(freeze)


def test_sustained_overload_keeps_freezing():
    dispatcher = EthernetDispatcher(
        link=EthernetLink(bandwidth_bps=1e6), buffer=BramBuffer(4096)
    )
    freezes = [
        dispatcher.dispatch_window(50_000, real_window_seconds=0.01)
        for _ in range(5)
    ]
    assert all(f > 0 for f in freezes[1:])


def test_frames_sequence():
    dispatcher = EthernetDispatcher()
    dispatcher.dispatch_window(10, 0.01)
    dispatcher.dispatch_window(20, 0.01)
    assert [f.sequence for f in dispatcher.frames] == [0, 1]
    assert [f.window for f in dispatcher.frames] == [0, 1]
    assert dispatcher.frames[1].wire_payload == 20 + StatisticsFrame.HEADER_BYTES


def test_dispatch_validates():
    dispatcher = EthernetDispatcher()
    with pytest.raises(ValueError):
        dispatcher.dispatch_window(-1, 0.01)
    with pytest.raises(ValueError):
        dispatcher.dispatch_window(1, -0.01)
