"""Framework edge cases: reports, initial temperature, monitoring subsets."""

import pytest

from repro.core.framework import EmulationFramework, FrameworkConfig
from repro.core.thermal_manager import DualThresholdDfsPolicy, NoManagementPolicy
from repro.core.workload_model import ActivityProfile, ProfiledWorkload
from repro.thermal.floorplan import floorplan_4xarm11
from repro.util.units import MHZ


def profile():
    utilization = {("core", i): 0.9 for i in range(4)}
    return ActivityProfile(name="p", cycles_per_iteration=1000,
                           utilization=utilization)


def make_framework(**config_overrides):
    return EmulationFramework(
        platform=None,
        floorplan=floorplan_4xarm11(),
        workload=ProfiledWorkload(profile(), total_iterations=10**8),
        policy=NoManagementPolicy(),
        config=FrameworkConfig(
            virtual_hz=500 * MHZ, spreader_resolution=(2, 2), **config_overrides
        ),
    )


def test_initial_temperature_override():
    framework = make_framework(initial_temperature_kelvin=345.0)
    assert framework.solver.max_temperature() == pytest.approx(345.0)
    sample = framework.step_window()
    assert sample.max_temp_k > 330.0  # starts warm, not from ambient


def test_monitored_subset():
    framework = EmulationFramework(
        platform=None,
        floorplan=floorplan_4xarm11(),
        workload=ProfiledWorkload(profile(), total_iterations=10**6),
        policy=DualThresholdDfsPolicy(),
        config=FrameworkConfig(
            virtual_hz=500 * MHZ,
            spreader_resolution=(2, 2),
            monitored_components=("arm11_0",),
        ),
    )
    assert set(framework.sensors.sensors) == {"arm11_0"}


def test_config_rejects_inverted_sensor_thresholds():
    with pytest.raises(ValueError, match="upper threshold"):
        FrameworkConfig(sensor_upper_kelvin=340.0, sensor_lower_kelvin=350.0)
    with pytest.raises(ValueError, match="upper threshold"):
        FrameworkConfig(sensor_upper_kelvin=350.0, sensor_lower_kelvin=350.0)


def test_config_rejects_nonpositive_ethernet_bandwidth():
    with pytest.raises(ValueError, match="Ethernet bandwidth"):
        FrameworkConfig(ethernet_bandwidth_bps=0.0)
    with pytest.raises(ValueError, match="Ethernet bandwidth"):
        FrameworkConfig(ethernet_bandwidth_bps=-1.0)


def test_config_rejects_nonpositive_physical_frequency():
    with pytest.raises(ValueError, match="physical board frequency"):
        FrameworkConfig(physical_hz=0.0)
    with pytest.raises(ValueError, match="physical board frequency"):
        FrameworkConfig(physical_hz=-100 * MHZ)


def test_config_rejects_nonpositive_initial_temperature():
    with pytest.raises(ValueError, match="initial temperature"):
        FrameworkConfig(initial_temperature_kelvin=0.0)
    with pytest.raises(ValueError, match="initial temperature"):
        FrameworkConfig(initial_temperature_kelvin=-273.0)
    # None (ambient) and any positive kelvin remain valid.
    assert FrameworkConfig().initial_temperature_kelvin is None
    assert FrameworkConfig(initial_temperature_kelvin=345.0)


def test_config_rejects_unknown_solver_backend():
    with pytest.raises(ValueError, match="unknown solver backend"):
        FrameworkConfig(solver_backend="warp_drive")
    with pytest.raises(ValueError, match="'name' entry"):
        FrameworkConfig(solver_backend={"params": {}})
    with pytest.raises(ValueError, match="solver_backend"):
        FrameworkConfig(solver_backend=42)
    # Live backend instances are not plain data: the config must stay
    # JSON-round-trippable and per-framework (pass instances to
    # ThermalSolver directly instead).
    from repro.thermal.backends import CachedLU

    with pytest.raises(ValueError, match="registered name"):
        FrameworkConfig(solver_backend=CachedLU())
    # Malformed dict shapes and bad params fail at config time too, not
    # when the framework is wired (possibly in a worker process).
    with pytest.raises(ValueError, match="unknown solver-backend keys"):
        FrameworkConfig(solver_backend={"name": "cached_lu", "junk": 1})
    with pytest.raises(TypeError):
        FrameworkConfig(
            solver_backend={"name": "cached_lu", "params": {"bogus": 1}}
        )
    with pytest.raises(ValueError, match="tolerance"):
        FrameworkConfig(
            solver_backend={
                "name": "cached_lu",
                "params": {"refactor_tolerance_kelvin": 0.0},
            }
        )


def test_config_solver_backend_round_trips_and_wires_solver():
    import json

    from repro.thermal.backends import CachedLU

    config = FrameworkConfig(
        solver_backend={
            "name": "cached_lu",
            "params": {"refactor_tolerance_kelvin": 0.5},
        }
    )
    rebuilt = FrameworkConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    assert rebuilt == config
    framework = make_framework(solver_backend="cached_lu")
    assert isinstance(framework.solver.backend, CachedLU)
    sample = framework.step_window()
    assert sample.max_temp_k > 0
    assert framework.solver.backend.factorizations == 1


def test_config_normalizes_sequences_to_tuples():
    config = FrameworkConfig(
        monitored_components=["arm11_0", "arm11_1"],
        spreader_resolution=[2, 2],
    )
    assert config.monitored_components == ("arm11_0", "arm11_1")
    assert config.spreader_resolution == (2, 2)
    assert FrameworkConfig().monitored_components is None


def test_config_dict_round_trip():
    import json

    config = FrameworkConfig(
        virtual_hz=500 * MHZ,
        monitored_components=("arm11_0",),
        spreader_resolution=(2, 2),
    )
    rebuilt = FrameworkConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    assert rebuilt == config
    # Partial dicts keep defaults for everything unspecified.
    assert FrameworkConfig.from_dict({"virtual_hz": 5e8}).grid_mode == "component"


def test_report_before_any_window():
    framework = make_framework()
    report = framework.report()
    assert report.windows == 0
    assert report.emulated_seconds == 0.0
    assert report.peak_temperature_k == 0.0
    assert not report.workload_done


def test_sample_fields_consistent():
    framework = make_framework()
    sample = framework.step_window()
    assert sample.time_s == pytest.approx(framework.config.sampling_period_s)
    assert sample.frequency_hz == 500 * MHZ
    assert sample.total_power_w == pytest.approx(
        sum(
            framework.power_model.component_power(
                framework.workload.advance(0), frequency_hz=500 * MHZ
            ).values()
        ),
        abs=10.0,
    )
    assert sample.max_temp_k >= 300.0


def test_board_time_tracks_stretch():
    framework = make_framework()
    for _ in range(10):
        framework.step_window()
    report = framework.report()
    # 500 MHz on a 100 MHz board: 5x stretch (no congestion freezes here).
    assert report.fpga_real_seconds == pytest.approx(
        5 * report.emulated_seconds, rel=1e-6
    )
