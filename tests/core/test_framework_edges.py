"""Framework edge cases: reports, initial temperature, monitoring subsets."""

import pytest

from repro.core.framework import EmulationFramework, FrameworkConfig
from repro.core.thermal_manager import DualThresholdDfsPolicy, NoManagementPolicy
from repro.core.workload_model import ActivityProfile, ProfiledWorkload
from repro.thermal.floorplan import floorplan_4xarm11
from repro.util.units import MHZ


def profile():
    utilization = {("core", i): 0.9 for i in range(4)}
    return ActivityProfile(name="p", cycles_per_iteration=1000,
                           utilization=utilization)


def make_framework(**config_overrides):
    return EmulationFramework(
        platform=None,
        floorplan=floorplan_4xarm11(),
        workload=ProfiledWorkload(profile(), total_iterations=10**8),
        policy=NoManagementPolicy(),
        config=FrameworkConfig(
            virtual_hz=500 * MHZ, spreader_resolution=(2, 2), **config_overrides
        ),
    )


def test_initial_temperature_override():
    framework = make_framework(initial_temperature_kelvin=345.0)
    assert framework.solver.max_temperature() == pytest.approx(345.0)
    sample = framework.step_window()
    assert sample.max_temp_k > 330.0  # starts warm, not from ambient


def test_monitored_subset():
    framework = EmulationFramework(
        platform=None,
        floorplan=floorplan_4xarm11(),
        workload=ProfiledWorkload(profile(), total_iterations=10**6),
        policy=DualThresholdDfsPolicy(),
        config=FrameworkConfig(
            virtual_hz=500 * MHZ,
            spreader_resolution=(2, 2),
            monitored_components=("arm11_0",),
        ),
    )
    assert set(framework.sensors.sensors) == {"arm11_0"}


def test_report_before_any_window():
    framework = make_framework()
    report = framework.report()
    assert report.windows == 0
    assert report.emulated_seconds == 0.0
    assert report.peak_temperature_k == 0.0
    assert not report.workload_done


def test_sample_fields_consistent():
    framework = make_framework()
    sample = framework.step_window()
    assert sample.time_s == pytest.approx(framework.config.sampling_period_s)
    assert sample.frequency_hz == 500 * MHZ
    assert sample.total_power_w == pytest.approx(
        sum(
            framework.power_model.component_power(
                framework.workload.advance(0), frequency_hz=500 * MHZ
            ).values()
        ),
        abs=10.0,
    )
    assert sample.max_temp_k >= 300.0


def test_board_time_tracks_stretch():
    framework = make_framework()
    for _ in range(10):
        framework.step_window()
    report = framework.report()
    # 500 MHz on a 100 MHz board: 5x stretch (no congestion freezes here).
    assert report.fpga_real_seconds == pytest.approx(
        5 * report.emulated_seconds, rel=1e-6
    )
