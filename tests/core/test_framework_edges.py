"""Framework edge cases: reports, initial temperature, monitoring subsets."""

import math

import pytest

from repro.core.framework import EmulationFramework, FrameworkConfig
from repro.core.thermal_manager import DualThresholdDfsPolicy, NoManagementPolicy
from repro.core.workload_model import ActivityProfile, ProfiledWorkload
from repro.thermal.floorplan import floorplan_4xarm11
from repro.util.units import MHZ


def profile():
    utilization = {("core", i): 0.9 for i in range(4)}
    return ActivityProfile(name="p", cycles_per_iteration=1000,
                           utilization=utilization)


def make_framework(**config_overrides):
    return EmulationFramework(
        platform=None,
        floorplan=floorplan_4xarm11(),
        workload=ProfiledWorkload(profile(), total_iterations=10**8),
        policy=NoManagementPolicy(),
        config=FrameworkConfig(
            virtual_hz=500 * MHZ, spreader_resolution=(2, 2), **config_overrides
        ),
    )


def test_initial_temperature_override():
    framework = make_framework(initial_temperature_kelvin=345.0)
    assert framework.solver.max_temperature() == pytest.approx(345.0)
    sample = framework.step_window()
    assert sample.max_temp_k > 330.0  # starts warm, not from ambient


def test_monitored_subset():
    framework = EmulationFramework(
        platform=None,
        floorplan=floorplan_4xarm11(),
        workload=ProfiledWorkload(profile(), total_iterations=10**6),
        policy=DualThresholdDfsPolicy(),
        config=FrameworkConfig(
            virtual_hz=500 * MHZ,
            spreader_resolution=(2, 2),
            monitored_components=("arm11_0",),
        ),
    )
    assert set(framework.sensors.sensors) == {"arm11_0"}


def test_config_rejects_inverted_sensor_thresholds():
    with pytest.raises(ValueError, match="upper threshold"):
        FrameworkConfig(sensor_upper_kelvin=340.0, sensor_lower_kelvin=350.0)
    with pytest.raises(ValueError, match="upper threshold"):
        FrameworkConfig(sensor_upper_kelvin=350.0, sensor_lower_kelvin=350.0)


def test_config_rejects_nonpositive_ethernet_bandwidth():
    with pytest.raises(ValueError, match="Ethernet bandwidth"):
        FrameworkConfig(ethernet_bandwidth_bps=0.0)
    with pytest.raises(ValueError, match="Ethernet bandwidth"):
        FrameworkConfig(ethernet_bandwidth_bps=-1.0)


def test_config_rejects_empty_monitored_components():
    # Regression: an explicitly empty monitored set used to build a
    # sensorless framework whose first window crashed on
    # max(temps.values()) with a bare ValueError.
    with pytest.raises(ValueError, match="at least one component"):
        FrameworkConfig(monitored_components=())
    with pytest.raises(ValueError, match="at least one component"):
        FrameworkConfig(monitored_components=[])


def test_launch_rejects_floorplan_with_no_active_components():
    from repro.thermal.floorplan import Floorplan, FloorplanComponent

    filler_only = Floorplan(
        name="empty",
        width=1e-3,
        height=1e-3,
        components=[
            FloorplanComponent(name="fill0", x=0.0, y=0.0,
                               width=1e-3, height=1e-3)
        ],
    )
    with pytest.raises(ValueError, match="no active components to monitor"):
        EmulationFramework(
            platform=None,
            floorplan=filler_only,
            workload=ProfiledWorkload(profile(), total_iterations=10**6),
            config=FrameworkConfig(spreader_resolution=(2, 2)),
        )


def test_launch_rejects_unknown_monitored_names():
    with pytest.raises(ValueError, match="arm11_9"):
        make_framework(monitored_components=("arm11_0", "arm11_9"))


def test_config_rejects_nonpositive_physical_frequency():
    with pytest.raises(ValueError, match="physical board frequency"):
        FrameworkConfig(physical_hz=0.0)
    with pytest.raises(ValueError, match="physical board frequency"):
        FrameworkConfig(physical_hz=-100 * MHZ)


def test_config_rejects_nonpositive_initial_temperature():
    with pytest.raises(ValueError, match="initial temperature"):
        FrameworkConfig(initial_temperature_kelvin=0.0)
    with pytest.raises(ValueError, match="initial temperature"):
        FrameworkConfig(initial_temperature_kelvin=-273.0)
    # None (ambient) and any positive kelvin remain valid.
    assert FrameworkConfig().initial_temperature_kelvin is None
    assert FrameworkConfig(initial_temperature_kelvin=345.0)


def test_config_rejects_unknown_solver_backend():
    with pytest.raises(ValueError, match="unknown solver backend"):
        FrameworkConfig(solver_backend="warp_drive")
    with pytest.raises(ValueError, match="'name' entry"):
        FrameworkConfig(solver_backend={"params": {}})
    with pytest.raises(ValueError, match="solver_backend"):
        FrameworkConfig(solver_backend=42)
    # Live backend instances are not plain data: the config must stay
    # JSON-round-trippable and per-framework (pass instances to
    # ThermalSolver directly instead).
    from repro.thermal.backends import CachedLU

    with pytest.raises(ValueError, match="registered name"):
        FrameworkConfig(solver_backend=CachedLU())
    # Malformed dict shapes and bad params fail at config time too, not
    # when the framework is wired (possibly in a worker process).
    with pytest.raises(ValueError, match="unknown solver-backend keys"):
        FrameworkConfig(solver_backend={"name": "cached_lu", "junk": 1})
    with pytest.raises(TypeError):
        FrameworkConfig(
            solver_backend={"name": "cached_lu", "params": {"bogus": 1}}
        )
    with pytest.raises(ValueError, match="tolerance"):
        FrameworkConfig(
            solver_backend={
                "name": "cached_lu",
                "params": {"refactor_tolerance_kelvin": 0.0},
            }
        )


def test_config_solver_backend_round_trips_and_wires_solver():
    import json

    from repro.thermal.backends import CachedLU

    config = FrameworkConfig(
        solver_backend={
            "name": "cached_lu",
            "params": {"refactor_tolerance_kelvin": 0.5},
        }
    )
    rebuilt = FrameworkConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    assert rebuilt == config
    framework = make_framework(solver_backend="cached_lu")
    assert isinstance(framework.solver.backend, CachedLU)
    sample = framework.step_window()
    assert sample.max_temp_k > 0
    assert framework.solver.backend.factorizations == 1


def test_config_normalizes_sequences_to_tuples():
    config = FrameworkConfig(
        monitored_components=["arm11_0", "arm11_1"],
        spreader_resolution=[2, 2],
    )
    assert config.monitored_components == ("arm11_0", "arm11_1")
    assert config.spreader_resolution == (2, 2)
    assert FrameworkConfig().monitored_components is None


def test_config_dict_round_trip():
    import json

    config = FrameworkConfig(
        virtual_hz=500 * MHZ,
        monitored_components=("arm11_0",),
        spreader_resolution=(2, 2),
    )
    rebuilt = FrameworkConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    assert rebuilt == config
    # Partial dicts keep defaults for everything unspecified.
    assert FrameworkConfig.from_dict({"virtual_hz": 5e8}).grid_mode == "component"


def test_report_before_any_window():
    framework = make_framework()
    report = framework.report()
    assert report.windows == 0
    assert report.emulated_seconds == 0.0
    # NaN, not 0.0 K: a zero-window run has no temperature to report and
    # the old 0.0 sentinel read as a real (absurd) value downstream.
    assert math.isnan(report.peak_temperature_k)
    assert math.isnan(report.final_temperature_k)
    assert "n/a" in report.summary()
    assert not report.workload_done


def test_sample_fields_consistent():
    framework = make_framework()
    sample = framework.step_window()
    assert sample.time_s == pytest.approx(framework.config.sampling_period_s)
    assert sample.frequency_hz == 500 * MHZ
    assert sample.total_power_w == pytest.approx(
        sum(
            framework.power_model.component_power(
                framework.workload.advance(0), frequency_hz=500 * MHZ
            ).values()
        ),
        abs=10.0,
    )
    assert sample.max_temp_k >= 300.0


def test_board_time_tracks_stretch():
    framework = make_framework()
    for _ in range(10):
        framework.step_window()
    report = framework.report()
    # 500 MHz on a 100 MHz board: 5x stretch (no congestion freezes here).
    assert report.fpga_real_seconds == pytest.approx(
        5 * report.emulated_seconds, rel=1e-6
    )


# -- zero-progress stall detection -------------------------------------------


def stalled_framework(virtual_hz=10.0):
    """A framework whose 10 ms windows round to zero virtual cycles."""
    return EmulationFramework(
        platform=None,
        floorplan=floorplan_4xarm11(),
        workload=ProfiledWorkload(profile(), total_iterations=10**8),
        policy=NoManagementPolicy(),
        config=FrameworkConfig(
            virtual_hz=virtual_hz, spreader_resolution=(2, 2)
        ),
    )


def test_low_frequency_run_stalls_instead_of_spinning():
    # Regression: Vpcm.window_cycles rounds a 10 ms window at a very low
    # DFS operating point to 0 cycles, so the workload never progresses
    # while bounds_reached only consulted workload.done — an unbounded
    # run() under a never-cooling low-frequency policy spun forever.
    framework = stalled_framework()
    assert framework.vpcm.window_cycles(0.01) == 0
    report = framework.run(max_stall_windows=5)
    assert framework.windows == 5
    assert framework.stall_windows == 5
    assert report.stalled
    assert not report.workload_done
    assert "STALLED" in report.summary()
    # Emulated time still advanced — only *progress* stalled.
    assert report.emulated_seconds == pytest.approx(0.05)


def test_stall_counter_resets_when_progress_resumes():
    framework = stalled_framework()
    framework.run(max_stall_windows=3)
    assert framework.stall_windows == 3
    framework.vpcm.set_frequency(500 * MHZ, reason="test")
    framework.run(max_windows=5)
    assert framework.stall_windows == 0
    assert not framework.stalled
    assert not framework.report().stalled


def test_progressing_run_never_reports_stalled():
    framework = make_framework()
    report = framework.run(max_windows=10, max_stall_windows=2)
    assert framework.stall_windows == 0
    assert not report.stalled


def test_stalled_flag_round_trips_run_report():
    import json

    from repro.core.framework import RunReport

    framework = stalled_framework()
    report = framework.run(max_stall_windows=2)
    rebuilt = RunReport.from_dict(json.loads(json.dumps(report.to_dict())))
    assert rebuilt.stalled


def test_truncated_run_in_gated_pause_is_not_stalled():
    # A zero-progress streak cut off by an ordinary time/window bound is
    # a normal clock-gated cooling pause, not a stall: only tripping the
    # explicit stall bound sets the flag (the raw streak length stays
    # observable as stall_windows).
    framework = stalled_framework()
    report = framework.run(max_windows=5)
    assert framework.stall_windows == 5
    assert not report.stalled
    assert "STALLED" not in report.summary()
