"""VPCM tests: stretch accounting, freezes, DFS transitions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.vpcm import (
    FREEZE_ETHERNET,
    FREEZE_MEMORY,
    Vpcm,
)
from repro.util.units import MHZ


def test_stretch_factor():
    vpcm = Vpcm(physical_hz=100 * MHZ, virtual_hz=500 * MHZ)
    assert vpcm.stretch_factor == 5.0
    vpcm.set_frequency(100 * MHZ)
    assert vpcm.stretch_factor == 1.0
    vpcm.set_frequency(50 * MHZ)
    assert vpcm.stretch_factor == 1.0  # board never runs below real time


def test_paper_example_10ms_becomes_50ms():
    vpcm = Vpcm(physical_hz=100 * MHZ, virtual_hz=500 * MHZ)
    assert vpcm.window_real_seconds(0.010) == pytest.approx(0.050)
    assert vpcm.window_cycles(0.010) == 5_000_000


def test_account_window_accumulates():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    for _ in range(3):
        vpcm.account_window(0.010)
    assert vpcm.emulated_seconds == pytest.approx(0.030)
    assert vpcm.real_seconds == pytest.approx(0.150)


def test_freeze_reasons_accumulate():
    vpcm = Vpcm()
    vpcm.freeze_cycles(1000)  # memory reason by default
    vpcm.freeze_seconds(0.25, FREEZE_ETHERNET)
    vpcm.freeze_seconds(0.25, FREEZE_ETHERNET)
    assert vpcm.freezes[FREEZE_MEMORY] == pytest.approx(1000 / (100 * MHZ))
    assert vpcm.freezes[FREEZE_ETHERNET] == pytest.approx(0.5)
    assert vpcm.total_freeze_seconds() == pytest.approx(0.5 + 1e-5)
    assert vpcm.real_seconds == pytest.approx(vpcm.total_freeze_seconds())


def test_zero_freeze_not_recorded():
    vpcm = Vpcm()
    vpcm.freeze_seconds(0.0)
    assert vpcm.freezes == {}


def test_negative_inputs_rejected():
    vpcm = Vpcm()
    with pytest.raises(ValueError):
        vpcm.freeze_seconds(-1.0)
    with pytest.raises(ValueError):
        vpcm.set_frequency(-5.0)


def test_transitions_recorded():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    vpcm.set_frequency(100 * MHZ, time_s=1.0, reason="dfs")
    vpcm.set_frequency(100 * MHZ)  # no-op: no transition
    vpcm.set_frequency(500 * MHZ, time_s=2.0, reason="dfs")
    assert len(vpcm.transitions) == 2
    assert vpcm.transitions[0].from_hz == 500 * MHZ
    assert vpcm.transitions[0].to_hz == 100 * MHZ
    assert vpcm.transitions[0].time_s == 1.0


def test_attach_platform_wires_suppression(platform2):
    vpcm = Vpcm()
    vpcm.attach_platform(platform2)
    platform2.memctrls[0].clk_suppression_hook(500)
    assert vpcm.freezes[FREEZE_MEMORY] == pytest.approx(5e-6)


def test_frozen_clock_window():
    vpcm = Vpcm(virtual_hz=0.0)
    assert vpcm.window_cycles(0.01) == 0
    assert vpcm.window_real_seconds(0.01) == pytest.approx(0.01)


def test_report_shape():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    vpcm.account_window(0.01)
    report = vpcm.report()
    assert report["virtual_hz"] == 500 * MHZ
    assert report["emulated_seconds"] == pytest.approx(0.01)
    assert report["frequency_transitions"] == 0


@settings(max_examples=40, deadline=None)
@given(
    virtual_mhz=st.floats(min_value=1.0, max_value=1000.0),
    windows=st.integers(min_value=1, max_value=50),
)
def test_real_time_never_below_emulated(virtual_mhz, windows):
    """Property: the board can never run faster than real time."""
    vpcm = Vpcm(virtual_hz=virtual_mhz * 1e6)
    for _ in range(windows):
        vpcm.account_window(0.01)
    assert vpcm.real_seconds >= vpcm.emulated_seconds - 1e-12
