"""Thermal-management policy tests."""

import pytest

from repro.core.thermal_manager import (
    DualThresholdDfsPolicy,
    NoManagementPolicy,
    PerCoreDfsPolicy,
    StopGoPolicy,
)
from repro.core.vpcm import Vpcm
from repro.thermal.sensors import SensorBank
from repro.util.units import MHZ


def make_bank(**temps):
    bank = SensorBank(list(temps), upper_kelvin=350.0, lower_kelvin=340.0)
    bank.update(temps, time=0.0)
    return bank


def test_no_management_never_touches_clock():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = NoManagementPolicy()
    bank = make_bank(core0=400.0)
    assert policy.react(bank, vpcm, 1.0) == 500 * MHZ
    assert vpcm.transitions == []


def test_dual_threshold_scales_down_and_up():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = DualThresholdDfsPolicy(high_hz=500 * MHZ, low_hz=100 * MHZ)
    bank = make_bank(core0=355.0)
    assert policy.react(bank, vpcm, 1.0) == 100 * MHZ
    assert vpcm.virtual_hz == 100 * MHZ
    # Still hot in the hysteresis band: stays low.
    bank.update({"core0": 345.0}, 2.0)
    assert policy.react(bank, vpcm, 2.0) == 100 * MHZ
    # Cooled below the lower threshold: back to full speed.
    bank.update({"core0": 335.0}, 3.0)
    assert policy.react(bank, vpcm, 3.0) == 500 * MHZ
    assert policy.switches == 2


def test_dual_threshold_any_component_triggers():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = DualThresholdDfsPolicy()
    bank = make_bank(core0=330.0, mem0=351.0)
    policy.react(bank, vpcm, 0.0)
    assert vpcm.virtual_hz == 100 * MHZ


def test_dual_threshold_validates():
    with pytest.raises(ValueError):
        DualThresholdDfsPolicy(high_hz=100 * MHZ, low_hz=100 * MHZ)


def test_stop_go_halts_clock():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = StopGoPolicy(run_hz=500 * MHZ)
    bank = make_bank(core0=360.0)
    assert policy.react(bank, vpcm, 0.0) == 0.0
    assert vpcm.virtual_hz == 0.0
    bank.update({"core0": 339.0}, 1.0)
    assert policy.react(bank, vpcm, 1.0) == 500 * MHZ


def test_per_core_policy_throttles_only_hot_core():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = PerCoreDfsPolicy(
        {"arm11_0": 0, "arm11_1": 1}, high_hz=500 * MHZ, low_hz=100 * MHZ
    )
    bank = make_bank(arm11_0=360.0, arm11_1=320.0)
    policy.react(bank, vpcm, 0.0)
    freqs = policy.core_frequencies()
    assert freqs[0] == 100 * MHZ
    assert freqs[1] == 500 * MHZ
    # Shared fabric keeps the global clock.
    assert vpcm.virtual_hz == 500 * MHZ
    # Core 0 cools: restored.
    bank.update({"arm11_0": 335.0}, 1.0)
    policy.react(bank, vpcm, 1.0)
    assert policy.core_frequencies()[0] == 500 * MHZ


def test_per_core_policy_ignores_unknown_sensors():
    vpcm = Vpcm()
    policy = PerCoreDfsPolicy({"ghost": 0})
    bank = make_bank(core0=360.0)
    policy.react(bank, vpcm, 0.0)
    assert policy.core_frequencies()[0] == policy.high_hz


def test_per_core_policy_bind_fails_fast_on_missing_sensors():
    # Regression: a typo'd core_components map used to silently
    # `continue` in react(), running the platform effectively unmanaged.
    # Binding against the framework's sensor bank must list every
    # missing name instead.
    from repro.core.framework import EmulationFramework, FrameworkConfig
    from repro.core.workload_model import ActivityProfile, ProfiledWorkload
    from repro.thermal.floorplan import floorplan_4xarm11

    policy = PerCoreDfsPolicy({"arm11_0": 0, "arm99_1": 1, "ghost": 2})
    with pytest.raises(ValueError) as excinfo:
        EmulationFramework(
            platform=None,
            floorplan=floorplan_4xarm11(),
            workload=ProfiledWorkload(
                ActivityProfile(
                    name="p",
                    cycles_per_iteration=1000,
                    utilization={("core", 0): 0.9},
                ),
                total_iterations=10**6,
            ),
            policy=policy,
            config=FrameworkConfig(
                virtual_hz=500 * MHZ, spreader_resolution=(2, 2)
            ),
        )
    message = str(excinfo.value)
    assert "arm99_1" in message and "ghost" in message
    assert "arm11_0" not in message.split("monitored")[0]


def test_per_core_policy_validates():
    with pytest.raises(ValueError):
        PerCoreDfsPolicy({}, high_hz=1.0, low_hz=2.0)


def test_global_policies_have_no_core_overrides():
    assert NoManagementPolicy().core_frequencies() is None
    assert DualThresholdDfsPolicy().core_frequencies() is None
    assert StopGoPolicy().core_frequencies() is None
