"""Render-path coverage: ThermalTrace CSV/chart output and the
RunReport / ScenarioResult summaries the report pipeline depends on."""



from repro.core.framework import RunReport
from repro.core.stats import ThermalTrace, TraceSample
from repro.scenario.runner import ScenarioResult


def trace_of(temps, freqs=None, components=("core0", "core1")):
    freqs = freqs or [500e6] * len(temps)
    trace = ThermalTrace()
    for index, (temp, freq) in enumerate(zip(temps, freqs)):
        trace.append(
            TraceSample(
                time_s=0.01 * (index + 1),
                frequency_hz=freq,
                total_power_w=1.5,
                max_temp_k=float(temp),
                component_temps={c: float(temp) - k for k, c in enumerate(components)},
            )
        )
    return trace


# -- ThermalTrace.to_csv -----------------------------------------------------


def test_csv_header_sorts_components():
    csv = trace_of([310.0], components=("zeta", "alpha")).to_csv()
    assert csv.splitlines()[0] == (
        "time_s,frequency_hz,total_power_w,max_temp_k,alpha,zeta"
    )


def test_csv_row_formatting():
    csv = trace_of([310.5]).to_csv()
    row = csv.splitlines()[1].split(",")
    assert row[0] == "0.010000"        # time: 6 decimals
    assert row[1] == "500000000"       # frequency: integral
    assert row[2] == "1.500000"        # power: 6 decimals
    assert row[3] == "310.500"         # temperature: 3 decimals
    assert row[4] == "310.500" and row[5] == "309.500"


def test_csv_missing_component_is_nan():
    trace = trace_of([310.0], components=("core0",))
    trace.append(
        TraceSample(
            time_s=0.02,
            frequency_hz=500e6,
            total_power_w=1.5,
            max_temp_k=311.0,
            component_temps={},  # this window lost its component reading
        )
    )
    last = trace.to_csv().splitlines()[-1]
    assert last.endswith("nan")


def test_csv_round_trips_row_count():
    trace = trace_of([300.0, 310.0, 320.0])
    lines = trace.to_csv().strip().splitlines()
    assert len(lines) == 1 + len(trace)


# -- ThermalTrace.ascii_chart ------------------------------------------------


def test_ascii_chart_geometry():
    chart = trace_of([300.0, 350.0, 325.0]).ascii_chart(width=30, height=8)
    lines = chart.splitlines()
    assert len(lines) == 8 + 2  # rows + axis + time labels
    # Every temperature row is "label |" + exactly `width` columns.
    for line in lines[:8]:
        label, _, cells = line.partition("|")
        assert label.endswith("K ")
        assert len(cells) == 30
    assert lines[8].strip().startswith("+")


def test_ascii_chart_extremes_hit_first_and_last_rows():
    chart = trace_of([300.0, 400.0]).ascii_chart(width=10, height=5)
    lines = chart.splitlines()
    assert "*" in lines[0]   # the 400 K peak lands on the top row
    assert "*" in lines[4]   # the 300 K start on the bottom row
    assert lines[0].startswith("  400.0K")
    assert lines[4].startswith("  300.0K")


def test_ascii_chart_title_and_time_axis():
    chart = trace_of([300.0, 320.0]).ascii_chart(width=40, height=4, title="demo")
    lines = chart.splitlines()
    assert lines[0] == "demo"
    assert "time (s)" in lines[-1]
    assert "0.01" in lines[-1] and "0.02" in lines[-1]


def test_trace_digest_matches_accessors():
    trace = trace_of([300.0, 350.0, 340.0])
    digest = trace.digest()
    assert digest == {
        "samples": 3,
        "peak_temperature_k": 350.0,
        "final_temperature_k": 340.0,
    }


# -- RunReport.summary -------------------------------------------------------


def make_report(**overrides):
    kwargs = dict(
        emulated_seconds=4.0,
        fpga_real_seconds=20.0,
        windows=400,
        workload_done=True,
        peak_temperature_k=384.8,
        final_temperature_k=380.1,
        freeze_breakdown={},
        frequency_transitions=6,
        dispatcher={},
    )
    kwargs.update(overrides)
    return RunReport(**kwargs)


def test_run_report_summary_core_line():
    text = make_report().summary()
    assert "emulated 4.00 sec (400 windows, workload done)" in text
    assert "20.00 sec of board time" in text
    assert "peak 384.8 K | final 380.1 K | 6 DFS transitions" in text


def test_run_report_summary_unfinished_workload():
    assert "workload unfinished" in make_report(workload_done=False).summary()


def test_run_report_summary_optional_lines():
    bare = make_report().summary()
    assert "instructions" not in bare
    assert "clock freezes" not in bare

    text = make_report(
        instructions=8.5e8,
        freeze_breakdown={"ethernet": 0.25, "memory": 0.1},
    ).summary()
    assert "instructions 8.5e+08" in text
    # Freeze reasons are sorted and carry their seconds.
    assert "clock freezes: ethernet 0.25 s, memory 0.1 s" in text


def test_run_report_summary_duration_formats():
    text = make_report(emulated_seconds=125.0, fpga_real_seconds=0.5).summary()
    assert "2' 05 sec" in text
    assert "500.00 ms" in text


# -- ScenarioResult.summary --------------------------------------------------


def test_scenario_result_summary_ok():
    result = ScenarioResult(
        name="demo", index=0, report=make_report(), wall_seconds=1.234
    )
    text = result.summary()
    assert text.startswith("demo: emulated 4.00 sec")
    assert "wall 1.23 s" in text


def test_scenario_result_summary_failure():
    result = ScenarioResult(
        name="demo", index=0, error="ValueError: unknown floorplan 'missing'"
    )
    assert result.summary() == (
        "demo: FAILED — ValueError: unknown floorplan 'missing'"
    )
