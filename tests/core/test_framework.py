"""Closed-loop framework tests (the paper's co-emulation loop)."""

import pytest

from repro.core.framework import EmulationFramework, FrameworkConfig
from repro.core.thermal_manager import (
    DualThresholdDfsPolicy,
    NoManagementPolicy,
    StopGoPolicy,
)
from repro.core.workload_model import ActivityProfile, ProfiledWorkload
from repro.thermal.floorplan import floorplan_4xarm11
from repro.util.units import MHZ, MS


def hot_profile(cycles=1000):
    """A profile that keeps all four ARM11 cores near full power."""
    utilization = {}
    for i in range(4):
        utilization[("core", i)] = 0.98
        utilization[("icache", i)] = 0.5
        utilization[("dcache", i)] = 0.3
        utilization[("private_mem", i)] = 0.2
    utilization[("shared_mem", None)] = 0.2
    return ActivityProfile(
        name="hot", cycles_per_iteration=cycles, utilization=utilization,
        instructions_per_iteration=900,
    )


def make_framework(policy, iterations=40_000_000, **config_overrides):
    config = FrameworkConfig(
        virtual_hz=500 * MHZ,
        sampling_period_s=10 * MS,
        spreader_resolution=(2, 2),
        **config_overrides,
    )
    workload = ProfiledWorkload(hot_profile(), total_iterations=iterations)
    return EmulationFramework(
        platform=None,
        floorplan=floorplan_4xarm11(),
        workload=workload,
        policy=policy,
        config=config,
    )


def test_config_validation():
    with pytest.raises(ValueError):
        FrameworkConfig(sampling_period_s=0)
    with pytest.raises(ValueError):
        FrameworkConfig(virtual_hz=0)


def test_needs_workload_without_platform():
    with pytest.raises(ValueError):
        EmulationFramework(platform=None, floorplan=floorplan_4xarm11())


def test_unmanaged_run_overheats():
    framework = make_framework(NoManagementPolicy())
    report = framework.run(max_emulated_seconds=25.0)
    assert report.peak_temperature_k > 360.0
    assert report.frequency_transitions == 0
    assert report.windows == 2500


def test_dfs_clamps_temperature_near_threshold():
    framework = make_framework(DualThresholdDfsPolicy(500 * MHZ, 100 * MHZ))
    report = framework.run(max_emulated_seconds=25.0)
    assert report.peak_temperature_k < 352.0  # held at the 350 K threshold
    assert report.frequency_transitions > 2
    # The throttled run completes less work per emulated second.
    duty_low = framework.trace.duty_cycle(100 * MHZ)
    assert duty_low > 0.2


def test_dfs_run_is_slower_but_cooler_than_unmanaged():
    managed = make_framework(DualThresholdDfsPolicy(), iterations=2_000_000)
    unmanaged = make_framework(NoManagementPolicy(), iterations=2_000_000)
    managed_report = managed.run(max_emulated_seconds=60.0)
    unmanaged_report = unmanaged.run(max_emulated_seconds=60.0)
    assert managed_report.peak_temperature_k < unmanaged_report.peak_temperature_k
    assert managed_report.emulated_seconds >= unmanaged_report.emulated_seconds


def test_stop_go_freezes_progress():
    framework = make_framework(StopGoPolicy(run_hz=500 * MHZ))
    report = framework.run(max_emulated_seconds=25.0)
    assert report.peak_temperature_k < 355.0
    assert framework.trace.duty_cycle(0.0) > 0.0  # some windows fully gated


def test_trace_is_consistent():
    framework = make_framework(DualThresholdDfsPolicy())
    framework.run(max_emulated_seconds=5.0)
    trace = framework.trace
    times = trace.times()
    assert all(b > a for a, b in zip(times, times[1:]))
    assert len(trace) == framework.windows
    sample = trace.samples[0]
    assert sample.total_power_w > 0
    assert set(sample.component_temps) == {
        c.name for c in framework.floorplan.active_components()
    }


def test_ethernet_congestion_freezes_vpcm():
    # A starved link (10 kbit/s) with a tiny buffer must force freezes.
    framework = make_framework(
        NoManagementPolicy(),
        ethernet_bandwidth_bps=10e3,
        bram_capacity_bytes=1024,
    )
    # Give the sniffer bank something to stream: attach a platform-less
    # bank is empty, so emulate payload via a fake sniffer.
    class _FakeSniffer:
        enabled = True
        name = "fake"
        fpga_overhead_percent = 0.3

        def window_payload_bytes(self):
            return 5000

        def collect(self):
            return {}

    framework.sniffer_bank.add(_FakeSniffer())
    report = framework.run(max_windows=20)
    assert report.freeze_breakdown.get("ethernet-congestion", 0.0) > 0.0
    assert report.fpga_real_seconds > 20 * 0.05  # stretched + frozen


def test_run_bounded_by_windows():
    framework = make_framework(NoManagementPolicy())
    report = framework.run(max_windows=7)
    assert report.windows == 7
    assert not report.workload_done


def test_workload_completion_stops_run():
    framework = make_framework(NoManagementPolicy(), iterations=10_000)
    report = framework.run(max_emulated_seconds=10.0)
    assert report.workload_done
    assert report.emulated_seconds < 1.0


def test_direct_workload_end_to_end(platform2):
    """Short direct (instruction-level) co-emulation with a real program."""
    from repro.mpsoc.asm import assemble
    from repro.thermal.floorplan import floorplan_4xarm7

    program = assemble(
        """
        main:   li   r1, 2000
        loop:   addi r1, r1, -1
                bgt  r1, r0, loop
                halt
        """
    )
    platform2.load_program(0, program)
    platform2.load_program(1, program)
    config = FrameworkConfig(
        virtual_hz=100 * MHZ,
        sampling_period_s=20e-6,  # tiny windows keep the test fast
        spreader_resolution=(2, 2),
    )
    framework = EmulationFramework(
        platform=platform2,
        floorplan=floorplan_4xarm7(),
        policy=NoManagementPolicy(),
        config=config,
    )
    report = framework.run(max_windows=50)
    assert report.workload_done
    assert report.instructions > 4000
    assert framework.dispatcher.stats()["bytes_sent"] > 0
    assert report.peak_temperature_k > 300.0
