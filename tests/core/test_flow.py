"""Design-flow (Figure 5) tests."""

import pytest

from repro.core.flow import EmulationFlow, FlowError, SynthesisModel
from repro.thermal.floorplan import floorplan_4xarm7
from repro.workloads.matrix import matrix_programs
from tests.conftest import small_config


def test_synthesis_model_matches_paper_anchor():
    model = SynthesisModel()
    # 8 processors + 20 extra modules: the paper reports 10-12 hours.
    seconds = model.full_synthesis_seconds(8, 20)
    assert 10 * 3600 <= seconds <= 12 * 3600
    assert model.resynthesis_seconds() < 3600
    assert model.application_compile_seconds(2) == pytest.approx(360.0)


def test_flow_phases_in_order():
    flow = EmulationFlow()
    flow.define_hw(small_config(2), programs=matrix_programs(2, n=4))
    flow.define_floorplan(floorplan_4xarm7())
    report = flow.upload()
    assert 0 < report["percent"] <= 100
    framework = flow.launch()
    result = framework.run(max_windows=3)
    # The tiny matrix kernel fits in the first 10 ms window.
    assert result.workload_done
    assert result.windows >= 1
    assert flow.total_build_seconds() > 0


def test_flow_rejects_out_of_order_use():
    flow = EmulationFlow()
    with pytest.raises(FlowError):
        flow.define_floorplan(floorplan_4xarm7())
    with pytest.raises(FlowError):
        flow.upload()
    with pytest.raises(FlowError):
        flow.launch()


def test_flow_rejects_designs_that_do_not_fit():
    from repro.mpsoc import generate_mesh

    flow = EmulationFlow()
    # A 4x4 mesh of switches blows through the V2VP30 capacity.
    big = small_config(8, interconnect="noc", noc=generate_mesh("big", 4, 4))
    flow.define_hw(big)
    flow.define_floorplan(floorplan_4xarm7())
    with pytest.raises(FlowError, match="does not fit"):
        flow.upload()


def test_flow_build_log_accumulates():
    flow = EmulationFlow()
    flow.define_hw(small_config(1), programs=matrix_programs(1, n=4))
    phases = [name for name, _ in flow.build_log]
    assert phases == ["synthesis", "application-compile"]
