"""The docs tree must not rot: every relative link resolves, and the
CI link checker actually catches breakage."""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).parent.parent

spec = importlib.util.spec_from_file_location(
    "check_links", REPO_ROOT / "tools" / "check_links.py"
)
check_links = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_links)


def test_docs_tree_exists():
    for page in (
        "architecture.md",
        "reproducing-the-paper.md",
        "scenarios.md",
        "solver-backends.md",
    ):
        assert (REPO_ROOT / "docs" / page).is_file(), f"docs/{page} missing"


def test_all_relative_links_resolve():
    broken = list(check_links.broken_links(REPO_ROOT))
    assert not broken, [f"{doc}: {target}" for doc, target in broken]


def test_checker_catches_broken_link(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "see [missing](docs/nope.md) and [ok](docs/ok.md)\n"
        "```\n[inside a code block](docs/ignored.md)\n```\n"
        "[anchor only](#section) and [web](https://example.com/x.md)\n"
    )
    (tmp_path / "docs" / "ok.md").write_text("fine\n")
    broken = list(check_links.broken_links(tmp_path))
    assert [target for _doc, target in broken] == ["docs/nope.md"]
    assert check_links.main([str(tmp_path)]) == 1


def test_checker_passes_clean_tree(tmp_path):
    (tmp_path / "README.md").write_text("no links here\n")
    assert check_links.main([str(tmp_path)]) == 0
