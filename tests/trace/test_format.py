"""TraceArchive: save/load round-trip and schema validation."""

import json

import numpy as np
import pytest

from repro.trace.format import (
    TRACE_FORMAT_VERSION,
    TraceArchive,
    TraceFormatError,
    load_archive,
    sidecar_path,
)


def small_archive(windows=5, components=("cpu0", "cpu1", "mem")):
    rng = np.arange(windows * len(components), dtype=float)
    return TraceArchive(
        power_w=rng.reshape(windows, len(components)) * 0.01,
        frequency_hz=np.full(windows, 1e8),
        time_s=np.arange(1, windows + 1) * 0.01,
        component_temps_k=300.0
        + rng.reshape(windows, len(components)) * 0.1,
        metadata={
            "format_version": TRACE_FORMAT_VERSION,
            "components": list(components),
            "sampling_period_s": 0.01,
            "scenario_digest": "a" * 64,
        },
    )


def test_round_trip_preserves_arrays_and_metadata(tmp_path):
    archive = small_archive()
    path = archive.save(tmp_path / "run.npz")
    loaded = load_archive(path)
    np.testing.assert_array_equal(loaded.power_w, archive.power_w)
    np.testing.assert_array_equal(loaded.frequency_hz, archive.frequency_hz)
    np.testing.assert_array_equal(loaded.time_s, archive.time_s)
    np.testing.assert_array_equal(
        loaded.component_temps_k, archive.component_temps_k
    )
    assert loaded.metadata == archive.metadata
    assert loaded.components == ("cpu0", "cpu1", "mem")
    assert loaded.windows == 5
    assert loaded.sampling_period_s == 0.01


def test_save_appends_npz_suffix_and_writes_sidecar(tmp_path):
    path = small_archive().save(tmp_path / "run")
    assert path.suffix == ".npz"
    side = sidecar_path(path)
    assert side.is_file()
    assert json.loads(side.read_text())["format_version"] == TRACE_FORMAT_VERSION


def test_lone_npz_loads_from_embedded_metadata(tmp_path):
    archive = small_archive()
    path = archive.save(tmp_path / "run.npz")
    sidecar_path(path).unlink()
    loaded = load_archive(path)
    assert loaded.metadata == archive.metadata


def test_missing_archive_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_archive(tmp_path / "absent.npz")


def test_unsupported_version_rejected(tmp_path):
    archive = small_archive()
    archive.metadata["format_version"] = TRACE_FORMAT_VERSION + 1
    with pytest.raises(TraceFormatError, match="not supported"):
        archive.validate()


def test_missing_metadata_keys_rejected():
    archive = small_archive()
    del archive.metadata["components"]
    with pytest.raises(TraceFormatError, match="components"):
        archive.validate()


def test_shape_mismatch_rejected():
    archive = small_archive()
    archive.frequency_hz = archive.frequency_hz[:-1]
    with pytest.raises(TraceFormatError, match="frequency_hz"):
        archive.validate()
    archive = small_archive()
    archive.metadata["components"] = ["cpu0", "cpu1"]  # width mismatch
    with pytest.raises(TraceFormatError, match="power_w"):
        archive.validate()


def test_duplicate_components_rejected():
    archive = small_archive(components=("cpu0", "cpu0", "mem"))
    with pytest.raises(TraceFormatError, match="unique"):
        archive.validate()


def test_non_monotonic_time_rejected():
    archive = small_archive()
    archive.time_s[2] = archive.time_s[1]
    with pytest.raises(TraceFormatError, match="increasing"):
        archive.validate()


def test_tampered_sidecar_fails_validation_on_load(tmp_path):
    archive = small_archive()
    path = archive.save(tmp_path / "run.npz")
    side = sidecar_path(path)
    meta = json.loads(side.read_text())
    meta["components"] = meta["components"][:-1]
    side.write_text(json.dumps(meta))
    with pytest.raises(TraceFormatError):
        load_archive(path)


def test_zero_window_archive_is_valid(tmp_path):
    archive = small_archive(windows=0)
    loaded = load_archive(archive.save(tmp_path / "empty.npz"))
    assert loaded.windows == 0
