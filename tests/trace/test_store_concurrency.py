"""Concurrent writers on the disk TraceStore (the farm's shared cache).

Regression for the racing-writer bug: two processes storing the same
digest used to share one fixed ``<name>.tmp`` temp file — the second
writer truncated it mid-write, so the surviving archive could be a
corrupt interleaving.  Saves now go through uniquely named temp files
plus ``os.replace``, and shard indexes update under a per-shard file
lock.
"""

import json
import multiprocessing

import pytest

from repro.trace import TraceStore, load_archive, record
from repro.util.locking import FileLock, atomic_write_json, unique_tmp_path


def _fork_ctx():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("no fork start method on this platform")
    return multiprocessing.get_context("fork")


def _put_when_released(archive_path, store_root, barrier, rounds):
    store = TraceStore(store_root)
    archive = load_archive(archive_path)
    for _ in range(rounds):
        barrier.wait()
        store.put(archive)


def test_overlapping_same_digest_writes_stay_valid(tmp_path, stress_scenario):
    """N processes repeatedly store the identical digest in lockstep;
    the surviving archive must always load and validate."""
    _, _, archive = record(stress_scenario)
    source = archive.save(tmp_path / "source.npz")
    store_root = tmp_path / "store"
    ctx = _fork_ctx()
    writers, rounds = 3, 4
    barrier = ctx.Barrier(writers)
    processes = [
        ctx.Process(
            target=_put_when_released,
            args=(str(source), str(store_root), barrier, rounds),
        )
        for _ in range(writers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0
    store = TraceStore(store_root)
    assert len(store) == 1
    loaded = store.get(archive.scenario_digest)
    assert loaded.windows == archive.windows
    assert loaded.metadata == archive.metadata
    # No orphaned temp files survive the stampede.
    assert not list(store_root.rglob("*.tmp"))


def test_unique_tmp_paths_never_collide(tmp_path):
    target = tmp_path / "archive.npz"
    names = {unique_tmp_path(target).name for _ in range(64)}
    assert len(names) == 64
    assert all(name.endswith(".tmp") for name in names)


def test_atomic_write_replaces_whole_file(tmp_path):
    path = tmp_path / "index.json"
    atomic_write_json(path, {"a": 1})
    atomic_write_json(path, {"b": 2})
    assert json.loads(path.read_text()) == {"b": 2}
    assert not list(tmp_path.glob("*.tmp"))


def test_file_lock_excludes_other_holders(tmp_path):
    lock_path = tmp_path / "x.lock"
    with FileLock(lock_path):
        contender = FileLock(lock_path, timeout=0.1, poll_s=0.01)
        with pytest.raises(TimeoutError):
            contender.acquire()
    # Released: a fresh holder acquires immediately.
    with FileLock(lock_path, timeout=0.5):
        pass


# -- per-shard index files ---------------------------------------------------


def test_put_maintains_shard_index(tmp_path, stress_scenario):
    _, _, archive = record(stress_scenario)
    store = TraceStore(tmp_path / "store")
    digest = store.put(archive)
    index_file = store.root / digest[:2] / "index.json"
    assert index_file.is_file()
    index = json.loads(index_file.read_text())
    assert digest in index
    assert index[digest]["windows"] == archive.windows
    [(entry_digest, meta)] = store.entries()
    assert entry_digest == digest
    assert meta["scenario"]["name"] == stress_scenario.name


def test_entries_heal_missing_index(tmp_path, stress_scenario):
    """A legacy store (archives without indexes) is healed on first
    enumeration instead of failing or staying slow forever."""
    _, _, archive = record(stress_scenario)
    store = TraceStore(tmp_path / "store")
    digest = store.put(archive)
    index_file = store.root / digest[:2] / "index.json"
    index_file.unlink()
    [(entry_digest, meta)] = store.entries()
    assert entry_digest == digest
    assert meta["windows"] == archive.windows
    assert index_file.is_file()  # healed for the next caller


def test_torn_index_falls_back_to_archives(tmp_path, stress_scenario):
    _, _, archive = record(stress_scenario)
    store = TraceStore(tmp_path / "store")
    digest = store.put(archive)
    (store.root / digest[:2] / "index.json").write_text("{ not json")
    [(entry_digest, _)] = store.entries()
    assert entry_digest == digest
    assert store.get(digest) is not None
