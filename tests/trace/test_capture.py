"""PowerTraceCapture: the dispatcher-boundary recording hook."""

import numpy as np
import pytest

from repro.trace import PowerTraceCapture, record, scenario_trace_digest
from tests.trace.conftest import short_scenario


def test_record_returns_live_run_plus_archive(stress_scenario):
    framework, report, archive = record(stress_scenario)
    assert archive.windows == report.windows == framework.windows
    assert archive.components == framework.network.component_names
    assert archive.sampling_period_s == (
        framework.config.sampling_period_s
    )
    # Every window's injected power is reproducible from the archive:
    # injection @ recorded watts == what the live network saw last.
    last = archive.power_w[-1]
    np.testing.assert_array_equal(
        framework.network._injection @ last, framework.network.power
    )


def test_archive_metadata_carries_provenance(stress_scenario):
    framework, report, archive = record(stress_scenario)
    meta = archive.metadata
    assert meta["scenario"]["name"] == stress_scenario.name
    assert meta["scenario_digest"] == scenario_trace_digest(stress_scenario)
    assert meta["report"] == report.to_dict()
    assert meta["trace_digest"] == framework.trace.digest()
    assert meta["floorplan"] == framework.floorplan.name


def test_capture_sees_every_window_under_stride():
    scenario = short_scenario()
    scenario.config.trace_stride = 7
    framework, report, archive = record(scenario)
    assert archive.windows == report.windows  # not decimated
    assert len(framework.trace) < report.windows  # the trace is


def test_recorded_times_and_frequencies_match_trace(stress_scenario):
    framework, _, archive = record(stress_scenario)
    times = [s.time_s for s in framework.trace.samples]
    np.testing.assert_array_equal(archive.time_s, np.array(times))
    freqs = [s.frequency_hz for s in framework.trace.samples]
    np.testing.assert_array_equal(archive.frequency_hz, np.array(freqs))


def test_recorded_temps_match_trace_samples(stress_scenario):
    framework, _, archive = record(stress_scenario)
    sample = framework.trace.samples[3]
    row = archive.component_temps_k[3]
    for name, value in sample.component_temps.items():
        assert row[archive.components.index(name)] == value


def test_capture_on_unknown_component_fails_loudly(stress_scenario):
    framework = stress_scenario.build()
    capture = framework.attach_capture(PowerTraceCapture())
    framework.step_window()
    sample = framework.trace.samples[-1]
    with pytest.raises(KeyError, match="no floorplan component"):
        capture.on_window(framework, {"bogus": 1.0}, 1e8, sample)


def test_zero_window_recording_saves_strict_json(tmp_path):
    """Regression: a zero-window run's NaN peak must not leak a bare
    NaN token into the JSON metadata sidecar."""
    import json

    from repro.trace.format import sidecar_path

    scenario = short_scenario()
    scenario.max_emulated_seconds = None
    scenario.max_windows = 0
    _, report, archive = record(scenario)
    assert report.windows == 0
    path = archive.save(tmp_path / "empty.npz")
    meta = json.loads(
        sidecar_path(path).read_text(), parse_constant=_reject_nan
    )
    assert meta["report"]["peak_temperature_k"] is None
    assert meta["trace_digest"]["peak_temperature_k"] is None


def _reject_nan(token):
    raise AssertionError(f"non-strict JSON token {token!r} in sidecar")


def test_unscripted_capture_gets_content_digest(stress_scenario):
    framework = stress_scenario.build()
    capture = framework.attach_capture(PowerTraceCapture())
    for _ in range(5):
        framework.step_window()
    archive = capture.to_archive(framework)  # no scenario attached
    assert archive.scenario is None
    assert len(archive.scenario_digest) == 64
