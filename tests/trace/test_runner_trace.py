"""Runner + trace store: transparent replay, fan-out, grouping, stride."""

import pytest

from repro.scenario import Runner
from repro.scenario.sweep import Variant, sweep
from repro.trace import TraceStore, record, scenario_trace_digest
from tests.trace.conftest import short_scenario


def thermal_sweep(count=4, seconds=1.0):
    """`count` open-loop variants differing only in thermal-side knobs."""
    base = short_scenario(seconds=seconds)
    resolutions = [Variant(f"{n}x{n}", [n, n]) for n in range(6, 6 + count)]
    return sweep(
        base,
        {
            "config.grid_mode": ["uniform"],
            "config.die_resolution": resolutions,
        },
    )


def test_run_records_leader_and_replays_followers():
    variants = thermal_sweep(4)
    store = TraceStore()
    results = Runner(trace_store=store).run(variants)
    assert all(r.ok for r in results)
    assert [r.replayed for r in results] == [False, True, True, True]
    assert len(store) == 1  # one digest, one recording
    # Each variant still solved its own grid.
    cells = [r.report.extras["thermal_cells"] for r in results]
    assert len(set(cells)) == 4


def test_run_replays_from_a_prepopulated_store(tmp_path, stress_scenario):
    _, _, archive = record(stress_scenario)
    store = TraceStore(tmp_path)
    store.put(archive)
    results = Runner(trace_store=store).run([stress_scenario])
    assert results[0].replayed
    assert results[0].report.extras["replay"]["source"] == str(tmp_path)


def test_runner_accepts_store_path_and_true(tmp_path):
    assert Runner(trace_store=str(tmp_path)).trace_store.root == tmp_path
    assert Runner(trace_store=True).trace_store.in_memory


def test_pool_workers_record_into_the_store(tmp_path):
    variants = thermal_sweep(3)
    results = Runner(workers=2, trace_store=str(tmp_path)).run(variants)
    assert all(r.ok for r in results)
    assert sum(r.replayed for r in results) == 2
    assert len(TraceStore(tmp_path)) == 1


def test_replay_matches_live_results():
    variants = thermal_sweep(3)
    live = Runner().run(variants)
    replayed = Runner(trace_store=TraceStore()).run(variants)
    for a, b in zip(live, replayed):
        assert a.report.windows == b.report.windows
        assert abs(
            a.report.peak_temperature_k - b.report.peak_temperature_k
        ) < 1e-6


def test_reactive_scenarios_never_share_recordings():
    base = short_scenario("matrix_tm_dfs")
    variants = sweep(
        base,
        {"config.die_resolution": [Variant("8x8", [8, 8]),
                                   Variant("10x10", [10, 10])],
         "config.grid_mode": ["uniform"]},
    )
    store = TraceStore()
    results = Runner(trace_store=store).run(variants)
    assert all(r.ok for r in results)
    assert not any(r.replayed for r in results)
    assert len(store) == 2  # each closed-loop variant recorded itself
    # ... but an exact re-run of either replays.
    again = Runner(trace_store=store).run(variants)
    assert all(r.replayed for r in again)


def test_run_batched_mixes_live_and_replay_members():
    variants = thermal_sweep(3)
    store = TraceStore()
    results = Runner(trace_store=store).run_batched(variants)
    assert all(r.ok for r in results)
    assert [r.replayed for r in results] == [False, True, True]
    serial = Runner().run_batched(variants)
    for a, b in zip(serial, results):
        assert abs(
            a.report.peak_temperature_k - b.report.peak_temperature_k
        ) < 1e-6


def test_run_batched_replays_store_hits_in_shared_groups(stress_scenario):
    store = TraceStore()
    first = Runner(trace_store=store).run_batched([stress_scenario])
    assert not first[0].replayed
    again = Runner(trace_store=store).run_batched(
        [stress_scenario, short_scenario(name="twin")]
    )
    assert all(r.replayed for r in again)
    assert all(r.ok for r in again)


def test_follower_falls_back_to_live_when_leader_fails():
    good = short_scenario(name="good")
    bad = short_scenario(name="bad")
    # Leader fails on the thermal side (bogus backend dict params) while
    # sharing the follower's emulation digest... a bad backend fails at
    # config validation, so instead poison the leader's floorplan.
    bad.floorplan = "no_such_plan"
    results = Runner(trace_store=TraceStore()).run([bad, good])
    assert not results[0].ok
    assert results[1].ok  # ran live despite the failed leader


def test_trace_stride_bounds_captured_samples():
    scenario = short_scenario(seconds=2.0)
    full = Runner(capture_trace=True).run([scenario])[0]
    strided = Runner(capture_trace=True, trace_stride=10).run([scenario])[0]
    assert len(strided.trace) == -(-len(full.trace) // 10)  # ceil
    assert strided.report.windows == full.report.windows
    assert (
        strided.report.peak_temperature_k == full.report.peak_temperature_k
    )
    assert (
        strided.report.final_temperature_k == full.report.final_temperature_k
    )


def test_trace_stride_validation():
    with pytest.raises(ValueError, match="trace_stride"):
        Runner(trace_stride=0)
    from repro.core.framework import FrameworkConfig

    with pytest.raises(ValueError, match="trace_stride"):
        FrameworkConfig(trace_stride=-3)
    with pytest.raises(ValueError, match="trace_stride"):
        FrameworkConfig(trace_stride=1.5)


def test_trace_stride_roundtrips_through_config():
    from repro.core.framework import FrameworkConfig

    config = FrameworkConfig(trace_stride=25)
    assert FrameworkConfig.from_dict(config.to_dict()).trace_stride == 25


# -- the structure-content group key (regression) ---------------------------


def test_batched_grouping_keys_on_structure_content_not_identity():
    """Two structurally identical frameworks must co-step in one group
    even when cache eviction gave them distinct grid objects."""
    from repro.scenario.runner import _group_key
    from repro.thermal.rc_network import clear_assembly_cache

    a = short_scenario(name="a")
    b = short_scenario(name="b")
    fa = a.build()
    clear_assembly_cache()  # simulates mid-batch eviction
    fb = b.build()
    assert fa.grid is not fb.grid  # identity-keyed grouping would split
    assert _group_key(fa) == _group_key(fb)
    # End to end: one co-step group means one shared wall-clock float.
    builds = [a, b]
    clear_assembly_cache()
    results = Runner().run_batched(builds)
    assert results[0].wall_seconds == results[1].wall_seconds


def test_custom_properties_networks_fall_back_to_identity_grouping():
    from repro.scenario.runner import _group_key
    from repro.thermal.calibration import uniform_floorplan
    from repro.thermal.properties import ThermalProperties
    from repro.thermal.rc_network import network_for

    net = network_for(uniform_floorplan(), properties=ThermalProperties())
    assert net.structure_key is None

    class Shim:
        network = net
        grid = net.grid

        class config:
            sampling_period_s = 0.01

    key_a = _group_key(Shim())
    assert key_a[0][0] == "grid-id"


def test_scenario_digest_unchanged_by_runner_stride_override():
    """The runner's stride override must not split open-loop digests."""
    scenario = short_scenario()
    runner = Runner(trace_stride=5, trace_store=TraceStore())
    strided_dict = runner._scenario_dict(scenario, 0)
    assert scenario_trace_digest(strided_dict) == scenario_trace_digest(
        scenario
    )
