"""Record -> replay fidelity and the thermal-side override knobs."""

import numpy as np
import pytest

from repro.core.framework import FrameworkConfig
from repro.thermal.properties import (
    SILICON_VOLUMETRIC_HEAT,
    Material,
    ThermalProperties,
)
from repro.trace import ReplaySource, record, replay
from tests.trace.conftest import short_scenario

#: (preset, solver backend) grid of the fidelity property test: the
#: paper's default preset family across the registered serial backends.
FIDELITY_CASES = [
    ("matrix_tm_unmanaged", "sparse_be"),
    ("matrix_tm_unmanaged", "cached_lu"),
    ("matrix_tm_dfs", "sparse_be"),
    ("matrix_tm_dfs", "cached_lu"),
    ("matrix_tm_cached", "cached_lu"),
    ("matrix_quickstart", "sparse_be"),
]


@pytest.mark.parametrize("preset,backend", FIDELITY_CASES)
def test_replay_reproduces_live_digest_exactly(preset, backend):
    """The acceptance property: replaying a recording under unchanged
    knobs reproduces the live ThermalTrace digest bit-for-bit, across
    presets (profiled + cycle-accurate, managed + unmanaged) and solver
    backends."""
    scenario = short_scenario(preset, seconds=1.0)
    scenario.config.solver_backend = backend
    framework, _, archive = record(scenario)
    player, _ = replay(archive)
    assert player.trace.digest() == framework.trace.digest()
    # Stronger than the digest: every sample matches field by field.
    for live, rep in zip(framework.trace.samples, player.trace.samples):
        assert live.time_s == rep.time_s
        assert live.frequency_hz == rep.frequency_hz
        assert live.max_temp_k == rep.max_temp_k
        assert live.component_temps == rep.component_temps
        assert live.events == rep.events


def test_replay_report_carries_recorded_emulation_facts(stress_scenario):
    _, live_report, archive = record(stress_scenario)
    _, report = replay(archive)
    assert report.emulated_seconds == live_report.emulated_seconds
    assert report.fpga_real_seconds == live_report.fpga_real_seconds
    assert report.workload_done == live_report.workload_done
    assert report.instructions == live_report.instructions
    assert report.peak_temperature_k == live_report.peak_temperature_k
    provenance = report.extras["replay"]
    assert provenance["scenario_digest"] == archive.scenario_digest
    assert provenance["recorded_windows"] == archive.windows
    assert provenance["overrides"] == {}


def test_thermal_knob_overrides_change_the_solve(stress_scenario):
    _, live_report, archive = record(stress_scenario)
    _, report = replay(
        archive,
        config={
            "grid_mode": "uniform",
            "die_resolution": [10, 10],
            "spreader_resolution": [10, 10],
            "solver_backend": "cached_lu",
        },
    )
    assert report.extras["thermal_cells"] == 200
    overrides = report.extras["replay"]["overrides"]
    assert overrides["die_resolution"] == [10, 10]
    assert overrides["solver_backend"] == "cached_lu"
    # Different discretization, same physics: the peak moves a little,
    # not wildly.
    assert abs(
        report.peak_temperature_k - live_report.peak_temperature_k
    ) < 10.0


def test_material_properties_override(stress_scenario):
    """Frozen k(300 K) silicon must run cooler than the non-linear law —
    the Table 2 property, checked through replay."""
    _, live_report, archive = record(stress_scenario)
    frozen = ThermalProperties(
        die_material=Material("si-const", 150.0, SILICON_VOLUMETRIC_HEAT)
    )
    _, report = replay(archive, properties=frozen)
    assert report.extras["replay"]["overrides"]["properties"] == "custom"
    assert report.peak_temperature_k < live_report.peak_temperature_k


def test_initial_temperature_override(stress_scenario):
    _, _, archive = record(stress_scenario)
    player, report = replay(
        archive, config={"initial_temperature_kelvin": 320.0}
    )
    assert player.trace.samples[0].max_temp_k > 315.0


def test_sampling_period_override_is_rejected(stress_scenario):
    _, _, archive = record(stress_scenario)
    with pytest.raises(ValueError, match="sampling period"):
        replay(archive, config={"sampling_period_s": 0.02})


def test_mismatched_floorplan_is_rejected(stress_scenario):
    _, _, archive = record(stress_scenario)  # recorded on 4xarm11
    with pytest.raises(ValueError, match="component set"):
        replay(archive, floorplan="4xarm7")


def test_replay_respects_max_windows(stress_scenario):
    _, _, archive = record(stress_scenario)
    player, report = replay(archive, max_windows=10)
    assert report.windows == 10
    assert not report.workload_done  # truncated replays don't inherit
    assert report.extras["replay"]["replayed_windows"] == 10
    assert len(player.trace) == 10


def test_exhausted_replay_raises_past_the_end(stress_scenario):
    _, _, archive = record(stress_scenario)
    player = ReplaySource(archive)
    player.run()
    assert player.exhausted
    with pytest.raises(IndexError, match="exhausted"):
        player.step_window()


def test_replay_config_object_roundtrip(stress_scenario):
    """A full FrameworkConfig (the runner's path) works like overrides."""
    _, _, archive = record(stress_scenario)
    config = FrameworkConfig.from_dict(archive.metadata["config"])
    config.die_resolution = (6, 6)
    config.grid_mode = "uniform"
    config.spreader_resolution = (6, 6)
    player, report = replay(archive, config=config)
    assert report.extras["thermal_cells"] == 72


def test_replay_power_injection_is_bitwise(stress_scenario):
    """The replayed per-cell injection vector equals the live one."""
    live = stress_scenario.build()
    from repro.trace import PowerTraceCapture

    capture = live.attach_capture(PowerTraceCapture())
    live.step_window()
    archive = capture.to_archive(live, scenario=stress_scenario)
    player = ReplaySource(archive)
    player._window_power()
    np.testing.assert_array_equal(player.network.power, live.network.power)
    assert player.solver.temperatures.shape == (player.network.num_cells,)
