"""TraceStore and the canonical scenario digest semantics."""

import pytest

from repro.trace import (
    TraceStore,
    is_open_loop,
    record,
    scenario_trace_digest,
)
from repro.trace.store import content_digest, emulation_projection
from tests.trace.conftest import short_scenario


# -- digest semantics --------------------------------------------------------


def test_digest_ignores_cosmetic_fields():
    a = short_scenario()
    b = short_scenario(name="renamed")
    b.description = "different words"
    assert scenario_trace_digest(a) == scenario_trace_digest(b)


def test_open_loop_digest_ignores_thermal_side_knobs():
    a = short_scenario()
    b = short_scenario()
    b.config.grid_mode = "uniform"
    b.config.die_resolution = (16, 16)
    b.config.spreader_resolution = (5, 5)
    b.config.solver_backend = "cached_lu"
    b.config.initial_temperature_kelvin = 310.0
    b.config.trace_stride = 4
    assert is_open_loop(b)
    assert scenario_trace_digest(a) == scenario_trace_digest(b)


def test_open_loop_digest_tracks_emulation_side_knobs():
    a = short_scenario()
    b = short_scenario()
    b.config.virtual_hz = 250e6
    assert scenario_trace_digest(a) != scenario_trace_digest(b)
    c = short_scenario()
    c.max_emulated_seconds = 2.0  # run bounds shape the stream length
    assert scenario_trace_digest(a) != scenario_trace_digest(c)
    d = short_scenario()
    d.workload.params = dict(d.workload.params, total_iterations=123)
    assert scenario_trace_digest(a) != scenario_trace_digest(d)


def test_reactive_policy_digest_tracks_thermal_knobs():
    a = short_scenario("matrix_tm_dfs")
    b = short_scenario("matrix_tm_dfs")
    assert not is_open_loop(a)
    assert scenario_trace_digest(a) == scenario_trace_digest(b)
    b.config.die_resolution = (16, 16)
    # The closed loop feeds temperature back into power: thermal knobs
    # change the boundary stream, so the digest must move.
    assert scenario_trace_digest(a) != scenario_trace_digest(b)


def test_projection_drops_thermal_keys_only_for_open_loop():
    open_loop = emulation_projection(short_scenario())
    assert "die_resolution" not in open_loop["config"]
    reactive = emulation_projection(short_scenario("matrix_tm_dfs"))
    assert "die_resolution" in reactive["config"]


def test_digest_accepts_dicts_and_scenarios():
    scenario = short_scenario()
    assert scenario_trace_digest(scenario) == scenario_trace_digest(
        scenario.to_dict()
    )


def test_digest_normalizes_abbreviated_dicts():
    """Regression: a raw dict that abbreviates (missing sections keep
    defaults, bare policy names) must hash like its normalized
    Scenario.to_dict() form, or store lookups miss every recording
    made through record()."""
    from repro.scenario.spec import Scenario

    raw = {
        "name": "abbr",
        "floorplan": "4xarm11",
        "workload": {"name": "profiled", "params": {
            "profile": {"name": "s", "cycles_per_iteration": 1000.0,
                        "utilization": [[["core", 0], 0.9]],
                        "instructions_per_iteration": 900.0},
            "total_iterations": 10_000}},
        "max_emulated_seconds": 1.0,
    }
    normalized = Scenario.from_dict(raw).to_dict()
    assert scenario_trace_digest(raw) == scenario_trace_digest(normalized)
    as_string_policy = dict(raw, policy="none")
    assert scenario_trace_digest(as_string_policy) == scenario_trace_digest(
        raw
    )


# -- the store itself --------------------------------------------------------


def test_disk_store_put_get_roundtrip(tmp_path, stress_scenario):
    framework, _, archive = record(stress_scenario)
    store = TraceStore(tmp_path)
    digest = store.put(archive)
    assert digest == archive.scenario_digest
    assert store.has(digest) and digest in store
    assert store.path_for(digest).is_file()
    loaded = store.get(digest)
    assert loaded.metadata["trace_digest"] == framework.trace.digest()
    assert store.get_for(stress_scenario).windows == archive.windows
    assert len(store) == 1


def test_memory_store(stress_scenario):
    _, _, archive = record(stress_scenario)
    store = TraceStore()
    assert store.in_memory
    digest = store.put(archive)
    assert store.get(digest) is archive
    with pytest.raises(ValueError, match="no paths"):
        store.path_for(digest)


def test_store_miss_returns_none(tmp_path):
    store = TraceStore(tmp_path)
    assert store.get("f" * 64) is None
    assert not store.has("f" * 64)
    assert store.digests() == []
    assert store.entries() == []


def test_entries_expose_metadata_without_arrays(tmp_path, stress_scenario):
    _, _, archive = record(stress_scenario)
    store = TraceStore(tmp_path)
    store.put(archive)
    [(digest, meta)] = store.entries()
    assert digest == archive.scenario_digest
    assert meta["windows"] == archive.windows
    assert meta["scenario"]["name"] == stress_scenario.name


def test_put_without_digest_rejected(stress_scenario):
    _, _, archive = record(stress_scenario)
    archive.metadata["scenario_digest"] = None
    with pytest.raises(ValueError, match="digest"):
        TraceStore().put(archive)


def test_content_digest_is_stable_and_content_sensitive(stress_scenario):
    _, _, archive = record(stress_scenario)
    first = content_digest(archive)
    assert first == content_digest(archive)
    archive.power_w = archive.power_w * 2.0
    assert content_digest(archive) != first
