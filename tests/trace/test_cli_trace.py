"""``python -m repro trace`` end to end (record/replay/info/list)."""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.trace.cli import main as trace_main
from tests.trace.conftest import short_scenario


@pytest.fixture
def scenario_file(tmp_path):
    scenario = short_scenario(seconds=0.5, name="cli_trace")
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(scenario.to_dict()))
    return path


def test_record_replay_info_list_roundtrip(tmp_path, scenario_file, capsys):
    store = tmp_path / "store"
    assert trace_main(["record", str(scenario_file), "--store", str(store)]) == 0
    recorded = capsys.readouterr().out
    assert "recorded 50 windows" in recorded
    digest = recorded.strip().splitlines()[-1].split()[-1]
    assert len(digest) == 64

    assert trace_main(["list", "--store", str(store)]) == 0
    listing = capsys.readouterr().out
    assert digest[:16] in listing and "cli_trace" in listing

    assert trace_main(["info", digest[:12], "--store", str(store)]) == 0
    info = capsys.readouterr().out
    assert "50 windows" in info and "cli_trace" in info

    assert trace_main(
        ["replay", digest[:12], "--store", str(store), "--check-digest"]
    ) == 0
    replayed = capsys.readouterr().out
    assert "matches the recorded live run" in replayed


def test_record_to_explicit_output_and_replay_by_path(
    tmp_path, scenario_file, capsys
):
    out = tmp_path / "run.npz"
    assert trace_main(["record", str(scenario_file), "-o", str(out)]) == 0
    capsys.readouterr()
    assert out.is_file() and out.with_suffix(".json").is_file()
    assert trace_main(["replay", str(out), "--check-digest"]) == 0


def test_replay_with_overrides_reports_mismatch(tmp_path, scenario_file,
                                                capsys):
    out = tmp_path / "run.npz"
    trace_main(["record", str(scenario_file), "-o", str(out)])
    capsys.readouterr()
    code = trace_main([
        "replay", str(out), "--grid-mode", "uniform",
        "--die-resolution", "12x12", "--spreader-resolution", "12x12",
        "--check-digest",
    ])
    assert code == 1  # a different discretization cannot match bit-for-bit
    captured = capsys.readouterr()
    assert "digest mismatch" in captured.err


def test_replay_json_output(tmp_path, scenario_file, capsys):
    out = tmp_path / "run.npz"
    trace_main(["record", str(scenario_file), "-o", str(out), "--json"])
    recorded = json.loads(capsys.readouterr().out)
    assert recorded["windows"] == 50
    assert trace_main(["replay", str(out), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["digest_matches"] is True
    assert payload["trace_digest"] == payload["recorded_digest"]


def test_record_preset_through_main_entrypoint(tmp_path, capsys):
    code = repro_main([
        "trace", "record", "matrix_quickstart",
        "--store", str(tmp_path / "store"),
    ])
    assert code == 0
    assert "digest" in capsys.readouterr().out


def test_unknown_reference_fails_cleanly(tmp_path, capsys):
    assert trace_main(
        ["replay", "deadbeef", "--store", str(tmp_path)]
    ) == 2
    assert "error:" in capsys.readouterr().err
    assert trace_main(["record", "not_a_preset"]) == 2
    assert "error:" in capsys.readouterr().err


def test_record_rejects_suites(tmp_path, capsys):
    suite = tmp_path / "suite.json"
    suite.write_text(json.dumps(
        {"name": "s", "scenarios": [short_scenario().to_dict()]}
    ))
    assert trace_main(["record", str(suite)]) == 2
    assert "one scenario" in capsys.readouterr().err


def test_empty_store_listing(tmp_path, capsys):
    assert trace_main(["list", "--store", str(tmp_path / "void")]) == 0
    assert "no traces" in capsys.readouterr().out
