"""Shared trace-test helpers: short presets sized for fast runs."""

import pytest

from repro.scenario.presets import PRESETS


def short_scenario(preset="matrix_tm_unmanaged", seconds=1.0, name=None):
    """A bounded copy of a preset (profiled, so it runs in milliseconds)."""
    scenario = PRESETS.get(preset)()
    scenario.max_emulated_seconds = seconds
    if name:
        scenario.name = name
    return scenario


@pytest.fixture
def stress_scenario():
    return short_scenario()
