"""Direct unit tests for repro.util.locking.

The farm and TraceStore race tests exercise FileLock end to end on
POSIX; these tests pin down the primitives themselves — including the
``O_CREAT | O_EXCL`` spin fallback that only runs where ``fcntl`` is
missing, forced here by monkeypatching the module.
"""

import threading
import time

import pytest

import repro.util.locking as locking
from repro.util.locking import (
    FileLock,
    atomic_write_json,
    atomic_write_text,
    unique_tmp_path,
)


# -- unique_tmp_path --------------------------------------------------------


def test_unique_tmp_path_is_a_sibling(tmp_path):
    target = tmp_path / "store" / "entry.json"
    tmp = unique_tmp_path(target)
    assert tmp.parent == target.parent
    assert tmp.name.startswith(".entry.json.")
    assert tmp.name.endswith(".tmp")


def test_unique_tmp_path_never_collides(tmp_path):
    # Same destination, many calls: every temp path is distinct, so two
    # writers racing on one content-addressed file cannot interleave.
    target = tmp_path / "entry.json"
    paths = {unique_tmp_path(target) for _ in range(200)}
    assert len(paths) == 200


def test_atomic_write_text_leaves_no_temp_files(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text(target, "payload")
    assert target.read_text() == "payload"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_atomic_write_text_creates_parents(tmp_path):
    target = tmp_path / "a" / "b" / "out.txt"
    atomic_write_text(target, "x")
    assert target.read_text() == "x"


def test_atomic_write_json_sorts_keys(tmp_path):
    target = tmp_path / "out.json"
    atomic_write_json(target, {"b": 1, "a": 2})
    assert target.read_text() == '{"a": 2, "b": 1}\n'


def test_atomic_write_cleans_up_on_failure(tmp_path, monkeypatch):
    def broken_replace(src, dst):
        raise OSError("disk went away")

    monkeypatch.setattr(locking.os, "replace", broken_replace)
    target = tmp_path / "out.txt"
    with pytest.raises(OSError):
        atomic_write_text(target, "payload")
    # The orphaned temp file was cleaned up; nothing reached the target.
    assert list(tmp_path.iterdir()) == []


# -- FileLock, flock path ---------------------------------------------------


def test_flock_acquire_release(tmp_path):
    lock = FileLock(tmp_path / "x.lock")
    with lock:
        assert lock.held
        with pytest.raises(RuntimeError):
            lock.acquire()
    assert not lock.held
    lock.release()  # idempotent


def test_flock_excludes_threads(tmp_path):
    path = tmp_path / "x.lock"
    order = []

    def holder():
        with FileLock(path):
            order.append("acquired")
            time.sleep(0.05)
            order.append("releasing")

    thread = threading.Thread(target=holder)
    thread.start()
    time.sleep(0.02)
    with FileLock(path, timeout=2.0):
        order.append("second")
    thread.join()
    assert order == ["acquired", "releasing", "second"]


def test_flock_times_out(tmp_path):
    path = tmp_path / "x.lock"
    with FileLock(path):
        contender = FileLock(path, timeout=0.05, poll_s=0.01)
        with pytest.raises(TimeoutError):
            contender.acquire()
        assert not contender.held


# -- FileLock, spin fallback (fcntl forced away) ----------------------------


@pytest.fixture
def no_fcntl(monkeypatch):
    monkeypatch.setattr(locking, "fcntl", None)


def test_spin_acquire_creates_marker(tmp_path, no_fcntl):
    path = tmp_path / "x.lock"
    lock = FileLock(path)
    lock.acquire()
    marker = path.with_name("x.lock.held")
    assert lock.held
    assert marker.exists()
    lock.release()
    assert not marker.exists()
    assert not lock.held


def test_spin_lock_excludes_a_second_holder(tmp_path, no_fcntl):
    path = tmp_path / "x.lock"
    with FileLock(path):
        contender = FileLock(path, timeout=0.05, poll_s=0.01,
                             stale_seconds=60.0)
        with pytest.raises(TimeoutError):
            contender.acquire()


def test_spin_lock_serializes_threads(tmp_path, no_fcntl):
    path = tmp_path / "x.lock"
    counter = {"value": 0, "max_concurrent": 0, "active": 0}
    guard = threading.Lock()

    def worker():
        with FileLock(path, timeout=5.0, poll_s=0.001):
            with guard:
                counter["active"] += 1
                counter["max_concurrent"] = max(
                    counter["max_concurrent"], counter["active"]
                )
            time.sleep(0.005)
            counter["value"] += 1
            with guard:
                counter["active"] -= 1

    threads = [threading.Thread(target=worker) for _ in range(5)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter["value"] == 5
    assert counter["max_concurrent"] == 1


def test_spin_lock_breaks_stale_markers(tmp_path, no_fcntl):
    path = tmp_path / "x.lock"
    marker = path.with_name("x.lock.held")
    # A crashed holder left a marker well past the staleness horizon.
    marker.parent.mkdir(parents=True, exist_ok=True)
    marker.touch()
    old = time.time() - 120.0
    import os

    os.utime(marker, (old, old))
    lock = FileLock(path, timeout=0.5, poll_s=0.01, stale_seconds=60.0)
    lock.acquire()  # must break the stale marker instead of timing out
    assert lock.held
    lock.release()


def test_spin_lock_respects_fresh_markers(tmp_path, no_fcntl):
    path = tmp_path / "x.lock"
    marker = path.with_name("x.lock.held")
    marker.parent.mkdir(parents=True, exist_ok=True)
    marker.touch()  # fresh: not stale, must NOT be broken
    lock = FileLock(path, timeout=0.05, poll_s=0.01, stale_seconds=60.0)
    with pytest.raises(TimeoutError):
        lock.acquire()
    assert marker.exists()
