"""Every rule must trip on its trip fixture and stay quiet on its pass
fixture.

Each fixture is a directory of files under
``tests/analysis/fixtures/<rule-id>/{trip,pass}/``; a file's first line
is a ``# relpath: <mount path>`` header giving the repo-relative path it
is mounted at inside the in-memory fixture project (so a fixture can
impersonate ``src/repro/trace/store.py``, or supply ``tests/``/``docs/``
corpus files).  The meta-test pins the contract for *future* rules:
registering a rule without both fixture kinds and a docs-catalog entry
fails this suite.
"""

import pathlib

import pytest

from repro.analysis import ANALYSIS_RULES, Project, make_rules, run_rules

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
RELPATH_HEADER = "# relpath: "


def load_fixture_project(case_dir):
    sources = {}
    for path in sorted(case_dir.iterdir()):
        text = path.read_text()
        header, _, body = text.partition("\n")
        assert header.startswith(RELPATH_HEADER), (
            f"{path} must start with '{RELPATH_HEADER}<mount path>'"
        )
        relpath = header[len(RELPATH_HEADER):].strip()
        assert relpath not in sources, f"duplicate mount {relpath}"
        sources[relpath] = body
    assert sources, f"empty fixture {case_dir}"
    return Project.from_sources(sources)


def rule_findings(rule_id, kind):
    project = load_fixture_project(FIXTURES / rule_id / kind)
    return run_rules(project, make_rules([rule_id]))


def rule_ids():
    make_rules()  # import side effect: populate the registry
    return ANALYSIS_RULES.names()


@pytest.mark.parametrize("rule_id", rule_ids())
def test_trip_fixture_fires(rule_id):
    findings = rule_findings(rule_id, "trip")
    assert findings, f"{rule_id} found nothing in its trip fixture"
    assert {f.rule_id for f in findings} == {rule_id}


@pytest.mark.parametrize("rule_id", rule_ids())
def test_pass_fixture_is_clean(rule_id):
    findings = rule_findings(rule_id, "pass")
    assert findings == [], (
        f"{rule_id} fired on its pass fixture: "
        + "; ".join(f.format() for f in findings)
    )


def test_every_rule_has_fixtures_and_docs_entry():
    """The add-a-rule contract: both fixture kinds plus a docs mention."""
    catalog = (REPO_ROOT / "docs" / "static-analysis.md").read_text()
    for rule_id in rule_ids():
        for kind in ("trip", "pass"):
            case_dir = FIXTURES / rule_id / kind
            assert case_dir.is_dir() and any(case_dir.iterdir()), (
                f"rule {rule_id} is missing its {kind} fixture directory"
            )
        assert f"`{rule_id}`" in catalog, (
            f"rule {rule_id} is not cataloged in docs/static-analysis.md"
        )


def test_trip_fixtures_cover_specifics():
    """Spot-check that the trip fixtures exercise the interesting
    sub-cases, not just one easy violation each."""
    determinism = [f.message for f in rule_findings("determinism", "trip")]
    assert any("id()" in m for m in determinism)
    assert any("random." in m for m in determinism)
    assert any("time.time()" in m for m in determinism)
    assert any("iterating a set" in m for m in determinism)

    locking = [f.message for f in rule_findings("lock-discipline", "trip")]
    assert any("raw open" in m for m in locking)
    assert any("unlocked write" in m for m in locking)

    serialization = [
        f.message for f in rule_findings("serialization-roundtrip", "trip")
    ]
    assert any("to_dict" in m and "height" in m for m in serialization)
    assert any("from_dict" in m and "height" in m for m in serialization)

    digest = [
        f.message for f in rule_findings("digest-participation", "trip")
    ]
    assert any("solver_backend" in m for m in digest)

    coverage = [f.message for f in rule_findings("registry-coverage", "trip")]
    assert any("test module" in m for m in coverage)
    assert any("docs/" in m for m in coverage)

    hygiene = [
        f.message for f in rule_findings("suppression-hygiene", "trip")
    ]
    assert any("no rule id" in m for m in hygiene)
    assert any("unknown rule" in m for m in hygiene)
    assert any("needs a reason" in m for m in hygiene)
