"""Unit tests of the analysis framework itself: findings, suppression
parsing, the walker's suppression filtering, baselines, and the rule
registry.  Rule-by-rule behaviour is covered by the fixture projects in
``tests/analysis/test_fixtures.py``.

Registered rule ids (kept literal so the registry-coverage rule can see
every id referenced from a test module): determinism,
digest-participation, lock-discipline, registry-coverage,
serialization-roundtrip, suppression-hygiene.
"""

import pytest

from repro.analysis import (
    ANALYSIS_RULES,
    Finding,
    Project,
    load_baseline,
    make_rules,
    run_rules,
    save_baseline,
    split_findings,
)
from repro.analysis.project import SourceModule

RULE_IDS = [
    "determinism",
    "digest-participation",
    "lock-discipline",
    "registry-coverage",
    "serialization-roundtrip",
    "suppression-hygiene",
]


def test_registry_matches_literal_rule_list():
    assert make_rules() and ANALYSIS_RULES.names() == RULE_IDS


# -- findings ----------------------------------------------------------------


def test_finding_format_and_key():
    finding = Finding(
        path="src/repro/x.py",
        line=7,
        rule_id="determinism",
        severity="error",
        message="id() in sort key",
    )
    assert finding.format() == (
        "src/repro/x.py:7: error [determinism] id() in sort key"
    )
    # Line-free key: reformatting must not resurrect baselined findings.
    assert finding.suppression_key == (
        "determinism::src/repro/x.py::id() in sort key"
    )
    assert Finding.from_dict(finding.to_dict()) == finding


def test_finding_rejects_bad_severity_and_empty_rule():
    with pytest.raises(ValueError, match="severity"):
        Finding("a.py", 1, "determinism", "fatal", "m")
    with pytest.raises(ValueError, match="rule id"):
        Finding("a.py", 1, "", "error", "m")


def test_findings_sort_by_location():
    one = Finding("a.py", 2, "determinism", "error", "m")
    two = Finding("a.py", 10, "determinism", "error", "m")
    other = Finding("b.py", 1, "determinism", "error", "m")
    assert sorted([other, two, one]) == [one, two, other]


# -- suppression parsing -----------------------------------------------------


def test_suppression_trailing_and_standalone():
    module = SourceModule.parse(
        "src/repro/m.py",
        "x = id(0)  # repro: allow[determinism] — interned key, stable\n"
        "# repro: allow[determinism, lock-discipline] — both fine here\n"
        "y = id(1)\n"
        "z = id(2)\n",
    )
    assert module.is_suppressed(1, "determinism")
    assert module.is_suppressed(3, "determinism")  # standalone, line above
    assert module.is_suppressed(3, "lock-discipline")
    assert not module.is_suppressed(4, "determinism")  # two lines below
    assert not module.is_suppressed(1, "lock-discipline")
    reasons = [s.reason for s in module.suppressions]
    assert reasons == ["interned key, stable", "both fine here"]


def test_walker_drops_suppressed_findings():
    source = (
        "def key(obj):\n"
        "    # repro: allow[determinism] — identity grouping is intended\n"
        "    return id(obj)\n"
    )
    project = Project.from_sources({"src/repro/util/keys.py": source})
    findings = run_rules(project, make_rules(["determinism"]))
    assert findings == []
    # Same code without the comment fires.
    bare = project.modules[0].text.replace(
        "    # repro: allow[determinism] — identity grouping is intended\n",
        "",
    )
    project = Project.from_sources({"src/repro/util/keys.py": bare})
    findings = run_rules(project, make_rules(["determinism"]))
    assert [f.rule_id for f in findings] == ["determinism"]


def test_make_rules_rejects_unknown_id():
    with pytest.raises(ValueError, match="unknown analysis rule"):
        make_rules(["no-such-rule"])


# -- baseline ----------------------------------------------------------------


def test_baseline_roundtrip_and_split(tmp_path):
    baseline_path = tmp_path / "analysis-baseline.json"
    old = Finding("src/repro/a.py", 3, "determinism", "error", "old issue")
    new = Finding("src/repro/b.py", 9, "determinism", "error", "new issue")
    assert load_baseline(baseline_path) == set()  # missing file is empty

    keys = save_baseline(baseline_path, [old])
    assert keys == {old.suppression_key}
    assert load_baseline(baseline_path) == keys

    split = split_findings([old, new], keys)
    assert split.baselined == (old,)
    assert split.new == (new,)
    assert split.stale_keys == ()

    # The old finding stops firing: its key is reported stale.
    split = split_findings([new], keys)
    assert split.new == (new,)
    assert split.stale_keys == (old.suppression_key,)


def test_baseline_ignores_line_numbers(tmp_path):
    baseline_path = tmp_path / "b.json"
    finding = Finding("src/repro/a.py", 3, "determinism", "error", "m")
    keys = save_baseline(baseline_path, [finding])
    moved = Finding("src/repro/a.py", 30, "determinism", "error", "m")
    assert split_findings([moved], keys).new == ()


def test_load_baseline_rejects_garbage(tmp_path):
    bad = tmp_path / "b.json"
    bad.write_text("[1, 2, 3]\n")
    with pytest.raises(ValueError, match="baseline"):
        load_baseline(bad)
