"""Gated ruff/mypy runs: exercised where the tools exist (CI installs
them; the pinned local environment may not have them, so both tests
skip rather than fail there)."""

import pathlib
import shutil
import subprocess

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def run(cmd):
    return subprocess.run(
        cmd, cwd=REPO_ROOT, capture_output=True, text=True
    )


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    result = run(["ruff", "check", "src", "tests", "benchmarks", "tools"])
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_allowlist():
    result = run(["mypy", "src/repro/util", "src/repro/analysis"])
    assert result.returncode == 0, result.stdout + result.stderr
