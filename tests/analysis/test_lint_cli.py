"""``python -m repro lint`` CLI behaviour, plus the acceptance gate:
the real repository lints clean against its committed (empty) baseline.
"""

import json
import pathlib

from repro.analysis.cli import main as lint_main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

VIOLATION = (
    '"""Demo module with one determinism violation."""\n'
    "\n"
    "\n"
    "def key(obj):\n"
    "    return id(obj)\n"
)

CLEAN = (
    '"""Demo module with no violations."""\n'
    "\n"
    "\n"
    "def key(obj):\n"
    "    return obj.index\n"
)


def make_repo(tmp_path, text=VIOLATION):
    module = tmp_path / "src" / "repro" / "util" / "helpers.py"
    module.parent.mkdir(parents=True)
    module.write_text(text)
    return tmp_path


def test_lint_reports_finding_and_fails(tmp_path, capsys):
    root = make_repo(tmp_path)
    assert lint_main(["--root", str(root)]) == 1
    out = capsys.readouterr().out
    assert "src/repro/util/helpers.py:5" in out
    assert "[determinism]" in out
    assert "1 new" in out


def test_lint_clean_repo_passes(tmp_path, capsys):
    root = make_repo(tmp_path, CLEAN)
    assert lint_main(["--root", str(root), "--check"]) == 0
    assert "0 new" in capsys.readouterr().out


def test_rule_selection_and_unknown_rule(tmp_path, capsys):
    root = make_repo(tmp_path)
    # Only running an unrelated rule: the id() violation is invisible.
    assert lint_main(
        ["--root", str(root), "--rule", "lock-discipline"]
    ) == 0
    assert lint_main(["--root", str(root), "--rule", "nope"]) == 2
    assert "unknown analysis rule" in capsys.readouterr().err


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "determinism" in out and "lock-discipline" in out


def test_baseline_lifecycle(tmp_path, capsys):
    """update-baseline grandfathers findings; --check rejects stale
    entries once they are fixed, so the ledger can only shrink."""
    root = make_repo(tmp_path)
    baseline = root / "analysis-baseline.json"

    assert lint_main(["--root", str(root)]) == 1
    assert lint_main(["--root", str(root), "--update-baseline"]) == 0
    data = json.loads(baseline.read_text())
    assert data["version"] == 1 and len(data["findings"]) == 1

    # Baselined: reported, but not a failure.
    capsys.readouterr()
    assert lint_main(["--root", str(root)]) == 0
    out = capsys.readouterr().out
    assert "(baselined)" in out and "1 baselined" in out
    assert lint_main(["--root", str(root), "--check"]) == 0

    # Fix the violation: plain lint passes, --check flags the stale key.
    (root / "src" / "repro" / "util" / "helpers.py").write_text(CLEAN)
    assert lint_main(["--root", str(root)]) == 0
    capsys.readouterr()
    assert lint_main(["--root", str(root), "--check"]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_json_artifact(tmp_path):
    root = make_repo(tmp_path)
    out_path = tmp_path / "findings.json"
    assert lint_main(
        ["--root", str(root), "--json", str(out_path)]
    ) == 1
    payload = json.loads(out_path.read_text())
    assert payload["rules"] == [
        "determinism",
        "digest-participation",
        "lock-discipline",
        "registry-coverage",
        "serialization-roundtrip",
        "suppression-hygiene",
    ]
    (finding,) = payload["findings"]
    assert finding["rule_id"] == "determinism"
    assert finding["baselined"] is False


def test_missing_root_is_usage_error(tmp_path, capsys):
    assert lint_main(["--root", str(tmp_path / "nowhere")]) == 2
    assert "no src/repro tree" in capsys.readouterr().err


def test_real_repo_lints_clean_with_empty_baseline(capsys):
    """Acceptance: the committed baseline is empty and the tree is clean."""
    baseline = json.loads((REPO_ROOT / "analysis-baseline.json").read_text())
    assert baseline["findings"] == []
    code = lint_main(["--root", str(REPO_ROOT), "--check"])
    out = capsys.readouterr().out
    assert code == 0, f"repo has new findings:\n{out}"
