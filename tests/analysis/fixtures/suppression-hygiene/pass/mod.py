# relpath: src/repro/demo/mod.py
"""A well-formed suppression: known rule, real reason."""

import random


def pick(values, seed):
    rng = random.Random(seed)
    # repro: allow[determinism] — seeded stream, replayable by construction
    return rng.choice(list(values))
