# relpath: src/repro/demo/mod.py
"""Blanket, unknown-rule and reason-less suppressions."""

FIRST = 1  # repro: allow[] — names no rule at all
SECOND = 2  # repro: allow[not-a-rule] — rule id does not exist
THIRD = 3  # repro: allow[determinism] — no
