# relpath: src/repro/demo/config.py
"""A config dataclass whose to_dict/from_dict both dropped a field."""

from dataclasses import dataclass


@dataclass
class WidgetConfig:
    width: int = 1
    height: int = 2

    def to_dict(self):
        return {"width": self.width}

    @classmethod
    def from_dict(cls, data):
        return cls(width=data["width"])
