# relpath: src/repro/demo/config.py
"""Complete round-trips: explicit keys, cls(**data), and asdict."""

from dataclasses import asdict, dataclass


@dataclass
class WidgetConfig:
    width: int = 1
    height: int = 2

    def to_dict(self):
        return {"width": self.width, "height": self.height}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


@dataclass
class WholesaleConfig:
    depth: int = 3

    def to_dict(self):
        return asdict(self)


@dataclass
class ReportOnly:
    """One-way report type: no from_dict is fine."""

    label: str = ""

    def to_dict(self):
        return {"label": self.label}
