# relpath: src/repro/emulation/engine.py
"""Every banned construct: id() keys, unseeded random, wall clock,
set-order iteration in a hot-path module."""

import random
import time


def schedule(events):
    jitter = random.random()
    stamp = time.time()
    return jitter, stamp, sorted(events, key=lambda e: id(e))


def drain(pending):
    return [item for item in set(pending)]
