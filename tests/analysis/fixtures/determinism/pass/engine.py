# relpath: src/repro/emulation/engine.py
"""The replayable spellings of the same operations."""

import random
import time


def schedule(events, seed):
    rng = random.Random(seed)
    jitter = rng.random()
    elapsed = time.perf_counter()
    return jitter, elapsed, sorted(events, key=lambda e: e.index)


def drain(pending):
    return [item for item in sorted(set(pending))]
