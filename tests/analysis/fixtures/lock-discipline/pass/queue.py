# relpath: src/repro/farm/queue.py
"""The sanctioned shape: FileLock around every reachable write."""

import json

from repro.util.locking import FileLock, atomic_write_json


class JobQueue:
    def __init__(self, path):
        self.path = path

    def _lock(self):
        return FileLock(str(self.path) + ".lock")

    def _save(self, jobs):
        # Writes without taking the lock itself; fine, because every
        # call site below holds it.
        atomic_write_json(self.path, jobs)

    def submit(self, job):
        with self._lock():
            jobs = self._load()
            jobs.append(job)
            self._save(jobs)

    def clear(self):
        with self._lock():
            self._save([])

    def _load(self):
        try:
            with open(self.path) as handle:  # read mode is unrestricted
                return json.load(handle)
        except FileNotFoundError:
            return []
