# relpath: src/repro/farm/queue.py
"""Both incident classes: a raw write and an unguarded atomic write."""

import json

from repro.util.locking import atomic_write_json


class JobQueue:
    def save_unlocked(self, path, jobs):
        # Writer that no lexical lock (and no caller) ever guards.
        atomic_write_json(path, jobs)

    def export(self, path, jobs):
        # The .tmp truncation race class: raw write-mode open().
        with open(path, "w") as handle:
            json.dump(jobs, handle)
