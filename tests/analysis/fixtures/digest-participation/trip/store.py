# relpath: src/repro/trace/store.py
"""Digest tables missing the solver_backend classification."""

DIGEST_PARTICIPANTS = ("sampling_period_s",)

DIGEST_EXEMPT = {}

THERMAL_SIDE_KEYS = tuple(DIGEST_EXEMPT)
