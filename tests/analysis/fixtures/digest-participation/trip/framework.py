# relpath: src/repro/core/framework.py
"""Mini FrameworkConfig with a knob store.py never classified."""

from dataclasses import dataclass


@dataclass
class FrameworkConfig:
    sampling_period_s: float = 0.01
    solver_backend: str = "sparse_be"
