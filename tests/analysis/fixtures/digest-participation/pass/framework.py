# relpath: src/repro/core/framework.py
"""Mini FrameworkConfig; every field is classified in store.py."""

from dataclasses import dataclass


@dataclass
class FrameworkConfig:
    sampling_period_s: float = 0.01
    solver_backend: str = "sparse_be"
