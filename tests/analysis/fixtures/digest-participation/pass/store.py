# relpath: src/repro/trace/store.py
"""Complete digest classification with the canonical derived tuple."""

DIGEST_PARTICIPANTS = ("sampling_period_s",)

DIGEST_EXEMPT = {
    "solver_backend": "solver backends are bit-equivalent by the cross tests",
}

THERMAL_SIDE_KEYS = tuple(DIGEST_EXEMPT)
