# relpath: src/repro/workloads/custom.py
"""Registers a workload that neither tests nor docs ever mention."""

from repro.scenario.registry import WORKLOADS


@WORKLOADS.register("orphan_widget")
def orphan_widget(platform, config):
    return None
