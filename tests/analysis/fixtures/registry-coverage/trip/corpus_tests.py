# relpath: tests/test_widgets.py
"""A test corpus that never names the registered workload."""


def test_nothing():
    assert True
