# relpath: src/repro/obs/catalog.py
"""Catalogs a metric and a span that neither tests nor docs mention."""

from repro.util.registry import Registry

OBS_METRICS = Registry("obs metric")
OBS_SPANS = Registry("obs span")

OBS_METRICS.register("orphan_metric_total", "never documented")
OBS_SPANS.register("orphan.span", "never documented")
