# relpath: tests/test_widgets.py
"""Exercises the registered workload by its registry name."""


def test_covered_widget_resolves():
    assert "covered_widget"
