# relpath: tests/test_widgets.py
"""Exercises the registered workload by its registry name."""


def test_covered_widget_resolves():
    assert "covered_widget"


def test_covered_obs_names_resolve():
    assert "covered_metric_total"
    assert "covered.span"
