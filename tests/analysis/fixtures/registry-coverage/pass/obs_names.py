# relpath: src/repro/obs/catalog.py
"""Catalogs a metric and a span that tests and docs both reference."""

from repro.util.registry import Registry

OBS_METRICS = Registry("obs metric")
OBS_SPANS = Registry("obs span")

OBS_METRICS.register("covered_metric_total", "documented and tested")
OBS_SPANS.register("covered.span", "documented and tested")
