# relpath: src/repro/workloads/custom.py
"""Registers a workload that tests and docs both reference."""

from repro.scenario.registry import WORKLOADS


@WORKLOADS.register("covered_widget")
def covered_widget(platform, config):
    return None
