"""The EMULATION_BACKENDS registry: contract, equivalence, provenance.

The heart of this module is the registry-driven equivalence property
test: **every** registered backend runs the same ~50-window MATRIX
scenario and must agree with the ``event_driven`` reference — identical
completion semantics, instruction totals, and per-window total power
within the tolerance the backend itself declares
(``power_tolerance_pct``).  A backend registered without meeting its own
declaration fails here, not in production sweeps.
"""

import json

import numpy as np
import pytest

from repro.core.framework import FrameworkConfig
from repro.emulation.backends import (
    EMULATION_BACKENDS,
    CycleAccurateBackend,
    EmulationBackend,
    EventDrivenBackend,
    WindowedBackend,
    make_emulation_backend,
)
from repro.emulation.windowed import (
    calibration_cache_size,
    clear_calibration_cache,
)
from repro.scenario.presets import PRESETS
from repro.scenario.spec import Scenario
from repro.trace.capture import PowerTraceCapture
from repro.trace.store import scenario_trace_digest

# ~50 windows: 5 MATRIX iterations is ~105k cycles; 20 us windows are
# 2000 cycles at the preset's 100 MHz virtual clock.
EQUIVALENCE_ITERATIONS = 5
EQUIVALENCE_SAMPLING_S = 2e-5


def equivalence_scenario(backend):
    scenario = PRESETS.get("matrix_quickstart")()
    scenario.workload.params["iterations"] = EQUIVALENCE_ITERATIONS
    scenario.config.sampling_period_s = EQUIVALENCE_SAMPLING_S
    scenario.config.emulation_backend = backend
    return scenario


def run_equivalence(backend):
    """Run the shared scenario on ``backend``; returns (report, archive)."""
    scenario = equivalence_scenario(backend)
    framework = scenario.build()
    capture = framework.attach_capture(PowerTraceCapture())
    report = framework.run()
    archive = capture.to_archive(framework, scenario=scenario, report=report)
    return report, archive


@pytest.fixture(scope="module")
def reference_run():
    """The event-driven ground truth every backend is measured against."""
    return run_equivalence("event_driven")


@pytest.fixture(scope="module")
def backend_runs():
    """One run per registered backend (cached across this module)."""
    return {name: run_equivalence(name) for name in EMULATION_BACKENDS.names()}


# -- the registry-driven equivalence property ------------------------------


@pytest.mark.parametrize("name", EMULATION_BACKENDS.names())
def test_backend_meets_its_declared_tolerance(name, reference_run, backend_runs):
    ref_report, ref_archive = reference_run
    report, archive = backend_runs[name]
    backend = make_emulation_backend(name)
    assert ref_report.windows >= 50, "scenario too short to be a property test"
    # Completion semantics: every backend finishes the same workload.
    assert report.workload_done
    assert report.instructions == pytest.approx(ref_report.instructions, rel=5e-3)
    # Per-window total platform power, within the backend's own claim.
    ref_power = ref_archive.power_w.sum(axis=1)
    power = archive.power_w.sum(axis=1)
    overlap = min(len(ref_power), len(power))
    assert overlap >= 50
    deviation = np.abs(power[:overlap] - ref_power[:overlap]) / np.maximum(
        ref_power[:overlap], 1e-12
    )
    worst_pct = float(np.max(deviation)) * 100.0
    assert worst_pct <= backend.power_tolerance_pct or name == "event_driven", (
        f"{name} deviates {worst_pct:.2f}% from event_driven, declared "
        f"{backend.power_tolerance_pct:g}%"
    )
    if name == "event_driven":
        assert worst_pct == 0.0


def test_windowed_matches_reference_window_for_window(reference_run, backend_runs):
    """The fast path must mirror the reference's shape, not just its power."""
    ref_report, ref_archive = reference_run
    report, archive = backend_runs["windowed"]
    assert report.windows == ref_report.windows
    assert archive.power_w.shape == ref_archive.power_w.shape
    assert report.extras["end_cycle"] == pytest.approx(
        ref_report.extras["end_cycle"], rel=1e-6
    )


@pytest.mark.parametrize(
    "name",
    [n for n in EMULATION_BACKENDS.names()
     if EMULATION_BACKENDS.get(n).exact],
)
def test_exact_backends_are_bit_for_bit_deterministic(name, backend_runs):
    report, archive = backend_runs[name]
    again_report, again_archive = run_equivalence(name)
    assert archive.metadata["trace_digest"] == again_archive.metadata["trace_digest"]
    assert np.array_equal(archive.power_w, again_archive.power_w)
    assert report.instructions == again_report.instructions


def test_windowed_replay_is_deterministic_too(backend_runs):
    """Approximate does not mean noisy: same calibration, same stream."""
    _, archive = backend_runs["windowed"]
    _, again = run_equivalence("windowed")
    assert np.array_equal(archive.power_w, again.power_w)


# -- the backend resolver (mirrors make_backend) ---------------------------


def test_make_emulation_backend_resolution():
    assert isinstance(make_emulation_backend(None), EventDrivenBackend)
    assert isinstance(make_emulation_backend("cycle_accurate"), CycleAccurateBackend)
    windowed = make_emulation_backend(
        {"name": "windowed", "params": {"max_utilization": 0.9}}
    )
    assert isinstance(windowed, WindowedBackend)
    assert windowed.max_utilization == 0.9
    prebuilt = WindowedBackend()
    assert make_emulation_backend(prebuilt) is prebuilt


def test_make_emulation_backend_rejects_bad_specs():
    with pytest.raises(ValueError, match="needs a 'name' entry"):
        make_emulation_backend({"params": {}})
    with pytest.raises(ValueError, match="unknown emulation-backend keys"):
        make_emulation_backend({"name": "windowed", "extra": 1})
    with pytest.raises(ValueError, match="unknown emulation backend"):
        make_emulation_backend("not_a_backend")
    with pytest.raises(TypeError):
        make_emulation_backend(42)


def test_windowed_backend_validates_params():
    with pytest.raises(ValueError, match="max_utilization"):
        WindowedBackend(max_utilization=1.5)
    with pytest.raises(ValueError, match="calibration budget"):
        WindowedBackend(calibration_max_instructions=0)


def test_every_registered_backend_declares_its_contract():
    for name in EMULATION_BACKENDS.names():
        backend = make_emulation_backend(name)
        assert backend.name == name
        assert isinstance(backend, EmulationBackend)
        assert isinstance(backend.exact, bool)
        assert backend.power_tolerance_pct >= 0.0


# -- FrameworkConfig knob: validation + JSON round-trip --------------------


def test_config_validates_emulation_backend():
    FrameworkConfig(emulation_backend="windowed")  # fine
    with pytest.raises(ValueError, match="unknown emulation backend"):
        FrameworkConfig(emulation_backend="nope")
    with pytest.raises(ValueError, match="registered name"):
        FrameworkConfig(emulation_backend=42)


def test_config_round_trips_emulation_backend():
    spec = {"name": "windowed", "params": {"max_utilization": 0.9}}
    config = FrameworkConfig(emulation_backend=spec)
    data = json.loads(json.dumps(config.to_dict()))
    assert data["emulation_backend"] == spec
    assert FrameworkConfig.from_dict(data).emulation_backend == spec


def test_scenario_round_trips_emulation_backend():
    scenario = equivalence_scenario("windowed")
    data = json.loads(json.dumps(scenario.to_dict()))
    restored = Scenario.from_dict(data)
    assert restored.config.emulation_backend == "windowed"


# -- provenance -------------------------------------------------------------


def test_emulation_backend_participates_in_trace_digest():
    """Recordings from different emulation backends must never alias."""
    exact = equivalence_scenario("event_driven")
    fast = equivalence_scenario("windowed")
    assert scenario_trace_digest(exact.to_dict()) != scenario_trace_digest(
        fast.to_dict()
    )


def test_archive_metadata_names_the_backend(backend_runs):
    for name, (_report, archive) in backend_runs.items():
        assert archive.metadata["emulation_backend"] == name


def test_report_extras_name_the_backend(backend_runs):
    for name, (report, _archive) in backend_runs.items():
        assert report.extras["emulation_backend"] == name


# -- windowed internals: calibration cache + framework timing --------------


def test_calibration_is_cached_per_platform_content():
    clear_calibration_cache()
    scenario = equivalence_scenario("windowed")
    scenario.build()  # building the framework calibrates the backend
    assert calibration_cache_size() == 1
    scenario.build()  # same platform content: cache hit, no re-run
    assert calibration_cache_size() == 1


def test_timing_breakdown_in_report_extras(backend_runs):
    report, _ = backend_runs["event_driven"]
    timing = report.extras["timing"]
    assert set(timing) == {"emulate", "power", "dispatch", "solve", "other"}
    assert timing["emulate"] > 0.0
    assert timing["power"] > 0.0
    assert timing["solve"] > 0.0
    assert all(value >= 0.0 for value in timing.values())


# -- CLI --------------------------------------------------------------------


def test_cli_lists_emulation_backends(capsys):
    from repro.__main__ import main

    assert main(["--list-emulation-backends"]) == 0
    out = capsys.readouterr().out
    for name in EMULATION_BACKENDS.names():
        assert name in out


def test_cli_rejects_unknown_emulation_backend(capsys):
    from repro.__main__ import main

    assert main(["matrix_quickstart", "--emulation-backend", "bogus"]) == 2
    assert "unknown emulation backend" in capsys.readouterr().err
