"""Platform performance-model tests (Table 3 calibration)."""

import pytest

from repro.emulation.perfmodel import (
    DEFAULT_MPARM_MODEL,
    TABLE3_ROWS,
    EmulatorPerformanceModel,
    fit_mparm_model,
)
from repro.util.units import MHZ


def test_emulator_wall_clock_flat_in_system_size():
    emu = EmulatorPerformanceModel()
    cycles = 120_000_000
    base = emu.wall_seconds(cycles)
    assert base == pytest.approx(1.2)
    # The paper's key observation: wall-clock does not grow with cores.
    assert emu.wall_seconds(cycles, virtual_hz=500 * MHZ) == pytest.approx(base)


def test_emulator_freezes_add():
    emu = EmulatorPerformanceModel()
    assert emu.wall_seconds(1_000_000, freeze_seconds=0.5) == pytest.approx(
        0.01 + 0.5
    )
    with pytest.raises(ValueError):
        emu.wall_seconds(-1)


def test_fit_reproduces_published_speedups():
    model = fit_mparm_model()
    for name, (published, predicted, error) in model.fit_residuals.items():
        assert abs(error) < 0.15, f"{name}: {published} vs {predicted:.0f}"


def test_mparm_cost_grows_with_everything():
    model = DEFAULT_MPARM_MODEL
    base = model.seconds_per_cycle(cores=1, components=7)
    assert model.seconds_per_cycle(cores=4, components=22) > base
    assert model.seconds_per_cycle(cores=1, components=30) > base
    assert model.seconds_per_cycle(cores=1, components=7, noc_switches=4) > base
    assert model.seconds_per_cycle(cores=1, components=7, io_bound=True) > base
    assert model.seconds_per_cycle(cores=1, components=7, thermal=True) > base


def test_components_default_from_cores():
    model = DEFAULT_MPARM_MODEL
    assert model.seconds_per_cycle(cores=4) == pytest.approx(
        model.seconds_per_cycle(cores=4, components=22)
    )


def test_mparm_rate_orders_of_magnitude():
    """The Table 3 ratios imply a ~MHz-class single-core rate, dropping
    several-fold by 8 cores (the text's 120 kHz quote is one of the
    paper's internal inconsistencies — see the module docstring)."""
    model = DEFAULT_MPARM_MODEL
    rate_1core = model.rate_hz(cores=1, components=7)
    rate_8core = model.rate_hz(cores=8, components=42)
    assert 100e3 < rate_1core < 5e6
    assert rate_8core < rate_1core / 4


def test_speedup_shape_three_orders_of_magnitude():
    """The headline claim: emulator-vs-simulator speedups grow from tens
    to three orders of magnitude as the system grows."""
    emu = EmulatorPerformanceModel()
    model = DEFAULT_MPARM_MODEL
    cycles = 120_000_000
    speedups = []
    for name, cores, comps, switches, io_bound, thermal, *_ in TABLE3_ROWS:
        mparm = model.wall_seconds(cycles, cores, comps, switches, io_bound, thermal)
        ours = emu.wall_seconds(cycles)
        speedups.append(mparm / ours)
    assert speedups[0] < speedups[2] < speedups[-1]
    assert speedups[0] > 50
    assert speedups[-1] > 1000


def test_table3_rows_well_formed():
    assert len(TABLE3_ROWS) == 6
    for name, cores, comps, switches, io_bound, thermal, mparm_s, emu_s, speedup in (
        TABLE3_ROWS
    ):
        assert cores >= 1 and comps > cores
        assert mparm_s > emu_s
        assert speedup > 1
