"""Registry cross-product property test.

Every registered workload x emulation backend x solver backend runs one
short scenario on a shared two-core platform; every combination must

* complete cleanly with the same completion semantics as the
  ``event_driven`` reference for its workload,
* keep per-window total power within the emulation backend's own
  declared ``power_tolerance_pct`` of that reference, and
* (exact backends) reproduce the run bit-for-bit when run twice.

One heterogeneous (ppc405 + microblaze) platform rides along through
every emulation backend.  New registry entries are covered here
automatically — a workload or backend that cannot survive the cross
product fails at registration time, not in someone's sweep.
"""

import numpy as np
import pytest

from repro.core.framework import FrameworkConfig
from repro.emulation.backends import EMULATION_BACKENDS, make_emulation_backend
from repro.mpsoc.platform import CoreConfig, MPSoCConfig
from repro.scenario.registry import SOLVER_BACKENDS, WORKLOADS
from repro.scenario.spec import Scenario, WorkloadSpec
from repro.trace.capture import PowerTraceCapture
from repro.util.units import KB, MHZ

#: Tiny parameterizations — the point is coverage, not load.
WORKLOAD_PARAMS = {
    "matrix": {"n": 4, "iterations": 1},
    "dithering": {"width": 8, "height": 8, "num_images": 1},
    "shared_traffic": {"num_words": 256, "iterations": 2},
    "compute_burst": {"busy_loops": 200, "idle_loops": 50, "iterations": 2},
    "profiled": {
        "profile": {
            "name": "xprod",
            "cycles_per_iteration": 200.0,
            "utilization": [
                [["core", 0], 0.9], [["core", 1], 0.5],
                [["icache", 0], 0.4], [["icache", 1], 0.4],
                [["shared_mem", None], 0.2], [["bus", None], 0.3],
            ],
            "instructions_per_iteration": 150.0,
        },
        "total_iterations": 60,
    },
}

WORKLOAD_NAMES = WORKLOADS.names()
EMU_NAMES = EMULATION_BACKENDS.names()
SOLVER_NAMES = SOLVER_BACKENDS.names()
SAMPLING_S = 1e-5  # 1000 cycles per window at the 100 MHz default clock


def two_core_platform():
    from repro.mpsoc.cache import CacheConfig

    return MPSoCConfig(
        name="xprod2",
        cores=[CoreConfig(f"cpu{i}", spec="microblaze") for i in range(2)],
        icache=CacheConfig(name="i", size=4 * KB, line_size=16),
        dcache=CacheConfig(name="d", size=4 * KB, line_size=16),
        private_mem_size=4 * KB,
        shared_mem_size=16 * KB,
    )


def cross_scenario(workload, emu, solver):
    return Scenario(
        name=f"xprod_{workload}_{emu}_{solver}",
        platform=two_core_platform(),
        floorplan={"name": "hetero", "params": {"big": 0, "little": 2}},
        workload=WorkloadSpec(workload, dict(WORKLOAD_PARAMS[workload])),
        config=FrameworkConfig(
            sampling_period_s=SAMPLING_S,
            solver_backend=solver,
            emulation_backend=emu,
            spreader_resolution=(2, 2),
        ),
        max_windows=60,
    )


def execute(scenario):
    framework = scenario.build()
    capture = framework.attach_capture(PowerTraceCapture())
    report = framework.run(max_windows=scenario.max_windows)
    archive = capture.to_archive(framework, scenario=scenario, report=report)
    return report, archive


_RUNS = {}


def run_combo(workload, emu, solver):
    key = (workload, emu, solver)
    if key not in _RUNS:
        _RUNS[key] = execute(cross_scenario(workload, emu, solver))
    return _RUNS[key]


def reference(workload):
    return run_combo(workload, "event_driven", "sparse_be")


# -- the full cross product -------------------------------------------------


@pytest.mark.parametrize("solver", SOLVER_NAMES)
@pytest.mark.parametrize("emu", EMU_NAMES)
@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_cross_product_within_declared_tolerance(workload, emu, solver):
    ref_report, ref_archive = reference(workload)
    report, archive = run_combo(workload, emu, solver)
    backend = make_emulation_backend(emu)

    # Completion semantics match the reference.
    assert report.workload_done == ref_report.workload_done
    assert report.windows > 0
    assert report.instructions == pytest.approx(
        ref_report.instructions, rel=5e-3
    )

    # Per-window total power within the backend's declared band.
    ref_power = ref_archive.power_w.sum(axis=1)
    power = archive.power_w.sum(axis=1)
    overlap = min(len(ref_power), len(power))
    assert overlap >= 3
    deviation = np.abs(power[:overlap] - ref_power[:overlap]) / np.maximum(
        ref_power[:overlap], 1e-12
    )
    worst_pct = float(np.max(deviation)) * 100.0
    if emu == "event_driven":
        # The solver backend is thermal-side only: the emulated power
        # stream must be bit-for-bit solver-independent.
        assert np.array_equal(archive.power_w, ref_archive.power_w)
    else:
        assert worst_pct <= backend.power_tolerance_pct, (
            f"{workload} on {emu}/{solver} deviates {worst_pct:.2f}% from "
            f"event_driven, declared {backend.power_tolerance_pct:g}%"
        )

    # The run produced sane thermal output on every solver backend.
    assert report.peak_temperature_k > 273.0


@pytest.mark.parametrize(
    "emu", [n for n in EMU_NAMES if make_emulation_backend(n).exact]
)
@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_exact_backends_run_twice_bit_for_bit(workload, emu):
    report, archive = run_combo(workload, emu, "sparse_be")
    again_report, again_archive = execute(
        cross_scenario(workload, emu, "sparse_be")
    )
    assert archive.metadata["trace_digest"] == again_archive.metadata[
        "trace_digest"
    ]
    assert np.array_equal(archive.power_w, again_archive.power_w)
    assert report.instructions == again_report.instructions


# -- the heterogeneous rider ------------------------------------------------


def hetero_scenario(emu):
    platform = MPSoCConfig(
        name="xprod_hetero",
        cores=[
            CoreConfig("big0", spec="ppc405", frequency_hz=200 * MHZ),
            CoreConfig("lil0", spec="microblaze", frequency_hz=100 * MHZ),
        ],
        private_mem_size=4 * KB,
        shared_mem_size=16 * KB,
    )
    return Scenario(
        name=f"xprod_hetero_{emu}",
        platform=platform,
        floorplan={"name": "hetero", "params": {"big": 1, "little": 1}},
        workload=WorkloadSpec("compute_burst",
                              {"busy_loops": 200, "iterations": 2}),
        config=FrameworkConfig(
            sampling_period_s=SAMPLING_S,
            virtual_hz=200 * MHZ,
            emulation_backend=emu,
            spreader_resolution=(2, 2),
        ),
        max_windows=60,
    )


@pytest.fixture(scope="module")
def hetero_reference():
    return execute(hetero_scenario("event_driven"))


@pytest.mark.parametrize("emu", EMU_NAMES)
def test_heterogeneous_platform_crosses_every_backend(emu, hetero_reference):
    ref_report, ref_archive = hetero_reference
    report, archive = execute(hetero_scenario(emu))
    backend = make_emulation_backend(emu)
    assert report.workload_done == ref_report.workload_done
    ref_power = ref_archive.power_w.sum(axis=1)
    power = archive.power_w.sum(axis=1)
    overlap = min(len(ref_power), len(power))
    assert overlap >= 3
    deviation = np.abs(power[:overlap] - ref_power[:overlap]) / np.maximum(
        ref_power[:overlap], 1e-12
    )
    assert float(np.max(deviation)) * 100.0 <= max(
        backend.power_tolerance_pct, 1e-9
    )
