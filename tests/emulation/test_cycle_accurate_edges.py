"""Signal-level engine edge cases beyond the equivalence tests."""

import pytest

from repro.emulation.cycle_accurate import CycleAccurateEngine
from repro.mpsoc import build_platform
from repro.mpsoc.asm import assemble
from repro.mpsoc.platform import MMIO_BASE, SHARED_BASE
from tests.conftest import small_config


def run_ca(source, num_cores=1, **cfg):
    platform = build_platform(small_config(num_cores, **cfg))
    program = assemble(source)
    for index in range(num_cores):
        platform.load_program(index, program)
    engine = CycleAccurateEngine(platform)
    engine.run()
    return platform, engine


def test_budget_guard():
    platform = build_platform(small_config(1))
    platform.load_program(0, assemble("main: j 0"))  # infinite loop
    engine = CycleAccurateEngine(platform)
    with pytest.raises(RuntimeError, match="budget"):
        engine.run(max_cycles=500)


def test_mmio_access_through_ca_engine():
    platform, _ = run_ca(
        f"""
        main:   li  r1, 0x{MMIO_BASE:08x}
                lw  r2, 4(r1)      # sniffer kind register (unmapped: 0)
                sw  r2, 0(r1)
                halt
        """
    )
    assert platform.cores[0].halted


def test_uncached_platform_runs():
    platform, engine = run_ca(
        "main: li r1, 5\nloop: addi r1, r1, -1\n      bgt r1, r0, loop\n      halt",
        icache=None,
        dcache=None,
    )
    assert platform.cores[0].regs[1] == 0
    assert engine.cycle > 0


def test_tdma_bus_under_ca_engine():
    from repro.mpsoc.bus import ARB_TDMA, BusConfig

    source = f"""
        main:   li   r1, 0x{SHARED_BASE:08x}
                li   r2, 10
        loop:   lw   r3, 0(r1)
                addi r2, r2, -1
                bgt  r2, r0, loop
                halt
    """
    platform, engine = run_ca(
        source,
        num_cores=2,
        bus=BusConfig(name="t", arbitration=ARB_TDMA, tdma_slot_cycles=4),
    )
    assert all(core.halted for core in platform.cores)
    # TDMA slots idle: somebody waited.
    waits = platform.interconnect.per_master_wait
    assert sum(waits.values()) > 0


def test_write_back_caches_under_ca_engine():
    from repro.mpsoc.cache import CacheConfig, WRITE_BACK

    source = """
        main:   li   r1, 0
                li   r2, 64
        loop:   sw   r2, 0(r1)
                addi r1, r1, 64     # walk conflicting lines
                addi r2, r2, -1
                bgt  r2, r0, loop
                halt
    """
    platform, _ = run_ca(
        source,
        dcache=CacheConfig(
            name="d", size=256, line_size=16, write_policy=WRITE_BACK
        ),
        private_mem_size=16 * 1024,
    )
    stats = platform.dcaches[0].stats()
    assert stats["writebacks"] > 0


def test_evaluations_counter_matches_cycles_times_components():
    platform, engine = run_ca("main: li r1, 3\n      halt")
    components = sum(1 for _ in platform.components())
    assert engine.evaluations == engine.cycle * components
