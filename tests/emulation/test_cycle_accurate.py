"""Signal-level engine tests: equivalence with the event-driven engine.

The headline integration property: both engines execute the same
workload to the same architectural state, and on single-core private
traffic the cycle counts agree exactly (the fast engine's busy-until
bookkeeping and the signal engine's per-cycle countdowns implement the
same timing rules).
"""

import pytest

from repro.emulation.cycle_accurate import CycleAccurateEngine
from repro.emulation.engine import EventDrivenEngine
from repro.mpsoc import build_platform, generate_custom
from repro.workloads.matrix import expected_checksum, matrix_programs
from tests.conftest import small_config


def build_pair(num_cores=1, interconnect="bus", noc_factory=None):
    platforms = []
    for _ in range(2):
        noc = noc_factory() if noc_factory else None
        platform = build_platform(
            small_config(num_cores, interconnect=interconnect, noc=noc)
        )
        platform.load_program_all(matrix_programs(num_cores, n=5, iterations=1))
        platforms.append(platform)
    return platforms


def test_single_core_engines_agree_exactly():
    fast_platform, ca_platform = build_pair(1)
    fast = EventDrivenEngine(fast_platform)
    _, fast_cycles = fast.run_to_completion()
    ca = CycleAccurateEngine(ca_platform)
    ca_cycles = ca.run()
    assert fast_cycles == ca_cycles
    assert fast_platform.cores[0].regs == ca_platform.cores[0].regs
    assert fast_platform.cores[0].instructions == ca_platform.cores[0].instructions
    assert fast_platform.icaches[0].stats() == ca_platform.icaches[0].stats()
    assert fast_platform.dcaches[0].stats() == ca_platform.dcaches[0].stats()


def test_multicore_engines_agree_functionally():
    fast_platform, ca_platform = build_pair(2)
    EventDrivenEngine(fast_platform).run_to_completion()
    CycleAccurateEngine(ca_platform).run()
    for i in range(2):
        want = expected_checksum(5, i)
        assert fast_platform.shared_mem.read_word(4 * i) == want
        assert ca_platform.shared_mem.read_word(4 * i) == want
        assert (
            fast_platform.cores[i].instructions
            == ca_platform.cores[i].instructions
        )


def test_multicore_cycle_counts_close():
    """Contention interleaving may differ slightly between engines, but
    total cycles must agree within a few percent."""
    fast_platform, ca_platform = build_pair(4)
    _, fast_cycles = EventDrivenEngine(fast_platform).run_to_completion()
    ca_cycles = CycleAccurateEngine(ca_platform).run()
    assert ca_cycles == pytest.approx(fast_cycles, rel=0.05)


def test_noc_cycle_accurate_delivers_everything():
    fast_platform, ca_platform = build_pair(
        2, interconnect="noc", noc_factory=lambda: generate_custom("n", 2, ring=False)
    )
    EventDrivenEngine(fast_platform).run_to_completion()
    ca = CycleAccurateEngine(ca_platform)
    ca.run()
    for i in range(2):
        want = expected_checksum(5, i)
        assert ca_platform.shared_mem.read_word(4 * i) == want
    # Flit accounting matches between the engines (same OCP stream).
    fast_flits = fast_platform.interconnect.stats()["flits"]
    ca_flits = ca_platform.interconnect.stats()["flits"]
    assert fast_flits == ca_flits


def test_evaluations_grow_with_system_size():
    """The signal engine's cost driver: evaluations ~ cycles x components."""
    small_platform, _ = build_pair(1)
    big_platform, _ = build_pair(4)
    small_engine = CycleAccurateEngine(small_platform)
    big_engine = CycleAccurateEngine(big_platform)
    small_engine.run()
    big_engine.run()
    small_rate = small_engine.evaluations / small_engine.cycle
    big_rate = big_engine.evaluations / big_engine.cycle
    assert big_rate > small_rate * 1.5  # more components per cycle


def test_signal_engine_is_slower_in_wall_clock():
    """The measured Table 3 effect, in miniature: evaluating every
    component every cycle costs more host time per simulated cycle."""
    import time

    fast_platform, ca_platform = build_pair(2)
    t0 = time.perf_counter()
    _, fast_cycles = EventDrivenEngine(fast_platform).run_to_completion()
    fast_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    ca_cycles = CycleAccurateEngine(ca_platform).run()
    ca_wall = time.perf_counter() - t0
    fast_rate = fast_cycles / fast_wall
    ca_rate = ca_cycles / ca_wall
    assert fast_rate > ca_rate  # the emulator-style engine is faster
