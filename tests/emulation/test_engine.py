"""Event-driven engine tests: windows, ordering, idle accounting."""

import pytest

from repro.emulation.engine import EventDrivenEngine
from repro.mpsoc.asm import assemble
from repro.mpsoc.platform import SHARED_BASE


def counting_program(n):
    return assemble(
        f"""
        main:   li   r1, {n}
        loop:   addi r1, r1, -1
                bgt  r1, r0, loop
                halt
        """
    )


def test_run_window_stops_at_boundary(platform1):
    platform1.load_program(0, counting_program(10_000))
    engine = EventDrivenEngine(platform1)
    engine.run_window(100)
    core = platform1.cores[0]
    assert 100 <= core.cycle <= 110  # one instruction of overshoot at most
    assert not core.halted


def test_windows_resume_where_they_stopped(platform1):
    platform1.load_program(0, counting_program(50))
    engine = EventDrivenEngine(platform1)
    engine.run_window(40)
    mid_instructions = platform1.cores[0].instructions
    engine.run_window(10**9, idle_to_boundary=False)
    assert platform1.cores[0].instructions > mid_instructions
    assert platform1.cores[0].halted


def test_halted_cores_idle_to_boundary(platform2):
    platform2.load_program(0, counting_program(5))
    platform2.load_program(1, counting_program(5000))
    engine = EventDrivenEngine(platform2)
    engine.run_window(5000)
    fast_core = platform2.cores[0]
    assert fast_core.halted
    assert fast_core.cycle == 5000
    assert fast_core.idle_cycles > 0


def test_run_to_completion(platform2):
    platform2.load_program(0, counting_program(100))
    platform2.load_program(1, counting_program(200))
    engine = EventDrivenEngine(platform2)
    instructions, end_cycle = engine.run_to_completion()
    assert engine.all_halted
    assert instructions == sum(c.instructions for c in platform2.cores)
    assert end_cycle == max(c.cycle for c in platform2.cores)
    # Both cores are aligned to the end of the run.
    assert platform2.cores[0].cycle == end_cycle


def test_run_to_completion_budget(platform1):
    platform1.load_program(0, counting_program(10**6))
    engine = EventDrivenEngine(platform1)
    with pytest.raises(RuntimeError, match="budget"):
        engine.run_to_completion(max_cycles=10**5, max_instructions=1000)


def test_global_time_ordering_on_shared_memory(platform2):
    """Cores write a shared counter; ordering must follow local time."""
    incr = assemble(
        f"""
        main:   li   r5, 0x{SHARED_BASE:08x}
                li   r2, 100
        loop:   lw   r3, 0(r5)
                addi r3, r3, 1
                sw   r3, 0(r5)
                addi r2, r2, -1
                bgt  r2, r0, loop
                halt
        """
    )
    platform2.load_program(0, incr)
    platform2.load_program(1, incr)
    engine = EventDrivenEngine(platform2)
    engine.run_to_completion()
    total = platform2.shared_mem.read_word(0)
    # Unsynchronized increments may race (lost updates are physical), but
    # the count must be between one core's worth and the sum.
    assert 100 <= total <= 200


def test_instructions_counter_accumulates(platform1):
    platform1.load_program(0, counting_program(30))
    engine = EventDrivenEngine(platform1)
    engine.run_window(20)
    engine.run_window(10**9, idle_to_boundary=False)
    assert engine.instructions_executed == platform1.cores[0].instructions
