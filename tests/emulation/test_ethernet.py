"""Ethernet link model tests."""

import pytest

from repro.emulation.ethernet import (
    ETHERNET_100_MBIT,
    MAC_FRAME_OVERHEAD_BYTES,
    EthernetLink,
)


def test_frame_count():
    link = EthernetLink()
    assert link.frame_count(0) == 0
    assert link.frame_count(1) == 1
    assert link.frame_count(1500) == 1
    assert link.frame_count(1501) == 2
    assert link.frame_count(4500) == 3


def test_wire_bytes_include_overhead():
    link = EthernetLink()
    assert link.wire_bytes(100) == 100 + MAC_FRAME_OVERHEAD_BYTES
    assert link.wire_bytes(3000) == 3000 + 2 * MAC_FRAME_OVERHEAD_BYTES


def test_transfer_time_scales_with_bandwidth():
    fast = EthernetLink(bandwidth_bps=100e6)
    slow = EthernetLink(bandwidth_bps=10e6)
    payload = 10_000
    assert slow.transfer_time(payload) == pytest.approx(
        10 * fast.transfer_time(payload)
    )
    assert fast.transfer_time(0) == 0.0


def test_100mbit_order_of_magnitude():
    link = EthernetLink(bandwidth_bps=ETHERNET_100_MBIT)
    # ~1250 bytes/10ms at 1 Mbit; at 100 Mbit a 1 kB payload ~83 us.
    assert link.transfer_time(1000) == pytest.approx(
        (1000 + MAC_FRAME_OVERHEAD_BYTES) * 8 / 100e6
    )


def test_send_accounts():
    link = EthernetLink()
    link.send(2000)
    link.send(100)
    assert link.bytes_sent == 2100
    assert link.frames_sent == 3


def test_round_trip_time_adds_latency():
    link = EthernetLink(latency_s=1e-3)
    rtt = link.round_trip_time(1000, 200)
    assert rtt == pytest.approx(
        link.transfer_time(1000) + link.transfer_time(200) + 1e-3
    )


def test_validation():
    with pytest.raises(ValueError):
        EthernetLink(bandwidth_bps=0)
