"""Tests for the shared helpers (units, records)."""

import pytest
from hypothesis import given, strategies as st

from repro.util.records import Table, format_duration, format_si
from repro.util.units import (
    GHZ,
    KB,
    MB,
    MHZ,
    MM2,
    MS,
    MW,
    UM,
    celsius_to_kelvin,
    kelvin_to_celsius,
)


def test_unit_constants():
    assert 1 * GHZ == 1000 * MHZ
    assert 1 * MB == 1024 * KB
    assert 1 * MM2 == 1e-6
    assert 350 * UM == pytest.approx(3.5e-4)
    assert 10 * MS == pytest.approx(0.01)
    assert 5.5 * MW == pytest.approx(0.0055)


def test_temperature_conversions():
    assert celsius_to_kelvin(0.0) == pytest.approx(273.15)
    assert kelvin_to_celsius(373.15) == pytest.approx(100.0)


@given(st.floats(min_value=-1000, max_value=1000))
def test_temperature_roundtrip(t):
    assert kelvin_to_celsius(celsius_to_kelvin(t)) == pytest.approx(t)


def test_format_si():
    assert format_si(0.0055, "W") == "5.5 mW"
    assert format_si(1.5, "W") == "1.5 W"
    assert format_si(100e6, "Hz") == "100 MHz"
    assert format_si(0, "W") == "0 W"
    assert format_si(2e-9, "s") == "2 ns"


def test_format_duration():
    assert format_duration(1.2) == "1.20 sec"
    assert format_duration(302) == "5' 02 sec"
    assert format_duration(119.9) == "2' 00 sec"  # no "1' 60 sec"
    assert format_duration(172800) == "2.0 days"
    assert format_duration(0.01) == "10.00 ms"
    with pytest.raises(ValueError):
        format_duration(-1)


@given(st.floats(min_value=60, max_value=86399))
def test_format_duration_never_shows_60_seconds(seconds):
    text = format_duration(seconds)
    assert "' 60" not in text


def test_table_rendering():
    table = Table(["a", "bb"], title="T")
    table.add_row(1, "xx")
    table.add_row(22, "y")
    text = str(table)
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_table_rejects_wrong_arity():
    table = Table(["a"])
    with pytest.raises(ValueError):
        table.add_row(1, 2)
