"""The ThermalPolicy protocol: lifecycle hooks, stats export, discovery."""

import pytest

from repro.core.framework import EmulationFramework, FrameworkConfig
from repro.core.workload_model import ActivityProfile, ProfiledWorkload
from repro.policy import (
    BUILTIN_POLICIES,
    EXAMPLE_PARAMS,
    ThermalPolicy,
    describe_policies,
    example_params,
)
from repro.scenario.registry import POLICIES
from repro.thermal.floorplan import floorplan_4xarm11
from repro.util.units import MHZ


def stress_profile():
    utilization = {("core", i): 0.95 for i in range(4)}
    return ActivityProfile(name="p", cycles_per_iteration=1000,
                           utilization=utilization)


def make_framework(policy, **config_overrides):
    return EmulationFramework(
        platform=None,
        floorplan=floorplan_4xarm11(),
        workload=ProfiledWorkload(stress_profile(), total_iterations=10**8),
        policy=policy,
        config=FrameworkConfig(
            virtual_hz=500 * MHZ, spreader_resolution=(2, 2), **config_overrides
        ),
    )


def test_base_protocol_defaults():
    policy = ThermalPolicy()
    assert policy.bind(framework=None) is policy
    assert policy.core_frequencies() is None
    assert policy.report() == {"name": "base"}
    with pytest.raises(NotImplementedError):
        policy.react(None, None, 0.0)


def test_every_builtin_is_registered():
    for name in BUILTIN_POLICIES:
        assert name in POLICIES


def test_every_registered_policy_has_example_params():
    assert set(EXAMPLE_PARAMS) == set(POLICIES.names())


def test_example_params_returns_copies():
    first = example_params("per_core")
    first["core_components"]["ghost"] = 9
    assert "ghost" not in example_params("per_core")["core_components"]


def test_example_params_unknown_name():
    with pytest.raises(ValueError, match="no example params"):
        example_params("no_such_policy")


def test_example_params_build_working_policies():
    for name in POLICIES.names():
        policy = POLICIES.get(name)(**example_params(name))
        assert hasattr(policy, "react")


def test_describe_policies_rows():
    rows = describe_policies(POLICIES)
    assert [name for name, _, _ in rows] == POLICIES.names()
    by_name = {name: (params, summary) for name, params, summary in rows}
    assert "low_hz" in by_name["dual_threshold"][0]
    assert by_name["none"][1].startswith("The un-managed baseline")


def test_framework_calls_bind_at_launch():
    class Recording(ThermalPolicy):
        name = "recording"

        def __init__(self):
            self.bound_to = None

        def bind(self, framework):
            self.bound_to = framework
            return self

        def react(self, sensor_bank, vpcm, time_s):
            return vpcm.virtual_hz

    policy = Recording()
    framework = make_framework(policy)
    assert policy.bound_to is framework


def test_duck_typed_policy_without_hooks_still_works():
    class Legacy:
        def react(self, sensor_bank, vpcm, time_s):
            return vpcm.virtual_hz

        def core_frequencies(self):
            return None

    framework = make_framework(Legacy())
    framework.run(max_windows=3)
    report = framework.report()
    assert "policy" not in report.extras  # no report() hook, no stats


def test_policy_stats_reach_run_report_extras():
    framework = make_framework(POLICIES.get("dual_threshold")())
    report = framework.run(max_windows=30)
    stats = report.extras["policy"]
    assert stats["name"] == "dual-threshold-dfs"
    assert stats["switches"] >= 0
