"""Property: every registered policy round-trips through its PolicySpec.

For each name in ``POLICIES``: ``PolicySpec -> to_dict -> JSON ->
from_dict -> build`` must yield a working policy, and a 50-window
closed-loop run from the rebuilt spec must reproduce the original run's
trace digest sample for sample — serialization can neither drop nor
distort a single policy parameter without this failing.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.workload_model import ActivityProfile
from repro.policy import example_params
from repro.scenario.registry import POLICIES
from repro.scenario.spec import PolicySpec, Scenario
from repro.util.units import MHZ


def _stress_profile_dict():
    utilization = {("core", i): 0.95 for i in range(4)}
    utilization[("shared_mem", None)] = 0.3
    return ActivityProfile(
        name="stress",
        cycles_per_iteration=1000.0,
        utilization=utilization,
        instructions_per_iteration=900.0,
    ).to_dict()


def _scenario(policy_spec, windows=50):
    return Scenario(
        name=f"roundtrip_{policy_spec.name}",
        workload={
            "name": "profiled",
            "params": {
                "profile": _stress_profile_dict(),
                "total_iterations": 10**9,
            },
        },
        floorplan="4xarm11",
        policy=policy_spec,
        config={
            "virtual_hz": 500 * MHZ,
            "spreader_resolution": [2, 2],
            "initial_temperature_kelvin": 340.0,  # policies act immediately
        },
        max_windows=windows,
    )


def _trace_signature(framework):
    trace = framework.trace
    return (
        trace.digest(),
        [round(t, 9) for t in trace.max_temps()],
        trace.frequencies(),
    )


@pytest.mark.parametrize("name", POLICIES.names())
def test_policy_spec_round_trip_reproduces_the_run(name):
    spec = PolicySpec(name, example_params(name))
    rebuilt = PolicySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt == spec

    original, _ = _scenario(spec).run()
    replayed, _ = _scenario(rebuilt).run()
    assert _trace_signature(replayed) == _trace_signature(original)
    # The run exercised the policy (sensors updated, reactions ran).
    assert len(original.trace) == 50


@pytest.mark.parametrize("name", POLICIES.names())
def test_registry_build_accepts_example_params(name):
    policy = POLICIES.get(name)(**example_params(name))
    assert policy.report()["name"]


@settings(max_examples=10, deadline=None)
@given(
    high=st.floats(min_value=200.0, max_value=600.0),
    ratio=st.floats(min_value=0.1, max_value=0.9),
)
def test_dual_threshold_params_survive_json(high, ratio):
    spec = PolicySpec(
        "dual_threshold",
        {"high_hz": high * MHZ, "low_hz": high * ratio * MHZ},
    )
    rebuilt = PolicySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    policy = POLICIES.get(rebuilt.name)(**rebuilt.params)
    assert policy.high_hz == pytest.approx(high * MHZ)
    assert policy.low_hz == pytest.approx(high * ratio * MHZ)
