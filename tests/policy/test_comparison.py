"""The policy-comparison pipeline: sweep + batched run + distillation."""

import json

import pytest

from repro.core.workload_model import ActivityProfile
from repro.policy.comparison import (
    compare_policies,
    comparison_scenarios,
    outcomes_from_results,
)
from repro.scenario.runner import Runner
from repro.scenario.spec import PolicySpec, Scenario
from repro.scenario.sweep import Variant
from repro.util.units import MHZ


def _base(windows=60):
    utilization = {("core", i): 0.97 for i in range(4)}
    profile = ActivityProfile(
        name="stress",
        cycles_per_iteration=1000.0,
        utilization=utilization,
        instructions_per_iteration=850.0,
    )
    return Scenario(
        name="cmp",
        workload={
            "name": "profiled",
            "params": {"profile": profile.to_dict(), "total_iterations": 10**9},
        },
        floorplan="4xarm11",
        config={
            "virtual_hz": 500 * MHZ,
            "spreader_resolution": [2, 2],
            "initial_temperature_kelvin": 345.0,  # policies act immediately
        },
        max_windows=windows,
    )


def test_comparison_scenarios_named_by_label():
    _, scenarios = comparison_scenarios(
        _base(), ["none", PolicySpec("dual_threshold"),
                  Variant("tuned", {"name": "stop_go", "params": {}})]
    )
    assert [s.name for s in scenarios] == ["none", "dual_threshold", "tuned"]
    assert scenarios[2].policy.name == "stop_go"


def test_duplicate_labels_rejected():
    with pytest.raises(ValueError, match="unique"):
        comparison_scenarios(_base(), ["none", "none"])


def test_compare_policies_outcomes_and_throughput_loss():
    comparison = compare_policies(
        _base(), ["none", "dual_threshold", "stop_go"]
    )
    assert not comparison.errors
    assert [o.policy for o in comparison.outcomes] == [
        "none", "dual_threshold", "stop_go",
    ]
    unmanaged = comparison.outcome("none")
    managed = comparison.outcome("dual_threshold")
    # The unmanaged baseline anchors throughput loss at zero.
    assert unmanaged.throughput_loss == 0.0
    assert managed.peak_temperature_k < unmanaged.peak_temperature_k
    assert managed.throughput_loss > 0.0
    assert managed.time_above_threshold_s <= unmanaged.time_above_threshold_s
    # Policy stats flowed through RunReport.extras into the outcomes.
    assert managed.stats["switches"] >= 1
    assert comparison.outcome("stop_go").stats["name"] == "stop-go"


def test_compare_policies_serializes():
    comparison = compare_policies(_base(windows=20), ["none", "dual_threshold"])
    payload = json.loads(json.dumps(comparison.to_dict()))
    assert payload["threshold_kelvin"] == 350.0
    assert len(payload["outcomes"]) == 2
    assert payload["outcomes"][0]["policy"] == "none"
    assert payload["outcomes"][0]["throughput"] > 0


def test_broken_policy_lands_in_errors_not_raise():
    comparison = compare_policies(
        _base(windows=10),
        ["none", Variant("typo", {"name": "per_core",
                                  "params": {"core_components": {"ghost": 0}}})],
    )
    assert "typo" in comparison.errors
    assert "ghost" in comparison.errors["typo"]
    assert [o.policy for o in comparison.outcomes] == ["none"]


def test_unknown_outcome_raises_keyerror():
    comparison = compare_policies(_base(windows=5), ["none"])
    with pytest.raises(KeyError):
        comparison.outcome("missing")


def test_unbatched_path_matches_batched():
    serial = compare_policies(
        _base(windows=30), ["none", "dual_threshold"], batched=False
    )
    batched = compare_policies(
        _base(windows=30), ["none", "dual_threshold"], batched=True
    )
    for a, b in zip(serial.outcomes, batched.outcomes):
        assert a.policy == b.policy
        assert a.peak_temperature_k == pytest.approx(
            b.peak_temperature_k, abs=0.5
        )


def test_scenario_result_policy_stats_property():
    _, scenarios = comparison_scenarios(_base(windows=10), ["dual_threshold"])
    [result] = Runner().run(scenarios)
    assert result.policy_stats["name"] == "dual-threshold-dfs"


def test_outcomes_from_results_without_traces_scores_zero_above():
    _, scenarios = comparison_scenarios(_base(windows=10), ["none"])
    results = Runner(capture_trace=False).run(scenarios)
    comparison = outcomes_from_results(results, threshold_kelvin=350.0)
    assert comparison.outcomes[0].time_above_threshold_s == 0.0
