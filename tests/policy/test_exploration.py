"""Unit tests of the exploration policies (ladder, PID, predictive,
per-domain) against hand-driven sensor banks and a real closed loop."""

import pytest

from repro.core.framework import EmulationFramework, FrameworkConfig
from repro.core.vpcm import Vpcm
from repro.core.workload_model import ActivityProfile, ProfiledWorkload
from repro.policy.exploration import (
    DvfsLadderPolicy,
    PerDomainPolicy,
    PidFrequencyPolicy,
    PredictiveThrottlePolicy,
)
from repro.thermal.floorplan import floorplan_4xarm11
from repro.thermal.sensors import SensorBank
from repro.util.units import MHZ


def make_bank(**temps):
    bank = SensorBank(list(temps), upper_kelvin=350.0, lower_kelvin=340.0)
    bank.update(temps, time=0.0)
    return bank


# -- DVFS ladder -------------------------------------------------------------


def test_ladder_walks_one_level_per_window():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = DvfsLadderPolicy(
        levels_hz=[500 * MHZ, 300 * MHZ, 100 * MHZ],
        step_down_kelvin=350.0,
        step_up_kelvin=340.0,
    )
    bank = make_bank(core0=355.0)
    assert policy.react(bank, vpcm, 0.01) == 300 * MHZ  # one step, not two
    assert policy.react(bank, vpcm, 0.02) == 100 * MHZ
    assert policy.react(bank, vpcm, 0.03) == 100 * MHZ  # clamped at bottom
    bank.update({"core0": 335.0}, 0.04)
    assert policy.react(bank, vpcm, 0.04) == 300 * MHZ
    assert policy.react(bank, vpcm, 0.05) == 500 * MHZ
    assert policy.switches == 4


def test_ladder_per_level_thresholds():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = DvfsLadderPolicy(
        levels_hz=[500 * MHZ, 300 * MHZ, 100 * MHZ],
        step_down_kelvin=[345.0, 355.0, 360.0],
        step_up_kelvin=[340.0, 341.0, 342.0],
    )
    bank = make_bank(core0=350.0)
    # Level 0 steps down at 345, but level 1 holds until 355.
    assert policy.react(bank, vpcm, 0.01) == 300 * MHZ
    assert policy.react(bank, vpcm, 0.02) == 300 * MHZ


def test_ladder_time_at_level_stats():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = DvfsLadderPolicy(levels_hz=[500 * MHZ, 100 * MHZ])
    bank = make_bank(core0=360.0)
    for window in range(1, 5):
        policy.react(bank, vpcm, window * 0.01)
    stats = policy.report()
    assert stats["final_level"] == 1
    # First react had no elapsed time; the three later windows sat at
    # the bottom level.
    assert stats["time_at_level_s"]["100MHz"] == pytest.approx(0.03)


def test_ladder_validation():
    with pytest.raises(ValueError, match="at least two"):
        DvfsLadderPolicy(levels_hz=[500 * MHZ])
    with pytest.raises(ValueError, match="strictly decreasing"):
        DvfsLadderPolicy(levels_hz=[100 * MHZ, 500 * MHZ])
    with pytest.raises(ValueError, match="one value per level"):
        DvfsLadderPolicy(levels_hz=[5e8, 1e8], step_down_kelvin=[350.0])
    with pytest.raises(ValueError, match="below the step-down"):
        DvfsLadderPolicy(levels_hz=[5e8, 1e8], step_up_kelvin=355.0)


# -- PID ---------------------------------------------------------------------


def test_pid_full_speed_when_cold():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = PidFrequencyPolicy(target_kelvin=345.0)
    bank = make_bank(core0=300.0)
    assert policy.react(bank, vpcm, 0.01) == policy.max_hz


def test_pid_slows_down_when_hot():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = PidFrequencyPolicy(target_kelvin=345.0, kp=60 * MHZ, ki=0.0)
    bank = make_bank(core0=350.0)
    policy.react(bank, vpcm, 0.01)
    target = policy.react(bank, vpcm, 0.02)
    # 5 K over target at 60 MHz/K: 300 MHz off the top rail.
    assert target == pytest.approx(500 * MHZ - 5.0 * 60 * MHZ)
    assert vpcm.virtual_hz == target


def test_pid_integral_does_not_wind_up_while_saturated():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = PidFrequencyPolicy(target_kelvin=345.0)
    bank = make_bank(core0=300.0)  # 45 K cold: pinned at max_hz
    for window in range(1, 50):
        policy.react(bank, vpcm, window * 0.01)
    assert policy.integral_error == 0.0


def test_pid_quantizes_on_step():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = PidFrequencyPolicy(
        target_kelvin=345.0, kp=60 * MHZ, ki=0.0, step_hz=50 * MHZ
    )
    bank = make_bank(core0=347.0)
    policy.react(bank, vpcm, 0.01)
    target = policy.react(bank, vpcm, 0.02)
    assert target % (50 * MHZ) == 0.0


def test_pid_validation():
    with pytest.raises(ValueError, match="min_hz"):
        PidFrequencyPolicy(min_hz=0.0)
    with pytest.raises(ValueError, match="gains"):
        PidFrequencyPolicy(kp=-1.0)
    with pytest.raises(ValueError, match="step_hz"):
        PidFrequencyPolicy(step_hz=0.0)


def test_pid_report_stats():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = PidFrequencyPolicy(target_kelvin=345.0)
    bank = make_bank(core0=347.0)
    policy.react(bank, vpcm, 0.01)
    policy.react(bank, vpcm, 0.02)
    stats = policy.report()
    assert stats["target_kelvin"] == 345.0
    assert stats["integral_error_ks"] > 0.0
    assert stats["switches"] >= 1


# -- predictive --------------------------------------------------------------


def test_predictive_throttles_before_the_threshold():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = PredictiveThrottlePolicy(
        threshold_kelvin=350.0, release_kelvin=342.0,
        history=3, lookahead_s=0.05,
    )
    bank = make_bank(core0=340.0)
    # Heating 2 K per 10 ms window: forecast = T + 200 K/s * 0.05 s.
    assert policy.react(bank, vpcm, 0.01) == policy.high_hz
    bank.update({"core0": 342.0}, 0.02)
    # Slope 200 K/s, forecast 342 + 10 = 352 >= 350: throttle now,
    # eight windows before the measured crossing.
    assert policy.react(bank, vpcm, 0.02) == policy.low_hz
    assert policy.preemptive_throttles == 1
    # Releases only on the measured temperature.
    bank.update({"core0": 341.0}, 0.03)
    assert policy.react(bank, vpcm, 0.03) == policy.high_hz
    assert policy.switches == 2


def test_predictive_reacts_to_measured_crossing_too():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = PredictiveThrottlePolicy(lookahead_s=0.0)
    bank = make_bank(core0=351.0)
    assert policy.react(bank, vpcm, 0.01) == policy.low_hz
    assert policy.preemptive_throttles == 0


def test_predictive_validation():
    with pytest.raises(ValueError, match="below the throttle"):
        PredictiveThrottlePolicy(threshold_kelvin=350.0, release_kelvin=350.0)
    with pytest.raises(ValueError, match="history"):
        PredictiveThrottlePolicy(history=1)
    with pytest.raises(ValueError, match="lookahead"):
        PredictiveThrottlePolicy(lookahead_s=-1.0)
    with pytest.raises(ValueError, match="low frequency"):
        PredictiveThrottlePolicy(high_hz=1e8, low_hz=1e8)


# -- per-domain --------------------------------------------------------------


def test_per_domain_gates_cores_and_fabric_independently():
    vpcm = Vpcm(virtual_hz=500 * MHZ)
    policy = PerDomainPolicy(core_components={"arm11_0": 0, "arm11_1": 1})
    bank = make_bank(arm11_0=360.0, arm11_1=320.0, shared_mem=320.0)
    policy.react(bank, vpcm, 0.01)
    # Hot core throttled, cool core at speed, fabric untouched.
    assert policy.core_frequencies()[0] == policy.core_low_hz
    assert policy.core_frequencies()[1] == policy.core_high_hz
    assert vpcm.virtual_hz == policy.fabric_high_hz
    # Now the shared memory latches hot: the fabric gates down while the
    # cool core keeps its own clock.
    bank.update({"shared_mem": 355.0}, 0.02)
    policy.react(bank, vpcm, 0.02)
    assert vpcm.virtual_hz == policy.fabric_low_hz
    assert policy.core_frequencies()[1] == policy.core_high_hz
    stats = policy.report()
    assert stats["core_switches"] == 1
    assert stats["fabric_switches"] == 1


def test_per_domain_derives_core_map_at_bind():
    policy = PerDomainPolicy()
    # bind() runs inside the framework constructor.
    EmulationFramework(
        platform=None,
        floorplan=floorplan_4xarm11(),
        workload=ProfiledWorkload(
            ActivityProfile(
                name="p",
                cycles_per_iteration=1000,
                utilization={("core", i): 0.9 for i in range(4)},
            ),
            total_iterations=10**6,
        ),
        policy=policy,
        config=FrameworkConfig(virtual_hz=500 * MHZ, spreader_resolution=(2, 2)),
    )
    assert policy.core_components == {f"arm11_{i}": i for i in range(4)}


def test_per_domain_validation():
    with pytest.raises(ValueError, match="core low"):
        PerDomainPolicy(core_high_hz=1e8, core_low_hz=1e8)
    with pytest.raises(ValueError, match="fabric low"):
        PerDomainPolicy(fabric_high_hz=1e8, fabric_low_hz=1e8)
