"""Synthetic workload-generator tests."""

import pytest

from repro.emulation.engine import EventDrivenEngine
from repro.mpsoc import build_platform
from repro.workloads.generator import compute_burst_program, shared_traffic_program
from tests.conftest import small_config


def test_shared_traffic_generates_interconnect_load():
    platform = build_platform(small_config(2))
    platform.load_program_all(
        [shared_traffic_program(i, num_words=32, reads_per_write=2) for i in range(2)]
    )
    EventDrivenEngine(platform).run_to_completion()
    bus = platform.interconnect.stats()
    # 2 cores x 32 iterations x (2 reads + 1 write) = 192 transactions.
    assert bus["transactions"] == 192
    assert platform.shared_mem.stats()["writes"] == 64


def test_shared_traffic_iterations_scale():
    platform = build_platform(small_config(1))
    platform.load_program(0, shared_traffic_program(0, num_words=8, iterations=3))
    EventDrivenEngine(platform).run_to_completion()
    assert platform.interconnect.stats()["transactions"] == 8 * 2 * 3


def test_compute_burst_runs_and_halts():
    platform = build_platform(small_config(1))
    platform.load_program(0, compute_burst_program(busy_loops=50, idle_loops=10))
    EventDrivenEngine(platform).run_to_completion()
    core = platform.cores[0]
    assert core.halted
    assert core.instructions > 50 * 4


def test_compute_burst_duty_shapes_activity():
    lean = build_platform(small_config(1))
    lean.load_program(0, compute_burst_program(busy_loops=100, idle_loops=0))
    EventDrivenEngine(lean).run_to_completion()
    padded = build_platform(small_config(1))
    padded.load_program(0, compute_burst_program(busy_loops=100, idle_loops=400))
    EventDrivenEngine(padded).run_to_completion()
    assert padded.cores[0].cycle > lean.cores[0].cycle


def test_generator_validation():
    with pytest.raises(ValueError):
        shared_traffic_program(0, num_words=0)
    with pytest.raises(ValueError):
        compute_burst_program(busy_loops=0)
