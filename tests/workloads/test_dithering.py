"""DITHERING driver tests: bit-exact agreement with the golden model."""

import numpy as np
import pytest

from repro.emulation.engine import EventDrivenEngine
from repro.mpsoc import build_platform
from repro.workloads.dithering import (
    dithering_programs,
    golden_dither,
    image_base,
    load_images,
    read_image,
)
from repro.workloads.images import synthetic_grey_image
from tests.conftest import small_config


def run_dithering(num_cores=2, width=16, height=16, num_images=1):
    platform = build_platform(small_config(num_cores))
    inputs = load_images(platform, width=width, height=height, num_images=num_images)
    platform.load_program_all(
        dithering_programs(
            num_cores, width=width, height=height, num_images=num_images
        )
    )
    EventDrivenEngine(platform).run_to_completion()
    return platform, inputs


def test_images_deterministic():
    a = synthetic_grey_image(16, 16, 0)
    assert np.array_equal(a, synthetic_grey_image(16, 16, 0))
    assert not np.array_equal(a, synthetic_grey_image(16, 16, 1))
    assert a.dtype == np.uint8
    with pytest.raises(ValueError):
        synthetic_grey_image(0, 4)


def test_golden_output_is_binary():
    out = golden_dither(synthetic_grey_image(16, 16), num_segments=2)
    assert set(np.unique(out)) <= {0, 255}


def test_golden_requires_divisible_segments():
    with pytest.raises(ValueError):
        golden_dither(synthetic_grey_image(8, 9), num_segments=2)


@pytest.mark.parametrize("num_cores", [1, 2, 4])
def test_emulated_matches_golden(num_cores):
    width = height = 16
    platform, inputs = run_dithering(num_cores, width, height, num_images=1)
    got = read_image(platform, 0, width, height)
    want = golden_dither(inputs[0], num_segments=num_cores)
    assert np.array_equal(got, want)


def test_two_images_both_dithered():
    width = height = 8
    platform, inputs = run_dithering(2, width, height, num_images=2)
    for index in range(2):
        got = read_image(platform, index, width, height)
        want = golden_dither(inputs[index], num_segments=2)
        assert np.array_equal(got, want), f"image {index}"


def test_segments_do_not_interfere():
    """Each core only writes its own rows: the result equals running the
    segments independently (race freedom of the parallel kernel)."""
    width = height = 16
    platform, inputs = run_dithering(4, width, height, num_images=1)
    got = read_image(platform, 0, width, height)
    rows = height // 4
    for segment in range(4):
        seg_in = inputs[0][segment * rows : (segment + 1) * rows]
        seg_golden = golden_dither(seg_in, num_segments=1)
        assert np.array_equal(got[segment * rows : (segment + 1) * rows], seg_golden)


def test_image_base_layout():
    assert image_base(0, 128, 128) + 128 * 128 == image_base(1, 128, 128)


def test_shared_memory_traffic_dominates():
    platform, _ = run_dithering(2, 16, 16)
    shared = platform.shared_mem.stats()
    # Every pixel read/write goes to shared memory.
    assert shared["reads"] + shared["writes"] > 16 * 16


def test_height_not_divisible_rejected():
    with pytest.raises(ValueError):
        dithering_programs(3, width=16, height=16)
