"""MATRIX driver tests against the NumPy golden model."""

import numpy as np
import pytest

from repro.emulation.engine import EventDrivenEngine
from repro.mpsoc import build_platform
from repro.workloads.matrix import (
    expected_checksum,
    expected_product,
    matrix_elements,
    matrix_program,
    matrix_programs,
    matrix_source,
)
from tests.conftest import small_config


def run_matrix(num_cores=1, n=4, iterations=1):
    platform = build_platform(small_config(num_cores))
    platform.load_program_all(matrix_programs(num_cores, n=n, iterations=iterations))
    EventDrivenEngine(platform).run_to_completion()
    return platform


def test_matrix_elements_deterministic_and_distinct():
    a0 = matrix_elements(8, 0, "a")
    assert np.array_equal(a0, matrix_elements(8, 0, "a"))
    assert not np.array_equal(a0, matrix_elements(8, 1, "a"))
    assert not np.array_equal(a0, matrix_elements(8, 0, "b"))
    with pytest.raises(ValueError):
        matrix_elements(4, 0, "c")


@pytest.mark.parametrize("n", [1, 3, 4, 8])
def test_checksum_matches_golden(n):
    platform = run_matrix(1, n=n)
    assert platform.shared_mem.read_word(0) == expected_checksum(n, 0)


def test_product_matrix_in_private_memory():
    n = 4
    platform = run_matrix(1, n=n)
    program = matrix_program(n=n, iterations=1, core_id=0)
    base = program.symbols["mat_c"]
    want = expected_product(n, 0)
    ctrl = platform.memctrls[0]
    for i in range(n):
        for j in range(n):
            got = ctrl.read_value(base + 4 * (i * n + j), 4)
            assert got == int(want[i, j]), f"C[{i}][{j}]"


def test_multicore_each_core_writes_its_slot():
    platform = run_matrix(4, n=4)
    for core in range(4):
        assert platform.shared_mem.read_word(4 * core) == expected_checksum(4, core)


def test_iterations_repeat_same_result():
    once = run_matrix(1, n=4, iterations=1)
    thrice = run_matrix(1, n=4, iterations=3)
    assert once.shared_mem.read_word(0) == thrice.shared_mem.read_word(0)
    # More iterations, proportionally more instructions.
    i1 = once.cores[0].instructions
    i3 = thrice.cores[0].instructions
    assert i3 > 2.5 * i1


def test_cycles_scale_with_matrix_size():
    small = run_matrix(1, n=4)
    big = run_matrix(1, n=8)
    # O(n^3) kernel: 8x the multiplies.
    assert big.cores[0].cycle > 4 * small.cores[0].cycle


def test_source_validation():
    with pytest.raises(ValueError):
        matrix_source(n=0)
    with pytest.raises(ValueError):
        matrix_source(iterations=0)


def test_program_fits_default_private_memory():
    program = matrix_program(n=8, iterations=1)
    assert program.data_base + program.data_size <= 16 * 1024
