"""Cross-module integration tests: the paper's flows end to end."""

import numpy as np

from repro import (
    CacheConfig,
    CoreConfig,
    DualThresholdDfsPolicy,
    EmulationFlow,
    EmulationFramework,
    FrameworkConfig,
    MPSoCConfig,
    NoManagementPolicy,
    ProfiledWorkload,
    build_platform,
    dithering_programs,
    floorplan_4xarm11,
    floorplan_4xarm7,
    golden_dither,
    load_images,
    matrix_programs,
    profile_platform_run,
    read_image,
)
from repro.power.models import PowerModel
from repro.util.units import KB, MHZ, MS


def arm11_platform(num_cores=4):
    return build_platform(
        MPSoCConfig(
            name="tm",
            cores=[
                CoreConfig(f"cpu{i}", spec="arm11", frequency_hz=500 * MHZ)
                for i in range(num_cores)
            ],
            icache=CacheConfig(name="i", size=8 * KB, line_size=16),
            dcache=CacheConfig(name="d", size=8 * KB, line_size=16, assoc=2),
            private_mem_size=32 * KB,
            shared_mem_size=32 * KB,
        )
    )


def test_figure6_shape_mini():
    """The Figure 6 experiment in miniature: profile the MATRIX kernel
    cycle-accurately, replay it hot, and check that DFS (350/340 K,
    500/100 MHz) clamps the temperature the unmanaged run exceeds."""
    platform = arm11_platform()
    platform.load_program_all(matrix_programs(4, n=8, iterations=1))
    power_model = PowerModel(floorplan_4xarm11())
    profile = profile_platform_run(platform, power_model, iterations=1)
    iterations = int(20.0 * 500e6 / profile.cycles_per_iteration)

    def run(policy):
        framework = EmulationFramework(
            platform=None,
            floorplan=floorplan_4xarm11(),
            workload=ProfiledWorkload(profile, total_iterations=iterations),
            policy=policy,
            config=FrameworkConfig(
                virtual_hz=500 * MHZ, spreader_resolution=(2, 2)
            ),
        )
        return framework, framework.run(max_emulated_seconds=60.0)

    _, unmanaged = run(NoManagementPolicy())
    managed_fw, managed = run(DualThresholdDfsPolicy(500 * MHZ, 100 * MHZ))
    assert unmanaged.peak_temperature_k > 352.0
    assert managed.peak_temperature_k < 352.0
    assert managed.frequency_transitions >= 2
    # DFS trades time for temperature.
    assert managed.emulated_seconds > unmanaged.emulated_seconds
    # The trace oscillates inside the hysteresis band once hot.
    trace = managed_fw.trace
    late = [s.max_temp_k for s in trace.samples[len(trace.samples) // 2 :]]
    assert min(late) > 335.0


def test_flow_end_to_end_with_dithering():
    """Figure 5's three phases with the DITHERING driver on a NoC."""
    width = height = 16
    # The paper's dithering NoC: two switches (a 2x2 mesh of four does
    # not fit the V2VP30 once every component carries a sniffer).
    from repro import generate_custom

    noc = generate_custom("noc", 2, ring=False, buffer_flits=3)
    config = MPSoCConfig(
        name="dith",
        cores=[CoreConfig(f"cpu{i}") for i in range(4)],
        icache=CacheConfig(name="i", size=4 * KB, line_size=16),
        dcache=CacheConfig(name="d", size=4 * KB, line_size=16),
        interconnect="noc",
        noc=noc,
    )
    flow = EmulationFlow()
    flow.define_hw(config, programs=dithering_programs(4, width, height, 1))
    inputs = load_images(flow.platform, width, height, num_images=1)
    flow.define_floorplan(
        floorplan_4xarm7(),
        FrameworkConfig(virtual_hz=100 * MHZ, sampling_period_s=1 * MS,
                        spreader_resolution=(2, 2)),
    )
    resources = flow.upload()
    assert resources["percent"] < 100
    framework = flow.launch(policy=NoManagementPolicy())
    report = framework.run(max_windows=500)
    assert report.workload_done
    got = read_image(flow.platform, 0, width, height)
    assert np.array_equal(got, golden_dither(inputs[0], num_segments=4))
    # The run produced statistics traffic and a thermal trace.
    assert framework.dispatcher.stats()["bytes_sent"] > 0
    assert len(framework.trace) == report.windows
    assert report.peak_temperature_k > 300.0


def test_vpcm_memory_freeze_integration():
    """A slow physical shared memory must raise VPCM suppression, and
    the framework must account it as board time."""
    platform = build_platform(
        MPSoCConfig(
            name="slowmem",
            cores=[CoreConfig("cpu0")],
            shared_mem_latency=2,
            shared_mem_physical_latency=20,
        )
    )
    from repro.mpsoc.asm import assemble
    from repro.mpsoc.platform import SHARED_BASE

    platform.load_program(
        0,
        assemble(
            f"""
            main:   li   r1, 0x{SHARED_BASE:08x}
                    li   r2, 50
            loop:   lw   r3, 0(r1)
                    addi r2, r2, -1
                    bgt  r2, r0, loop
                    halt
            """
        ),
    )
    framework = EmulationFramework(
        platform=platform,
        floorplan=floorplan_4xarm7(),
        policy=NoManagementPolicy(),
        config=FrameworkConfig(
            virtual_hz=100 * MHZ, sampling_period_s=50e-6,
            spreader_resolution=(2, 2),
        ),
    )
    report = framework.run(max_windows=20)
    assert report.workload_done
    assert report.freeze_breakdown.get("memory-latency", 0.0) > 0.0


def test_engines_agree_on_dithering():
    """The two engines dither identically (functional equivalence on an
    interconnect-bound workload)."""
    from repro.emulation.cycle_accurate import CycleAccurateEngine
    from repro.emulation.engine import EventDrivenEngine
    from tests.conftest import small_config

    results = []
    for engine_cls in (EventDrivenEngine, CycleAccurateEngine):
        platform = build_platform(small_config(2))
        load_images(platform, 8, 8, num_images=1)
        platform.load_program_all(dithering_programs(2, 8, 8, 1))
        engine = engine_cls(platform)
        if engine_cls is EventDrivenEngine:
            engine.run_to_completion()
        else:
            engine.run()
        results.append(read_image(platform, 0, 8, 8))
    assert np.array_equal(results[0], results[1])
