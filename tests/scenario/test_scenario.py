"""Scenario serialization round-trips and framework construction."""

import json

import pytest

from repro.core.framework import FrameworkConfig, RunReport
from repro.core.thermal_manager import DualThresholdDfsPolicy
from repro.core.workload_model import ActivityProfile, ProfiledWorkload
from repro.mpsoc import MPSoCConfig, generate_mesh
from repro.mpsoc.bus import BusConfig
from repro.mpsoc.cache import CacheConfig
from repro.mpsoc.platform import CoreConfig
from repro.scenario import PolicySpec, Scenario, WorkloadSpec
from repro.util.units import KB, MHZ


def bus_platform(name="t"):
    return MPSoCConfig(
        name=name,
        cores=[CoreConfig(f"cpu{i}") for i in range(2)],
        icache=CacheConfig(name="i", size=1 * KB, line_size=16),
        dcache=CacheConfig(name="d", size=1 * KB, line_size=16, assoc=2),
        shared_mem_size=64 * KB,
        bus=BusConfig(name="b", kind="plb"),
    )


def noc_platform(name="n"):
    return MPSoCConfig(
        name=name,
        cores=[CoreConfig(f"cpu{i}") for i in range(4)],
        interconnect="noc",
        noc=generate_mesh("m", 2, 2),
        noc_placement={"cpu0": "sw0_0"},
    )


def full_scenario():
    return Scenario(
        name="full",
        description="round-trip fixture",
        platform=bus_platform(),
        floorplan="4xarm7",
        workload=WorkloadSpec("matrix", {"n": 4, "iterations": 2}),
        policy=PolicySpec("dual_threshold", {"high_hz": 5e8, "low_hz": 1e8}),
        config=FrameworkConfig(
            virtual_hz=500 * MHZ,
            spreader_resolution=(2, 2),
            monitored_components=("arm7_0", "arm7_1"),
        ),
        max_emulated_seconds=1.0,
        max_windows=10,
    )


def test_json_round_trip_bus():
    scenario = full_scenario()
    rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    assert rebuilt == scenario


def test_json_round_trip_noc():
    scenario = Scenario(
        name="noc", platform=noc_platform(), workload=WorkloadSpec("matrix")
    )
    rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    assert rebuilt == scenario
    assert rebuilt.platform.noc.links == scenario.platform.noc.links


def test_round_trip_builds_equivalent_framework():
    scenario = full_scenario()
    rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    a = scenario.build()
    b = rebuilt.build()
    assert a.floorplan.name == b.floorplan.name == "4xarm7"
    assert len(a.platform.cores) == len(b.platform.cores) == 2
    assert type(a.policy) is type(b.policy) is DualThresholdDfsPolicy
    assert a.config == b.config
    assert set(a.sensors.sensors) == set(b.sensors.sensors) == {"arm7_0", "arm7_1"}


def test_shorthand_workload_and_policy():
    scenario = Scenario.from_dict(
        {"name": "s", "workload": "matrix", "policy": "none",
         "platform": bus_platform().to_dict()}
    )
    assert scenario.workload == WorkloadSpec("matrix")
    assert scenario.policy == PolicySpec("none")


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown scenario keys: platfrom"):
        Scenario.from_dict({"name": "s", "workload": "matrix", "platfrom": {}})
    with pytest.raises(ValueError, match="needs a 'workload'"):
        Scenario.from_dict({"name": "s"})
    with pytest.raises(ValueError, match="needs a 'name'"):
        Scenario.from_dict({"workload": "matrix"})


def test_build_unknown_names_error():
    scenario = Scenario(
        name="s", workload=WorkloadSpec("matrix"), platform=bus_platform(),
        floorplan="8xarm99",
    )
    with pytest.raises(ValueError, match="unknown floorplan"):
        scenario.build()
    scenario = Scenario(
        name="s", workload=WorkloadSpec("no_such_kernel"), platform=bus_platform()
    )
    with pytest.raises(ValueError, match="unknown workload generator"):
        scenario.build()


def test_profiled_scenario_runs_without_platform():
    profile = ActivityProfile(
        name="p", cycles_per_iteration=1000.0,
        utilization={("core", i): 0.9 for i in range(4)},
        instructions_per_iteration=800.0,
    )
    scenario = Scenario(
        name="profiled",
        workload=WorkloadSpec(
            "profiled", {"profile": profile.to_dict(), "total_iterations": 50_000}
        ),
        floorplan="4xarm11",
        config=FrameworkConfig(virtual_hz=500 * MHZ, spreader_resolution=(2, 2)),
    )
    framework, report = scenario.run()
    assert isinstance(framework.workload, ProfiledWorkload)
    assert report.workload_done
    assert report.windows > 0


def test_activity_profile_round_trip():
    profile = ActivityProfile(
        name="p", cycles_per_iteration=123.0,
        utilization={("core", 0): 0.5, ("shared_mem", None): 0.25},
        instructions_per_iteration=99.0,
    )
    rebuilt = ActivityProfile.from_dict(json.loads(json.dumps(profile.to_dict())))
    assert rebuilt == profile


def test_direct_scenario_report_extras():
    scenario = Scenario(
        name="direct", platform=bus_platform(), floorplan="4xarm7",
        workload=WorkloadSpec("matrix", {"n": 4}),
    )
    _, report = scenario.run()
    assert report.workload_done
    assert report.extras["end_cycle"] > 0
    assert "interconnect" in report.extras


def test_run_report_round_trip_and_summary():
    scenario = Scenario(
        name="direct", platform=bus_platform(), floorplan="4xarm7",
        workload=WorkloadSpec("matrix", {"n": 4}),
    )
    _, report = scenario.run()
    rebuilt = RunReport.from_dict(json.loads(json.dumps(report.to_dict())))
    assert rebuilt == report
    text = report.summary()
    assert "workload done" in text
    assert "peak" in text and "K" in text
