"""The ``python -m repro`` entry point."""

import json


from repro.__main__ import main
from repro.scenario.presets import PRESETS


def test_list_presets(capsys):
    assert main(["--list-presets"]) == 0
    out = capsys.readouterr().out
    for name in PRESETS.names():
        assert name in out


def test_run_preset(capsys):
    assert main(["matrix_quickstart"]) == 0
    out = capsys.readouterr().out
    assert "matrix_quickstart" in out
    assert "workload done" in out


def test_dump_then_run_json_file(tmp_path, capsys):
    assert main(["matrix_quickstart", "--dump"]) == 0
    dumped = capsys.readouterr().out
    spec = tmp_path / "scenario.json"
    spec.write_text(dumped)
    assert main([str(spec)]) == 0
    assert "workload done" in capsys.readouterr().out


def test_run_suite_file_with_workers(tmp_path, capsys):
    scenario = PRESETS.get("matrix_quickstart")()
    suite = {
        "name": "suite",
        "scenarios": [
            dict(scenario.to_dict(), name="first"),
            dict(scenario.to_dict(), name="second"),
        ],
    }
    spec = tmp_path / "suite.json"
    spec.write_text(json.dumps(suite))
    assert main([str(spec), "--workers", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [r["name"] for r in payload] == ["first", "second"]
    assert all(r["error"] is None for r in payload)
    assert all(r["report"]["workload_done"] for r in payload)


def test_unknown_spec_errors(capsys):
    assert main(["no_such_preset_or_file"]) == 2
    err = capsys.readouterr().err
    assert "neither a readable JSON file nor a preset" in err


def test_failing_scenario_sets_exit_code(tmp_path, capsys):
    scenario = PRESETS.get("matrix_quickstart")().to_dict()
    scenario["floorplan"] = "missing"
    spec = tmp_path / "bad.json"
    spec.write_text(json.dumps(scenario))
    assert main([str(spec)]) == 1
    assert "FAILED" in capsys.readouterr().out


def test_no_spec_prints_usage(capsys):
    assert main([]) == 2
