"""Registry behavior: built-ins, lookup errors, custom registration."""

import pytest

from repro.core.thermal_manager import (
    DualThresholdDfsPolicy,
    NoManagementPolicy,
    PerCoreDfsPolicy,
    StopGoPolicy,
)
from repro.policy import PerDomainPolicy
from repro.scenario import FLOORPLANS, POLICIES, WORKLOADS, Registry


def test_builtin_floorplans():
    assert "4xarm7" in FLOORPLANS
    assert "4xarm11" in FLOORPLANS
    floorplan = FLOORPLANS.get("4xarm11")()
    assert floorplan.name == "4xarm11"


def test_builtin_policies():
    assert isinstance(POLICIES.get("none")(), NoManagementPolicy)
    assert isinstance(
        POLICIES.get("dual_threshold")(high_hz=5e8, low_hz=1e8),
        DualThresholdDfsPolicy,
    )
    assert isinstance(POLICIES.get("stop_go")(run_hz=5e8), StopGoPolicy)
    per_core = POLICIES.get("per_core")(
        core_components={"arm11_0": 0}, high_hz=5e8, low_hz=1e8
    )
    assert isinstance(per_core, PerCoreDfsPolicy)
    per_domain = POLICIES.get("per_domain")(
        core_components={"arm11_0": 0}
    )
    assert isinstance(per_domain, PerDomainPolicy)


def test_builtin_workloads():
    for name in ("matrix", "dithering", "shared_traffic", "compute_burst",
                 "profiled"):
        assert name in WORKLOADS


def test_unknown_name_lists_available():
    with pytest.raises(ValueError, match="unknown floorplan 'nope'"):
        FLOORPLANS.get("nope")
    with pytest.raises(ValueError, match="4xarm11"):
        FLOORPLANS.get("nope")


def test_platform_workloads_require_platform():
    with pytest.raises(ValueError, match="needs a platform"):
        WORKLOADS.get("matrix")(None, None)


def test_register_and_unregister():
    registry = Registry("thing")
    registry.register("a", 1)
    assert registry.get("a") == 1
    assert registry.names() == ["a"]
    assert len(registry) == 1

    @registry.register("b")
    def factory():
        return 2

    assert registry.get("b") is factory
    with pytest.raises(ValueError, match="already registered"):
        registry.register("a", 3)
    registry.unregister("a")
    assert "a" not in registry
    with pytest.raises(ValueError, match="non-empty string"):
        registry.register("", 1)
