"""Batch execution: ordering, determinism, worker parallelism, errors."""

import pytest

from repro.core.framework import FrameworkConfig
from repro.core.stats import ThermalTrace
from repro.scenario import PolicySpec, Runner, Scenario, WorkloadSpec, sweep
from repro.util.units import MHZ


def stress_profile_dict(cores=4):
    utilization = [[["core", i], 0.95] for i in range(cores)]
    utilization.append([["shared_mem", None], 0.2])
    return {
        "name": "stress",
        "cycles_per_iteration": 1000.0,
        "utilization": utilization,
        "instructions_per_iteration": 900.0,
    }


def profiled_scenario(name, iterations=200_000, policy=None):
    return Scenario(
        name=name,
        workload=WorkloadSpec(
            "profiled",
            {"profile": stress_profile_dict(), "total_iterations": iterations},
        ),
        floorplan="4xarm11",
        policy=PolicySpec.from_dict(policy),
        config=FrameworkConfig(virtual_hz=500 * MHZ, spreader_resolution=(2, 2)),
        max_emulated_seconds=5.0,
    )


def batch():
    return [
        profiled_scenario("unmanaged"),
        # Long enough to cross 350 K and latch the DFS low point.
        profiled_scenario(
            "dfs", iterations=5_000_000,
            policy={"name": "dual_threshold",
                    "params": {"high_hz": 500 * MHZ, "low_hz": 100 * MHZ}},
        ),
        profiled_scenario("short", iterations=10_000),
    ]


def test_two_worker_batch_is_deterministic_and_ordered():
    results_a = Runner(workers=2).run(batch())
    results_b = Runner(workers=2).run(batch())
    assert [r.name for r in results_a] == ["unmanaged", "dfs", "short"]
    assert [r.index for r in results_a] == [0, 1, 2]
    assert all(r.ok for r in results_a)
    # Bit-identical physics in both batches, per scenario.
    for a, b in zip(results_a, results_b):
        assert a.report == b.report


def test_parallel_matches_serial():
    serial = Runner(workers=1).run(batch())
    parallel = Runner(workers=2).run(batch())
    for s, p in zip(serial, parallel):
        assert s.report == p.report


def test_pure_dict_scenarios_run_end_to_end():
    dicts = [s.to_dict() for s in batch()]
    results = Runner(workers=2).run(dicts)
    assert all(r.ok for r in results)
    assert results[1].report.frequency_transitions > 0
    assert results[2].report.workload_done


def test_errors_are_captured_per_scenario():
    bad = profiled_scenario("bad")
    bad.floorplan = "missing_floorplan"
    results = Runner(workers=2).run([profiled_scenario("good"), bad])
    good, failed = results
    assert good.ok and good.report is not None
    assert not failed.ok
    assert failed.report is None
    assert "unknown floorplan" in failed.error
    assert failed.name == "bad"


def test_capture_trace():
    results = Runner(workers=2, capture_trace=True).run(
        [profiled_scenario("a", iterations=10_000),
         profiled_scenario("b", iterations=10_000)]
    )
    for result in results:
        assert isinstance(result.trace, ThermalTrace)
        assert len(result.trace) == result.report.windows
    plain = Runner(workers=1).run([profiled_scenario("a", iterations=10_000)])
    assert plain[0].trace is None


def test_empty_batch_and_bad_workers():
    assert Runner(workers=2).run([]) == []
    with pytest.raises(ValueError):
        Runner(workers=-1)


def test_sweep_through_runner():
    scenarios = sweep(profiled_scenario("grid", iterations=10_000), {
        "config.sensor_upper_kelvin": [360.0, 350.0],
    })
    results = Runner(workers=2).run(scenarios)
    assert [r.name for r in results] == [s.name for s in scenarios]
    assert all(r.ok for r in results)
    assert all(r.wall_seconds > 0 for r in results)
