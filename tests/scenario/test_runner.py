"""Batch execution: ordering, determinism, worker parallelism, errors."""

import pytest

from repro.core.framework import FrameworkConfig
from repro.core.stats import ThermalTrace
from repro.scenario import PolicySpec, Runner, Scenario, WorkloadSpec, sweep
from repro.util.units import MHZ


def stress_profile_dict(cores=4):
    utilization = [[["core", i], 0.95] for i in range(cores)]
    utilization.append([["shared_mem", None], 0.2])
    return {
        "name": "stress",
        "cycles_per_iteration": 1000.0,
        "utilization": utilization,
        "instructions_per_iteration": 900.0,
    }


def profiled_scenario(name, iterations=200_000, policy=None):
    return Scenario(
        name=name,
        workload=WorkloadSpec(
            "profiled",
            {"profile": stress_profile_dict(), "total_iterations": iterations},
        ),
        floorplan="4xarm11",
        policy=PolicySpec.from_dict(policy),
        config=FrameworkConfig(virtual_hz=500 * MHZ, spreader_resolution=(2, 2)),
        max_emulated_seconds=5.0,
    )


def batch():
    return [
        profiled_scenario("unmanaged"),
        # Long enough to cross 350 K and latch the DFS low point.
        profiled_scenario(
            "dfs", iterations=5_000_000,
            policy={"name": "dual_threshold",
                    "params": {"high_hz": 500 * MHZ, "low_hz": 100 * MHZ}},
        ),
        profiled_scenario("short", iterations=10_000),
    ]


def physics(report):
    """Report content minus the wall-clock phase breakdown
    (``extras["timing"]``), which legitimately varies run to run."""
    data = report.to_dict()
    data.get("extras", {}).pop("timing", None)
    return data


def test_two_worker_batch_is_deterministic_and_ordered():
    results_a = Runner(workers=2).run(batch())
    results_b = Runner(workers=2).run(batch())
    assert [r.name for r in results_a] == ["unmanaged", "dfs", "short"]
    assert [r.index for r in results_a] == [0, 1, 2]
    assert all(r.ok for r in results_a)
    # Bit-identical physics in both batches, per scenario.
    for a, b in zip(results_a, results_b):
        assert physics(a.report) == physics(b.report)


def test_parallel_matches_serial():
    serial = Runner(workers=1).run(batch())
    parallel = Runner(workers=2).run(batch())
    for s, p in zip(serial, parallel):
        assert physics(s.report) == physics(p.report)


def test_pure_dict_scenarios_run_end_to_end():
    dicts = [s.to_dict() for s in batch()]
    results = Runner(workers=2).run(dicts)
    assert all(r.ok for r in results)
    assert results[1].report.frequency_transitions > 0
    assert results[2].report.workload_done


def test_errors_are_captured_per_scenario():
    bad = profiled_scenario("bad")
    bad.floorplan = "missing_floorplan"
    results = Runner(workers=2).run([profiled_scenario("good"), bad])
    good, failed = results
    assert good.ok and good.report is not None
    assert not failed.ok
    assert failed.report is None
    assert "unknown floorplan" in failed.error
    assert failed.name == "bad"


def test_capture_trace():
    results = Runner(workers=2, capture_trace=True).run(
        [profiled_scenario("a", iterations=10_000),
         profiled_scenario("b", iterations=10_000)]
    )
    for result in results:
        assert isinstance(result.trace, ThermalTrace)
        assert len(result.trace) == result.report.windows
    plain = Runner(workers=1).run([profiled_scenario("a", iterations=10_000)])
    assert plain[0].trace is None


def test_empty_batch_and_bad_workers():
    assert Runner(workers=2).run([]) == []
    with pytest.raises(ValueError):
        Runner(workers=-1)


def test_result_to_dict_includes_trace_summary():
    import json

    with_trace = Runner(capture_trace=True).run(
        [profiled_scenario("t", iterations=10_000)]
    )[0]
    payload = json.loads(json.dumps(with_trace.to_dict()))
    assert payload["trace"]["samples"] == with_trace.report.windows
    assert payload["trace"]["peak_temperature_k"] == pytest.approx(
        with_trace.report.peak_temperature_k
    )
    assert payload["trace"]["final_temperature_k"] == pytest.approx(
        with_trace.report.final_temperature_k
    )
    # Without a captured trace the key stays absent (old shape).
    without = Runner().run([profiled_scenario("t", iterations=10_000)])[0]
    assert "trace" not in without.to_dict()


def test_batched_matches_serial_within_tolerance():
    scenarios = batch()
    serial = Runner().run(scenarios)
    batched = Runner().run_batched(scenarios)
    assert [r.name for r in batched] == [r.name for r in serial]
    assert [r.index for r in batched] == [0, 1, 2]
    for s, b in zip(serial, batched):
        assert b.ok, b.error
        assert b.report.windows == s.report.windows
        assert b.report.workload_done == s.report.workload_done
        # One shared linearized factorization: bounded error vs. exact.
        assert b.report.peak_temperature_k == pytest.approx(
            s.report.peak_temperature_k, abs=0.5
        )
        assert b.report.final_temperature_k == pytest.approx(
            s.report.final_temperature_k, abs=0.5
        )


def test_batched_sweep_shares_one_assembly():
    from repro.thermal.rc_network import RCNetwork, clear_assembly_cache

    scenarios = sweep(profiled_scenario("grid", iterations=50_000), {
        "config.sensor_upper_kelvin": [342.0 + k for k in range(16)],
    })
    assert len(scenarios) == 16
    clear_assembly_cache()
    before = RCNetwork.assemblies
    results = Runner().run_batched(scenarios)
    assert RCNetwork.assemblies - before == 1  # 16 scenarios, one assembly
    assert all(r.ok for r in results)


def test_batched_failure_keeps_finished_members_reports():
    """A mid-co-step crash fails only the unfinished group members; runs
    that had already reached their bounds keep their reports."""
    from repro.scenario.registry import POLICIES
    from repro.core.thermal_manager import NoManagementPolicy

    class ExplodeAfter(NoManagementPolicy):
        def react(self, sensors, vpcm, now):
            if now > 1.0:
                raise RuntimeError("policy blew up")

    POLICIES.register("explode_after", ExplodeAfter)
    try:
        short = profiled_scenario("short", iterations=10**9)
        short.max_emulated_seconds = 0.5
        long = profiled_scenario("long", iterations=10**9,
                                 policy="explode_after")
        long.max_emulated_seconds = 5.0
        finished, failed = Runner().run_batched([short, long])
    finally:
        POLICIES.unregister("explode_after")
    assert finished.ok
    assert finished.report.emulated_seconds == pytest.approx(0.5)
    assert not failed.ok
    assert "policy blew up" in failed.error
    assert failed.report is None


def test_batched_member_failing_in_its_final_window_is_failed():
    """A scenario whose workload completes during the very window that
    raises must come back FAILED (matching serial semantics), not as a
    bogus zero-window success."""
    from repro.scenario.registry import POLICIES
    from repro.core.thermal_manager import NoManagementPolicy

    class AlwaysExplode(NoManagementPolicy):
        def react(self, sensors, vpcm, now):
            raise RuntimeError("policy blew up")

    POLICIES.register("always_explode", AlwaysExplode)
    try:
        scenario = profiled_scenario("doomed", iterations=1,
                                     policy="always_explode")
        [batched] = Runner().run_batched([scenario])
        [serial] = Runner().run([scenario])
    finally:
        POLICIES.unregister("always_explode")
    assert not serial.ok
    assert not batched.ok
    assert "policy blew up" in batched.error
    assert batched.report is None


def test_batched_captures_per_scenario_build_errors():
    bad = profiled_scenario("bad")
    bad.floorplan = "missing_floorplan"
    results = Runner(capture_trace=True).run_batched(
        [profiled_scenario("good", iterations=10_000), bad]
    )
    good, failed = results
    assert good.ok and good.report is not None
    assert len(good.trace) == good.report.windows
    assert not failed.ok
    assert "unknown floorplan" in failed.error


def test_batched_survives_malformed_raw_dicts():
    results = Runner().run_batched(
        [profiled_scenario("good", iterations=10_000).to_dict(), {"name": "x"}]
    )
    good, failed = results
    assert good.ok and good.report is not None
    assert not failed.ok
    assert failed.name == "x"
    assert "workload" in failed.error


def test_sweep_through_runner():
    scenarios = sweep(profiled_scenario("grid", iterations=10_000), {
        "config.sensor_upper_kelvin": [360.0, 350.0],
    })
    results = Runner(workers=2).run(scenarios)
    assert [r.name for r in results] == [s.name for s in scenarios]
    assert all(r.ok for r in results)
    assert all(r.wall_seconds > 0 for r in results)


def stall_scenario(name, **overrides):
    """10 Hz virtual clock: every 10 ms window rounds to zero cycles, so
    the workload never progresses and only a stall bound can end the
    run (regression for the unbounded zero-progress spin)."""
    scenario = profiled_scenario(name)
    scenario.config.virtual_hz = 10.0
    scenario.max_emulated_seconds = None
    scenario.max_windows = None
    scenario.max_stall_windows = 4
    for key, value in overrides.items():
        setattr(scenario, key, value)
    return scenario


def test_scenario_stall_bound_round_trips_and_terminates():
    import json as _json

    scenario = stall_scenario("stall")
    rebuilt = Scenario.from_dict(_json.loads(_json.dumps(scenario.to_dict())))
    assert rebuilt.max_stall_windows == 4
    framework, report = rebuilt.run()
    assert framework.windows == 4
    assert report.stalled
    assert not report.workload_done


def test_runner_terminates_stall_bounded_scenarios():
    [result] = Runner().run([stall_scenario("stall")])
    assert result.ok
    assert result.report.stalled
    assert result.report.windows == 4


def test_batched_runner_honours_stall_bound():
    results = Runner().run_batched(
        [stall_scenario("stall_a"), stall_scenario("stall_b", max_stall_windows=6)]
    )
    assert [r.report.windows for r in results] == [4, 6]
    assert all(r.report.stalled for r in results)


# -- worker-failure handling: status + captured traceback --------------------


def test_pool_worker_failure_carries_status_and_traceback():
    """A scenario raising inside a pool worker must come back as one
    status="failed" result with the worker's formatted traceback — the
    rest of the batch completes (the farm workers reuse this path)."""
    bad = profiled_scenario("bad")
    bad.floorplan = "missing_floorplan"
    results = Runner(workers=2).run([profiled_scenario("good"), bad])
    good, failed = results
    assert good.status == "ok"
    assert good.traceback is None
    assert failed.status == "failed"
    assert failed.report is None
    assert "Traceback (most recent call last)" in failed.traceback
    assert "missing_floorplan" in failed.traceback


def test_result_dict_includes_status_and_traceback():
    bad = profiled_scenario("bad")
    bad.floorplan = "missing_floorplan"
    good_row, bad_row = [
        r.to_dict() for r in Runner().run([profiled_scenario("good"), bad])
    ]
    assert good_row["status"] == "ok" and good_row["traceback"] is None
    assert bad_row["status"] == "failed"
    assert "Traceback" in bad_row["traceback"]
    assert bad_row["report"] is None


def test_batched_failures_carry_traceback():
    results = Runner().run_batched(
        [profiled_scenario("good", iterations=10_000), {"name": "x"}]
    )
    good, failed = results
    assert good.status == "ok" and good.traceback is None
    assert failed.status == "failed"
    assert "Traceback" in failed.traceback
