"""Sweep expansion and experiment suites."""

import json

import pytest

from repro.core.framework import FrameworkConfig
from repro.scenario import (
    ExperimentSuite,
    PolicySpec,
    Scenario,
    Variant,
    WorkloadSpec,
    sweep,
)
from repro.util.units import MHZ


def base_scenario():
    return Scenario(
        name="base",
        workload=WorkloadSpec("profiled", {"profile": {
            "name": "p", "cycles_per_iteration": 1000.0,
            "utilization": [[["core", 0], 0.9]],
            "instructions_per_iteration": 0.0,
        }, "total_iterations": 1000}),
        floorplan="4xarm11",
        config=FrameworkConfig(virtual_hz=500 * MHZ, spreader_resolution=(2, 2)),
    )


def test_grid_expansion_counts():
    scenarios = sweep(base_scenario(), {
        "config.sensor_upper_kelvin": [360.0, 355.0, 350.0],
        "policy.params.low_hz": [100 * MHZ, 250 * MHZ],
    })
    assert len(scenarios) == 6
    assert len({s.name for s in scenarios}) == 6
    uppers = {s.config.sensor_upper_kelvin for s in scenarios}
    assert uppers == {360.0, 355.0, 350.0}
    lows = {s.policy.params["low_hz"] for s in scenarios}
    assert lows == {100 * MHZ, 250 * MHZ}


def test_empty_overrides_yield_one_copy():
    base = base_scenario()
    scenarios = sweep(base, {})
    assert len(scenarios) == 1
    assert scenarios[0] == base
    assert scenarios[0] is not base


def test_base_is_not_mutated():
    base = base_scenario()
    before = base.to_dict()
    sweep(base, {"config.sensor_upper_kelvin": [351.0, 352.0]})
    assert base.to_dict() == before


def test_variant_labels_name_scenarios():
    scenarios = sweep(base_scenario(), {
        "policy": [
            Variant("paper DFS", {"name": "dual_threshold"}),
            Variant("unmanaged", {"name": "none"}),
        ],
    })
    assert [s.name for s in scenarios] == ["base[paper DFS]", "base[unmanaged]"]
    assert scenarios[0].policy == PolicySpec("dual_threshold")
    assert scenarios[1].policy == PolicySpec("none")


def test_plain_values_self_label():
    [scenario] = sweep(base_scenario(), {"config.refine_critical": [2]})
    assert scenario.name == "base[refine_critical=2]"
    assert scenario.config.refine_critical == 2


def test_bad_sweep_values():
    with pytest.raises(ValueError, match="non-empty list"):
        sweep(base_scenario(), {"config.refine_critical": []})


def test_swept_scenarios_stay_json_expressible():
    scenarios = sweep(base_scenario(), {
        "config.sensor_upper_kelvin": [360.0, 345.0],
    })
    for scenario in scenarios:
        rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
        assert rebuilt == scenario


def test_solver_backend_is_sweepable_and_json_expressible():
    scenarios = sweep(base_scenario(), {
        "config.solver_backend": ["sparse_be", "cached_lu",
                                  {"name": "cached_lu",
                                   "params": {"refactor_tolerance_kelvin": 0.5}}],
    })
    assert [s.config.solver_backend for s in scenarios][:2] == [
        "sparse_be", "cached_lu",
    ]
    for scenario in scenarios:
        rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
        assert rebuilt == scenario


def test_suite_batched_run_matches_plain_run():
    suite = ExperimentSuite.from_sweep(
        "thresholds", base_scenario(),
        {"config.sensor_upper_kelvin": [360.0, 350.0]},
    )
    plain = suite.run()
    batched = suite.run(batched=True)
    assert [r.name for r in batched] == [r.name for r in plain]
    for p, b in zip(plain, batched):
        assert b.ok, b.error
        assert b.report.windows == p.report.windows


def test_suite_round_trip_and_from_sweep():
    suite = ExperimentSuite.from_sweep(
        "thresholds", base_scenario(),
        {"config.sensor_upper_kelvin": [360.0, 350.0]},
    )
    assert len(suite) == 2
    rebuilt = ExperimentSuite.from_dict(json.loads(json.dumps(suite.to_dict())))
    assert rebuilt == suite
