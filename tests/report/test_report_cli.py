"""``python -m repro report`` — the reproduction-pipeline subcommand."""

import json

from repro.__main__ import main
from repro.report.artifacts import ARTIFACTS, Artifact, Check


def test_report_list(capsys):
    assert main(["report", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "table2", "table3", "fig3", "fig6"):
        assert name in out


def test_report_check_single_artifact(capsys):
    assert main(["report", "--check", "--artifact", "table1"]) == 0
    out = capsys.readouterr().out
    assert "table1: PASS" in out


def test_report_unknown_artifact_exits_2(capsys):
    assert main(["report", "--artifact", "nope"]) == 2
    assert "unknown artifact" in capsys.readouterr().err


def test_report_writes_files(tmp_path, capsys):
    assert main(
        ["report", "--artifact", "table2", "--output", str(tmp_path), "--quiet"]
    ) == 0
    markdown = (tmp_path / "REPRODUCTION.md").read_text()
    assert "Table 2" in markdown
    payload = json.loads((tmp_path / "reproduction.json").read_text())
    assert payload["ok"] is True
    assert payload["artifacts"][0]["name"] == "table2"


def test_report_check_fails_out_of_tolerance(capsys):
    """The acceptance gate: a value leaving tolerance exits nonzero."""
    ARTIFACTS.register(
        "broken_for_test",
        lambda: Artifact(
            name="broken_for_test",
            title="deliberately out of tolerance",
            paper_ref="",
            description="",
            extract=lambda results: ({"metric": 2.0}, ""),
            checks=(Check("metric", expected=1.0, rel_tol=0.05),),
        ),
    )
    try:
        code = main(["report", "--check", "--artifact", "broken_for_test"])
        out = capsys.readouterr().out
    finally:
        ARTIFACTS.unregister("broken_for_test")
    assert code == 1
    assert "FAIL metric = 2" in out
