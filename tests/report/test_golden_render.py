"""Golden-file test for the report renderer.

``tests/report/fixtures/frozen_results.json`` is a frozen set of
:class:`ArtifactResult` payloads — the five paper artifacts plus the
``pareto_front`` DSE artifact — with fixed values, bodies, check
ledgers, and wall times.  The committed ``golden_REPRODUCTION.md`` and
``golden_reproduction.json`` are what the renderer produced for them
when the fixture was frozen; the renderer must keep producing those
files byte-for-byte.

If a rendering change is intentional, regenerate the goldens with::

    PYTHONPATH=src:tests python -c "from report.test_golden_render \
        import regenerate; regenerate()"

and review the diff like any other source change.
"""

import json
import pathlib

from repro.report.artifacts import ArtifactResult, CheckResult
from repro.report.pipeline import (
    JSON_BASENAME,
    REPORT_BASENAME,
    render_markdown,
    to_json,
    write_report,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
FROZEN = FIXTURES / "frozen_results.json"
GOLDEN_MD = FIXTURES / "golden_REPRODUCTION.md"
GOLDEN_JSON = FIXTURES / "golden_reproduction.json"

#: The artifacts the frozen fixture must cover: every paper artifact
#: plus the DSE Pareto front.  A new paper artifact should be frozen
#: here too.
REQUIRED_NAMES = ("table1", "table2", "table3", "fig3", "fig6", "pareto_front")


def load_frozen_results():
    """Reconstruct the frozen ``ArtifactResult`` list from the fixture."""
    payload = json.loads(FROZEN.read_text())
    results = []
    for entry in payload:
        checks = [CheckResult(**check) for check in entry.pop("checks")]
        results.append(ArtifactResult(checks=checks, **entry))
    return results


def regenerate():
    """Re-freeze the goldens from the current renderer (manual use only)."""
    results = load_frozen_results()
    GOLDEN_MD.write_text(render_markdown(results))
    GOLDEN_JSON.write_text(json.dumps(to_json(results), indent=2) + "\n")


def test_fixture_covers_required_artifacts():
    names = [r.name for r in load_frozen_results()]
    assert names == list(REQUIRED_NAMES)


def test_frozen_results_all_pass():
    # The fixture freezes a healthy report: every check marked passed,
    # no errors — so `ok` derives to True through the real property.
    for result in load_frozen_results():
        assert result.error is None
        assert result.ok
        assert result.checks_passed == len(result.checks)


def test_markdown_renders_byte_identical():
    rendered = render_markdown(load_frozen_results())
    assert rendered == GOLDEN_MD.read_text()


def test_json_renders_byte_identical():
    rendered = json.dumps(to_json(load_frozen_results()), indent=2) + "\n"
    assert rendered == GOLDEN_JSON.read_text()


def test_write_report_matches_goldens_on_disk(tmp_path):
    markdown_path, json_path = write_report(
        load_frozen_results(), output_dir=tmp_path
    )
    assert markdown_path.name == REPORT_BASENAME
    assert json_path.name == JSON_BASENAME
    assert markdown_path.read_bytes() == GOLDEN_MD.read_bytes()
    assert json_path.read_bytes() == GOLDEN_JSON.read_bytes()


def test_golden_markdown_structure():
    # Cheap structural guards so a bad regeneration is obvious in review.
    text = GOLDEN_MD.read_text()
    assert text.startswith("# Paper reproduction report\n")
    assert text.endswith("\n") and not text.endswith("\n\n")
    for name in REQUIRED_NAMES:
        assert f'<a name="{name}"></a>' in text
    assert "FAIL" not in text
    data = json.loads(GOLDEN_JSON.read_text())
    assert data["ok"] is True
    assert [a["name"] for a in data["artifacts"]] == list(REQUIRED_NAMES)
