"""The reproduction pipeline: checks, artifacts, pipeline rendering."""

import json

import pytest

from repro.report.artifacts import (
    ARTIFACTS,
    Artifact,
    Check,
    fig3_artifact,
)
from repro.report.pipeline import (
    default_artifact_names,
    render_markdown,
    render_verdicts,
    run_artifacts,
    to_json,
    write_report,
)
from repro.report.render import markdown_table
from repro.scenario.runner import Runner
from repro.util.records import Table


# -- Check semantics ---------------------------------------------------------


def test_check_exact_equality_uses_float_band():
    check = Check("x", expected=0.3)
    assert check.evaluate({"x": 0.1 + 0.2}).passed
    assert not check.evaluate({"x": 0.300001}).passed


def test_check_relative_tolerance():
    check = Check("x", expected=100.0, rel_tol=0.10)
    assert check.evaluate({"x": 109.0}).passed
    assert not check.evaluate({"x": 111.0}).passed


def test_check_bounds():
    assert Check("x", low=1.0).evaluate({"x": 1.0}).passed
    assert not Check("x", low=1.0).evaluate({"x": 0.5}).passed
    assert Check("x", high=2.0).evaluate({"x": 2.0}).passed
    assert Check("x", low=1.0, high=2.0).evaluate({"x": 1.5}).passed
    assert not Check("x", low=1.0, high=2.0).evaluate({"x": 2.5}).passed


def test_check_missing_metric_fails_with_note():
    result = Check("absent", expected=1.0).evaluate({})
    assert not result.passed
    assert result.value is None
    assert "missing" in result.note


def test_check_expectation_strings():
    assert Check("x", expected=5.0).expectation == "= 5"
    assert "±10%" in Check("x", expected=5.0, rel_tol=0.1).expectation
    assert Check("x", low=1.0, high=2.0).expectation == "in [1, 2]"
    assert Check("x", low=3.0).expectation == ">= 3"


# -- Artifact execution ------------------------------------------------------


def _fake_artifact(values, checks=(), fail=False):
    def extract(results):
        if fail:
            raise RuntimeError("broken extractor")
        return values, "the body"

    return Artifact(
        name="fake",
        title="Fake",
        paper_ref="nowhere",
        description="test double",
        extract=extract,
        checks=checks,
    )


def test_artifact_run_evaluates_checks():
    artifact = _fake_artifact({"x": 5.0}, checks=(Check("x", expected=5.0),))
    result = artifact.run()
    assert result.ok
    assert result.checks_passed == 1
    assert result.body == "the body"
    payload = result.to_dict()
    assert payload["ok"] and payload["checks"][0]["passed"]
    json.dumps(payload)  # must be JSON-serializable


def test_artifact_failing_check_marks_not_ok():
    artifact = _fake_artifact({"x": 5.0}, checks=(Check("x", expected=4.0),))
    result = artifact.run()
    assert not result.ok
    assert "FAIL" in render_verdicts([result])


def test_artifact_error_is_captured_not_raised():
    result = _fake_artifact({}, fail=True).run()
    assert not result.ok
    assert "broken extractor" in result.error
    assert "ERROR" in render_verdicts([result])


# -- the registered paper artifacts -----------------------------------------


def test_all_registered_artifacts():
    assert ARTIFACTS.names() == [
        "fig3", "fig6", "obs_overview", "pareto_front",
        "policy_comparison", "table1", "table2", "table3",
    ]


def test_default_order_follows_the_paper():
    assert default_artifact_names() == [
        "table1", "table2", "table3", "fig3", "fig6", "obs_overview",
        "pareto_front", "policy_comparison",
    ]


def test_capture_trace_survives_a_caller_supplied_runner():
    # fig6's extractor needs traces; a runner without capture_trace must
    # not silently drop them.
    result = ARTIFACTS.get("fig6")().run(runner=Runner(capture_trace=False))
    assert result.error is None, result.error
    assert result.ok


def test_table1_artifact_reproduces_paper_numbers():
    result = ARTIFACTS.get("table1")().run()
    assert result.ok, render_verdicts([result])
    assert result.values["arm11_max_power_w"] == pytest.approx(1.5)
    assert "RISC 32-ARM11" in result.body


def test_table2_artifact_reproduces_paper_numbers():
    result = ARTIFACTS.get("table2")().run()
    assert result.ok, render_verdicts([result])
    assert result.values["grid_cells_660_class"] == 648
    # The replay-backed property checks: record -> replay reproduces
    # the live digest exactly, and frozen-k silicon runs cooler.
    assert result.values["replay_digest_match"] == 1.0
    assert result.values["nonlinear_peak_excess_k"] > 0.0
    assert "Replay validation" in result.body


def test_fig3_artifact_runs_batched_groups():
    # A scaled-down sweep: 2 resolutions x 2 policies through run_batched.
    artifact = fig3_artifact(resolutions=((3, 3), (5, 5)), max_windows=4)
    assert artifact.batched
    assert artifact.use_trace_store
    result = artifact.run()
    assert result.error is None, result.error
    assert result.values["scenarios"] == 4
    assert result.values["structures"] == 2
    assert result.values["cells_max"] == 2 * 5 * 5
    # The open-loop (noTM) variant of the second resolution replayed the
    # first resolution's recording instead of re-emulating.
    assert result.values["replayed_scenarios"] == 1
    # Both members of a structure group share the group's wall time, so
    # the extractor found exactly two members per group.
    assert "run_batched" in result.body


def test_fig6_artifact_shape():
    result = ARTIFACTS.get("fig6")().run()
    assert result.ok, render_verdicts([result])
    assert result.values["unmanaged_peak_k"] > result.values["managed_peak_k"]
    assert result.body.count("```") == 4  # two fenced ASCII charts


def test_policy_comparison_artifact_races_all_builtins():
    artifact = ARTIFACTS.get("policy_comparison")()
    assert artifact.batched and artifact.capture_trace
    result = artifact.run()
    assert result.ok, render_verdicts([result])
    # The acceptance bar: >= 6 policies (4 ported + >= 2 exploration).
    assert result.values["policies_compared"] >= 6
    assert (
        result.values["managed_peak_max_k"]
        < result.values["unmanaged_peak_k"]
    )
    # Per-policy stats from the report() hook reach the rendered body.
    assert "switches=" in result.body
    for name in ("dual_threshold", "dvfs_ladder", "pid", "predictive"):
        assert f"peak_k_{name}" in result.values


# -- pipeline rendering ------------------------------------------------------


def test_run_artifacts_unknown_name_raises_up_front():
    with pytest.raises(ValueError, match="unknown paper artifact"):
        run_artifacts(names=["no_such_artifact"])


def test_pipeline_render_and_write(tmp_path):
    results = run_artifacts(names=["table1", "table2"], progress=None)
    markdown = render_markdown(results)
    assert "# Paper reproduction report" in markdown
    assert "[table1](#table1)" in markdown
    assert "### Checks — PASS" in markdown
    payload = to_json(results)
    assert payload["ok"] is True
    assert [a["name"] for a in payload["artifacts"]] == ["table1", "table2"]

    md_path, json_path = write_report(results, output_dir=tmp_path)
    assert md_path.read_text() == markdown
    assert json.loads(json_path.read_text())["ok"] is True


def test_markdown_table_escapes_pipes():
    table = Table(["a", "b"], title="T")
    table.add_row("x|y", "z")
    text = markdown_table(table)
    assert "x\\|y" in text
    assert text.splitlines()[0] == "*T*"
