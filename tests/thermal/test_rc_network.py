"""RC network assembly tests: capacitances, conductances, boundaries."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.thermal.calibration import uniform_floorplan
from repro.thermal.grid import build_grid
from repro.thermal.properties import (
    PACKAGE_TO_AIR_RESISTANCE,
    ThermalProperties,
    silicon_conductivity,
)
from repro.thermal.rc_network import RCNetwork


def make_network(die_res=(3, 3), spread_res=(3, 3)):
    plan = uniform_floorplan()
    grid = build_grid(
        plan, mode="uniform", die_resolution=die_res, spreader_resolution=spread_res
    )
    return plan, grid, RCNetwork(grid)


def test_capacitances_match_materials():
    props = ThermalProperties()
    plan, grid, net = make_network()
    for cell in grid.cells:
        material = (
            props.die_material if cell.layer == "die" else props.spreader_material
        )
        expected = material.volumetric_heat * cell.volume
        assert net.capacitance[cell.index] == pytest.approx(expected)


def test_total_capacitance_is_stack_capacitance():
    props = ThermalProperties()
    plan, grid, net = make_network()
    expected = plan.area * (
        props.die_thickness * props.die_material.volumetric_heat
        + props.spreader_thickness * props.spreader_material.volumetric_heat
    )
    assert net.capacitance.sum() == pytest.approx(expected, rel=1e-9)


def test_ambient_conductances_parallel_to_package_resistance():
    # The per-cell convection resistances in parallel must reproduce the
    # package-to-air resistance (plus the copper half layer).
    plan, grid, net = make_network()
    g_total = net.g_ambient.sum()
    assert g_total > 0
    r_parallel = 1.0 / g_total
    assert PACKAGE_TO_AIR_RESISTANCE <= r_parallel <= PACKAGE_TO_AIR_RESISTANCE * 1.05


def test_only_spreader_cells_touch_ambient():
    plan, grid, net = make_network()
    for cell in grid.cells:
        if cell.layer == "die":
            assert net.g_ambient[cell.index] == 0.0
        else:
            assert net.g_ambient[cell.index] > 0.0


def test_conductance_matrix_symmetric():
    plan, grid, net = make_network()
    t = np.full(net.num_cells, 320.0)
    g = net.conductance_matrix(t)
    dense = g.toarray()
    assert np.allclose(dense, dense.T)


def test_conductance_matrix_rows_sum_to_ambient_leak():
    # Graph Laplacian rows sum to zero except for the ambient conductance.
    plan, grid, net = make_network()
    t = np.full(net.num_cells, 300.0)
    g = net.conductance_matrix(t).toarray()
    rows = g.sum(axis=1)
    assert np.allclose(rows, net.g_ambient, atol=1e-12)


def test_hotter_silicon_conducts_less():
    plan, grid, net = make_network()
    cold = net.edge_conductances(np.full(net.num_cells, 300.0))
    hot = net.edge_conductances(np.full(net.num_cells, 400.0))
    # Edges between two silicon cells must weaken with temperature.
    si_edges = [
        e
        for e in range(len(net.edge_i))
        if net.is_nonlinear[net.edge_i[e]] and net.is_nonlinear[net.edge_j[e]]
    ]
    assert si_edges
    for e in si_edges:
        assert hot[e] < cold[e]
    ratio = hot[si_edges[0]] / cold[si_edges[0]]
    assert ratio == pytest.approx(
        silicon_conductivity(400.0) / silicon_conductivity(300.0)
    )


def test_set_power_spreads_by_overlap():
    plan, grid, net = make_network(die_res=(2, 2))
    net.set_power({"block": 8.0})
    die_powers = net.power[[c.index for c in grid.cells_of("die")]]
    assert die_powers.sum() == pytest.approx(8.0)
    assert np.allclose(die_powers, 2.0)  # four equal cells
    spread = net.power[[c.index for c in grid.cells_of("spreader")]]
    assert np.all(spread == 0.0)


def test_set_power_unknown_component():
    plan, grid, net = make_network()
    with pytest.raises(KeyError):
        net.set_power({"bogus": 1.0})


def test_heat_outflow_zero_at_ambient():
    plan, grid, net = make_network()
    t = np.full(net.num_cells, net.properties.ambient)
    assert net.heat_outflow(t) == pytest.approx(0.0)


@settings(max_examples=25, deadline=None)
@given(watts=st.floats(min_value=0.01, max_value=50.0))
def test_power_injection_conserves_watts(watts):
    """Property: injected power equals the sum of the current sources."""
    plan, grid, net = make_network()
    net.set_power({"block": watts})
    assert net.total_power() == pytest.approx(watts, rel=1e-12)
