"""Calibration-suite thresholds (the FEM-calibration substitute)."""


from repro.thermal.calibration import (
    analytic_layered_wall,
    calibration_report,
    convergence_profile,
    lumped_time_constant,
    steady_state_error,
    transient_error,
)
from repro.thermal.properties import ThermalProperties


def test_analytic_wall_orders_of_magnitude():
    props = ThermalProperties()
    t = analytic_layered_wall(10.0, 16e-6, props)
    # 10 W over 20 K/W dominates: ~200 K rise above 300 K ambient.
    assert 495.0 < t < 515.0


def test_analytic_wall_scales_with_power():
    t1 = analytic_layered_wall(5.0, 16e-6)
    t2 = analytic_layered_wall(10.0, 16e-6)
    assert t2 > t1
    # Package drop doubles exactly; silicon adds slightly more.
    assert (t2 - 300.0) >= 2.0 * (t1 - 300.0) * 0.99


def test_steady_state_error_under_two_percent():
    _, _, error = steady_state_error(power=10.0)
    assert error < 0.02


def test_transient_error_under_two_percent():
    assert transient_error(power=10.0) < 0.02


def test_lumped_time_constant_seconds_scale():
    tau = lumped_time_constant()
    assert 0.5 < tau < 5.0  # small low-power die: seconds, not ms or min


def test_convergence_profile_flat():
    profile = convergence_profile(power=10.0, resolutions=((2, 2), (6, 6)))
    temps = [t for _, t in profile]
    assert max(temps) - min(temps) < 0.5  # uniform power: 1-D solution


def test_calibration_report_structure():
    report = calibration_report(power=5.0)
    assert report["steady_relative_error"] < 0.02
    assert report["transient_relative_error"] < 0.02
    assert report["convergence_spread_K"] < 0.5
    assert len(report["convergence_profile"]) == 4
