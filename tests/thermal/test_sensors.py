"""Temperature-sensor hysteresis tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.thermal.sensors import (
    IN_BAND,
    OVER_UPPER,
    UNDER_LOWER,
    SensorBank,
    TemperatureSensor,
)


def test_threshold_order_enforced():
    with pytest.raises(ValueError):
        TemperatureSensor("c", upper_kelvin=340.0, lower_kelvin=350.0)


def test_hysteresis_cycle():
    sensor = TemperatureSensor("core", 350.0, 340.0)
    assert sensor.update(345.0, 0.0) == IN_BAND  # rising through the band
    assert not sensor.hot
    assert sensor.update(351.0, 1.0) == OVER_UPPER
    assert sensor.hot
    assert sensor.update(345.0, 2.0) == IN_BAND  # still latched hot
    assert sensor.hot
    assert sensor.update(339.0, 3.0) == UNDER_LOWER
    assert not sensor.hot
    assert [kind for _, kind, _ in sensor.crossings] == [OVER_UPPER, UNDER_LOWER]


def test_exact_threshold_crossings():
    sensor = TemperatureSensor("core", 350.0, 340.0)
    assert sensor.update(350.0) == OVER_UPPER  # >= upper triggers
    assert sensor.update(340.0) == UNDER_LOWER  # <= lower releases


def test_bank_updates_and_any_hot():
    bank = SensorBank(["a", "b"], upper_kelvin=350.0, lower_kelvin=340.0)
    transitions = bank.update({"a": 355.0, "b": 330.0}, time=1.0)
    assert transitions == {"a": OVER_UPPER}
    assert bank.any_hot
    transitions = bank.update({"a": 335.0, "b": 330.0}, time=2.0)
    assert transitions == {"a": UNDER_LOWER}
    assert not bank.any_hot


def test_bank_ignores_unknown_components():
    bank = SensorBank(["a"])
    assert bank.update({"zzz": 400.0}) == {}


def test_bank_max_temperature_and_crossings_sorted():
    bank = SensorBank(["a", "b"])
    bank.update({"a": 310.0, "b": 320.0}, time=0.0)
    assert bank.max_temperature() == 320.0
    bank.update({"a": 360.0}, time=1.0)
    bank.update({"b": 360.0}, time=2.0)
    crossings = bank.crossings()
    assert [c[1] for c in crossings] == ["a", "b"]


@settings(max_examples=40, deadline=None)
@given(
    temps=st.lists(
        st.floats(min_value=300.0, max_value=400.0), min_size=1, max_size=100
    )
)
def test_hot_state_consistent_with_history(temps):
    """Property: the latch is exactly 'crossed upper more recently than
    lower', replayed independently."""
    sensor = TemperatureSensor("c", 350.0, 340.0)
    hot = False
    for t in temps:
        sensor.update(t)
        if not hot and t >= 350.0:
            hot = True
        elif hot and t <= 340.0:
            hot = False
        assert sensor.hot == hot
