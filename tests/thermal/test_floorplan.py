"""Floorplan validation and the two Figure 4 floorplans."""

import pytest

from repro.power.library import DEFAULT_LIBRARY
from repro.thermal.floorplan import (
    Floorplan,
    FloorplanComponent,
    floorplan_4xarm11,
    floorplan_4xarm7,
)


def comp(name, x, y, w, h, power_class=None):
    return FloorplanComponent(
        name=name, x=x, y=y, width=w, height=h, power_class=power_class
    )


def test_exact_tiling_accepted():
    Floorplan(
        name="t",
        width=2.0,
        height=1.0,
        components=[comp("a", 0, 0, 1, 1, "arm7"), comp("b", 1, 0, 1, 1)],
    )


def test_overlap_rejected():
    with pytest.raises(ValueError, match="overlap"):
        Floorplan(
            name="t",
            width=2.0,
            height=1.0,
            components=[comp("a", 0, 0, 1.5, 1), comp("b", 1, 0, 1, 1)],
        )


def test_out_of_bounds_rejected():
    with pytest.raises(ValueError, match="outside"):
        Floorplan(name="t", width=1.0, height=1.0, components=[comp("a", 0.5, 0, 1, 1)])


def test_incomplete_coverage_rejected():
    with pytest.raises(ValueError, match="covers"):
        Floorplan(name="t", width=2.0, height=1.0, components=[comp("a", 0, 0, 1, 1)])


def test_duplicate_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        Floorplan(
            name="t",
            width=2.0,
            height=1.0,
            components=[comp("a", 0, 0, 1, 1), comp("a", 1, 0, 1, 1)],
        )


def test_overlap_area():
    c = comp("a", 0, 0, 2, 2)
    assert c.overlap_area(1, 1, 3, 3) == pytest.approx(1.0)
    assert c.overlap_area(5, 5, 6, 6) == 0.0


@pytest.mark.parametrize("factory, core_class", [
    (floorplan_4xarm7, "arm7"),
    (floorplan_4xarm11, "arm11"),
])
def test_paper_floorplans(factory, core_class):
    plan = factory()
    plan.validate()
    active = plan.active_components()
    cores = [c for c in active if c.power_class == core_class]
    assert len(cores) == 4
    assert all(c.critical for c in cores)
    # Four I-caches, four D-caches, four private memories, one shared.
    assert sum(1 for c in active if c.power_class == "icache_8k_dm") == 4
    assert sum(1 for c in active if c.power_class == "dcache_8k_2w") == 4
    assert sum(1 for c in active if c.power_class == "sram_32k") == 5
    assert sum(1 for c in active if c.power_class == "noc_switch") == 4
    # Component areas come from Table 1 (area = power / density).
    for c in cores:
        assert c.area == pytest.approx(DEFAULT_LIBRARY.area(core_class), rel=1e-6)


def test_paper_floorplans_cell_count_near_28():
    # The paper's co-emulation floorplan uses 28 thermal cells; ours tile
    # to a comparable count (components + filler).
    for plan in (floorplan_4xarm7(), floorplan_4xarm11()):
        assert 25 <= len(plan.components) <= 35


def test_activity_sources_bound():
    plan = floorplan_4xarm11()
    sources = {c.activity_source for c in plan.active_components()}
    for index in range(4):
        assert ("core", index) in sources
        assert ("icache", index) in sources
        assert ("dcache", index) in sources
        assert ("private_mem", index) in sources
    assert ("shared_mem", None) in sources


def test_component_lookup():
    plan = floorplan_4xarm7()
    assert plan.component("arm7_0").power_class == "arm7"
    with pytest.raises(KeyError):
        plan.component("bogus")


def test_summary_rows():
    plan = floorplan_4xarm7()
    rows = plan.summary()
    assert len(rows) == len(plan.components)
    assert all(len(row) == 4 for row in rows)
