"""Solver tests: integrators, steady state, energy balance, readout."""

import numpy as np
import pytest

from repro.thermal.calibration import (
    analytic_layered_wall,
    uniform_floorplan,
)
from repro.thermal.floorplan import floorplan_4xarm11
from repro.thermal.grid import build_grid
from repro.thermal.rc_network import RCNetwork
from repro.thermal.solver import ThermalSolver


def make_solver(power=10.0, die_res=(3, 3), plan=None, component="block"):
    plan = plan or uniform_floorplan()
    grid = build_grid(
        plan, mode="uniform", die_resolution=die_res, spreader_resolution=die_res
    )
    net = RCNetwork(grid)
    if power:
        net.set_power({component: power})
    return plan, net, ThermalSolver(net)


def test_initial_state_is_ambient():
    _, net, solver = make_solver(power=0.0)
    assert solver.max_temperature() == pytest.approx(net.properties.ambient)
    assert solver.time == 0.0


def test_no_power_stays_at_ambient():
    _, net, solver = make_solver(power=0.0)
    solver.run(duration=1.0, dt=0.05)
    assert np.allclose(solver.temperatures, net.properties.ambient, atol=1e-9)


def test_step_response_is_monotone_and_bounded():
    _, net, solver = make_solver(power=10.0)
    previous = solver.max_temperature()
    for _ in range(40):
        solver.step_be(0.1)
        current = solver.max_temperature()
        assert current >= previous - 1e-9
        previous = current
    steady = ThermalSolver(net).steady_state()
    assert previous <= steady.max() + 1e-6


def test_steady_state_matches_analytic_wall():
    plan, net, solver = make_solver(power=10.0, die_res=(4, 4))
    solver.steady_state()
    analytic = analytic_layered_wall(10.0, plan.area)
    rise_sim = solver.max_temperature() - net.properties.ambient
    rise_ana = analytic - net.properties.ambient
    assert rise_sim == pytest.approx(rise_ana, rel=0.02)


def test_transient_converges_to_steady_state():
    _, net, solver = make_solver(power=10.0)
    steady = ThermalSolver(net).steady_state()
    solver.run(duration=30.0, dt=0.25)  # many time constants
    assert np.allclose(solver.temperatures, steady, rtol=1e-3)


def test_energy_balance_at_steady_state():
    _, net, solver = make_solver(power=7.5)
    solver.steady_state()
    assert net.heat_outflow(solver.temperatures) == pytest.approx(7.5, rel=1e-6)


def test_forward_euler_matches_backward_euler_small_dt():
    _, net, be_solver = make_solver(power=5.0)
    _, _, fe_solver = make_solver(power=5.0)
    fe_solver.network = be_solver.network
    dt = 1e-4
    for _ in range(200):
        be_solver.step_be(dt)
        fe_solver.step_fe(dt)
    assert np.allclose(be_solver.temperatures, fe_solver.temperatures, atol=0.05)


def test_forward_euler_stability_guard():
    _, net, solver = make_solver(power=5.0)
    with pytest.raises(ValueError, match="unstable"):
        solver.step_fe(10.0)


def test_step_validates_dt():
    _, _, solver = make_solver()
    with pytest.raises(ValueError):
        solver.step_be(0.0)
    with pytest.raises(ValueError):
        solver.step_fe(-1.0)


def test_run_callback_and_time():
    _, _, solver = make_solver(power=2.0)
    seen = []
    solver.run(duration=0.5, dt=0.1, callback=lambda t, temps: seen.append(t))
    assert len(seen) == 5
    assert seen[-1] == pytest.approx(0.5)
    assert solver.time == pytest.approx(0.5)


def test_component_temperature_readout():
    plan = floorplan_4xarm11()
    grid = build_grid(plan, mode="component", spreader_resolution=(2, 2))
    net = RCNetwork(grid)
    net.set_power({"arm11_0": 2.0})  # only one core dissipates
    solver = ThermalSolver(net)
    solver.steady_state()
    temps = solver.component_temperatures()
    hottest = max(temps, key=temps.get)
    assert hottest == "arm11_0"
    # Components far from the heater run cooler.
    assert temps["arm11_3"] < temps["arm11_0"]
    with pytest.raises(KeyError):
        solver.component_temperature("bogus")


def test_hot_spot_is_localized():
    plan = floorplan_4xarm11()
    grid = build_grid(plan, mode="component", spreader_resolution=(3, 3))
    net = RCNetwork(grid)
    net.set_power({"arm11_0": 3.0})
    solver = ThermalSolver(net)
    solver.steady_state()
    t0 = solver.component_temperature("arm11_0")
    t3 = solver.component_temperature("arm11_3")
    ambient = net.properties.ambient
    # The diagonal core sees less of the rise than the hot spot itself;
    # the copper spreader equalizes much of it, so the gap is modest.
    assert (t3 - ambient) < 0.95 * (t0 - ambient)


def test_reset():
    _, net, solver = make_solver(power=5.0)
    solver.run(duration=1.0, dt=0.1)
    solver.reset()
    assert solver.time == 0.0
    assert solver.max_temperature() == pytest.approx(net.properties.ambient)
    solver.reset(temperature=333.0)
    assert solver.max_temperature() == pytest.approx(333.0)


def test_nonlinear_solver_hotter_than_linear_estimate():
    """The non-linear silicon must run hotter than a constant-k(300) model
    (conductivity drops as the die heats) — the effect the paper adopts
    non-linear resistances for."""
    plan, net, solver = make_solver(power=40.0, die_res=(4, 4))
    solver.steady_state()
    nonlinear_max = solver.max_temperature()

    from repro.thermal.properties import Material, ThermalProperties

    linear_props = ThermalProperties(
        die_material=Material("si-linear", 150.0, 1.628e6)
    )
    grid = build_grid(
        plan,
        properties=linear_props,
        mode="uniform",
        die_resolution=(4, 4),
        spreader_resolution=(4, 4),
    )
    linear_net = RCNetwork(grid)
    linear_net.set_power({"block": 40.0})
    linear_solver = ThermalSolver(linear_net)
    linear_solver.steady_state()
    assert nonlinear_max > linear_solver.max_temperature()
