"""Grid generation tests: modes, adjacency, multi-resolution, coverage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.thermal.calibration import uniform_floorplan
from repro.thermal.floorplan import (
    Floorplan,
    FloorplanComponent,
    floorplan_4xarm7,
)
from repro.thermal.grid import LAYER_DIE, LAYER_SPREADER, build_grid


def test_component_mode_one_cell_per_rect():
    plan = floorplan_4xarm7()
    grid = build_grid(plan, mode="component", spreader_resolution=(2, 2))
    assert len(grid.die_cells) == len(plan.components)
    assert len(grid.spreader_cells) == 4


def test_uniform_mode_cell_counts():
    plan = uniform_floorplan()
    grid = build_grid(
        plan, mode="uniform", die_resolution=(5, 4), spreader_resolution=(3, 2)
    )
    assert len(grid.die_cells) == 20
    assert len(grid.spreader_cells) == 6
    assert grid.num_cells == 26


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        build_grid(uniform_floorplan(), mode="fancy")


def test_refine_critical_subdivides():
    plan = floorplan_4xarm7()
    base = build_grid(plan, mode="component")
    refined = build_grid(plan, mode="component", refine_critical=2)
    critical = sum(1 for c in plan.components if c.critical)
    assert len(refined.die_cells) == len(base.die_cells) + critical * 3


def test_uniform_grid_adjacency_counts():
    plan = uniform_floorplan()
    nx, ny = 4, 3
    grid = build_grid(
        plan, mode="uniform", die_resolution=(nx, ny), spreader_resolution=(nx, ny)
    )
    # Per layer: nx*(ny-1) + (nx-1)*ny internal face pairs.
    per_layer = nx * (ny - 1) + (nx - 1) * ny
    assert len(grid.lateral_edges) == 2 * per_layer
    # Aligned grids: one vertical edge per column pair.
    assert len(grid.vertical_edges) == nx * ny


def test_hanging_nodes_multiple_neighbours():
    # One coarse cell next to two fine cells: the coarse face must couple
    # to both.
    plan = Floorplan(
        name="t",
        width=2.0e-3,
        height=1.0e-3,
        components=[
            FloorplanComponent("coarse", 0, 0, 1e-3, 1e-3, "arm7", ("core", 0)),
            FloorplanComponent(
                "fine", 1e-3, 0, 1e-3, 1e-3, "arm11", ("core", 1), critical=True
            ),
        ],
    )
    grid = build_grid(plan, mode="component", refine_critical=2,
                      spreader_resolution=(1, 1))
    coarse_index = next(
        c.index for c in grid.cells if c.component == "coarse"
    )
    lateral_partners = [
        (i, j) for i, j, _, _ in grid.lateral_edges if coarse_index in (i, j)
    ]
    assert len(lateral_partners) == 2  # two fine half-cells share the face


def test_component_cover_complete_and_exact():
    plan = floorplan_4xarm7()
    grid = build_grid(plan, mode="uniform", die_resolution=(12, 12))
    for comp in plan.active_components():
        cover = grid.component_cover[comp.name]
        total = sum(area for _, area in cover)
        assert total == pytest.approx(comp.area, rel=1e-9)


def test_cells_geometry():
    plan = uniform_floorplan()
    grid = build_grid(plan, mode="uniform", die_resolution=(2, 2),
                      spreader_resolution=(2, 2))
    for cell in grid.cells:
        assert cell.area > 0
        assert cell.volume == pytest.approx(cell.area * cell.thickness)
        if cell.layer == LAYER_DIE:
            assert cell.thickness == grid.properties.die_thickness
        else:
            assert cell.thickness == grid.properties.spreader_thickness


def test_summary():
    grid = build_grid(uniform_floorplan(), mode="uniform", die_resolution=(3, 3))
    summary = grid.summary()
    assert summary["cells"] == summary["die_cells"] + summary["spreader_cells"]
    assert summary["lateral_edges"] > 0
    assert summary["vertical_edges"] > 0


@settings(max_examples=20, deadline=None)
@given(
    nx=st.integers(min_value=1, max_value=6),
    ny=st.integers(min_value=1, max_value=6),
)
def test_uniform_areas_tile_the_die(nx, ny):
    """Property: cell areas in each layer sum to the die area."""
    plan = uniform_floorplan()
    grid = build_grid(
        plan, mode="uniform", die_resolution=(nx, ny), spreader_resolution=(2, 2)
    )
    die_area = sum(c.area for c in grid.cells_of(LAYER_DIE))
    spread_area = sum(c.area for c in grid.cells_of(LAYER_SPREADER))
    assert die_area == pytest.approx(plan.area, rel=1e-9)
    assert spread_area == pytest.approx(plan.area, rel=1e-9)


@settings(max_examples=15, deadline=None)
@given(refine=st.integers(min_value=1, max_value=3))
def test_component_mode_tiles_exactly(refine):
    plan = floorplan_4xarm7()
    grid = build_grid(plan, mode="component", refine_critical=refine)
    die_area = sum(c.area for c in grid.cells_of(LAYER_DIE))
    assert die_area == pytest.approx(plan.area, rel=1e-9)
