"""Solver-backend tests: registry, equivalence, refactorization policy,
multi-RHS batching, energy balance, structure sharing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.thermal.backends import (
    SOLVER_BACKENDS,
    BatchedLU,
    CachedLU,
    SparseBE,
    make_backend,
)
from repro.thermal.calibration import uniform_floorplan
from repro.thermal.floorplan import floorplan_4xarm11
from repro.thermal.grid import build_grid
from repro.thermal.properties import Material, ThermalProperties
from repro.thermal.rc_network import (
    RCNetwork,
    clear_assembly_cache,
    network_for,
)
from repro.thermal.solver import ThermalSolver

DT = 0.010


def component_network():
    grid = build_grid(
        floorplan_4xarm11(), mode="component", spreader_resolution=(2, 2)
    )
    return RCNetwork(grid)


def uniform_network():
    grid = build_grid(
        uniform_floorplan(),
        mode="uniform",
        die_resolution=(4, 4),
        spreader_resolution=(4, 4),
    )
    return RCNetwork(grid)


def linear_network():
    """A constant-k die: CachedLU must be *exact* and factorize once."""
    props = ThermalProperties(die_material=Material("si-linear", 150.0, 1.628e6))
    grid = build_grid(
        uniform_floorplan(),
        properties=props,
        mode="uniform",
        die_resolution=(3, 3),
        spreader_resolution=(3, 3),
    )
    return RCNetwork(grid)


def trajectories(network, backend, powers_per_window):
    net = network.clone()
    solver = ThermalSolver(net, backend=backend)
    out = []
    for powers in powers_per_window:
        net.set_power(powers)
        solver.step_be(DT)
        out.append(solver.temperatures.copy())
    return np.array(out), solver.backend


# -- registry / construction -------------------------------------------------

def test_registry_names_and_make_backend():
    assert {"sparse_be", "cached_lu", "batched_lu"} <= set(SOLVER_BACKENDS.names())
    assert isinstance(make_backend(None), SparseBE)
    assert isinstance(make_backend("cached_lu"), CachedLU)
    backend = make_backend(
        {"name": "cached_lu", "params": {"refactor_tolerance_kelvin": 0.5}}
    )
    assert backend.refactor_tolerance_kelvin == 0.5
    instance = BatchedLU()
    assert make_backend(instance) is instance


def test_bind_refuses_a_second_network():
    backend = CachedLU()
    first = uniform_network()
    backend.bind(first)
    backend.bind(first)  # idempotent re-bind to the same network is fine
    with pytest.raises(ValueError, match="already bound"):
        backend.bind(component_network())


def test_make_backend_rejects_bad_specs():
    with pytest.raises(ValueError, match="unknown solver backend"):
        make_backend("nope")
    with pytest.raises(ValueError, match="'name' entry"):
        make_backend({"params": {}})
    with pytest.raises(ValueError, match="unknown solver-backend keys"):
        make_backend({"name": "cached_lu", "speed": 11})
    with pytest.raises(TypeError):
        make_backend(42)
    with pytest.raises(ValueError, match="tolerance"):
        CachedLU(refactor_tolerance_kelvin=0.0)


# -- equivalence -------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(
    watts=st.floats(min_value=0.05, max_value=3.0),
    split=st.floats(min_value=0.0, max_value=1.0),
)
def test_cached_matches_reference_on_component_grid(watts, split):
    """Property: CachedLU tracks SparseBE within its drift tolerance on
    the paper's component grid, under power that changes mid-run."""
    network = component_network()
    schedule = [{"arm11_0": watts, "arm11_1": watts * split}] * 30
    schedule += [{"arm11_2": watts, "arm11_3": watts * (1 - split)}] * 30
    reference, _ = trajectories(network, "sparse_be", schedule)
    cached, backend = trajectories(network, "cached_lu", schedule)
    assert float(np.max(np.abs(cached - reference))) < 0.1
    assert backend.factorizations < len(schedule)


@settings(max_examples=10, deadline=None)
@given(watts=st.floats(min_value=0.1, max_value=5.0))
def test_batched_matches_reference_on_uniform_grid(watts):
    network = uniform_network()
    schedule = [{"block": watts}] * 40
    reference, _ = trajectories(network, "sparse_be", schedule)
    batched, _ = trajectories(network, "batched_lu", schedule)
    assert float(np.max(np.abs(batched - reference))) < 0.1


def test_cached_is_exact_and_factorizes_once_on_linear_stack():
    network = linear_network()
    schedule = [{"block": 5.0 if w < 40 else 1.0} for w in range(80)]
    reference, _ = trajectories(network, "sparse_be", schedule)
    cached, backend = trajectories(network, "cached_lu", schedule)
    assert float(np.max(np.abs(cached - reference))) < 1e-8
    assert backend.factorizations == 1  # linear: no drift-triggered rebuilds


def test_multi_rhs_step_batch_matches_columns():
    """One step_batch call advances every column like a per-column solve."""
    network = uniform_network()
    nets = [network.clone() for _ in range(3)]
    for net, watts in zip(nets, (1.0, 2.0, 3.0)):
        net.set_power({"block": watts})
    backend = BatchedLU(refactor_tolerance_kelvin=0.5).bind(nets[0])
    temps = np.full((network.num_cells, 3), network.properties.ambient)
    for _ in range(25):
        rhs = np.stack([net.rhs() for net in nets], axis=1)
        temps = backend.step_batch(temps, DT, rhs)
    for col, watts in enumerate((1.0, 2.0, 3.0)):
        reference, _ = trajectories(network, "sparse_be", [{"block": watts}] * 25)
        worst = float(np.max(np.abs(temps[:, col] - reference[-1])))
        assert worst < 0.2, f"column {col}: {worst} K"
    assert backend.factorizations < 25


# -- energy balance ----------------------------------------------------------

@pytest.mark.parametrize("backend", ["sparse_be", "cached_lu", "batched_lu"])
def test_energy_balance_at_equilibrium(backend):
    """After many time constants the package outflow equals the injected
    power, whichever backend integrated the run."""
    network = uniform_network()
    net = network.clone()
    net.set_power({"block": 4.0})
    solver = ThermalSolver(net, backend=backend)
    solver.run(duration=40.0, dt=0.25)
    assert net.heat_outflow(solver.temperatures) == pytest.approx(4.0, rel=1e-2)


# -- refactorization policy --------------------------------------------------

def test_dt_change_triggers_refactorization():
    network = uniform_network()
    net = network.clone()
    net.set_power({"block": 0.1})
    solver = ThermalSolver(net, backend="cached_lu")
    solver.step_be(DT)
    solver.step_be(DT)
    assert solver.backend.factorizations == 1
    solver.step_be(2 * DT)
    assert solver.backend.factorizations == 2


def test_silicon_drift_triggers_refactorization():
    network = uniform_network()
    net = network.clone()
    net.set_power({"block": 30.0})  # heats well past 1 K within a few windows
    solver = ThermalSolver(net, backend=CachedLU(refactor_tolerance_kelvin=0.5))
    for _ in range(40):
        solver.step_be(DT)
    assert solver.backend.factorizations > 1


def test_reset_invalidates_cached_factors():
    network = uniform_network()
    net = network.clone()
    net.set_power({"block": 1.0})
    solver = ThermalSolver(net, backend="cached_lu")
    solver.step_be(DT)
    solver.reset()
    assert solver.backend._solve is None
    solver.step_be(DT)
    assert solver.backend.factorizations == 2


def test_backend_stats_counters():
    network = uniform_network()
    net = network.clone()
    net.set_power({"block": 1.0})
    solver = ThermalSolver(net, backend="cached_lu")
    for _ in range(5):
        solver.step_be(DT)
    stats = solver.backend.stats()
    assert stats["solves"] == 5
    assert stats["factorizations"] >= 1


# -- structure sharing -------------------------------------------------------

def test_clone_shares_structure_but_not_power():
    network = uniform_network()
    twin = network.clone()
    assert twin.grid is network.grid
    assert twin.capacitance is network.capacitance
    twin.set_power({"block": 2.0})
    assert network.total_power() == 0.0
    assert twin.total_power() == pytest.approx(2.0)


def test_network_for_caches_by_structure():
    clear_assembly_cache()
    before = RCNetwork.assemblies
    a = network_for(floorplan_4xarm11(), spreader_resolution=(2, 2))
    b = network_for(floorplan_4xarm11(), spreader_resolution=(2, 2))
    assert RCNetwork.assemblies - before == 1
    assert a.grid is b.grid
    c = network_for(floorplan_4xarm11(), spreader_resolution=(3, 3))
    assert RCNetwork.assemblies - before == 2
    assert c.grid is not a.grid


def test_network_for_bypasses_cache_for_custom_properties():
    clear_assembly_cache()
    props = ThermalProperties(die_material=Material("si-linear", 150.0, 1.628e6))
    before = RCNetwork.assemblies
    network_for(uniform_floorplan(), mode="uniform", properties=props)
    network_for(uniform_floorplan(), mode="uniform", properties=props)
    assert RCNetwork.assemblies - before == 2


# -- vectorized injection / readout ------------------------------------------

def test_vectorized_readout_matches_manual_mean():
    network = component_network()
    temps = np.linspace(300.0, 360.0, network.num_cells)
    means = network.component_temperatures(temps)
    for name, cover in network.grid.component_cover.items():
        total = sum(area for _, area in cover)
        manual = sum(temps[i] * area for i, area in cover) / total
        assert means[name] == pytest.approx(manual)
        assert network.component_temperature(name, temps) == pytest.approx(manual)
    with pytest.raises(KeyError):
        network.component_temperature("bogus", temps)
