"""The parameterized heterogeneous (big.LITTLE-style) floorplan."""

import pytest

from repro.thermal.floorplan import BUILTIN_FLOORPLANS, floorplan_hetero


def test_builds_and_validates():
    plan = floorplan_hetero(big=2, little=3)
    plan.validate()
    assert plan.name == "hetero_2xarm11_3xarm7"


def test_core_activity_indices_follow_platform_order():
    plan = floorplan_hetero(big=2, little=2)
    sources = {c.activity_source for c in plan.active_components()}
    for i in range(4):
        assert ("core", i) in sources
        assert ("icache", i) in sources
        assert ("private_mem", i) in sources
    assert ("shared_mem", None) in sources
    assert ("bus", None) in sources
    # Cores 0..big-1 are big-class rectangles, the rest little-class.
    by_source = {c.activity_source: c for c in plan.active_components()}
    assert by_source[("core", 0)].power_class == "arm11"
    assert by_source[("core", 3)].power_class == "arm7"


def test_big_cores_are_larger_than_littles():
    plan = floorplan_hetero(big=1, little=1)
    by_source = {c.activity_source: c for c in plan.active_components()}
    big = by_source[("core", 0)]
    little = by_source[("core", 1)]
    assert big.width * big.height > little.width * little.height


def test_single_cluster_shapes():
    floorplan_hetero(big=3, little=0).validate()
    floorplan_hetero(big=0, little=2).validate()


def test_rejects_empty_platform():
    with pytest.raises(ValueError):
        floorplan_hetero(big=0, little=0)
    with pytest.raises(ValueError):
        floorplan_hetero(big=-1, little=2)


def test_name_is_deterministic_and_fingerprint_stable():
    a = floorplan_hetero(big=2, little=2)
    b = floorplan_hetero(big=2, little=2)
    assert a.name == b.name
    assert a.fingerprint() == b.fingerprint()
    assert a.name != floorplan_hetero(big=2, little=1).name


def test_registered_as_builtin():
    assert BUILTIN_FLOORPLANS["hetero"] is floorplan_hetero
