"""Operating-point analysis tests."""

import pytest

from repro.power.models import ActivityVector
from repro.thermal.analysis import OperatingPointAnalyzer
from repro.thermal.floorplan import floorplan_4xarm11
from repro.util.units import MHZ


@pytest.fixture(scope="module")
def analyzer():
    return OperatingPointAnalyzer(floorplan_4xarm11(), spreader_resolution=(2, 2))


def test_steady_state_monotone_in_frequency(analyzer):
    points = analyzer.sweep([100 * MHZ, 250 * MHZ, 500 * MHZ], utilization=0.95)
    temps = [p.max_temperature_k for p in points]
    powers = [p.total_power_w for p in points]
    assert temps == sorted(temps)
    assert powers == sorted(powers)
    # 500 MHz near-full tilt lands in the unmanaged Figure 6 regime
    # (slightly above the measured-profile run: here every component,
    # caches and switches included, is pinned at 95% activity).
    assert 400.0 < temps[-1] < 465.0


def test_holds_predicate(analyzer):
    hot = analyzer.steady_state(500 * MHZ, utilization=0.95)
    cool = analyzer.steady_state(100 * MHZ, utilization=0.95)
    assert not hot.holds(350.0)
    assert cool.holds(350.0)


def test_ablation_insight_250mhz_cannot_hold_350k(analyzer):
    """The DFS ablation's finding, as an API answer."""
    assert analyzer.dfs_low_point_holds(100 * MHZ, 350.0, utilization=0.95)
    assert not analyzer.dfs_low_point_holds(250 * MHZ, 350.0, utilization=0.95)


def test_minimum_holding_frequency_brackets(analyzer):
    f = analyzer.minimum_holding_frequency(
        350.0, utilization=0.95, low_hz=50 * MHZ, high_hz=500 * MHZ,
        tol_hz=5 * MHZ,
    )
    assert 100 * MHZ < f < 250 * MHZ
    # The returned point holds; slightly above it does not.
    assert analyzer.steady_state(f, 0.95).holds(350.0)
    assert not analyzer.steady_state(f + 20 * MHZ, 0.95).holds(350.0)


def test_minimum_holding_frequency_edges(analyzer):
    # A very lax ceiling is held even at the top frequency.
    assert analyzer.minimum_holding_frequency(
        600.0, utilization=0.95, high_hz=500 * MHZ
    ) == 500 * MHZ
    # An impossible ceiling returns 0.
    assert analyzer.minimum_holding_frequency(
        300.5, utilization=0.95, low_hz=50 * MHZ, high_hz=500 * MHZ
    ) == 0.0
    with pytest.raises(ValueError):
        analyzer.minimum_holding_frequency(290.0)


def test_accepts_activity_vector(analyzer):
    activity = ActivityVector(1)
    activity.set(("core", 0), 1.0)  # single hot core
    point = analyzer.steady_state(500 * MHZ, activity)
    hottest = max(
        point.component_temperatures, key=point.component_temperatures.get
    )
    assert hottest == "arm11_0"
