"""Table 2 material property tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.thermal.properties import (
    AMBIENT_KELVIN,
    COPPER,
    COPPER_THICKNESS,
    PACKAGE_TO_AIR_RESISTANCE,
    SILICON,
    SILICON_THICKNESS,
    Material,
    ThermalProperties,
    silicon_conductivity,
)
from repro.util.units import UM


def test_table2_values():
    assert silicon_conductivity(300.0) == pytest.approx(150.0)
    assert SILICON.volumetric_heat == pytest.approx(1.628e-12 * 1e18)
    assert SILICON_THICKNESS == pytest.approx(350 * UM)
    assert COPPER.k(300.0) == pytest.approx(400.0)
    assert COPPER.volumetric_heat == pytest.approx(3.55e-12 * 1e18)
    assert COPPER_THICKNESS == pytest.approx(1000 * UM)
    assert PACKAGE_TO_AIR_RESISTANCE == pytest.approx(20.0)
    assert AMBIENT_KELVIN == pytest.approx(300.0)


def test_silicon_exponent_is_4_thirds():
    # k(600) / k(300) must equal (300/600)^(4/3).
    ratio = silicon_conductivity(600.0) / silicon_conductivity(300.0)
    assert ratio == pytest.approx(0.5 ** (4.0 / 3.0))


@given(st.floats(min_value=250.0, max_value=500.0))
def test_silicon_conductivity_decreases_with_temperature(t):
    assert silicon_conductivity(t + 1.0) < silicon_conductivity(t)


def test_silicon_conductivity_vectorized():
    t = np.array([300.0, 350.0, 400.0])
    k = silicon_conductivity(t)
    assert k.shape == (3,)
    assert np.all(np.diff(k) < 0)


def test_material_linearity_flags():
    assert SILICON.nonlinear
    assert not COPPER.nonlinear
    constant = Material("x", 10.0, 1e6)
    assert constant.k(1000.0) == 10.0


def test_thermal_properties_table_rows():
    rows = ThermalProperties().table()
    assert len(rows) == 7
    names = [name for name, _ in rows]
    assert "silicon thermal conductivity" in names
    assert "package-to-air conductivity" in names
