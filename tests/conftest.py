"""Shared fixtures: small platforms and floorplans the tests reuse."""

import pytest

from repro.mpsoc import MPSoCConfig, build_platform
from repro.mpsoc.cache import CacheConfig
from repro.mpsoc.platform import CoreConfig
from repro.util.units import KB


def small_config(num_cores=2, interconnect="bus", noc=None, **overrides):
    """A compact MPSoC configuration for fast tests."""
    kwargs = dict(
        name="test",
        cores=[CoreConfig(f"cpu{i}") for i in range(num_cores)],
        icache=CacheConfig(name="i", size=1 * KB, line_size=16),
        dcache=CacheConfig(name="d", size=1 * KB, line_size=16),
        private_mem_size=16 * KB,
        shared_mem_size=64 * KB,
        interconnect=interconnect,
        noc=noc,
    )
    kwargs.update(overrides)
    return MPSoCConfig(**kwargs)


@pytest.fixture
def platform2():
    """Two Microblaze-class cores on the custom bus."""
    return build_platform(small_config(2))


@pytest.fixture
def platform1():
    """One core, cacheless private-memory-only runs stay deterministic."""
    return build_platform(small_config(1))
