"""Activity-to-power model tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.power.models import (
    ACTIVE_WEIGHT,
    IDLE_WEIGHT,
    STALL_WEIGHT,
    ActivityVector,
    PowerModel,
)
from repro.thermal.floorplan import floorplan_4xarm11
from repro.util.units import MHZ


@pytest.fixture
def model():
    return PowerModel(floorplan_4xarm11())


def stats_delta(active=800, stall=100, idle=100, icache=500, dcache=300):
    return {
        "cores": {
            f"cpu{i}": {
                "active_cycles": active,
                "stall_cycles": stall,
                "idle_cycles": idle,
            }
            for i in range(4)
        },
        "icaches": {f"cpu{i}.icache": {"accesses": icache} for i in range(4)},
        "dcaches": {f"cpu{i}.dcache": {"accesses": dcache} for i in range(4)},
        "private_mems": {
            f"cpu{i}.private_mem": {"reads": 40, "writes": 10} for i in range(4)
        },
        "shared_mem": {"reads": 100, "writes": 50},
        "interconnect": {"switch_flits": {"sw0": 400, "sw1": 0}, "busy_cycles": 200},
    }


def test_activity_extraction(model):
    activity = model.activity_from_stats(stats_delta(), window_cycles=1000)
    expected_core = (
        ACTIVE_WEIGHT * 800 + STALL_WEIGHT * 100 + IDLE_WEIGHT * 100
    ) / 1000
    assert activity.get(("core", 0)) == pytest.approx(expected_core)
    assert activity.get(("icache", 2)) == pytest.approx(0.5)
    assert activity.get(("dcache", 1)) == pytest.approx(0.3)
    assert activity.get(("private_mem", 0)) == pytest.approx(0.05)
    assert activity.get(("shared_mem", None)) == pytest.approx(0.15)
    assert activity.get(("noc_switch", "sw0")) == pytest.approx(400 / 4000)
    assert activity.get(("bus", None)) == pytest.approx(0.2)


def test_activity_clamped_to_one(model):
    activity = model.activity_from_stats(
        stats_delta(active=5000, icache=9000), window_cycles=1000
    )
    assert activity.get(("core", 0)) == 1.0
    assert activity.get(("icache", 0)) == 1.0


def test_empty_window(model):
    activity = model.activity_from_stats(stats_delta(), window_cycles=0)
    assert activity.get(("core", 0)) == 0.0


def test_component_power_scaling(model):
    activity = ActivityVector(1000)
    for i in range(4):
        activity.set(("core", i), 1.0)
    powers = model.component_power(activity, frequency_hz=500 * MHZ)
    assert powers["arm11_0"] == pytest.approx(1.5)
    # At 100 MHz (DFS low point), one fifth the power.
    low = model.component_power(activity, frequency_hz=100 * MHZ)
    assert low["arm11_0"] == pytest.approx(0.3)
    # Idle components and filler draw nothing.
    assert powers["icache_0"] == 0.0
    assert all(powers[name] == 0.0 for name in powers if name.startswith("fill"))


def test_per_core_frequency_overrides(model):
    activity = ActivityVector(1000)
    for i in range(4):
        activity.set(("core", i), 1.0)
        activity.set(("icache", i), 0.5)
    powers = model.component_power(
        activity,
        frequency_hz=500 * MHZ,
        core_frequencies={0: 100 * MHZ},
    )
    assert powers["arm11_0"] == pytest.approx(0.3)  # throttled core
    assert powers["arm11_1"] == pytest.approx(1.5)  # others untouched
    # Non-core components follow the global frequency.
    assert powers["icache_0"] == powers["icache_1"]


def test_total_and_peak_power(model):
    activity = ActivityVector(1000)
    for comp in model.floorplan.active_components():
        activity.set(comp.activity_source, 1.0)
    total = model.total_power(activity, frequency_hz=500 * MHZ)
    assert total == pytest.approx(model.peak_power(frequency_hz=500 * MHZ))
    # 4 ARM11 at full power dominate: more than 6 W, less than 12 W.
    assert 6.0 < total < 12.0


def test_unknown_power_class_rejected():
    from repro.thermal.floorplan import Floorplan, FloorplanComponent

    plan = Floorplan(
        name="bad",
        width=1.0,
        height=1.0,
        components=[
            FloorplanComponent("x", 0, 0, 1, 1, "mystery", ("core", 0)),
        ],
    )
    with pytest.raises(KeyError):
        PowerModel(plan)


def test_activity_vector_clamps():
    activity = ActivityVector(10)
    activity.set(("core", 0), 1.7)
    activity.set(("core", 1), -0.5)
    assert activity.get(("core", 0)) == 1.0
    assert activity.get(("core", 1)) == 0.0
    assert activity.get(("missing", 9)) == 0.0


@settings(max_examples=30, deadline=None)
@given(
    util=st.floats(min_value=0.0, max_value=1.0),
    f=st.floats(min_value=50e6, max_value=500e6),
)
def test_power_monotone_in_utilization_and_frequency(util, f):
    """Property: power never decreases when utilization or clock rise."""
    model = PowerModel(floorplan_4xarm11())
    activity_lo = ActivityVector(100)
    activity_hi = ActivityVector(100)
    activity_lo.set(("core", 0), util * 0.5)
    activity_hi.set(("core", 0), util)
    lo = model.component_power(activity_lo, frequency_hz=f)["arm11_0"]
    hi = model.component_power(activity_hi, frequency_hz=f)["arm11_0"]
    hi_f = model.component_power(activity_hi, frequency_hz=f * 1.5)["arm11_0"]
    assert lo <= hi <= hi_f + 1e-12
