"""Tech-node operating-point models and their effect on PowerModel."""

import pytest

from repro.power.models import (
    TECH_NODES,
    ActivityVector,
    OperatingPoint,
    PowerModel,
    TechNode,
    make_tech_node,
)
from repro.thermal.floorplan import floorplan_4xarm11
from repro.util.units import MHZ


def ladder(*steps, name="test", vnom=None):
    points = tuple(OperatingPoint(f * MHZ, v) for f, v in steps)
    return TechNode(
        name=name,
        nominal_voltage_v=vnom if vnom is not None else steps[-1][1],
        points=points,
    )


# -- OperatingPoint / TechNode ---------------------------------------------------


def test_operating_point_validation():
    with pytest.raises(ValueError):
        OperatingPoint(frequency_hz=0.0, voltage_v=1.0)
    with pytest.raises(ValueError):
        OperatingPoint(frequency_hz=100 * MHZ, voltage_v=-0.1)


def test_operating_point_round_trip():
    point = OperatingPoint(frequency_hz=100 * MHZ, voltage_v=0.95)
    assert OperatingPoint.from_dict(point.to_dict()) == point


def test_tech_node_requires_ascending_frequencies():
    with pytest.raises(ValueError):
        ladder((200, 1.0), (100, 0.9))
    with pytest.raises(ValueError):
        ladder((100, 0.9), (100, 1.0))


def test_tech_node_requires_points():
    with pytest.raises(ValueError):
        TechNode(name="empty", nominal_voltage_v=1.0, points=())


def test_voltage_interpolates_between_points():
    node = ladder((100, 0.8), (200, 1.0))
    assert node.voltage_at(150 * MHZ) == pytest.approx(0.9)
    assert node.voltage_at(100 * MHZ) == pytest.approx(0.8)
    assert node.voltage_at(200 * MHZ) == pytest.approx(1.0)


def test_voltage_clamps_outside_the_ladder():
    node = ladder((100, 0.8), (200, 1.0))
    assert node.voltage_at(50 * MHZ) == pytest.approx(0.8)
    assert node.voltage_at(400 * MHZ) == pytest.approx(1.0)


def test_voltage_scale_is_quadratic_in_voltage():
    node = ladder((100, 0.5), (200, 1.0), vnom=1.0)
    assert node.voltage_scale(100 * MHZ) == pytest.approx(0.25)
    assert node.voltage_scale(200 * MHZ) == pytest.approx(1.0)


def test_tech_node_round_trip():
    node = TECH_NODES.get("90nm")()
    clone = TechNode.from_dict(node.to_dict())
    assert clone == node
    assert clone.frequencies() == node.frequencies()


def test_registry_ladders_are_monotone():
    for name in ("130nm", "90nm", "65nm"):
        node = TECH_NODES.get(name)()
        voltages = [p.voltage_v for p in node.points]
        assert voltages == sorted(voltages)
        assert voltages[-1] == pytest.approx(node.nominal_voltage_v)


def test_smaller_nodes_run_at_lower_voltage():
    v130 = TECH_NODES.get("130nm")().voltage_at(200 * MHZ)
    v90 = TECH_NODES.get("90nm")().voltage_at(200 * MHZ)
    v65 = TECH_NODES.get("65nm")().voltage_at(200 * MHZ)
    assert v65 < v90 < v130


# -- make_tech_node resolution ---------------------------------------------------


def test_make_tech_node_forms():
    assert make_tech_node(None) is None
    node = TECH_NODES.get("65nm")()
    assert make_tech_node(node) is node
    assert make_tech_node("65nm") == node
    assert make_tech_node({"name": "65nm"}) == node
    assert make_tech_node(node.to_dict()) == node
    with pytest.raises(TypeError):
        make_tech_node(42)


# -- PowerModel integration ------------------------------------------------------


@pytest.fixture
def floorplan():
    return floorplan_4xarm11()


def busy_vector():
    return ActivityVector(1, {("core", 0): 1.0})


def test_power_model_scales_by_voltage_squared(floorplan):
    nominal = PowerModel(floorplan)
    scaled = PowerModel(floorplan, tech_node="65nm")
    node = scaled.tech_node
    frequency = 200 * MHZ
    base = nominal.component_power(busy_vector(), frequency)
    low = scaled.component_power(busy_vector(), frequency)
    for name, watts in base.items():
        if watts > 0:
            assert low[name] == pytest.approx(
                watts * node.voltage_scale(frequency)
            )
        else:
            assert low[name] == 0.0


def test_power_model_nominal_point_is_identity(floorplan):
    # At the ladder's top (nominal voltage) the scale is exactly 1.
    nominal = PowerModel(floorplan)
    scaled = PowerModel(floorplan, tech_node="130nm")
    frequency = 600 * MHZ
    base = nominal.component_power(busy_vector(), frequency)
    top = scaled.component_power(busy_vector(), frequency)
    for name in base:
        assert top[name] == pytest.approx(base[name])


def test_dvfs_step_changes_voltage_as_well_as_frequency(floorplan):
    # Halving f under a tech node drops power by MORE than 2x: the
    # ladder lowers V alongside f, so the step is f * V(f)^2.
    model = PowerModel(floorplan, tech_node="65nm")
    high = sum(model.component_power(busy_vector(), 400 * MHZ).values())
    low = sum(model.component_power(busy_vector(), 200 * MHZ).values())
    assert low < high / 2
    node = model.tech_node
    expected = (200 / 400) * (
        node.voltage_scale(200 * MHZ) / node.voltage_scale(400 * MHZ)
    )
    assert low / high == pytest.approx(expected)
