"""Table 1 power-library tests."""

import pytest

from repro.power.library import DEFAULT_LIBRARY, PowerClass, PowerLibrary
from repro.util.units import MHZ, MM2, MW, W


def test_table1_values():
    lib = DEFAULT_LIBRARY
    assert lib["arm7"].max_power == pytest.approx(5.5 * MW)
    assert lib["arm7"].power_density == pytest.approx(0.03 / MM2)
    assert lib["arm11"].max_power == pytest.approx(1.5 * W)
    assert lib["arm11"].power_density == pytest.approx(0.5 / MM2)
    assert lib["dcache_8k_2w"].max_power == pytest.approx(43 * MW)
    assert lib["dcache_8k_2w"].power_density == pytest.approx(0.012 / MM2)
    assert lib["icache_8k_dm"].max_power == pytest.approx(11 * MW)
    assert lib["icache_8k_dm"].power_density == pytest.approx(0.03 / MM2)
    assert lib["sram_32k"].max_power == pytest.approx(15 * MW)
    assert lib["sram_32k"].power_density == pytest.approx(0.02 / MM2)


def test_areas_follow_from_density():
    lib = DEFAULT_LIBRARY
    assert lib.area("arm7") == pytest.approx(5.5 * MW / (0.03 / MM2))
    assert lib.area("arm11") == pytest.approx(3.0 * MM2)  # 1.5 W / 0.5 W/mm2


def test_power_scales_with_utilization_and_frequency():
    arm11 = DEFAULT_LIBRARY["arm11"]
    assert arm11.power_at(1.0) == pytest.approx(1.5)
    assert arm11.power_at(0.5) == pytest.approx(0.75)
    # DFS to 100 MHz from the 500 MHz reference: one fifth the power.
    assert arm11.power_at(1.0, frequency_hz=100 * MHZ) == pytest.approx(0.3)
    assert arm11.power_at(0.0) == 0.0


def test_power_rejects_bad_utilization():
    with pytest.raises(ValueError):
        DEFAULT_LIBRARY["arm7"].power_at(1.5)
    with pytest.raises(ValueError):
        DEFAULT_LIBRARY["arm7"].power_at(-0.1)


def test_library_registration_and_lookup():
    lib = PowerLibrary()
    cls = PowerClass("x", "X core", 1.0, 1.0 / MM2)
    lib.register(cls)
    assert "x" in lib
    assert lib["x"] is cls
    with pytest.raises(ValueError):
        lib.register(cls)
    with pytest.raises(KeyError):
        lib["missing"]


def test_table_rows_render_like_table1():
    rows = DEFAULT_LIBRARY.table_rows()
    labels = [row[0] for row in rows]
    assert labels[0] == "RISC 32-ARM7"
    arm11_row = rows[1]
    assert "1.5W" in arm11_row[1]
    assert "0.5W/mm2" in arm11_row[2]
