"""The worker loop: emulate-or-replay, provenance, failure reporting."""

import pytest

from repro.farm.jobs import DONE, FAILED
from repro.farm.worker import FarmWorker
from tests.farm.conftest import quick_scenario


def drain(queue, worker_id="w-test", **kwargs):
    worker = FarmWorker(
        queue, worker_id=worker_id, stop_when_idle=True, poll_s=0.01,
        **kwargs,
    )
    worker.run_forever()
    return worker


def test_worker_drains_queue_and_stamps_provenance(queue):
    jobs = queue.submit_many([
        quick_scenario("prov_a", die_resolution=[4, 4]),
        quick_scenario("prov_b", die_resolution=[8, 8]),
    ])
    worker = drain(queue)
    assert worker.jobs_done == 2
    records = [queue.get(job.job_id) for job in jobs]
    assert all(record.state == DONE for record in records)
    modes = sorted(record.provenance["mode"] for record in records)
    assert modes == ["emulated", "replayed"]  # one leader, one store hit
    for record in records:
        farm = record.provenance
        assert farm["job_id"] == record.job_id
        assert farm["worker"] == "w-test"
        assert farm["attempt"] == 1
        assert farm["trace_digest"] == record.trace_digest
        assert farm["store"] == str(queue.store.root)
    assert len(queue.store) == 1  # exactly one recording for both jobs
    [registered] = queue.workers()
    assert registered["jobs_done"] == 2  # progress reaches the registry


def test_worker_result_round_trips_report(queue):
    job = queue.submit(quick_scenario("report_rt"))
    drain(queue)
    record = queue.get(job.job_id)
    report = record.result["report"]
    assert record.result["status"] == "ok"
    assert report["windows"] > 0
    assert report["extras"]["farm"]["mode"] == "emulated"


def test_failing_scenario_burns_retries_then_fails(queue):
    bad = quick_scenario("doomed")
    bad.floorplan = "missing_floorplan"
    job = queue.submit(bad, max_retries=1, retry_backoff_s=0.0)
    drain(queue)
    record = queue.get(job.job_id)
    assert record.state == FAILED
    assert record.attempts == 2  # first try + one retry
    failures = [e for e in record.history if e["event"] == "failed"]
    assert len(failures) == 2
    for entry in failures:
        assert "unknown floorplan" in entry["error"]
        assert "Traceback" in entry["traceback"]


def test_worker_without_store_emulates_everything(bare_queue):
    jobs = bare_queue.submit_many([
        quick_scenario("ns_a", die_resolution=[4, 4]),
        quick_scenario("ns_b", die_resolution=[8, 8]),
    ])
    drain(bare_queue)
    for job in jobs:
        record = bare_queue.get(job.job_id)
        assert record.state == DONE
        assert record.provenance["mode"] == "emulated"
        assert record.provenance["store"] is None


def test_worker_respects_max_jobs(queue):
    queue.submit_many([
        quick_scenario("mj_a", seconds=0.25),
        quick_scenario("mj_b", seconds=0.5),
    ])
    worker = drain(queue, max_jobs=1)
    assert worker.jobs_done == 1
    counts = queue.counts()
    assert counts["done"] == 1 and counts["submitted"] == 1


class _FlakyQueue:
    """Delegates to a real queue, but the first ``fails`` calls to each
    of claim/complete/fail raise — a momentary service blip."""

    def __init__(self, queue, fails=1):
        self._queue = queue
        self._budget = {"claim": fails, "complete": fails, "fail": fails}

    def __getattr__(self, name):
        inner = getattr(self._queue, name)
        if name not in self._budget:
            return inner

        def flaky(*args, **kwargs):
            if self._budget[name] > 0:
                self._budget[name] -= 1
                raise RuntimeError(f"farm service unreachable ({name})")
            return inner(*args, **kwargs)

        return flaky


def test_worker_survives_transient_report_failure(queue):
    """A blip while reporting a finished job retries instead of
    crashing the worker and discarding the computed result."""
    job = queue.submit(quick_scenario("blip"))
    worker = FarmWorker(
        _FlakyQueue(queue), store=queue.store, worker_id="w-flaky",
        stop_when_idle=True, poll_s=0.01,
    )
    worker.report_backoff_s = 0.0
    assert worker.run_forever() == 1
    record = queue.get(job.job_id)
    assert record.state == DONE  # the retry delivered the result
    assert record.result["status"] == "ok"


def test_worker_gives_up_after_persistent_claim_failure(queue):
    queue.submit(quick_scenario("unreachable"))
    worker = FarmWorker(
        _FlakyQueue(queue, fails=100), worker_id="w-dead", poll_s=0.0,
    )
    with pytest.raises(RuntimeError, match="unreachable"):
        worker.run_forever()


def test_second_worker_answers_from_shared_store(tmp_path, queue):
    """A later fleet member replays what an earlier one recorded —
    the global record-once/replay-many property."""
    first_job = queue.submit(quick_scenario("shared", die_resolution=[4, 4]))
    drain(queue, worker_id="w-early")
    later_job = queue.submit(quick_scenario("shared2", die_resolution=[8, 8]))
    drain(queue, worker_id="w-late")
    assert queue.get(first_job.job_id).provenance["mode"] == "emulated"
    later = queue.get(later_job.job_id)
    assert later.provenance["mode"] == "replayed"
    assert later.provenance["worker"] == "w-late"
    assert len(queue.store) == 1
