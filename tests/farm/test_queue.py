"""Queue semantics: exclusivity, backoff, heartbeat requeue, leases."""

import threading

import pytest

from repro.farm.jobs import DONE, FAILED, RUNNING, SUBMITTED
from tests.farm.conftest import quick_scenario


def thermal_variant(name, resolution):
    """Same boundary stream (open-loop), different thermal knobs —
    distinct jobs sharing one trace digest."""
    return quick_scenario(name, die_resolution=list(resolution))


# -- submission --------------------------------------------------------------


def test_submit_is_idempotent(queue):
    first = queue.submit(quick_scenario("idem"), now=1.0)
    second = queue.submit(quick_scenario("idem"), now=2.0)
    assert first.job_id == second.job_id
    assert second.submitted_at == 1.0  # the original record, untouched
    assert queue.counts()[SUBMITTED] == 1


def test_resubmission_of_done_job_is_answered_from_record(queue):
    scenario = quick_scenario("answered")
    job = queue.submit(scenario, now=0.0)
    claimed = queue.claim("w1", now=1.0)
    assert claimed.job_id == job.job_id
    queue.complete(job.job_id, {"status": "ok"}, worker="w1", now=2.0)
    again = queue.submit(scenario, now=3.0)
    assert again.job_id == job.job_id
    assert again.state == DONE
    assert again.result == {"status": "ok"}
    assert queue.counts()[SUBMITTED] == 0  # nothing re-runs


def test_retry_failed_resurrects_terminal_job(queue):
    scenario = quick_scenario("revive")
    job = queue.submit(scenario, max_retries=0, now=0.0)
    queue.claim("w1", now=0.0)
    queue.fail(job.job_id, "boom", worker="w1", now=1.0)
    assert queue.get(job.job_id).state == FAILED
    assert queue.submit(scenario, now=2.0).state == FAILED  # still parked
    revived = queue.submit(scenario, retry_failed=True, now=3.0)
    assert revived.state == SUBMITTED
    assert revived.attempts == 0


# -- claim exclusivity -------------------------------------------------------


def test_claim_is_exclusive(queue):
    job = queue.submit(quick_scenario("one"), now=0.0)
    first = queue.claim("w1", now=1.0)
    assert first.job_id == job.job_id
    assert first.state == RUNNING and first.worker == "w1"
    assert queue.claim("w2", now=1.0) is None


def test_concurrent_claims_never_double_assign(queue):
    jobs = [queue.submit(quick_scenario(f"j{i}"), now=0.0) for i in range(4)]
    claims = []
    lock = threading.Lock()

    def contender(worker):
        claimed = queue.claim(worker, now=1.0)
        with lock:
            claims.append((worker, claimed))

    threads = [
        threading.Thread(target=contender, args=(f"w{i}",)) for i in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    won = [claimed for _, claimed in claims if claimed is not None]
    # Thermal-identical? No — all four scenarios differ by name only,
    # so they share one trace digest: the lease admits exactly one
    # leader until its recording lands.
    digests = {job.trace_digest for job in jobs}
    assert len(digests) == 1
    assert len(won) == 1
    owners = {claimed.job_id for claimed in won}
    assert len(owners) == len(won)


def test_concurrent_claims_on_distinct_digests(queue):
    for i in range(4):
        queue.submit(quick_scenario(f"j{i}", seconds=0.25 + i * 0.25), now=0.0)
    won = [queue.claim(f"w{i}", now=1.0) for i in range(6)]
    won = [job for job in won if job is not None]
    assert len(won) == 4  # all four claimable: distinct digests
    assert len({job.job_id for job in won}) == 4


def test_priority_orders_claims(queue):
    queue.submit(quick_scenario("steerage", seconds=0.25), priority=0, now=0.0)
    vip = queue.submit(quick_scenario("vip", seconds=0.75), priority=9, now=5.0)
    assert queue.claim("w1", now=6.0).job_id == vip.job_id


def test_capability_tags_gate_claims(queue):
    job = queue.submit(quick_scenario("fpga_only"), tags=("fpga",), now=0.0)
    assert queue.claim("sw", capabilities=("emulate",), now=1.0) is None
    claimed = queue.claim("hw", capabilities=("emulate", "fpga"), now=1.0)
    assert claimed.job_id == job.job_id
    # None = an untagged worker accepts anything (the default fleet).
    other = queue.submit(quick_scenario("tagged2", seconds=0.25),
                         tags=("fpga",), now=2.0)
    assert queue.claim("any", capabilities=None, now=3.0).job_id == other.job_id


# -- retry with exponential backoff ------------------------------------------


def test_retry_after_failure_backs_off_exponentially(queue):
    job = queue.submit(
        quick_scenario("flaky"), max_retries=2, retry_backoff_s=4.0, now=0.0
    )
    queue.claim("w1", now=0.0)
    failed = queue.fail(job.job_id, "attempt 1 died", worker="w1", now=10.0)
    assert failed.state == SUBMITTED
    assert failed.attempts == 1
    assert failed.not_before == pytest.approx(14.0)  # 10 + 4 * 2**0

    assert queue.claim("w1", now=12.0) is None  # still backing off
    assert queue.claim("w1", now=14.0) is not None
    failed = queue.fail(job.job_id, "attempt 2 died", worker="w1", now=20.0)
    assert failed.attempts == 2
    assert failed.not_before == pytest.approx(28.0)  # 20 + 4 * 2**1

    assert queue.claim("w1", now=28.0) is not None
    dead = queue.fail(job.job_id, "attempt 3 died", worker="w1", now=30.0)
    assert dead.state == FAILED
    assert dead.attempts == 3
    errors = [entry["error"] for entry in dead.history
              if entry["event"] == "failed"]
    assert errors == ["attempt 1 died", "attempt 2 died", "attempt 3 died"]
    assert queue.claim("w1", now=100.0) is None  # terminal


def test_failure_log_is_structured(queue):
    job = queue.submit(quick_scenario("log"), max_retries=0, now=0.0)
    queue.claim("w9", now=1.0)
    queue.fail(job.job_id, "KeyError: 'x'", traceback="Traceback...\nKeyError",
               worker="w9", now=2.0)
    [entry] = queue.get(job.job_id).history
    assert entry["event"] == "failed"
    assert entry["attempt"] == 1
    assert entry["worker"] == "w9"
    assert entry["error"] == "KeyError: 'x'"
    assert entry["traceback"].startswith("Traceback")
    assert entry["at"] == 2.0


# -- heartbeat-timeout requeue -----------------------------------------------


def test_heartbeat_keeps_job_alive(queue):
    job = queue.submit(quick_scenario("beating"), now=0.0)
    queue.claim("w1", now=0.0)
    assert queue.heartbeat(job.job_id, "w1", now=8.0)
    # w1 heartbeat at 8: at 15 the job is not yet stale (timeout 10).
    assert queue.claim("w2", now=15.0) is None
    assert queue.get(job.job_id).worker == "w1"


def test_lost_worker_requeues_after_timeout(queue):
    job = queue.submit(quick_scenario("orphaned"), now=0.0)
    queue.claim("w1", now=0.0)  # w1 is then SIGKILLed: no more beats
    reclaimed = queue.claim("w2", now=10.5)
    assert reclaimed is not None and reclaimed.worker == "w2"
    record = queue.get(job.job_id)
    assert record.requeues == 1
    events = [entry["event"] for entry in record.history]
    assert "requeued" in events
    # The zombie's heartbeat and completion are refused.
    assert not queue.heartbeat(job.job_id, "w1", now=11.0)
    assert queue.complete(job.job_id, {"zombie": True}, worker="w1") is None
    done = queue.complete(job.job_id, {"ok": True}, worker="w2", now=12.0)
    assert done.state == DONE and done.result == {"ok": True}


def test_late_fail_after_requeue_burns_no_retry_attempt(queue):
    """A stale owner's fail/complete is refused even after the job was
    handed back to SUBMITTED (worker=None) — a liveness requeue never
    burns a retry attempt or parks the job in FAILED."""
    job = queue.submit(quick_scenario("late_fail"), max_retries=0, now=0.0)
    queue.claim("w1", now=0.0)
    assert queue.requeue_stale(now=10.0) == [job.job_id]
    # w1 wakes up late and reports a failure for the requeued job.
    assert queue.fail(job.job_id, "late zombie failure", worker="w1",
                      now=11.0) is None
    assert queue.complete(job.job_id, {"zombie": True}, worker="w1",
                          now=11.0) is None
    record = queue.get(job.job_id)
    assert record.state == SUBMITTED
    assert record.attempts == 0  # the refunded attempt stays refunded
    # The legitimate next owner proceeds normally.
    assert queue.claim("w2", now=12.0).job_id == job.job_id
    assert queue.complete(job.job_id, {"ok": True}, worker="w2",
                          now=13.0).state == DONE


def test_explicit_requeue_stale(queue):
    job = queue.submit(quick_scenario("stale"), now=0.0)
    queue.claim("w1", now=0.0)
    assert queue.requeue_stale(now=5.0) == []
    assert queue.requeue_stale(now=10.0) == [job.job_id]
    assert queue.get(job.job_id).state == SUBMITTED


# -- digest leases -----------------------------------------------------------


def test_digest_lease_defers_followers_until_recording_lands(queue):
    leader = queue.submit(thermal_variant("v1", (4, 4)), now=0.0)
    follower = queue.submit(thermal_variant("v2", (8, 8)), now=0.0)
    assert leader.trace_digest == follower.trace_digest
    assert leader.job_id != follower.job_id

    claimed = queue.claim("w1", now=1.0)
    assert claimed.job_id == leader.job_id
    # The follower is leased out while the leader emulates.
    assert queue.claim("w2", now=1.0) is None
    queue.complete(leader.job_id, {"ok": True}, worker="w1", now=2.0)
    # Recording absent (nothing was stored) but leader no longer runs:
    # the follower becomes the new leader.
    reclaimed = queue.claim("w2", now=3.0)
    assert reclaimed.job_id == follower.job_id


def test_recorded_digest_bypasses_lease(queue):
    from repro.trace import record

    _, _, archive = record(quick_scenario("rec_base"))
    queue.store.put(archive)
    digest = archive.scenario_digest
    a = queue.submit(thermal_variant("r1", (4, 4)), now=0.0)
    b = queue.submit(thermal_variant("r2", (8, 8)), now=0.0)
    assert a.trace_digest == b.trace_digest == digest
    first = queue.claim("w1", now=1.0)
    second = queue.claim("w2", now=1.0)  # replays concurrently: no lease
    assert first is not None and second is not None
    assert {first.job_id, second.job_id} == {a.job_id, b.job_id}


def test_lease_without_store_always_serializes(bare_queue):
    bare_queue.submit(thermal_variant("s1", (4, 4)), now=0.0)
    bare_queue.submit(thermal_variant("s2", (8, 8)), now=0.0)
    assert bare_queue.claim("w1", now=1.0) is not None
    assert bare_queue.claim("w2", now=1.0) is None


# -- bookkeeping -------------------------------------------------------------


def test_counts_drained_and_status(queue):
    assert queue.drained()
    queue.submit(quick_scenario("c1"), now=0.0)
    queue.submit(quick_scenario("c2", seconds=0.25), now=0.0)
    assert not queue.drained()
    queue.claim("w1", now=1.0)
    counts = queue.counts()
    assert counts[SUBMITTED] == 1 and counts[RUNNING] == 1
    status = queue.status()
    assert status["total_jobs"] == 2
    assert status["store"]["entries"] == 0
    queue.register_worker("w1", ("emulate",))
    assert queue.status()["workers"] == 1
    [worker] = queue.workers()
    assert worker["capabilities"] == ["emulate"]


def test_worker_heartbeat_preserves_registration(queue):
    queue.register_worker("w1", ("emulate", "fpga"), now=0.0)
    queue.worker_heartbeat("w1", now=5.0)  # plain liveness beat
    queue.worker_heartbeat("w1", now=6.0, jobs_done=3)
    [record] = queue.workers()
    assert record["capabilities"] == ["emulate", "fpga"]
    assert record["registered_at"] == 0.0
    assert record["heartbeat_at"] == 6.0
    assert record["jobs_done"] == 3
    # Re-registration (worker restart) keeps the progress counter.
    rereg = queue.register_worker("w1", ("emulate",), now=7.0)
    assert rereg["jobs_done"] == 3
    assert rereg["registered_at"] == 0.0


def test_jobs_rejects_unknown_state(queue):
    with pytest.raises(ValueError, match="unknown job state"):
        queue.jobs(state="limbo")
