"""Job records: content-derived IDs, round-trips, claim predicates."""

import json

from repro.farm.jobs import SUBMITTED, Job, job_id_for, normalize_scenario
from tests.farm.conftest import quick_scenario


def test_job_id_is_idempotent_across_spellings():
    scenario = quick_scenario("idem")
    as_object = job_id_for(scenario)
    as_dict = job_id_for(scenario.to_dict())
    round_tripped = job_id_for(
        json.loads(json.dumps(normalize_scenario(scenario)))
    )
    assert as_object == as_dict == round_tripped


def test_job_id_tracks_content():
    a = quick_scenario("a")
    b = quick_scenario("a")
    b.max_emulated_seconds = 2.0
    assert job_id_for(a) != job_id_for(b)
    # Cosmetic-only differences still change the *job* (unlike the
    # trace digest): two differently named experiments are two jobs.
    c = quick_scenario("c")
    assert job_id_for(a) != job_id_for(c)


def test_create_stamps_trace_digest_and_defaults():
    job = Job.create(quick_scenario("fresh"), now=123.0, priority=3)
    assert job.state == SUBMITTED
    assert job.priority == 3
    assert job.submitted_at == 123.0
    assert job.trace_digest and len(job.trace_digest) == 64
    assert job.scenario["name"] == "fresh"
    assert not job.terminal


def test_round_trip_through_json():
    job = Job.create(quick_scenario("rt"), now=1.0, tags=("emulate",))
    job.history.append({"event": "failed", "error": "boom"})
    rebuilt = Job.from_dict(json.loads(json.dumps(job.to_dict())))
    assert rebuilt == job


def test_claimable_honours_time_tags_and_state():
    job = Job.create(quick_scenario("claims"), now=0.0, tags=("fpga",))
    assert job.claimable(0.0, None)  # None accepts any tags
    assert job.claimable(0.0, ("fpga", "emulate"))
    assert not job.claimable(0.0, ("emulate",))  # missing capability
    job.not_before = 10.0
    assert not job.claimable(5.0, None)
    assert job.claimable(10.0, None)
    job.state = "running"
    assert not job.claimable(10.0, None)


def test_sort_key_orders_priority_then_fifo():
    low = Job.create(quick_scenario("low"), now=1.0, priority=0)
    high = Job.create(quick_scenario("high"), now=2.0, priority=5)
    earlier = Job.create(quick_scenario("earlier"), now=0.0, priority=0)
    ordered = sorted([low, high, earlier], key=Job.sort_key)
    assert [job.name for job in ordered] == ["high", "earlier", "low"]


def test_error_reads_latest_failure():
    job = Job.create(quick_scenario("err"), now=0.0)
    assert job.error is None
    job.history.append({"event": "failed", "error": "first"})
    job.history.append({"event": "requeued"})
    job.history.append({"event": "failed", "error": "second"})
    assert job.error == "second"
