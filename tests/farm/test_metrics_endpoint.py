"""Farm observability: ``GET /metrics``, worker spans, workers CLI."""

import urllib.request

import pytest

from repro.farm import FarmClient, FarmService, FarmWorker
from repro.farm.cli import main as farm_main
from repro.farm.metrics import refresh_queue_metrics, stale_running
from repro.obs.metrics import MetricsRegistry
from tests.farm.conftest import quick_scenario


@pytest.fixture
def service(queue):
    with FarmService(queue) as running:
        yield running


@pytest.fixture
def client(service):
    return FarmClient(service.url)


def scrape(service):
    with urllib.request.urlopen(service.url + "/metrics", timeout=10) as r:
        assert r.status == 200
        assert r.headers["Content-Type"].startswith("text/plain")
        return r.read().decode("utf-8")


# -- refresh_queue_metrics -------------------------------------------------


def test_refresh_publishes_queue_gauges(queue):
    queue.submit(quick_scenario("gauge_a"))
    queue.submit(quick_scenario("gauge_b", seconds=0.25))
    queue.register_worker("w-gauges", ("emulate", "replay"))
    claimed = queue.claim("w-gauges")
    registry = refresh_queue_metrics(queue, registry=MetricsRegistry())
    jobs = registry.get("repro_farm_jobs")
    assert jobs.labels(state="running").value == 1.0
    assert jobs.labels(state="submitted").value == 1.0
    assert registry.get("repro_farm_queue_depth").value == 1.0
    assert registry.get("repro_farm_workers").value == 1.0
    age = registry.get("repro_farm_worker_heartbeat_age_seconds")
    assert age.labels(worker="w-gauges").value >= 0.0
    # Attempts count *finished* attempts: 0 after the claim, 1 once the
    # job completes.
    assert registry.get("repro_farm_job_attempts").value == 0.0
    queue.complete(claimed.job_id, {"status": "ok"}, worker="w-gauges")
    registry = refresh_queue_metrics(queue, registry=MetricsRegistry())
    assert registry.get("repro_farm_job_attempts").value == 1.0


def test_refresh_predeclares_zero_counters(queue):
    registry = refresh_queue_metrics(queue, registry=MetricsRegistry())
    text = registry.render_prometheus()
    # Families appear in the exposition before anything ever increments
    # them — a first scrape must already cover retries and claims.
    assert "# TYPE repro_farm_retries_total counter" in text
    assert "repro_farm_retries_total 0.0" in text
    assert "repro_farm_requeues_total 0.0" in text
    assert "# TYPE repro_farm_claims_total counter" in text
    assert "# TYPE repro_farm_claim_latency_seconds histogram" in text
    assert "repro_farm_store_hit_ratio 0.0" in text


def test_stale_running_flags_dead_heartbeats(queue):
    queue.submit(quick_scenario("stale"))
    job = queue.claim("w-stale")
    assert stale_running(queue) == []
    future = job.heartbeat_at + queue.heartbeat_timeout + 1.0
    assert stale_running(queue, now=future) == [job.job_id]


# -- GET /metrics on the service -------------------------------------------


def test_metrics_endpoint_serves_prometheus_text(client, service, queue):
    [job] = client.submit(quick_scenario("metrics_e2e"))
    FarmWorker(
        client, store=queue.store, worker_id="w-metrics",
        stop_when_idle=True, poll_s=0.01,
    ).run_forever()
    text = scrape(service)
    assert 'repro_farm_jobs{state="done"} 1.0' in text
    assert "repro_farm_queue_depth 0.0" in text
    assert 'repro_farm_claims_total{outcome="job"}' in text
    assert "repro_farm_retries_total" in text
    assert "repro_farm_store_hit_ratio" in text
    assert "repro_farm_claim_latency_seconds_bucket" in text
    assert "repro_farm_emulated_jobs 1.0" in text
    assert job.job_id  # submitted id stays valid end to end


def test_metrics_endpoint_ignores_query_strings(client, service):
    with urllib.request.urlopen(
        service.url + "/metrics?format=prometheus", timeout=10
    ) as response:
        assert response.status == 200


def test_store_hit_ratio_counts_replayed_jobs(client, service, queue):
    # Same trace digest three times: one emulation, two replays.
    variants = [
        quick_scenario("ratio", die_resolution=(4 + 2 * i, 4 + 2 * i))
        for i in range(3)
    ]
    client.submit(variants)
    FarmWorker(
        client, store=queue.store, worker_id="w-ratio",
        stop_when_idle=True, poll_s=0.01,
    ).run_forever()
    text = scrape(service)
    assert "repro_farm_replayed_jobs 2.0" in text
    assert "repro_farm_emulated_jobs 1.0" in text
    ratio = [
        line for line in text.splitlines()
        if line.startswith("repro_farm_store_hit_ratio")
    ]
    assert ratio and float(ratio[0].split()[-1]) == pytest.approx(2 / 3)


# -- worker span summaries -------------------------------------------------


def test_worker_stamps_span_summary_into_extras(client, queue):
    [job] = client.submit(quick_scenario("spanned"))
    FarmWorker(
        client, store=queue.store, worker_id="w-spans",
        stop_when_idle=True, poll_s=0.01,
    ).run_forever()
    record = client.job(job.job_id)
    farm_extras = record.result["report"]["extras"]["farm"]
    spans = farm_extras["spans"]
    assert spans["digest"]
    assert spans["spans"]["farm.job"]["count"] == 1
    assert spans["spans"]["run"]["count"] == 1
    assert spans["spans"]["window.solve"]["count"] >= 1


# -- workers CLI -----------------------------------------------------------


def test_workers_cli_shows_heartbeat_age_and_current_job(
    client, service, queue, capsys
):
    [job] = client.submit(quick_scenario("cli_busy"))
    client.register_worker("w-cli", ("emulate", "replay"))
    claimed = client.claim("w-cli", ("emulate", "replay"))
    assert claimed.job_id == job.job_id
    assert farm_main(["workers", "--url", service.url]) == 0
    text = capsys.readouterr().out
    assert "w-cli" in text
    assert "ago" in text
    assert job.job_id in text
    # JSON form carries the same derived fields.
    import json

    assert farm_main(["workers", "--url", service.url, "--json"]) == 0
    [record] = [
        row for row in json.loads(capsys.readouterr().out)
        if row["worker"] == "w-cli"
    ]
    assert record["last_heartbeat_age_s"] >= 0.0
    assert record["current_job"] == job.job_id
