"""The HTTP submission API and its client, end to end in-process."""

import pytest

from repro.farm import FarmClient, FarmClientError, FarmService, FarmWorker
from repro.farm.jobs import DONE
from tests.farm.conftest import quick_scenario


@pytest.fixture
def service(queue):
    with FarmService(queue) as running:
        yield running


@pytest.fixture
def client(service):
    return FarmClient(service.url)


def test_submit_status_and_job_lookup(client, queue):
    scenario = quick_scenario("http_submit")
    [job] = client.submit(scenario)
    assert job.state == "submitted"
    assert queue.get(job.job_id) is not None  # really landed on disk
    fetched = client.job(job.job_id)
    assert fetched.scenario == job.scenario
    status = client.status()
    assert status["jobs"]["submitted"] == 1
    assert client.jobs(state="submitted")[0].job_id == job.job_id
    # Scenario JSON travels verbatim: the record is the lossless dict.
    assert fetched.scenario["workload"] == scenario.to_dict()["workload"]


def test_sweep_submits_unchanged_through_client(client):
    from repro.scenario.sweep import Variant, sweep

    members = sweep(quick_scenario("swept"), {
        "config.die_resolution": [Variant("4", [4, 4]), Variant("6", [6, 6])],
    })
    jobs = client.submit(members)
    assert len(jobs) == 2
    assert len({job.job_id for job in jobs}) == 2
    assert len({job.trace_digest for job in jobs}) == 1  # open loop


def test_remote_worker_protocol_round_trip(client):
    [job] = client.submit(quick_scenario("remote_work"))
    client.register_worker("net-worker", ("emulate", "replay"))
    claimed = client.claim("net-worker", ("emulate", "replay"))
    assert claimed.job_id == job.job_id
    assert client.claim("other") is None  # exclusivity over HTTP
    assert client.heartbeat(job.job_id, "net-worker")
    done = client.complete(job.job_id, {"status": "ok"}, worker="net-worker")
    assert done.state == DONE
    assert client.drained()
    workers = client.workers()
    assert any(w["worker"] == "net-worker" for w in workers)


def test_full_worker_against_http_service(client, queue):
    [job] = client.submit(quick_scenario("via_http"))
    worker = FarmWorker(
        client, store=queue.store, worker_id="w-http",
        stop_when_idle=True, poll_s=0.01,
    )
    worker.run_forever()
    record = client.job(job.job_id)
    assert record.state == DONE
    assert record.provenance["mode"] == "emulated"
    assert record.provenance["worker"] == "w-http"
    [registered] = [w for w in client.workers() if w["worker"] == "w-http"]
    assert registered["jobs_done"] == 1  # progress travels over HTTP too


def test_concurrent_requests_share_the_queue_safely(client):
    """Many service threads claiming/beating at once must serialize on
    the queue lock — never collide on it and surface a 500 (the shared
    FileLock regression)."""
    import threading

    client.submit([
        quick_scenario(f"conc{i}", seconds=0.25 + i * 0.25) for i in range(6)
    ])
    errors, claimed = [], []
    lock = threading.Lock()

    def hammer(i):
        worker = f"hammer-{i}"
        try:
            client.register_worker(worker, ("emulate", "replay"))
            for _ in range(3):
                job = client.claim(worker)
                client.worker_heartbeat(worker)
                if job is not None:
                    client.heartbeat(job.job_id, worker)
                    with lock:
                        claimed.append(job.job_id)
        except FarmClientError as exc:
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(i,)) for i in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert len(claimed) == len(set(claimed))  # exclusivity held throughout


def test_plain_liveness_beat_preserves_capabilities(client):
    client.register_worker("beating", ("emulate", "fpga"))
    client.worker_heartbeat("beating")  # no jobs_done: liveness only
    [record] = [w for w in client.workers() if w["worker"] == "beating"]
    assert record["capabilities"] == ["emulate", "fpga"]
    client.worker_heartbeat("beating", jobs_done=2)
    [record] = [w for w in client.workers() if w["worker"] == "beating"]
    assert record["capabilities"] == ["emulate", "fpga"]
    assert record["jobs_done"] == 2


def test_fail_over_http_records_structured_log(client):
    [job] = client.submit(quick_scenario("http_fail"), max_retries=0)
    client.claim("w1")
    failed = client.fail(
        job.job_id, "ValueError: nope", traceback="Traceback...", worker="w1"
    )
    assert failed.state == "failed"
    [entry] = failed.history
    assert entry["error"] == "ValueError: nope"
    assert entry["traceback"] == "Traceback..."


def test_wait_blocks_until_terminal(client):
    [job] = client.submit(quick_scenario("waited"))
    with pytest.raises(TimeoutError):
        client.wait([job.job_id], timeout=0.2, poll_s=0.05)
    client.claim("w1")
    client.complete(job.job_id, {"status": "ok"}, worker="w1")
    jobs = client.wait([job.job_id], timeout=5.0)
    assert jobs[job.job_id].state == DONE


def test_api_errors_surface_with_status(client):
    assert client.job("feedfeedfeedfeed") is None  # 404 -> None
    with pytest.raises(FarmClientError) as excinfo:
        client._request("POST", "/api/jobs", {"scenarios": []})
    assert excinfo.value.status == 400
    with pytest.raises(FarmClientError) as excinfo:
        client._request("GET", "/api/nonsense")
    assert excinfo.value.status == 404
    with pytest.raises(FarmClientError) as excinfo:
        client.submit({"name": "broken"})  # no workload: rejected upstream
    assert excinfo.value.status == 400
    with pytest.raises(FarmClientError, match="unreachable"):
        FarmClient("http://127.0.0.1:9", timeout=0.5).status()


def test_bad_state_filter_rejected(client):
    with pytest.raises(FarmClientError) as excinfo:
        client.jobs(state="limbo")
    assert excinfo.value.status == 400
