"""Shared farm-test helpers: fast scenarios and a fresh queue per test."""

import pytest

from repro.farm.queue import JobQueue
from repro.trace.store import TraceStore
from tests.trace.conftest import short_scenario


def quick_scenario(name="farm_job", seconds=0.5, **config_overrides):
    """A profiled (milliseconds-fast) scenario with a distinct name."""
    scenario = short_scenario(seconds=seconds, name=name)
    for key, value in config_overrides.items():
        setattr(scenario.config, key, value)
    return scenario


def slow_scenario(name="slow_job", seconds=600.0):
    """A scenario that takes a few wall seconds (~0.3 s wall per 60
    emulated s) — long enough to kill a worker mid-run
    deterministically."""
    return quick_scenario(name=name, seconds=seconds)


@pytest.fixture
def queue(tmp_path):
    """A queue with a real disk store (digest leases enabled)."""
    return JobQueue(
        tmp_path / "queue",
        store=TraceStore(tmp_path / "store"),
        heartbeat_timeout=10.0,
    )


@pytest.fixture
def bare_queue(tmp_path):
    """A queue without a store — digest leases always serialize."""
    return JobQueue(tmp_path / "queue", heartbeat_timeout=10.0)
