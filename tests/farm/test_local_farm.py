"""The acceptance criteria: fleet-wide dedup and crash resilience.

* A 32-variant structure-sharing sweep through a 4-worker farm with a
  shared store performs exactly one live emulation per unique trace
  digest (asserted via job provenance).
* SIGKILLing a worker mid-job requeues the job and a second worker
  completes it — nothing is lost.
"""

import time

import pytest

from repro.farm import LocalFarm
from repro.farm.jobs import DONE, RUNNING
from repro.scenario.sweep import Variant, sweep
from tests.farm.conftest import quick_scenario, slow_scenario


def thirty_two_variants():
    """2 emulation-side x 16 thermal-side variants = 32 scenarios with
    exactly 2 unique boundary-stream digests."""
    members = []
    for seconds in (0.5, 1.0):  # run bounds shape the stream: 2 digests
        members.extend(sweep(
            quick_scenario("accept", seconds=seconds),
            {
                "config.die_resolution": [
                    Variant(f"{n}x{n}", [n, n]) for n in (4, 6, 8, 10)
                ],
                "config.spreader_resolution": [
                    Variant(f"sp{n}", [n, n]) for n in (2, 3)
                ],
                "config.solver_backend": ["sparse_be", "cached_lu"],
            },
            name=f"accept_{seconds}",
        ))
    return members


def test_32_variant_sweep_emulates_once_per_digest(tmp_path):
    members = thirty_two_variants()
    assert len(members) == 32
    with LocalFarm(tmp_path, workers=4, heartbeat_timeout=15.0) as farm:
        jobs = farm.run(members, timeout=300.0)
    assert len(jobs) == 32
    assert all(job.state == DONE for job in jobs)

    unique_digests = {job.trace_digest for job in jobs}
    assert len(unique_digests) == 2
    emulated = [job for job in jobs if job.provenance["mode"] == "emulated"]
    replayed = [job for job in jobs if job.provenance["mode"] == "replayed"]
    # Exactly one live emulation per unique digest, fleet-wide.
    assert len(emulated) == len(unique_digests)
    assert {job.trace_digest for job in emulated} == unique_digests
    assert len(replayed) == 30
    # The recordings landed in the shared sharded store.
    assert len(farm.store) == 2
    # Work was genuinely distributed (4 workers, 32 jobs).
    workers_used = {job.provenance["worker"] for job in jobs}
    assert len(workers_used) > 1


def test_killed_worker_mid_job_requeues_and_completes(tmp_path):
    farm = LocalFarm(
        tmp_path, workers=1, heartbeat_timeout=1.5, heartbeat_s=0.2,
        poll_s=0.05,
    )
    with farm:
        [job] = farm.submit(slow_scenario())
        victim = farm.spawn_worker("victim", stop_when_idle=True)
        deadline = time.monotonic() + 60.0
        while farm.queue.get(job.job_id).state != RUNNING:
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.02)
        time.sleep(0.2)  # well inside the ~3 s emulation
        victim.kill()  # SIGKILL: no goodbye heartbeat, no cleanup
        victim.join(timeout=10.0)
        assert farm.queue.get(job.job_id).state == RUNNING  # orphaned

        rescuer = farm.spawn_worker("rescuer", stop_when_idle=False)
        deadline = time.monotonic() + 120.0
        while True:
            record = farm.queue.get(job.job_id)
            if record.state == DONE:
                break
            assert time.monotonic() < deadline, (
                f"job stuck in {record.state}"
            )
            time.sleep(0.1)
    assert record.requeues == 1
    events = [entry["event"] for entry in record.history]
    assert events.count("requeued") == 1
    assert record.provenance["worker"] == "rescuer"
    assert record.provenance["mode"] == "emulated"
    assert record.result["status"] == "ok"


def test_farm_run_surfaces_permanently_failed_jobs(tmp_path):
    bad = quick_scenario("terminal")
    bad.floorplan = "missing_floorplan"
    with LocalFarm(tmp_path, workers=2) as farm:
        jobs = farm.run(
            [bad, quick_scenario("fine")],
            timeout=120.0, max_retries=1, retry_backoff_s=0.0,
        )
    failed, fine = jobs
    assert failed.state == "failed"
    assert failed.attempts == 2
    assert "unknown floorplan" in failed.error
    assert fine.state == DONE


_DETERMINISM = {}


@pytest.mark.parametrize("workers", [1, 3])
def test_farm_is_deterministic_across_worker_counts(tmp_path, workers):
    """Physics must not depend on fleet size: the same sweep through 1
    or 3 workers yields identical per-scenario reports."""
    members = sweep(quick_scenario("det"), {
        "config.die_resolution": [Variant("4", [4, 4]), Variant("6", [6, 6])],
    })
    with LocalFarm(tmp_path / f"w{workers}", workers=workers) as farm:
        jobs = farm.run(members, timeout=120.0)
    peaks = [job.result["report"]["peak_temperature_k"] for job in jobs]
    assert all(job.state == DONE for job in jobs)
    # Stash for cross-param comparison via a module-level registry.
    _DETERMINISM[workers] = peaks
    if len(_DETERMINISM) == 2:
        assert _DETERMINISM[1] == pytest.approx(_DETERMINISM[3], abs=0.0)
