"""Platform builder tests: wiring, memory map, loading, resources."""

import pytest

from repro.mpsoc import MPSoCConfig, build_platform, generate_mesh
from repro.mpsoc.asm import assemble
from repro.mpsoc.memctrl import AccessFault
from repro.mpsoc.platform import (
    MMIO_BASE,
    PRIVATE_BASE,
    SHARED_BASE,
    V2VP30_SLICES,
    CoreConfig,
)
from tests.conftest import small_config


def test_config_validation():
    with pytest.raises(ValueError):
        MPSoCConfig(name="x", cores=[])
    with pytest.raises(ValueError):
        MPSoCConfig(name="x", cores=[CoreConfig("a")], interconnect="rings")
    with pytest.raises(ValueError):
        MPSoCConfig(name="x", cores=[CoreConfig("a")], interconnect="noc")
    with pytest.raises(ValueError):
        MPSoCConfig(name="x", cores=[CoreConfig("a"), CoreConfig("a")])
    with pytest.raises(ValueError):
        CoreConfig("a", spec="z80")


def test_build_wires_components(platform2):
    assert len(platform2.cores) == 2
    assert len(platform2.memctrls) == 2
    assert len(platform2.icaches) == 2
    assert len(platform2.private_mems) == 2
    assert platform2.shared_mem is not None
    names = [name for name, _ in platform2.components()]
    assert len(names) == len(set(names))
    assert any("shared_mem" in n for n in names)


def test_memory_map(platform2):
    ctrl = platform2.memctrls[0]
    assert ctrl.decode(PRIVATE_BASE).name.endswith("private")
    assert ctrl.decode(SHARED_BASE).name.endswith("shared")
    assert ctrl.decode(MMIO_BASE).name.endswith("mmio")
    with pytest.raises(AccessFault):
        ctrl.decode(0x5000_0000)


def test_private_memories_are_private(platform2):
    program_a = assemble("main: li r1, 1\n      la r2, x\n      sw r1, 0(r2)\n      halt\n.data\nx: .word 0")
    program_b = assemble("main: li r1, 2\n      la r2, x\n      sw r1, 0(r2)\n      halt\n.data\nx: .word 0")
    platform2.load_program(0, program_a)
    platform2.load_program(1, program_b)
    for core in platform2.cores:
        core.run()
    addr_a = program_a.symbols["x"]
    assert platform2.memctrls[0].read_value(addr_a, 4) == 1
    assert platform2.memctrls[1].read_value(program_b.symbols["x"], 4) == 2


def test_shared_memory_is_shared(platform2):
    writer = assemble(f"main: li r1, 0x{SHARED_BASE:08x}\n      li r2, 99\n      sw r2, 0(r1)\n      halt")
    reader = assemble(f"main: li r1, 0x{SHARED_BASE:08x}\n      lw r3, 0(r1)\n      halt")
    platform2.load_program(0, writer)
    platform2.load_program(1, reader)
    platform2.cores[0].run()
    platform2.cores[1].run()
    assert platform2.cores[1].regs[3] == 99


def test_write_and_read_shared_helpers(platform2):
    platform2.write_shared(SHARED_BASE + 16, b"\xaa\xbb")
    assert platform2.read_shared(SHARED_BASE + 16, 2) == b"\xaa\xbb"


def test_program_count_mismatch(platform2):
    program = assemble("main: halt")
    with pytest.raises(ValueError):
        platform2.load_program_all([program])


def test_noc_platform_round_robin_placement():
    noc = generate_mesh("n", 2, 2)
    platform = build_platform(small_config(4, interconnect="noc", noc=noc))
    route = platform.interconnect.route("cpu3.bridge", platform.shared_mem.name)
    assert route[0] == "sw1_1"  # 4th core round-robins onto the 4th switch
    assert route[-1] == "sw0_0"  # shared memory defaults to the first switch


def test_noc_placement_override():
    noc = generate_mesh("n", 2, 2)
    platform = build_platform(
        small_config(
            2,
            interconnect="noc",
            noc=noc,
            noc_placement={"cpu0": "sw1_1", "shared_mem": "sw1_0"},
        )
    )
    assert platform.interconnect.endpoint_switch("cpu0.bridge") == "sw1_1"
    assert (
        platform.interconnect.endpoint_switch(platform.shared_mem.name) == "sw1_0"
    )


def test_cacheless_platform():
    platform = build_platform(small_config(1, icache=None, dcache=None))
    program = assemble("main: li r1, 3\n      halt")
    platform.load_program(0, program)
    platform.cores[0].run()
    assert platform.cores[0].regs[1] == 3


def test_resource_report_bus():
    platform = build_platform(small_config(4))
    report = platform.resource_report(num_count_sniffers=10)
    assert report["total"] == sum(
        v for k, v in report.items() if k not in ("total", "percent")
    )
    assert report["percent"] == pytest.approx(100 * report["total"] / V2VP30_SLICES)
    assert report["sniffers"] == 41 * 10


def test_resource_report_noc_larger_than_bus():
    bus_platform = build_platform(small_config(4))
    noc_platform = build_platform(
        small_config(4, interconnect="noc", noc=generate_mesh("n", 2, 3))
    )
    bus = bus_platform.resource_report()
    noc = noc_platform.resource_report()
    assert noc["interconnect"] > bus["interconnect"]


def test_mmio_hub_dispatch(platform1):
    class Handler:
        def __init__(self):
            self.log = []

        def mmio_read(self, offset):
            return 7 + offset

        def mmio_write(self, offset, value):
            self.log.append((offset, value))

    handler = Handler()
    base = platform1.mmio.register(handler)
    assert platform1.mmio.mmio_read(base + 4) == 11
    platform1.mmio.mmio_write(base + 8, 3)
    assert handler.log == [(8, 3)]
    # Unmapped windows read as zero and swallow writes.
    assert platform1.mmio.mmio_read(base + 16 * 100) == 0
    platform1.mmio.mmio_write(base + 16 * 100, 1)


def test_stats_shape(platform2):
    stats = platform2.stats()
    assert set(stats) == {
        "cores",
        "icaches",
        "dcaches",
        "private_mems",
        "shared_mem",
        "interconnect",
    }
    assert len(stats["cores"]) == 2
