"""Bus and arbiter tests, including arbitration fairness properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpsoc.bus import (
    ARB_FIXED_PRIORITY,
    ARB_ROUND_ROBIN,
    ARB_TDMA,
    Arbiter,
    Bus,
    BusConfig,
)
from repro.mpsoc.memory import Memory, MemoryConfig


def make_bus(num_masters=2, **cfg):
    config = BusConfig(name="bus", **cfg)
    return Bus(config, num_masters=num_masters)


def make_slave(latency=2):
    return Memory(MemoryConfig(name="slave", size=4096, latency=latency))


def test_config_kind_defaults():
    opb = BusConfig(name="b", kind="opb")
    plb = BusConfig(name="b", kind="plb")
    assert opb.arb_cycles > plb.arb_cycles  # OPB is the slower bus
    with pytest.raises(ValueError):
        BusConfig(name="b", kind="bogus")
    with pytest.raises(ValueError):
        BusConfig(name="b", arbitration="bogus")
    with pytest.raises(ValueError):
        BusConfig(name="b", width_bits=33)


def test_occupancy_math():
    bus = make_bus()  # custom: arb 1 + addr 1 + beats
    assert bus.occupancy_cycles(1) == 3
    assert bus.occupancy_cycles(4) == 6
    wide = make_bus(width_bits=64)
    assert wide.occupancy_cycles(4) == 4  # two 64-bit beats


def test_single_transfer_latency():
    bus = make_bus()
    slave = make_slave(latency=2)
    latency = bus.transfer(0, slave, 0x0, False, 1, t=0)
    assert latency == 3 + 2  # occupancy + slave
    assert bus.stats()["transactions"] == 1
    assert bus.stats()["wait_cycles"] == 0


def test_contention_serializes():
    bus = make_bus()
    slave = make_slave(latency=2)
    first = bus.transfer(0, slave, 0x0, False, 1, t=0)
    second = bus.transfer(1, slave, 0x4, False, 1, t=0)
    assert first == 5
    assert second == 10  # waited for the first transaction
    assert bus.per_master_wait[1] == 5


def test_bus_frees_after_transactions():
    bus = make_bus()
    slave = make_slave(latency=2)
    bus.transfer(0, slave, 0, False, 1, t=0)
    late = bus.transfer(1, slave, 4, False, 1, t=100)
    assert late == 5  # no waiting long after


def test_utilization():
    bus = make_bus()
    slave = make_slave()
    bus.transfer(0, slave, 0, False, 1, t=0)
    assert 0 < bus.utilization(100) < 1
    assert bus.utilization(0) == 0.0


def test_transfer_validates_inputs():
    bus = make_bus()
    slave = make_slave()
    with pytest.raises(ValueError):
        bus.transfer(9, slave, 0, False, 1, 0)
    with pytest.raises(ValueError):
        bus.transfer(0, slave, 0, False, 0, 0)


def test_tdma_waits_for_slot():
    bus = make_bus(num_masters=2, arbitration=ARB_TDMA, tdma_slot_cycles=10)
    slave = make_slave(latency=1)
    # Master 1's slot is cycles [10, 20) of each 20-cycle frame.
    latency = bus.transfer(1, slave, 0, False, 1, t=0)
    assert latency >= 10  # had to wait for its slot


# -- Arbiter unit + property tests ------------------------------------------------


def test_fixed_priority_prefers_lowest_id():
    arb = Arbiter(ARB_FIXED_PRIORITY, 4)
    assert arb.pick([3, 1, 2], cycle=0) == 1


def test_round_robin_rotates():
    arb = Arbiter(ARB_ROUND_ROBIN, 3)
    grants = [arb.pick([0, 1, 2], cycle=i) for i in range(6)]
    assert grants == [0, 1, 2, 0, 1, 2]


def test_round_robin_skips_idle_masters():
    arb = Arbiter(ARB_ROUND_ROBIN, 3)
    assert arb.pick([2], 0) == 2
    assert arb.pick([0, 1], 1) == 0


def test_tdma_only_grants_slot_owner():
    arb = Arbiter(ARB_TDMA, 2, tdma_slot_cycles=4)
    assert arb.pick([0, 1], cycle=0) == 0
    assert arb.pick([0, 1], cycle=4) == 1
    assert arb.pick([0], cycle=5) is None  # slot belongs to master 1


def test_tdma_slot_wait():
    arb = Arbiter(ARB_TDMA, 2, tdma_slot_cycles=4)
    assert arb.slot_wait(0, 0) == 0
    assert arb.slot_wait(1, 0) == 4
    assert arb.slot_wait(0, 5) == 3  # next frame


def test_arbiter_validates():
    with pytest.raises(ValueError):
        Arbiter(ARB_FIXED_PRIORITY, 0)
    arb = Arbiter(ARB_FIXED_PRIORITY, 2)
    with pytest.raises(ValueError):
        arb.pick([5], 0)
    assert arb.pick([], 0) is None


@settings(max_examples=50, deadline=None)
@given(
    requests=st.lists(
        st.sets(st.integers(min_value=0, max_value=3), min_size=1, max_size=4),
        min_size=20,
        max_size=100,
    )
)
def test_round_robin_is_starvation_free(requests):
    """Property: under continuous request, every master is granted within
    ``num_masters`` grants of its first request (no starvation)."""
    arb = Arbiter(ARB_ROUND_ROBIN, 4)
    waiting_since = {}
    for cycle, reqs in enumerate(requests):
        for master in reqs:
            waiting_since.setdefault(master, 0)
        granted = arb.pick(sorted(reqs), cycle)
        assert granted in reqs
        waiting_since.pop(granted, None)
        for master in list(waiting_since):
            if master in reqs:
                waiting_since[master] += 1
                assert waiting_since[master] <= 4, f"master {master} starved"
            else:
                waiting_since.pop(master)


@settings(max_examples=50, deadline=None)
@given(
    policy=st.sampled_from([ARB_FIXED_PRIORITY, ARB_ROUND_ROBIN, ARB_TDMA]),
    reqs=st.sets(st.integers(min_value=0, max_value=3), min_size=1, max_size=4),
    cycle=st.integers(min_value=0, max_value=1000),
)
def test_arbiter_grants_only_requesters(policy, reqs, cycle):
    arb = Arbiter(policy, 4)
    granted = arb.pick(sorted(reqs), cycle)
    assert granted is None or granted in reqs
    if policy != ARB_TDMA:
        assert granted is not None
