"""Memory-controller tests: decode, cache embedding, VPCM suppression."""

import pytest

from repro.mpsoc.cache import WRITE_BACK, Cache, CacheConfig
from repro.mpsoc.memctrl import AccessFault, AddressRange, MemoryController
from repro.mpsoc.memory import Memory, MemoryConfig


def make_ctrl(cacheable=True, latency=1, physical=None, dcache=None):
    ctrl = MemoryController("ctrl", dcache=dcache)
    mem = Memory(
        MemoryConfig(name="m", size=4096, latency=latency, physical_latency=physical)
    )
    ctrl.add_range(
        AddressRange(name="ram", base=0x1000, size=4096, target=mem, cacheable=cacheable)
    )
    return ctrl, mem


def test_decode_and_fault():
    ctrl, _ = make_ctrl()
    assert ctrl.decode(0x1000).name == "ram"
    assert ctrl.decode(0x1FFF).name == "ram"
    with pytest.raises(AccessFault):
        ctrl.decode(0x0FFF)
    with pytest.raises(AccessFault):
        ctrl.decode(0x2000)


def test_overlapping_ranges_rejected():
    ctrl, mem = make_ctrl()
    with pytest.raises(ValueError):
        ctrl.add_range(
            AddressRange(name="dup", base=0x1800, size=16, target=mem)
        )


def test_interconnect_range_requires_master_id():
    with pytest.raises(ValueError):
        AddressRange(name="x", base=0, size=4, target=None, via=object())


def test_functional_read_write():
    ctrl, mem = make_ctrl()
    ctrl.write_value(0x1004, 4, 0xABCD)
    assert ctrl.read_value(0x1004, 4) == 0xABCD
    assert mem.read_word(4) == 0xABCD
    ctrl.write_value(0x1008, 1, 0x7F)
    assert ctrl.read_value(0x1008, 1) == 0x7F


def test_uncached_latency_is_memory_latency():
    ctrl, _ = make_ctrl(cacheable=False, latency=7)
    value, latency = ctrl.load(0x1000, 4, t=0)
    assert latency == 7


def test_cached_load_miss_then_hit():
    dcache = Cache(CacheConfig(name="d", size=256, line_size=16, hit_latency=1))
    ctrl, _ = make_ctrl(latency=5, dcache=dcache)
    _, miss_latency = ctrl.load(0x1000, 4, t=0)
    # hit latency + line fill (latency 5 + 3 extra words)
    assert miss_latency == 1 + 5 + 3
    _, hit_latency = ctrl.load(0x1004, 4, t=20)
    assert hit_latency == 1


def test_write_back_eviction_charges_two_transfers():
    dcache = Cache(
        CacheConfig(
            name="d", size=64, line_size=16, assoc=1, write_policy=WRITE_BACK
        )
    )
    ctrl, _ = make_ctrl(latency=4, dcache=dcache)
    ctrl.store(0x1000, 4, 1, t=0)  # allocate dirty (fill)
    latency = ctrl.store(0x1040, 4, 2, t=50)  # same set: writeback + fill
    fill = 4 + 3
    assert latency == 1 + fill + fill  # hit_lat + writeback + fill


def test_suppression_hook_called_for_slow_physical_memory():
    ctrl, _ = make_ctrl(cacheable=False, latency=2, physical=10)
    seen = []
    ctrl.clk_suppression_hook = seen.append
    ctrl.load(0x1000, 4, t=0)
    assert seen == [8]
    stats = ctrl.stats()
    assert stats["clk_suppression_requests"] == 1
    assert stats["suppressed_real_cycles"] == 8


def test_no_suppression_when_physical_meets_latency():
    ctrl, _ = make_ctrl(cacheable=False, latency=5, physical=5)
    seen = []
    ctrl.clk_suppression_hook = seen.append
    ctrl.load(0x1000, 4, t=0)
    assert seen == []


class _FakeMmio:
    def __init__(self):
        self.writes = []

    def mmio_read(self, offset):
        return offset + 100

    def mmio_write(self, offset, value):
        self.writes.append((offset, value))


def test_mmio_routing():
    ctrl, _ = make_ctrl()
    mmio = _FakeMmio()
    ctrl.add_range(
        AddressRange(name="mmio", base=0x8000, size=64, target=mmio, is_mmio=True)
    )
    value, latency = ctrl.load(0x8004, 4, t=0)
    assert value == 104 and latency == 1
    ctrl.store(0x8008, 4, 77, t=0)
    assert mmio.writes == [(8, 77)]


def test_stats_counts_paths():
    ctrl, _ = make_ctrl()
    ctrl.fetch_timing(0x1000, 0)
    ctrl.load(0x1000, 4, 1)
    ctrl.store(0x1004, 4, 5, 2)
    stats = ctrl.stats()
    assert stats["fetches"] == 1
    assert stats["loads"] == 1
    assert stats["stores"] == 1
