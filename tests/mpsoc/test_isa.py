"""ISA encoding/decoding unit and property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.mpsoc import isa
from repro.mpsoc.isa import (
    FMT_B,
    FMT_I,
    FMT_J,
    FMT_R,
    IMM16_MAX,
    IMM16_MIN,
    IMM21_MAX,
    OPS_BY_CODE,
    OPS_BY_NAME,
    UIMM16_MAX,
    Instruction,
    IsaError,
    decode,
    sign_extend,
    to_signed,
    to_unsigned,
)

REG = st.integers(min_value=0, max_value=31)


def _imm_strategy(spec):
    if spec.fmt == FMT_J:
        return st.integers(min_value=0, max_value=IMM21_MAX)
    if spec.fmt == FMT_B:
        return st.integers(min_value=IMM16_MIN, max_value=IMM16_MAX)
    if spec.fmt == FMT_I:
        if spec.signed_imm:
            return st.integers(min_value=IMM16_MIN, max_value=IMM16_MAX)
        return st.integers(min_value=0, max_value=UIMM16_MAX)
    return st.just(0)


@st.composite
def instructions(draw):
    spec = draw(st.sampled_from(sorted(OPS_BY_NAME.values(), key=lambda s: s.opcode)))
    imm = draw(_imm_strategy(spec))
    if spec.fmt == FMT_R:
        return Instruction(spec.mnemonic, rd=draw(REG), rs1=draw(REG), rs2=draw(REG))
    if spec.fmt == FMT_I:
        return Instruction(spec.mnemonic, rd=draw(REG), rs1=draw(REG), imm=imm)
    if spec.fmt == FMT_B:
        return Instruction(spec.mnemonic, rs1=draw(REG), rs2=draw(REG), imm=imm)
    return Instruction(spec.mnemonic, rd=draw(REG), imm=imm)


@given(instructions())
def test_encode_decode_roundtrip(instr):
    assert decode(instr.encode()) == instr


@given(instructions())
def test_encoding_is_32_bits(instr):
    word = instr.encode()
    assert 0 <= word <= 0xFFFFFFFF


def test_opcode_tables_are_consistent():
    assert len(OPS_BY_NAME) == len(OPS_BY_CODE)
    for name, spec in OPS_BY_NAME.items():
        assert spec.mnemonic == name
        assert OPS_BY_CODE[spec.opcode] is spec


def test_every_class_is_known():
    for spec in OPS_BY_NAME.values():
        assert spec.cls in isa.INSTRUCTION_CLASSES


def test_decode_rejects_unknown_opcode():
    with pytest.raises(IsaError):
        decode(0x3E << 26)  # unassigned opcode


def test_encode_rejects_out_of_range_register():
    with pytest.raises(IsaError):
        Instruction("add", rd=32).encode()


def test_encode_rejects_out_of_range_signed_immediate():
    with pytest.raises(IsaError):
        Instruction("addi", rd=1, rs1=0, imm=40000).encode()


def test_encode_rejects_negative_unsigned_immediate():
    with pytest.raises(IsaError):
        Instruction("ori", rd=1, rs1=0, imm=-1).encode()


def test_encode_rejects_unknown_mnemonic():
    with pytest.raises(IsaError):
        Instruction("frobnicate").encode()


@given(st.integers(min_value=0, max_value=0xFFFF))
def test_sign_extend_16(value):
    extended = sign_extend(value, 16)
    assert -(1 << 15) <= extended <= (1 << 15) - 1
    assert extended & 0xFFFF == value


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_signed_unsigned_roundtrip(value):
    assert to_signed(to_unsigned(value)) == value


def test_str_formats():
    assert str(Instruction("add", rd=1, rs1=2, rs2=3)) == "add r1, r2, r3"
    assert str(Instruction("lw", rd=4, rs1=5, imm=-8)) == "lw r4, -8(r5)"
    assert str(Instruction("beq", rs1=1, rs2=0, imm=-2)) == "beq r1, r0, -2"
    assert str(Instruction("jal", rd=31, imm=7)) == "jal r31, 7"
    assert str(Instruction("halt")) == "halt"
    assert str(Instruction("jr", rs1=31)) == "jr r31"
