"""Memory model tests: functional store, timing, physical penalties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpsoc.memory import Memory, MemoryConfig, MemoryError_


def make_memory(size=1024, latency=2, physical=None):
    return Memory(
        MemoryConfig(name="m", size=size, latency=latency, physical_latency=physical)
    )


def test_word_roundtrip():
    mem = make_memory()
    mem.write_word(8, 0xDEADBEEF)
    assert mem.read_word(8) == 0xDEADBEEF


def test_byte_roundtrip_and_endianness():
    mem = make_memory()
    mem.write_word(0, 0x11223344)
    assert mem.read_byte(0) == 0x44
    assert mem.read_byte(3) == 0x11
    mem.write_byte(1, 0xAB)
    assert mem.read_word(0) == 0x1122AB44


def test_out_of_range_rejected():
    mem = make_memory(size=16)
    with pytest.raises(MemoryError_):
        mem.read_word(16)
    with pytest.raises(MemoryError_):
        mem.write_byte(-1, 0)


def test_misaligned_word_rejected():
    mem = make_memory()
    with pytest.raises(MemoryError_):
        mem.read_word(2)


def test_load_blob_bounds():
    mem = make_memory(size=8)
    mem.load_blob(0, b"\x01\x02")
    assert mem.read_byte(0) == 1
    with pytest.raises(MemoryError_):
        mem.load_blob(6, b"\x00" * 4)


def test_burst_latency_is_pipelined():
    mem = make_memory(latency=5)
    assert mem.access_latency(1) == 5
    assert mem.access_latency(4) == 8  # 5 + 3 streaming beats


def test_physical_penalty():
    mem = make_memory(latency=2, physical=10)
    assert mem.physical_penalty(1) == 8
    assert mem.physical_penalty(4) == 32
    fast = make_memory(latency=5, physical=2)
    assert fast.physical_penalty(1) == 0  # faster device: no penalty


def test_access_recording():
    mem = make_memory()
    mem.record_access(0, is_write=False, nwords=4)
    mem.record_access(1, is_write=True, nwords=1)
    assert mem.stats() == {"reads": 4, "writes": 1}


def test_config_validation():
    with pytest.raises(ValueError):
        MemoryConfig(name="m", size=0)
    with pytest.raises(ValueError):
        MemoryConfig(name="m", size=16, latency=0)
    with pytest.raises(ValueError):
        MemoryConfig(name="m", size=16, latency=1, physical_latency=0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=255).map(lambda o: o * 4),
            st.integers(min_value=0, max_value=0xFFFFFFFF),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_last_write_wins(ops):
    """Property: memory behaves as a map from word address to last write."""
    mem = make_memory(size=1024)
    model = {}
    for offset, value in ops:
        mem.write_word(offset, value)
        model[offset] = value
    for offset, value in model.items():
        assert mem.read_word(offset) == value
