"""NoC tests: topology, routing, wormhole contention, generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpsoc.memory import Memory, MemoryConfig
from repro.mpsoc.noc import Noc, NocConfig, generate_custom, generate_mesh


def make_noc(rows=2, cols=2, **kwargs):
    noc = Noc(generate_mesh("noc", rows, cols, **kwargs))
    return noc


def make_slave(latency=2, name="mem"):
    return Memory(MemoryConfig(name=name, size=4096, latency=latency))


def test_mesh_generation():
    cfg = generate_mesh("m", 3, 3)
    assert len(cfg.switches) == 9
    assert len(cfg.links) == 12  # 2*3*(3-1)
    g = cfg.graph()
    assert g.degree["sw1_1"] == 4  # centre switch


def test_custom_generation_ring_and_extra_links():
    cfg = generate_custom("c", 4, extra_links=[(0, 2)])
    assert len(cfg.switches) == 4
    assert ("sw0", "sw2") in cfg.links
    chain = generate_custom("c", 3, ring=False)
    assert len(chain.links) == 2


def test_config_validation():
    with pytest.raises(ValueError):
        NocConfig(name="n", switches=[], links=[])
    with pytest.raises(ValueError):
        NocConfig(name="n", switches=["a", "a"], links=[])
    with pytest.raises(ValueError):
        NocConfig(name="n", switches=["a"], links=[("a", "b")])
    with pytest.raises(ValueError):
        NocConfig(name="n", switches=["a", "b"], links=[("a", "a")])
    with pytest.raises(ValueError):
        NocConfig(name="n", switches=["a", "b"], links=[], buffer_flits=0)


def test_disconnected_topology_rejected():
    with pytest.raises(ValueError):
        Noc(NocConfig(name="n", switches=["a", "b"], links=[]))


def test_routes_are_shortest_paths():
    noc = make_noc(3, 3)
    noc.register_endpoint("cpu", "sw0_0")
    noc.register_endpoint("mem", "sw2_2")
    path = noc.route("cpu", "mem")
    assert path[0] == "sw0_0" and path[-1] == "sw2_2"
    assert len(path) == 5  # 4 hops on a 3x3 mesh corner to corner


def test_endpoint_validation():
    noc = make_noc()
    with pytest.raises(ValueError):
        noc.register_endpoint("x", "nonexistent")
    noc.register_endpoint("x", "sw0_0")
    with pytest.raises(ValueError):
        noc.register_endpoint("x", "sw0_1")


def test_switch_radix_counts_links_and_nis():
    noc = make_noc(2, 2)
    noc.register_endpoint("a", "sw0_0")
    noc.register_endpoint("b", "sw0_0")
    assert noc.switch_radix("sw0_0") == 2 + 2
    assert noc.switch_radix("sw1_1") == 2


def test_transfer_latency_and_stats():
    noc = make_noc()
    slave = make_slave()
    noc.register_endpoint(slave.name, "sw1_1")
    master = noc.register_master("cpu.bridge", "sw0_0")
    latency = noc.transfer(master, slave, 0x0, False, 1, t=0)
    # NI in/out + 2 hops each way + serialization + memory latency.
    assert latency > 10
    stats = noc.stats()
    assert stats["packets"] == 2
    assert stats["ocp_transactions"] == 1
    assert stats["flits"] == 2 + 2  # RD request (hdr+addr) + response (hdr+data)


def test_write_carries_payload_flits():
    noc = make_noc()
    slave = make_slave()
    noc.register_endpoint(slave.name, "sw0_1")
    master = noc.register_master("cpu.bridge", "sw0_0")
    noc.transfer(master, slave, 0x0, True, 4, t=0)
    stats = noc.stats()
    assert stats["flits"] == (2 + 4) + 1  # WR burst + ack


def test_contention_on_shared_link():
    noc = make_noc(1, 2)
    slave = make_slave(latency=1)
    noc.register_endpoint(slave.name, "sw0_1")
    m0 = noc.register_master("cpu0.bridge", "sw0_0")
    m1 = noc.register_master("cpu1.bridge", "sw0_0")
    l0 = noc.transfer(m0, slave, 0, False, 8, t=0)
    l1 = noc.transfer(m1, slave, 0, False, 8, t=0)
    assert l1 > l0  # second packet stalls behind the first wormhole


def test_same_switch_endpoints_take_no_hops():
    noc = make_noc(1, 1)
    slave = make_slave(latency=3)
    noc.register_endpoint(slave.name, "sw0_0")
    master = noc.register_master("cpu.bridge", "sw0_0")
    latency = noc.transfer(master, slave, 0, False, 1, t=0)
    # Two NI traversals each way + serialization + memory: small but > mem.
    assert latency >= 3


def test_unknown_master_rejected():
    noc = make_noc()
    slave = make_slave()
    noc.register_endpoint(slave.name, "sw0_0")
    with pytest.raises(ValueError):
        noc.transfer(5, slave, 0, False, 1, 0)


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
    src=st.integers(min_value=0, max_value=15),
    dst=st.integers(min_value=0, max_value=15),
)
def test_mesh_routes_are_minimal(rows, cols, src, dst):
    """Property: route length equals Manhattan distance on any mesh."""
    noc = Noc(generate_mesh("m", rows, cols))
    n = rows * cols
    src, dst = src % n, dst % n
    sr, sc = divmod(src, cols)
    dr, dc = divmod(dst, cols)
    noc.register_endpoint("a", f"sw{sr}_{sc}")
    noc.register_endpoint("b", f"sw{dr}_{dc}")
    path = noc.route("a", "b")
    assert len(path) - 1 == abs(sr - dr) + abs(sc - dc)


@settings(max_examples=20, deadline=None)
@given(
    transfers=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # master
            st.booleans(),  # write?
            st.integers(min_value=1, max_value=8),  # burst
        ),
        min_size=1,
        max_size=40,
    )
)
def test_flit_conservation(transfers):
    """Property: flit counters equal the sum of per-packet flit sizes."""
    from repro.mpsoc.ocp import CMD_READ, CMD_WRITE, OcpRequest

    noc = make_noc(2, 2)
    slave = make_slave()
    noc.register_endpoint(slave.name, "sw1_1")
    masters = [noc.register_master(f"m{i}.bridge", f"sw{i % 2}_0") for i in range(4)]
    expected = 0
    for master, is_write, burst in transfers:
        noc.transfer(masters[master], slave, 0, is_write, burst, t=0)
        request = OcpRequest(
            master="x", cmd=CMD_WRITE if is_write else CMD_READ, addr=0, burst_len=burst
        )
        expected += request.request_flits() + request.response_flits()
    assert noc.stats()["flits"] == expected
