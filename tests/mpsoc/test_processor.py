"""Processor semantics and timing-accounting tests.

Each semantic test assembles a tiny program, runs it on a single-core
platform and checks architectural state; wraparound semantics are
cross-checked against Python's own two's-complement arithmetic with
hypothesis.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpsoc import build_platform
from repro.mpsoc.asm import assemble
from repro.mpsoc.processor import CORE_SPECS, ExecutionError
from tests.conftest import small_config

I32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)


def run_source(source, core_spec="microblaze", max_instructions=100000):
    from repro.mpsoc.platform import CoreConfig

    config = small_config(1, cores=[CoreConfig("cpu0", spec=core_spec)])
    platform = build_platform(config)
    program = assemble(source)
    platform.load_program(0, program)
    platform.cores[0].run(max_instructions=max_instructions)
    return platform


def regs_after(source, **kwargs):
    return run_source(source, **kwargs).cores[0].regs


def test_arithmetic_basics():
    regs = regs_after(
        """
        main:   li   r1, 7
                li   r2, 3
                add  r3, r1, r2
                sub  r4, r1, r2
                mul  r5, r1, r2
                div  r6, r1, r2
                rem  r7, r1, r2
                halt
        """
    )
    assert regs[3] == 10
    assert regs[4] == 4
    assert regs[5] == 21
    assert regs[6] == 2
    assert regs[7] == 1


def test_division_truncates_toward_zero():
    regs = regs_after(
        """
        main:   li   r1, -7
                li   r2, 2
                div  r3, r1, r2
                rem  r4, r1, r2
                halt
        """
    )
    # C semantics: -7 / 2 == -3, -7 % 2 == -1.
    assert regs[3] == (-3) & 0xFFFFFFFF
    assert regs[4] == (-1) & 0xFFFFFFFF


def test_division_by_zero_is_defined():
    regs = regs_after(
        """
        main:   li   r1, 9
                li   r2, 0
                div  r3, r1, r2
                rem  r4, r1, r2
                halt
        """
    )
    assert regs[3] == 0xFFFFFFFF  # -1, the usual RISC convention
    assert regs[4] == 9


def test_logic_and_shifts():
    regs = regs_after(
        """
        main:   li   r1, 0xF0F0
                li   r2, 0x0FF0
                and  r3, r1, r2
                or   r4, r1, r2
                xor  r5, r1, r2
                slli r6, r1, 4
                srli r7, r1, 4
                li   r8, -16
                srai r9, r8, 2
                halt
        """
    )
    assert regs[3] == 0x0FF0 & 0xF0F0
    assert regs[4] == 0xFFF0
    assert regs[5] == 0xF0F0 ^ 0x0FF0
    assert regs[6] == 0xF0F00
    assert regs[7] == 0xF0F
    assert regs[9] == (-4) & 0xFFFFFFFF


def test_comparisons_signed_unsigned():
    regs = regs_after(
        """
        main:   li   r1, -1
                li   r2, 1
                slt  r3, r1, r2
                sltu r4, r1, r2
                slti r5, r1, 0
                halt
        """
    )
    assert regs[3] == 1  # -1 < 1 signed
    assert regs[4] == 0  # 0xFFFFFFFF > 1 unsigned
    assert regs[5] == 1


def test_r0_is_hardwired_zero():
    regs = regs_after("main: li r0, 55\n      addi r0, r0, 1\n      halt")
    assert regs[0] == 0


def test_memory_byte_and_word_access():
    platform = run_source(
        """
                .text
        main:   la   r1, buf
                li   r2, 0x11223344
                sw   r2, 0(r1)
                lbu  r3, 0(r1)
                lbu  r4, 3(r1)
                li   r5, 0x80
                sb   r5, 1(r1)
                lw   r6, 0(r1)
                lb   r7, 1(r1)
                halt
                .data
        buf:    .space 8
        """
    )
    regs = platform.cores[0].regs
    assert regs[3] == 0x44  # little-endian low byte
    assert regs[4] == 0x11
    assert regs[6] == 0x11228044
    assert regs[7] == 0xFFFFFF80  # lb sign-extends


def test_branches_and_jumps():
    regs = regs_after(
        """
        main:   li   r1, 0
                li   r2, 5
        loop:   addi r1, r1, 1
                blt  r1, r2, loop
                jal  r31, func
                li   r4, 9
                halt
        func:   li   r3, 42
                jr   r31
        """
    )
    assert regs[1] == 5
    assert regs[3] == 42
    assert regs[4] == 9


def test_jalr_indirect_call():
    regs = regs_after(
        """
        main:   la   r1, 0        # will hold instruction index of func
                li   r1, 5        # index of func below (counted by hand)
                jalr r31, r1
                li   r3, 1
                halt
        func:   li   r2, 7
                jr   r31
        """
    )
    assert regs[2] == 7
    assert regs[3] == 1


@settings(max_examples=25, deadline=None)
@given(I32, I32)
def test_add_wraps_like_two_complement(a, b):
    platform = run_source(
        f"""
        main:   li r1, 0x{a & 0xFFFFFFFF:08x}
                li r2, 0x{b & 0xFFFFFFFF:08x}
                add r3, r1, r2
                sub r4, r1, r2
                mul r5, r1, r2
                halt
        """
    )
    regs = platform.cores[0].regs
    assert regs[3] == (a + b) & 0xFFFFFFFF
    assert regs[4] == (a - b) & 0xFFFFFFFF
    assert regs[5] == (a * b) & 0xFFFFFFFF


def test_misaligned_word_access_raises():
    with pytest.raises(ExecutionError):
        run_source(
            """
            main:   li r1, 2
                    lw r2, 0(r1)
                    halt
            """
        )


def test_pc_out_of_range_raises():
    with pytest.raises(ExecutionError):
        run_source("main: j 1000")


def test_cycle_accounting_sums():
    platform = run_source(
        """
        main:   li   r1, 100
        loop:   addi r1, r1, -1
                bgt  r1, r0, loop
                halt
        """
    )
    core = platform.cores[0]
    stats = core.stats()
    # li (one addi) + 100 x (addi + bgt) + halt
    assert stats["instructions"] == 1 + 2 * 100 + 1
    assert stats["cycles"] == stats["active_cycles"] + stats["stall_cycles"]
    assert stats["cpi"] == pytest.approx(stats["cycles"] / stats["instructions"])


def test_idle_accounting():
    platform = run_source("main: halt")
    core = platform.cores[0]
    before = core.cycle
    core.idle_until(before + 50)
    assert core.idle_cycles == 50
    assert core.cycle == before + 50


def test_core_specs_complete():
    from repro.mpsoc import isa

    for name, spec in CORE_SPECS.items():
        assert spec.name == name
        for cls in isa.INSTRUCTION_CLASSES:
            assert spec.cycles_for(cls) >= 1
        assert spec.default_hz > 0


def test_step_on_halted_core_is_noop(platform1):
    core = platform1.cores[0]
    assert core.halted
    assert core.step() == 0


def test_reset_stats(platform1):
    program = assemble("main: addi r1, r0, 1\n      halt")
    platform1.load_program(0, program)
    platform1.cores[0].run()
    platform1.cores[0].reset_stats()
    stats = platform1.cores[0].stats()
    assert stats["instructions"] == 0
    assert stats["active_cycles"] == 0
