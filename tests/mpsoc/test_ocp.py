"""OCP transaction record tests."""

import pytest

from repro.mpsoc.ocp import CMD_READ, CMD_WRITE, OcpRequest, OcpResponse


def test_validation():
    with pytest.raises(ValueError):
        OcpRequest(master="m", cmd="XX", addr=0)
    with pytest.raises(ValueError):
        OcpRequest(master="m", cmd=CMD_READ, addr=0, burst_len=0)


def test_read_flit_counts():
    req = OcpRequest(master="m", cmd=CMD_READ, addr=0x40, burst_len=4)
    assert not req.is_write
    assert req.request_flits() == 2  # header + address
    assert req.response_flits() == 5  # header + 4 data words


def test_write_flit_counts():
    req = OcpRequest(master="m", cmd=CMD_WRITE, addr=0x40, burst_len=4)
    assert req.is_write
    assert req.request_flits() == 6  # header + address + 4 data words
    assert req.response_flits() == 1  # ack


def test_single_word_read():
    req = OcpRequest(master="m", cmd=CMD_READ, addr=0)
    assert req.request_flits() == 2
    assert req.response_flits() == 2


def test_response_record():
    resp = OcpResponse(master="m", cmd=CMD_READ, addr=0x40, latency=17)
    assert resp.latency == 17
