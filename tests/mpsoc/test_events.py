"""Event taxonomy / Observable / CounterBlock tests."""

from repro.mpsoc import events as ev
from repro.mpsoc.events import CounterBlock, Event, Observable


class _Component(Observable):
    pass


def test_event_kinds_unique():
    assert len(set(ev.ALL_EVENT_KINDS)) == len(ev.ALL_EVENT_KINDS)


def test_observable_without_hooks_is_cheap():
    comp = _Component()
    assert not comp.has_hooks
    comp.emit(0, "c", ev.CACHE_HIT)  # no hooks: no observable effect


def test_hooks_receive_events():
    comp = _Component()
    seen = []
    comp.attach_hook(seen.append)
    comp.emit(5, "c", ev.MEM_READ, (0x40, 4))
    assert seen == [Event(5, "c", ev.MEM_READ, (0x40, 4))]
    assert comp.has_hooks


def test_multiple_hooks_all_called():
    comp = _Component()
    a, b = [], []
    comp.attach_hook(a.append)
    comp.attach_hook(b.append)
    comp.emit(1, "c", ev.BUS_TXN)
    assert len(a) == 1 and len(b) == 1


def test_detach_hook():
    comp = _Component()
    seen = []
    comp.attach_hook(seen.append)
    comp.detach_hook(seen.append)
    comp.emit(1, "c", ev.BUS_TXN)
    assert seen == []


def test_counter_block():
    block = CounterBlock("x")
    block.add("hits")
    block.add("hits", 4)
    block.add("misses")
    assert block.get("hits") == 5
    assert block.get("misses") == 1
    assert block.get("absent") == 0
    snap = block.snapshot()
    block.add("hits")
    assert snap["hits"] == 5  # snapshot is a copy
    block.reset()
    assert block.get("hits") == 0


def test_event_is_frozen_value_object():
    event = Event(1, "src", ev.CACHE_MISS, (0x10,))
    assert event == Event(1, "src", ev.CACHE_MISS, (0x10,))
    assert event != Event(2, "src", ev.CACHE_MISS, (0x10,))
