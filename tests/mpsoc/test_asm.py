"""Assembler tests: labels, directives, pseudo-ops, error reporting."""

import pytest
from hypothesis import given, strategies as st

from repro.mpsoc import isa
from repro.mpsoc.asm import AssemblyError, assemble


def test_forward_and_backward_labels():
    program = assemble(
        """
        main:   beq r0, r0, fwd
        back:   addi r1, r1, 1
        fwd:    bne r1, r0, back
                halt
        """
    )
    instrs = program.disassemble()
    assert instrs[0].imm == 1  # to fwd: skip one instruction
    assert instrs[2].imm == -2  # back to index 1


def test_data_directives_and_symbols():
    program = assemble(
        """
                .text
        main:   la  r1, table
                lw  r2, 0(r1)
                halt
                .data
        table:  .word 1, 2, 0x10
        bytes:  .byte 1, 2, 255
                .align 4
        buf:    .space 8
        """
    )
    base = program.data_base
    assert program.symbols["table"] == base
    assert program.symbols["bytes"] == base + 12
    assert program.symbols["buf"] == base + 16  # aligned past 15 bytes
    assert program.data[0:4] == (1).to_bytes(4, "little")
    assert program.data[14] == 255


def test_word_with_symbol_reference():
    program = assemble(
        """
                .text
        main:   halt
                .data
        ptr:    .word target, target+4
        target: .word 42
        """
    )
    target = program.symbols["target"]
    assert program.data[0:4] == target.to_bytes(4, "little")
    assert program.data[4:8] == (target + 4).to_bytes(4, "little")


def test_li_expansions():
    program = assemble(
        """
        main:   li r1, 5
                li r2, -5
                li r3, 0xFFFF
                li r4, 0x12345678
                li r5, 0x00050000
                halt
        """
    )
    instrs = program.disassemble()
    assert instrs[0].mnemonic == "addi" and instrs[0].imm == 5
    assert instrs[1].mnemonic == "addi" and instrs[1].imm == -5
    assert instrs[2].mnemonic == "ori" and instrs[2].imm == 0xFFFF
    assert instrs[3].mnemonic == "lui" and instrs[3].imm == 0x1234
    assert instrs[4].mnemonic == "ori" and instrs[4].imm == 0x5678
    # 0x00050000 has zero low half: lui only.
    assert instrs[5].mnemonic == "lui" and instrs[5].imm == 0x5


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_li_loads_any_word(value):
    """Property: li reproduces any 32-bit constant through the ISA."""
    program = assemble(f"main: li r1, 0x{value:08x}\n      halt")
    regs = [0] * 32
    for instr in program.disassemble():
        if instr.mnemonic == "addi":
            regs[instr.rd] = (regs[instr.rs1] + instr.imm) & 0xFFFFFFFF
        elif instr.mnemonic == "ori":
            regs[instr.rd] = regs[instr.rs1] | instr.imm
        elif instr.mnemonic == "lui":
            regs[instr.rd] = (instr.imm << 16) & 0xFFFFFFFF
    assert regs[1] == value


def test_la_resolves_addresses():
    program = assemble(
        """
                .text
        main:   la r1, buf
                halt
                .data
        buf:    .space 4
        """,
        text_base=0x100,
    )
    instrs = program.disassemble()
    addr = program.symbols["buf"]
    assert instrs[0].mnemonic == "lui" and instrs[0].imm == (addr >> 16) & 0xFFFF
    assert instrs[1].mnemonic == "ori" and instrs[1].imm == addr & 0xFFFF


def test_pseudo_ops():
    program = assemble(
        """
        main:   mv   r1, r2
                b    target
                bgt  r1, r2, target
                ble  r1, r2, target
                neg  r3, r4
        target: call func
                ret
        func:   jr r31
        """
    )
    names = [i.mnemonic for i in program.disassemble()]
    assert names == ["addi", "beq", "blt", "bge", "sub", "jal", "jr", "jr"]


def test_entry_defaults_to_main():
    program = assemble(
        """
        helper: nop
        main:   halt
        """
    )
    assert program.entry == 1


def test_entry_zero_without_main():
    assert assemble("start: halt").entry == 0


def test_register_aliases():
    program = assemble("main: add r1, zero, sp\n      jr ra")
    instr = program.disassemble()[0]
    assert instr.rs1 == 0 and instr.rs2 == 30
    assert program.disassemble()[1].rs1 == 31


def test_comments_and_blank_lines():
    program = assemble(
        """
        # leading comment
        main:   nop   ; trailing comment
                nop   // c++ style
                halt
        """
    )
    assert len(program.code) == 3


@pytest.mark.parametrize(
    "source, fragment",
    [
        ("main: bogus r1, r2, r3", "unknown instruction"),
        ("main: addi r1, r2", "expects 3 operand"),
        ("main: addi r99, r0, 1", "bad register"),
        ("main: j nowhere", "undefined symbol"),
        ("main: halt\nmain: halt", "duplicate label"),
        (".word 5", "outside .data"),
        ("main: addi r1, r0, 99999", "out of i16 range"),
        ("main: halt\n.data\nx: .byte 300", "bad byte"),
        ("main: halt\n.bogus 3", "unknown directive"),
    ],
)
def test_error_reporting(source, fragment):
    with pytest.raises(AssemblyError) as excinfo:
        assemble(source)
    assert fragment in str(excinfo.value)


def test_branch_to_data_symbol_rejected():
    with pytest.raises(AssemblyError):
        assemble(
            """
            main: beq r0, r0, blob
                  halt
                  .data
            blob: .word 1
            """
        )


def test_program_sizes_and_disassembly_roundtrip():
    program = assemble("main: addi r1, r0, 1\n      halt\n.data\nx: .word 7")
    assert program.text_size == 8
    assert program.data_size == 4
    for word, instr in zip(program.code, program.disassemble()):
        assert isa.decode(word) == instr
