"""Heterogeneous platform helpers and the framework's per-core clock merge."""

import pytest

from repro.core.framework import EmulationFramework, FrameworkConfig
from repro.mpsoc.platform import CORE_SPECS, CoreConfig, MPSoCConfig, Platform
from repro.thermal.floorplan import floorplan_hetero
from repro.util.units import KB, MHZ


def hetero_config(big_hz=250 * MHZ):
    return MPSoCConfig(
        name="hetero_test",
        cores=[
            CoreConfig("big0", spec="ppc405", frequency_hz=big_hz),
            CoreConfig("big1", spec="ppc405", frequency_hz=big_hz),
            CoreConfig("lil0", spec="microblaze", frequency_hz=100 * MHZ),
        ],
        private_mem_size=4 * KB,
        shared_mem_size=16 * KB,
    )


def homo_config():
    return MPSoCConfig(
        name="homo_test",
        cores=[CoreConfig(f"cpu{i}", spec="microblaze") for i in range(2)],
        shared_mem_size=16 * KB,
    )


def test_core_class_counts():
    assert hetero_config().core_class_counts() == {
        "ppc405": 2, "microblaze": 1
    }
    assert homo_config().core_class_counts() == {"microblaze": 2}


def test_static_core_frequencies():
    frequencies = hetero_config().static_core_frequencies()
    assert frequencies == {0: 250 * MHZ, 1: 250 * MHZ, 2: 100 * MHZ}
    # Unpinned cores fall back to their spec's default clock.
    default = homo_config().static_core_frequencies()
    assert default == {i: CORE_SPECS["microblaze"].default_hz for i in (0, 1)}


def test_is_heterogeneous():
    assert hetero_config().is_heterogeneous
    assert not homo_config().is_heterogeneous
    # Same spec at different clocks also counts as heterogeneous.
    mixed_clock = MPSoCConfig(
        name="mixed_clock",
        cores=[
            CoreConfig("a", spec="microblaze", frequency_hz=100 * MHZ),
            CoreConfig("b", spec="microblaze", frequency_hz=50 * MHZ),
        ],
        shared_mem_size=16 * KB,
    )
    assert mixed_clock.is_heterogeneous


def test_hetero_config_round_trips():
    config = hetero_config()
    clone = MPSoCConfig.from_dict(config.to_dict())
    assert clone.to_dict() == config.to_dict()
    assert clone.is_heterogeneous


def hetero_framework(big_hz=200 * MHZ):
    config = hetero_config(big_hz)
    platform = Platform(config)
    return EmulationFramework(
        platform,
        floorplan_hetero(big=2, little=1),
        config=FrameworkConfig(virtual_hz=big_hz, spreader_resolution=(2, 2)),
    )


def test_framework_detects_heterogeneous_clocks():
    framework = hetero_framework()
    assert framework._hetero_core_hz == {
        0: 200 * MHZ, 1: 200 * MHZ, 2: 100 * MHZ
    }
    homo = EmulationFramework(
        Platform(homo_config()),
        floorplan_hetero(big=0, little=2),
        config=FrameworkConfig(spreader_resolution=(2, 2)),
    )
    assert homo._hetero_core_hz is None


def test_little_cores_draw_proportionally_less_power():
    # Identical utilization on every core: the little core's component
    # power must reflect its slower static clock (100 vs 200 MHz) on top
    # of its smaller power class.
    framework = hetero_framework(big_hz=200 * MHZ)
    from repro.power.models import ActivityVector

    activity = ActivityVector(1, {("core", i): 1.0 for i in range(3)})
    powers = framework.power_model.component_power(
        activity,
        frequency_hz=200 * MHZ,
        core_frequencies={0: 200 * MHZ, 1: 200 * MHZ, 2: 100 * MHZ},
    )
    by_source = {
        c.activity_source: powers[c.name]
        for c in framework.floorplan.active_components()
    }
    assert by_source[("core", 0)] == pytest.approx(by_source[("core", 1)])
    assert by_source[("core", 2)] < by_source[("core", 0)]
