"""Cache tag-array unit tests and hypothesis invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpsoc.cache import WRITE_BACK, WRITE_THROUGH, Cache, CacheConfig


def make_cache(size=256, line=16, assoc=1, policy=WRITE_THROUGH):
    return Cache(
        CacheConfig(
            name="c", size=size, line_size=line, assoc=assoc, write_policy=policy
        )
    )


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(name="c", size=100, line_size=16)  # not divisible
    with pytest.raises(ValueError):
        CacheConfig(name="c", line_size=10)  # not multiple of 4
    with pytest.raises(ValueError):
        CacheConfig(name="c", write_policy="bogus")
    with pytest.raises(ValueError):
        CacheConfig(name="c", hit_latency=0)


def test_geometry():
    cfg = CacheConfig(name="c", size=8192, line_size=16, assoc=2)
    assert cfg.num_sets == 256
    assert cfg.line_words == 4


def test_cold_miss_then_hit():
    cache = make_cache()
    first = cache.access(0x40, is_write=False)
    assert not first.hit and first.fill
    second = cache.access(0x44, is_write=False)  # same 16-byte line
    assert second.hit and not second.fill
    stats = cache.stats()
    assert stats == {
        "accesses": 2,
        "hits": 1,
        "misses": 1,
        "evictions": 0,
        "writebacks": 0,
        "miss_rate": 0.5,
    }


def test_direct_mapped_conflict():
    cache = make_cache(size=256, line=16, assoc=1)  # 16 sets
    cache.access(0x000, False)
    assert cache.contains(0x000)
    result = cache.access(0x100, False)  # same set, different tag
    assert not result.hit and result.fill
    assert not cache.contains(0x000)
    assert cache.contains(0x100)


def test_two_way_keeps_both():
    cache = make_cache(size=256, line=16, assoc=2)  # 8 sets
    cache.access(0x000, False)
    cache.access(0x080, False)  # 8 sets * 16B = 0x80 stride -> same set
    assert cache.contains(0x000) and cache.contains(0x080)
    # Third tag evicts the LRU (0x000).
    cache.access(0x100, False)
    assert not cache.contains(0x000)
    assert cache.contains(0x080) and cache.contains(0x100)


def test_lru_order_updated_by_hits():
    cache = make_cache(size=256, line=16, assoc=2)
    cache.access(0x000, False)
    cache.access(0x080, False)
    cache.access(0x000, False)  # touch 0x000: now 0x080 is LRU
    cache.access(0x100, False)
    assert cache.contains(0x000)
    assert not cache.contains(0x080)


def test_write_through_no_allocate():
    cache = make_cache(policy=WRITE_THROUGH)
    result = cache.access(0x40, is_write=True)
    assert not result.hit and result.through_write and not result.fill
    assert not cache.contains(0x40)
    # Write hit still goes through.
    cache.access(0x40, False)
    hit = cache.access(0x40, True)
    assert hit.hit and hit.through_write


def test_write_back_allocates_and_marks_dirty():
    cache = make_cache(policy=WRITE_BACK)
    result = cache.access(0x40, is_write=True)
    assert not result.hit and result.fill and not result.through_write
    assert cache.dirty_lines() == [0x40]


def test_write_back_eviction_writes_back():
    cache = make_cache(size=256, line=16, assoc=1, policy=WRITE_BACK)
    cache.access(0x000, True)  # dirty
    result = cache.access(0x100, False)  # conflict evicts dirty line
    assert result.writeback and result.victim_addr == 0x000
    assert cache.stats()["writebacks"] == 1


def test_clean_eviction_does_not_write_back():
    cache = make_cache(size=256, line=16, assoc=1, policy=WRITE_BACK)
    cache.access(0x000, False)
    result = cache.access(0x100, False)
    assert not result.writeback
    assert cache.stats()["evictions"] == 1


def test_flush_reports_dirty_lines():
    cache = make_cache(policy=WRITE_BACK)
    cache.access(0x00, True)
    cache.access(0x40, True)
    cache.access(0x80, False)
    assert cache.flush() == 2
    assert cache.resident_lines() == []


ADDRESSES = st.lists(
    st.integers(min_value=0, max_value=0x3FFF).map(lambda a: a & ~0x3),
    min_size=1,
    max_size=300,
)


@settings(max_examples=60, deadline=None)
@given(
    addrs=ADDRESSES,
    assoc=st.sampled_from([1, 2, 4]),
    policy=st.sampled_from([WRITE_THROUGH, WRITE_BACK]),
    writes=st.lists(st.booleans(), min_size=300, max_size=300),
)
def test_invariants_hold_under_random_traffic(addrs, assoc, policy, writes):
    cache = make_cache(size=512, line=16, assoc=assoc, policy=policy)
    touched_lines = set()
    for addr, is_write in zip(addrs, writes):
        cache.access(addr, is_write)
        touched_lines.add(cache.line_base(addr))
        # Invariant 1: set occupancy never exceeds associativity and no
        # duplicate tags within a set.
        for entries in cache._sets:
            assert len(entries) <= assoc
            tags = [tag for tag, _ in entries]
            assert len(tags) == len(set(tags))
    # Invariant 2: resident lines are a subset of lines ever touched.
    assert set(cache.resident_lines()) <= touched_lines
    # Invariant 3: write-through caches never hold dirty lines.
    if policy == WRITE_THROUGH:
        assert cache.dirty_lines() == []
    # Invariant 4: bookkeeping identity.
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == stats["accesses"]
    assert stats["writebacks"] <= stats["evictions"]
