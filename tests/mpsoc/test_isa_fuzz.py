"""Seeded fuzz test for the timed ISA interpreter.

Random (but reproducible) straight-line instruction streams run on every
registered :class:`CoreSpec`; the expected cycle accounting is derived
from the assembled program itself, so the test checks the interpreter's
timing invariants against the spec's own CPI table:

* ``active + stall + idle == total elapsed cycles`` — the Section 4.1
  three-mode split is exhaustive and disjoint;
* with no caches and 1-cycle private memory there is nothing to stall
  on: ``stall == 0`` and every instruction charges exactly
  ``CPI[class] + fetch`` (+1 for a load/store data access);
* per-class instruction counts match the stream.
"""

import random

import pytest

from repro.mpsoc.asm import assemble
from repro.mpsoc.isa import CLASS_LOAD, CLASS_STORE, decode
from repro.mpsoc.platform import CORE_SPECS, CoreConfig, MPSoCConfig, Platform
from repro.util.units import KB

#: Generator opcode pools.  Divisors read only the preloaded, never
#: written registers r1..r5, so div/rem never fault; branches target the
#: next instruction, so any outcome is safe in a straight line.
ALU_R = ("add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu")
ALU_I = ("addi", "slti", "andi", "ori", "xori")
MULDIV = ("mul", "div", "rem")
BRANCHES = ("beq", "bne", "blt", "bge")
SAFE_SOURCES = tuple(range(1, 26))
DEST_REGS = tuple(range(10, 26))
DIV_SOURCES = tuple(range(1, 6))

DATA_BASE = 0x2000  # inside private memory, far above the text segment


def fuzz_source(rng, length):
    """One straight-line program of ``length`` random instructions."""
    lines = ["        .text", "main:"]
    # Prologue: nonzero divisors in r1..r5, the data base in r6.
    for reg in DIV_SOURCES:
        lines.append(f"        li   r{reg}, {rng.randint(1, 1000)}")
    lines.append(f"        li   r6, {DATA_BASE}")
    for k in range(length):
        kind = rng.random()
        rd = rng.choice(DEST_REGS)
        rs1 = rng.choice(SAFE_SOURCES)
        rs2 = rng.choice(SAFE_SOURCES)
        if kind < 0.40:
            op = rng.choice(ALU_R)
            lines.append(f"        {op}  r{rd}, r{rs1}, r{rs2}")
        elif kind < 0.55:
            op = rng.choice(ALU_I)
            lines.append(f"        {op} r{rd}, r{rs1}, {rng.randint(0, 255)}")
        elif kind < 0.65:
            op = rng.choice(MULDIV)
            divisor = rng.choice(DIV_SOURCES)
            lines.append(f"        {op}  r{rd}, r{rs1}, r{divisor}")
        elif kind < 0.75:
            op = rng.choice(("lw", "lb", "lbu"))
            offset = 4 * rng.randint(0, 15)
            lines.append(f"        {op}   r{rd}, {offset}(r6)")
        elif kind < 0.85:
            op = rng.choice(("sw", "sb"))
            offset = 4 * rng.randint(0, 15)
            lines.append(f"        {op}   r{rs1}, {offset}(r6)")
        elif kind < 0.95:
            op = rng.choice(BRANCHES)
            lines.append(f"        {op}  r{rs1}, r{rs2}, next{k}")
            lines.append(f"next{k}:")
        else:
            lines.append(f"        j    next{k}")
            lines.append(f"next{k}:")
    lines.append("        halt")
    return "\n".join(lines) + "\n"


def cacheless_core(spec_name):
    config = MPSoCConfig(
        name=f"fuzz_{spec_name}",
        cores=[CoreConfig("cpu0", spec=spec_name)],
        private_mem_size=16 * KB,
        shared_mem_size=16 * KB,
    )
    assert config.icache is None and config.dcache is None
    return Platform(config).cores[0]


def expected_accounting(program, spec):
    """Timing the interpreter must report for a straight-line program on
    a cache-less core with 1-cycle private memory."""
    cpi_total = 0
    mem_accesses = 0
    counts = {}
    decoded = [decode(word) for word in program.code]
    for instr in decoded:
        cpi_total += spec.cpi[instr.cls]
        counts[instr.cls] = counts.get(instr.cls, 0) + 1
        if instr.cls in (CLASS_LOAD, CLASS_STORE):
            mem_accesses += 1
    instructions = len(decoded)
    active = cpi_total + instructions + mem_accesses
    return instructions, counts, active


SEEDS = (11, 23, 47)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("spec_name", sorted(CORE_SPECS))
def test_fuzzed_stream_cycle_accounting(spec_name, seed):
    rng = random.Random(f"{spec_name}-{seed}")
    program = assemble(fuzz_source(rng, length=200))
    spec = CORE_SPECS[spec_name]
    core = cacheless_core(spec_name)
    core.load_program(program)

    executed = core.run()
    assert core.state == "halted"

    instructions, counts, active = expected_accounting(program, spec)
    # Straight-line code: every assembled instruction executes exactly once.
    assert executed == instructions
    assert core.instructions == instructions
    assert dict(core.class_counts) == counts

    # CPI charges follow the spec's class table, fetch included.
    assert core.active_cycles == active
    # Nothing to stall on: no caches, 1-cycle private memory.
    assert core.stall_cycles == 0
    assert core.idle_cycles == 0
    # The three-mode split is exhaustive.
    assert core.active_cycles + core.stall_cycles + core.idle_cycles == core.cycle


@pytest.mark.parametrize("spec_name", sorted(CORE_SPECS))
def test_idle_accounting_after_halt(spec_name):
    rng = random.Random(spec_name)
    core = cacheless_core(spec_name)
    core.load_program(assemble(fuzz_source(rng, length=50)))
    core.run()
    halted_at = core.cycle
    core.idle_until(halted_at + 777)
    assert core.idle_cycles == 777
    assert core.active_cycles + core.stall_cycles + core.idle_cycles == core.cycle


def test_fuzz_is_reproducible():
    a = fuzz_source(random.Random("x"), 100)
    b = fuzz_source(random.Random("x"), 100)
    assert a == b


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzzed_run_is_deterministic(seed):
    def run():
        core = cacheless_core("microblaze")
        core.load_program(
            assemble(fuzz_source(random.Random(seed), length=150))
        )
        core.run()
        return core.cycle, core.instructions, list(core.regs)

    assert run() == run()
