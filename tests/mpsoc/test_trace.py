"""Trace-driven core tests."""

import pytest

from repro.emulation.engine import EventDrivenEngine
from repro.mpsoc import build_platform
from repro.mpsoc.platform import SHARED_BASE
from repro.mpsoc.trace import TraceCore, TraceOp, strided_trace
from tests.conftest import small_config


def make_trace_core(trace, repeat=1, platform=None):
    platform = platform or build_platform(small_config(1))
    core = TraceCore("t0", platform.memctrls[0], trace, repeat=repeat)
    return platform, core


def test_trace_op_validation():
    with pytest.raises(ValueError):
        TraceOp(gap=-1)
    with pytest.raises(ValueError):
        TraceOp(addr=0, size=2)
    with pytest.raises(ValueError):
        strided_trace(0, 0)


def test_pure_compute_trace():
    _, core = make_trace_core([TraceOp(gap=10), TraceOp(gap=5)])
    core.run()
    assert core.halted
    assert core.cycle == 15
    assert core.instructions == 2
    assert core.stats()["active_cycles"] == 15


def test_memory_accesses_through_hierarchy():
    platform, core = make_trace_core(
        [TraceOp(gap=0, addr=0x100, is_write=True),
         TraceOp(gap=0, addr=0x100, is_write=False)]
    )
    core.run()
    # The write-through D-cache saw both accesses.
    assert platform.dcaches[0].stats()["accesses"] == 2


def test_repeat_loops_the_trace():
    _, once = make_trace_core([TraceOp(gap=3)], repeat=1)
    once.run()
    _, many = make_trace_core([TraceOp(gap=3)], repeat=5)
    many.run()
    assert many.cycle == 5 * once.cycle
    assert many.instructions == 5


def test_repeat_validation():
    with pytest.raises(ValueError):
        make_trace_core([TraceOp(gap=1)], repeat=0)


def test_shared_traffic_crosses_interconnect():
    platform = build_platform(small_config(1))
    trace = strided_trace(SHARED_BASE, 16, stride=4, reads_per_write=3)
    core = TraceCore("t0", platform.memctrls[0], trace)
    core.run()
    stats = platform.interconnect.stats()
    assert stats["transactions"] == 16
    assert platform.shared_mem.stats()["writes"] == 4  # every 4th access


def test_strided_trace_shape():
    trace = strided_trace(0x0, 8, stride=8, reads_per_write=1, gap=3)
    assert len(trace) == 8
    assert trace[0].addr == 0 and trace[1].addr == 8
    assert not trace[0].is_write and trace[1].is_write
    assert all(op.gap == 3 for op in trace)


def test_trace_core_stalls_on_slow_memory():
    platform = build_platform(small_config(1, shared_mem_latency=20))
    trace = strided_trace(SHARED_BASE, 4, reads_per_write=0)
    core = TraceCore("t0", platform.memctrls[0], trace)
    core.run()
    assert core.stall_cycles > 4 * 10  # slow shared accesses stall


def test_trace_core_in_engine_window():
    """TraceCore is engine-compatible: windows, idling, completion."""
    platform = build_platform(small_config(1))
    trace = [TraceOp(gap=4, addr=0x40 + 4 * i) for i in range(50)]
    platform.cores[0] = TraceCore("t0", platform.memctrls[0], trace)
    engine = EventDrivenEngine(platform)
    engine.run_window(100)
    assert not platform.cores[0].halted
    engine.run_window(10**6)
    assert platform.cores[0].halted
    assert platform.cores[0].idle_cycles > 0


def test_empty_trace_is_halted():
    _, core = make_trace_core([])
    assert core.halted
    assert core.step() == 0
