"""RunTimeline: JSONL round-trip, phase math, digest stability."""

import json

import pytest

from repro.obs.timeline import PHASE_ORDER, RunTimeline
from repro.obs.tracing import SpanTracer


def _trace_run(wall_by_phase, windows=3):
    """A synthetic run: per-window phase leaves under one run span."""
    tracer = SpanTracer()
    with tracer.span("run", backend="functional"):
        for _ in range(windows):
            for phase, wall in wall_by_phase.items():
                tracer.emit("window." + phase, wall)
    return tracer


WALLS = {
    "emulate": 0.004, "power": 0.001, "dispatch": 0.002,
    "solve": 0.008, "other": 0.0005,
}


def test_phases_in_canonical_order():
    tracer = _trace_run(WALLS)
    timeline = RunTimeline.from_events(tracer.events)
    assert list(timeline.phases()) == list(PHASE_ORDER)
    assert timeline.phases()["solve"] == pytest.approx(3 * 0.008)


def test_to_timing_and_total():
    timeline = RunTimeline.from_events(_trace_run(WALLS).events)
    timing = timeline.to_timing()
    assert set(timing) == set(PHASE_ORDER)
    assert timeline.total_wall_s() == pytest.approx(sum(timing.values()))


def test_phase_shares_sum_to_one():
    timeline = RunTimeline.from_events(_trace_run(WALLS).events)
    shares = timeline.phase_shares()
    assert sum(shares.values()) == pytest.approx(1.0)
    assert shares["solve"] > shares["power"]


def test_phase_shares_empty_without_phases():
    assert RunTimeline([]).phase_shares() == {}


def test_total_falls_back_to_run_span():
    tracer = SpanTracer()
    tracer.emit("run", 1.5)
    assert RunTimeline.from_events(tracer.events).total_wall_s() == 1.5


def test_jsonl_round_trip_summary_is_digest_stable(tmp_path):
    log = tmp_path / "run.jsonl"
    tracer = SpanTracer(sink=str(log))
    with tracer.span("run"):
        for _ in range(2):
            for phase in PHASE_ORDER:
                tracer.emit("window." + phase, 0.001)
    tracer.close()

    direct = RunTimeline.from_events(tracer.events)
    parsed = RunTimeline.from_jsonl(str(log))
    assert parsed.summary() == direct.summary()
    # Same structure with different wall clocks → same digest.
    slower = _trace_run(
        {phase: 0.5 for phase in PHASE_ORDER}, windows=2
    )
    assert RunTimeline.from_events(slower.events).digest() == parsed.digest()
    # Different structure (one more window) → different digest.
    other = _trace_run({phase: 0.001 for phase in PHASE_ORDER}, windows=3)
    assert RunTimeline.from_events(other.events).digest() != parsed.digest()


def test_summary_is_json_safe():
    summary = RunTimeline.from_events(_trace_run(WALLS).events).summary()
    reloaded = json.loads(json.dumps(summary))
    assert reloaded == summary
    assert reloaded["events"] == 1 + 3 * len(WALLS)


def test_from_timing_backfills_legacy_dict():
    timing = {
        "emulate": 1.0, "power": 0.5, "dispatch": 0.25,
        "solve": 2.0, "other": 0.25,
    }
    timeline = RunTimeline.from_timing(timing, windows=10)
    assert timeline.to_timing() == pytest.approx(timing)
    assert timeline.phase_shares()["solve"] == pytest.approx(0.5)


def test_render_shows_all_phases_and_total():
    text = RunTimeline.from_events(_trace_run(WALLS).events).render()
    for phase in PHASE_ORDER:
        assert phase in text
    assert "total" in text
    assert "other spans: run x1" in text
