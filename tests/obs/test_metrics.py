"""Metrics primitives: families, labels, cardinality, exporters."""

import json
import math

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    escape_help,
    escape_label_value,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


# -- counters / gauges ------------------------------------------------------


def test_counter_accumulates(registry):
    counter = registry.counter("events_total")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5


def test_counter_rejects_negative_increments(registry):
    counter = registry.counter("events_total")
    with pytest.raises(MetricError):
        counter.inc(-1)


def test_gauge_set_inc_dec(registry):
    gauge = registry.gauge("depth")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec(3)
    assert gauge.value == 4.0


def test_redeclaration_is_idempotent(registry):
    assert registry.counter("events_total") is registry.counter(
        "events_total"
    )


def test_kind_conflict_raises(registry):
    registry.counter("events_total")
    with pytest.raises(MetricError):
        registry.gauge("events_total")


def test_label_set_conflict_raises(registry):
    registry.counter("events_total", labels=("mode",))
    with pytest.raises(MetricError):
        registry.counter("events_total", labels=("kind",))


def test_invalid_metric_and_label_names(registry):
    with pytest.raises(MetricError):
        registry.counter("bad-name")
    with pytest.raises(MetricError):
        registry.counter("ok_name", labels=("bad-label",))


# -- labels and cardinality -------------------------------------------------


def test_labeled_series_are_independent(registry):
    family = registry.counter("events_total", labels=("mode",))
    family.labels(mode="a").inc()
    family.labels(mode="b").inc(2)
    assert family.labels(mode="a").value == 1.0
    assert family.labels(mode="b").value == 2.0
    assert family.value == 3.0  # family value sums its series


def test_labels_must_match_declaration(registry):
    family = registry.counter("events_total", labels=("mode",))
    with pytest.raises(MetricError):
        family.labels(kind="a")
    with pytest.raises(MetricError):
        family.labels()


def test_unlabeled_use_of_labeled_family_raises(registry):
    family = registry.counter("events_total", labels=("mode",))
    with pytest.raises(MetricError):
        family.inc()


def test_label_cardinality_cap():
    registry = MetricsRegistry(max_series_per_family=3)
    family = registry.counter("events_total", labels=("job",))
    for i in range(3):
        family.labels(job=f"job{i}").inc()
    with pytest.raises(MetricError, match="series cap"):
        family.labels(job="one-too-many")
    # Existing series keep working past the cap.
    family.labels(job="job0").inc()
    assert family.labels(job="job0").value == 2.0


# -- histograms -------------------------------------------------------------


def test_histogram_bucket_boundaries(registry):
    histogram = registry.histogram("latency", buckets=(0.1, 1.0, 10.0))
    # A value exactly on a bound lands in that bucket (le semantics).
    for value in (0.05, 0.1, 0.5, 1.0, 5.0, 100.0):
        histogram.observe(value)
    series = histogram.labels()
    assert series.counts == [2, 2, 1, 1]  # per-bucket, +Inf last
    assert series.cumulative() == [
        (0.1, 2), (1.0, 4), (10.0, 5), (math.inf, 6),
    ]
    assert series.count == 6
    assert series.sum == pytest.approx(106.65)


def test_histogram_default_buckets_are_increasing():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def test_histogram_rejects_bad_buckets(registry):
    with pytest.raises(MetricError):
        registry.histogram("latency", buckets=())
    with pytest.raises(MetricError):
        registry.histogram("latency2", buckets=(1.0, 1.0))
    with pytest.raises(MetricError):
        registry.histogram("latency3", buckets=(2.0, 1.0))


# -- Prometheus exposition --------------------------------------------------


def test_prometheus_escaping():
    assert escape_help("a\\b\nc") == "a\\\\b\\nc"
    assert escape_label_value('say "hi"\\\n') == 'say \\"hi\\"\\\\\\n'


def test_render_prometheus_escapes_label_values(registry):
    family = registry.counter(
        "events_total", help_text="counts\nthings", labels=("name",)
    )
    family.labels(name='we"ird\\label\n').inc()
    text = registry.render_prometheus()
    assert "# HELP events_total counts\\nthings" in text
    assert "# TYPE events_total counter" in text
    assert r'events_total{name="we\"ird\\label\n"} 1.0' in text


def test_render_prometheus_histogram_shape(registry):
    histogram = registry.histogram("latency", buckets=(0.5, 2.0))
    histogram.observe(0.1)
    histogram.observe(3.0)
    text = registry.render_prometheus()
    assert 'latency_bucket{le="0.5"} 1' in text
    assert 'latency_bucket{le="2"} 1' in text
    assert 'latency_bucket{le="+Inf"} 2' in text
    assert "latency_sum 3.1" in text
    assert "latency_count 2" in text


# -- JSON export and reset --------------------------------------------------


def test_to_json_round_trips_through_json(registry):
    family = registry.counter("events_total", labels=("mode",))
    family.labels(mode="a").inc()
    histogram = registry.histogram("latency", buckets=(1.0,))
    histogram.observe(0.5)
    snapshot = json.loads(registry.dump_json())
    assert snapshot["events_total"]["kind"] == "counter"
    assert snapshot["events_total"]["series"][0]["labels"] == {"mode": "a"}
    assert snapshot["latency"]["series"][0]["count"] == 1


def test_reset_zeroes_series_but_keeps_declarations(registry):
    family = registry.counter("events_total", labels=("mode",))
    family.labels(mode="a").inc()
    registry.reset()
    assert registry.get("events_total") is family
    assert family.value == 0.0
