"""Span tracer: nesting, activation, sinks, fork safety."""

import io
import json
import os

import pytest

from repro.obs import tracing
from repro.obs.tracing import SpanTracer, read_jsonl


def test_span_nesting_records_parent_ids():
    tracer = SpanTracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner"):
            pass
    names = [event["name"] for event in tracer.events]
    assert names == ["inner", "inner", "outer"]  # closed innermost-first
    outer = tracer.events[-1]
    assert outer["parent_id"] is None
    inner_parents = {
        event["parent_id"] for event in tracer.events[:-1]
    }
    assert inner_parents == {outer["span_id"]}
    ids = [event["span_id"] for event in tracer.events]
    assert len(set(ids)) == len(ids)


def test_span_attrs_and_set():
    tracer = SpanTracer()
    with tracer.span("work", backend="functional") as span:
        span.set(windows=7)
    event = tracer.events[0]
    assert event["attrs"] == {"backend": "functional", "windows": 7}
    assert event["wall_s"] >= 0.0
    assert event["cpu_s"] >= 0.0


def test_emit_records_premeasured_leaf():
    tracer = SpanTracer()
    with tracer.span("outer"):
        tracer.emit("window.solve", 0.25, cpu_s=0.2, windows=1)
    leaf = tracer.events[0]
    assert leaf["name"] == "window.solve"
    assert leaf["wall_s"] == 0.25
    assert leaf["cpu_s"] == 0.2
    assert leaf["parent_id"] == tracer.events[1]["span_id"]


def test_activate_restores_previous_tracer():
    assert tracing.current() is None
    first, second = SpanTracer(), SpanTracer()
    with tracing.activate(first):
        assert tracing.current() is first
        with tracing.activate(second):
            assert tracing.current() is second
        assert tracing.current() is first
    assert tracing.current() is None


def test_trace_to_streams_jsonl(tmp_path):
    log = tmp_path / "run.jsonl"
    with tracing.trace_to(str(log)) as tracer:
        assert tracing.current() is tracer
        with tracer.span("run"):
            pass
    events = read_jsonl(str(log))
    assert [event["name"] for event in events] == ["run"]
    assert tracing.current() is None


def test_path_sink_truncates_between_tracers(tmp_path):
    log = tmp_path / "run.jsonl"
    for _ in range(2):
        with SpanTracer(sink=str(log)) as tracer:
            with tracer.span("run"):
                pass
    assert len(read_jsonl(str(log))) == 1


def test_file_object_sink_is_not_closed():
    sink = io.StringIO()
    with SpanTracer(sink=sink) as tracer:
        with tracer.span("run"):
            pass
    assert not sink.closed
    assert json.loads(sink.getvalue())["name"] == "run"


def test_forked_tracer_is_noop():
    tracer = SpanTracer()
    tracer._pid = os.getpid() + 1  # simulate fork inheritance
    with tracer.span("child-side") as span:
        span.set(ignored=True)
    tracer.emit("child-leaf", 1.0)
    assert tracer.events == []


def test_read_jsonl_accepts_text_and_file_like(tmp_path):
    tracer = SpanTracer()
    with tracer.span("run"):
        pass
    text = json.dumps(tracer.events[0]) + "\n\n"
    assert read_jsonl(text)[0]["name"] == "run"
    assert read_jsonl(io.StringIO(text))[0]["name"] == "run"


def test_read_jsonl_rejects_malformed_lines():
    with pytest.raises(json.JSONDecodeError):
        read_jsonl('{"name": "run"}\nnot json\n')
