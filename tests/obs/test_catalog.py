"""The observability catalog: every name listed literally.

This module is the double-entry side of the ``registry-coverage`` lint
rule: each metric and span registered in ``repro.obs.catalog`` must be
referenced by a test, and the literal lists below are that reference.
Adding a name to the catalog without adding it here (and to
``docs/observability.md``) fails this test; removing one without
pruning here fails too.
"""

import pytest

from repro.obs import catalog
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

EXPECTED_METRICS = [
    "repro_emulation_calibration_hits_total",
    "repro_emulation_calibration_misses_total",
    "repro_farm_claim_latency_seconds",
    "repro_farm_claims_total",
    "repro_farm_emulated_jobs",
    "repro_farm_job_attempts",
    "repro_farm_jobs",
    "repro_farm_queue_depth",
    "repro_farm_replayed_jobs",
    "repro_farm_requeues_total",
    "repro_farm_retries_total",
    "repro_farm_store_hit_ratio",
    "repro_farm_worker_heartbeat_age_seconds",
    "repro_farm_workers",
    "repro_run_phase_seconds_total",
    "repro_run_windows_total",
    "repro_runner_batch_size",
    "repro_runner_batches_total",
    "repro_runner_scenarios_total",
    "repro_runner_worker_utilization_ratio",
    "repro_solver_factorizations_total",
    "repro_solver_reuses_total",
    "repro_solver_solves_total",
    "repro_store_hits_total",
    "repro_store_misses_total",
    "repro_store_puts_total",
]

EXPECTED_SPANS = [
    "emulation.calibrate",
    "farm.job",
    "run",
    "runner.batch",
    "runner.scenario",
    "window.dispatch",
    "window.emulate",
    "window.other",
    "window.power",
    "window.solve",
]


def test_metric_catalog_is_exactly_the_expected_list():
    assert catalog.metric_names() == EXPECTED_METRICS


def test_span_catalog_is_exactly_the_expected_list():
    assert catalog.span_names() == EXPECTED_SPANS


def test_every_name_has_a_description():
    for name in EXPECTED_METRICS + EXPECTED_SPANS:
        assert catalog.describe(name)


def test_helpers_reject_uncataloged_names():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        catalog.counter("repro_not_a_metric_total", registry=registry)
    with pytest.raises(ValueError):
        catalog.gauge("repro_not_a_gauge", registry=registry)
    with pytest.raises(ValueError):
        catalog.histogram("repro_not_a_histogram", registry=registry)


def test_helpers_declare_into_injected_registry():
    registry = MetricsRegistry()
    counter = catalog.counter(
        "repro_store_hits_total", registry=registry
    )
    gauge = catalog.gauge("repro_farm_queue_depth", registry=registry)
    histogram = catalog.histogram(
        "repro_farm_claim_latency_seconds", registry=registry
    )
    assert isinstance(counter, Counter)
    assert isinstance(gauge, Gauge)
    assert isinstance(histogram, Histogram)
    assert registry.get("repro_store_hits_total") is counter
    # HELP text comes from the catalog description.
    assert counter.help == catalog.describe("repro_store_hits_total")
