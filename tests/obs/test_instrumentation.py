"""Hot-path instrumentation: spans, timing sums, counter publishing."""

import pytest

from repro.emulation.windowed import clear_calibration_cache
from repro.obs import catalog as obs_catalog
from repro.obs import tracing as obs_tracing
from repro.obs.timeline import PHASE_ORDER, RunTimeline
from repro.obs.tracing import SpanTracer
from repro.scenario.presets import PRESETS
from repro.trace.store import TraceStore


def quick_framework(backend="event_driven"):
    scenario = PRESETS.get("matrix_quickstart")()
    scenario.workload.params["iterations"] = 2
    scenario.config.sampling_period_s = 2e-5
    scenario.config.emulation_backend = backend
    return scenario.build()


def counter_value(name, **labels):
    family = obs_catalog.counter(
        name, labels=tuple(sorted(labels)) if labels else ()
    )
    return family.labels(**labels).value if labels else family.value


# -- framework spans -------------------------------------------------------


def test_run_emits_run_and_window_spans():
    framework = quick_framework()
    tracer = SpanTracer()
    with obs_tracing.activate(tracer):
        report = framework.run(max_windows=8)
    timeline = RunTimeline.from_events(tracer.events)
    run_stats = timeline.by_name["run"]
    assert run_stats["count"] == 1
    for phase in PHASE_ORDER:
        assert timeline.by_name["window." + phase]["count"] == report.windows
    run_event = next(e for e in tracer.events if e["name"] == "run")
    assert run_event["attrs"]["windows"] == report.windows
    assert run_event["attrs"]["backend"] == "event_driven"
    # The span log reconstructs the report's timing breakdown.
    timing = report.extras["timing"]
    for phase, wall in timeline.to_timing().items():
        assert wall == pytest.approx(timing[phase], abs=1e-6)


def test_timing_phases_cover_window_wall_time():
    framework = quick_framework()
    report = framework.run(max_windows=8)
    timing = report.extras["timing"]
    assert set(timing) == set(PHASE_ORDER)
    assert all(wall >= 0.0 for wall in timing.values())
    assert timing["other"] > 0.0  # sensors/policy residual is never free


def test_untraced_run_records_no_spans():
    assert obs_tracing.current() is None
    framework = quick_framework()
    framework.run(max_windows=4)  # must not raise, must not trace


# -- metric publishing -----------------------------------------------------


def test_publish_metrics_counts_each_window_once():
    framework = quick_framework()
    windows_before = counter_value("repro_run_windows_total")
    report = framework.run(max_windows=6)
    assert (
        counter_value("repro_run_windows_total") - windows_before
        == report.windows
    )
    # report() again without new windows: nothing double counted.
    framework.report()
    assert (
        counter_value("repro_run_windows_total") - windows_before
        == report.windows
    )
    # More windows publish only the delta.
    framework.step_window()
    framework.report()
    assert (
        counter_value("repro_run_windows_total") - windows_before
        == report.windows + 1
    )


def test_publish_metrics_covers_phases_and_solver():
    framework = quick_framework()
    backend = framework.solver.backend.name or "custom"
    solve_before = counter_value(
        "repro_run_phase_seconds_total", phase="solve"
    )
    solves_before = counter_value(
        "repro_solver_solves_total", backend=backend
    )
    report = framework.run(max_windows=6)
    solve_delta = (
        counter_value("repro_run_phase_seconds_total", phase="solve")
        - solve_before
    )
    assert solve_delta == pytest.approx(
        report.extras["timing"]["solve"], abs=1e-9
    )
    assert (
        counter_value("repro_solver_solves_total", backend=backend)
        - solves_before
        == framework.solver.backend.stats()["solves"]
    )


# -- trace store counters --------------------------------------------------


class _StubArchive:
    scenario_digest = "a" * 64

    def validate(self):
        pass


def test_store_counts_hits_misses_and_puts():
    store = TraceStore()
    hits0 = counter_value("repro_store_hits_total")
    misses0 = counter_value("repro_store_misses_total")
    puts0 = counter_value("repro_store_puts_total")
    assert store.get("f" * 64) is None
    archive = _StubArchive()
    store.put(archive)
    assert store.get(archive.scenario_digest) is archive
    # A falsy digest is a caller error, not a store lookup: uncounted.
    assert store.get("") is None
    assert counter_value("repro_store_hits_total") - hits0 == 1
    assert counter_value("repro_store_misses_total") - misses0 == 1
    assert counter_value("repro_store_puts_total") - puts0 == 1


# -- calibration cache counters --------------------------------------------


def test_windowed_calibration_counts_miss_then_hits():
    clear_calibration_cache()
    misses0 = counter_value("repro_emulation_calibration_misses_total")
    hits0 = counter_value("repro_emulation_calibration_hits_total")
    quick_framework("windowed").run(max_windows=4)
    assert (
        counter_value("repro_emulation_calibration_misses_total") - misses0
        == 1
    )
    quick_framework("windowed").run(max_windows=4)
    assert (
        counter_value("repro_emulation_calibration_hits_total") - hits0 == 1
    )
    assert (
        counter_value("repro_emulation_calibration_misses_total") - misses0
        == 1
    )


def test_calibration_miss_emits_span_when_tracing():
    clear_calibration_cache()
    tracer = SpanTracer()
    with obs_tracing.activate(tracer):
        quick_framework("windowed").run(max_windows=2)
    calibrations = [
        e for e in tracer.events if e["name"] == "emulation.calibrate"
    ]
    assert len(calibrations) == 1
    assert calibrations[0]["attrs"]["digest"]
