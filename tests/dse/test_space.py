"""Design-point generation and the heterogeneous scenario recipe."""

import json

import pytest

from repro.dse.space import (
    DEFAULT_GRIDS,
    DesignPoint,
    default_points,
    generate_points,
    point_scenario,
    stress_profile,
)
from repro.scenario.spec import Scenario
from repro.trace.store import scenario_trace_digest
from repro.util.units import MHZ


def test_design_point_validation():
    with pytest.raises(ValueError):
        DesignPoint(big=0, little=2, tech_node="65nm", big_hz=100 * MHZ)
    with pytest.raises(ValueError):
        DesignPoint(big=1, little=-1, tech_node="65nm", big_hz=100 * MHZ)
    with pytest.raises(ValueError):
        DesignPoint(big=1, little=0, tech_node="65nm", big_hz=0.0)


def test_design_point_label_and_dict():
    point = DesignPoint(big=2, little=3, tech_node="90nm", big_hz=250 * MHZ,
                        spreader_resolution=(3, 3))
    assert point.label == "dse_2b3l_90nm_250MHz_g3x3"
    assert point.to_dict() == {
        "big": 2, "little": 3, "tech_node": "90nm", "big_hz": 250 * MHZ,
        "spreader_resolution": [3, 3],
    }


def test_default_space_exceeds_one_thousand():
    points = default_points()
    assert len(points) >= 1000
    assert len({p.label for p in points}) == len(points)


def test_generate_points_grid_axis_innermost():
    # Each coarse-grid leader must immediately precede its fine-grid
    # replayer — that adjacency is what makes in-batch replay dedup work.
    points = generate_points(
        big_counts=(1,), little_counts=(0, 1), tech_nodes=("65nm",),
        big_hz_steps=(100 * MHZ,), grids=DEFAULT_GRIDS,
    )
    assert [p.spreader_resolution for p in points] == [
        DEFAULT_GRIDS[0], DEFAULT_GRIDS[1]
    ] * 2


def test_stress_profile_covers_all_cores():
    profile = stress_profile(2, 3)
    for i in range(5):
        assert ("core", i) in profile.utilization
    assert profile.utilization[("core", 0)] > profile.utilization[("core", 4)]
    assert ("bus", None) in profile.utilization


def test_point_scenario_is_heterogeneous():
    point = DesignPoint(big=2, little=2, tech_node="65nm", big_hz=250 * MHZ)
    scenario = point_scenario(point)
    assert scenario.platform.is_heterogeneous
    counts = scenario.platform.core_class_counts()
    assert counts == {"ppc405": 2, "microblaze": 2}
    frequencies = scenario.platform.static_core_frequencies()
    assert frequencies[0] == 250 * MHZ
    assert frequencies[2] == 100 * MHZ
    assert scenario.config.tech_node == "65nm"


def test_hetero_scenario_round_trips_losslessly():
    # The acceptance criterion: a heterogeneous scenario (dict floorplan,
    # tech node, mixed CoreSpecs) survives JSON serialization with its
    # trace digest — the TraceStore key — intact.
    point = DesignPoint(big=2, little=1, tech_node="90nm", big_hz=200 * MHZ)
    scenario = point_scenario(point)
    payload = json.dumps(scenario.to_dict())
    restored = Scenario.from_dict(json.loads(payload))
    assert restored.to_dict() == scenario.to_dict()
    assert scenario_trace_digest(restored) == scenario_trace_digest(scenario)


def test_grid_twins_share_a_trace_digest():
    # Under the open-loop policy the spreader grid is a thermal-side
    # knob: the (2,2) and (3,3) twins of one design must hash to the
    # same digest so the fine twin replays the coarse recording.
    base = dict(big=1, little=2, tech_node="130nm", big_hz=150 * MHZ)
    coarse = point_scenario(DesignPoint(spreader_resolution=(2, 2), **base))
    fine = point_scenario(DesignPoint(spreader_resolution=(3, 3), **base))
    assert scenario_trace_digest(coarse) == scenario_trace_digest(fine)


def test_distinct_designs_get_distinct_digests():
    mk = lambda **kw: scenario_trace_digest(point_scenario(DesignPoint(**kw)))
    base = dict(big=1, little=2, tech_node="130nm", big_hz=150 * MHZ)
    digest = mk(**base)
    assert mk(**{**base, "tech_node": "65nm"}) != digest
    assert mk(**{**base, "big_hz": 200 * MHZ}) != digest
    assert mk(**{**base, "little": 3}) != digest


def test_point_scenario_runs():
    point = DesignPoint(big=1, little=1, tech_node="65nm", big_hz=100 * MHZ)
    scenario = point_scenario(point, max_windows=3)
    framework, report = scenario.run()
    assert report.windows == 3
    assert not report.workload_done  # steady state, never finishes
    assert report.instructions > 0
