"""The DSE evaluation loop and its CLI, on a small space."""

import json

import pytest

from repro.dse.cli import main as dse_main
from repro.dse.driver import run_dse
from repro.dse.pareto import OBJECTIVES, dominates
from repro.dse.space import generate_points
from repro.util.units import MHZ

SMALL_SPACE = dict(
    big_counts=(1, 2),
    little_counts=(0, 2),
    tech_nodes=("130nm", "65nm"),
    big_hz_steps=(100 * MHZ, 400 * MHZ),
    grids=((2, 2), (3, 3)),
)


@pytest.fixture(scope="module")
def report():
    return run_dse(generate_points(**SMALL_SPACE), refine_top=1)


def test_run_dse_evaluates_every_point(report):
    assert report["failed"] == 0, report["errors"]
    assert report["evaluated"] == 32


def test_run_dse_replays_grid_twins(report):
    # The (3,3) twin of every design replays the (2,2) recording.
    assert report["replayed"] == 16
    replayed = [r for r in report["front"] if r["replayed"]]
    for row in replayed:
        assert row["spreader_resolution"] == [3, 3]


def test_run_dse_front_partition(report):
    assert report["front"]
    assert report["front_size"] + report["dominated"] == report["evaluated"]
    for a in report["front"]:
        for b in report["front"]:
            if a is not b:
                assert not dominates(a, b, OBJECTIVES)


def test_run_dse_metric_rows_are_complete(report):
    for row in report["front"]:
        for key in ("design", "peak_temperature_k", "avg_power_w",
                    "throughput_ips", "windows", "replayed", "big",
                    "little", "tech_node", "big_hz"):
            assert key in row
        assert row["peak_temperature_k"] > 273.0
        assert row["avg_power_w"] > 0.0
        assert row["throughput_ips"] > 0.0


def test_run_dse_voltage_scaling_shows_in_power(report):
    # Same platform and clock on two nodes: the 65 nm design must burn
    # less power than the 130 nm one (V(f)^2 scaling), and fronts built
    # from these rows must be JSON-serializable as-is.
    rows = {r["design"]: r for r in report["front"]}
    json.dumps(report)  # plain data end to end
    by_node = {}
    for row in rows.values():
        key = (row["big"], row["little"], row["big_hz"])
        by_node.setdefault(key, {})[row["tech_node"]] = row["avg_power_w"]
    comparable = [v for v in by_node.values() if len(v) == 2]
    for pair in comparable:
        assert pair["65nm"] < pair["130nm"]


def test_run_dse_policy_refinement(report):
    assert len(report["policy_refinement"]) == 1
    (design, comparison), = report["policy_refinement"].items()
    policies = {o["policy"] for o in comparison["outcomes"]}
    assert policies == {"none", "dual_threshold"}


def test_cli_small_sweep(capsys):
    code = dse_main([
        "--nodes", "65nm", "--big-hz", "100", "300",
        "--refine-top", "0", "--top", "3",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "evaluated 96 designs" in out
    assert "48 replayed" in out


def test_cli_writes_json_report(tmp_path, capsys):
    out_path = tmp_path / "dse.json"
    code = dse_main([
        "--nodes", "65nm", "--big-hz", "200", "--refine-top", "0",
        "--out", str(out_path),
    ])
    capsys.readouterr()
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["evaluated"] == 48
    assert payload["front"]
    assert payload["front_size"] + payload["dominated"] == payload["evaluated"]
