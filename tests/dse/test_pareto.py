"""Dominance and Pareto-front pruning — pure-function unit tests."""

import pytest

from repro.dse.pareto import OBJECTIVES, dominates, pareto_front

# A two-objective space: minimize cost, maximize value.
OBJS = (("cost", "min"), ("value", "max"))


def row(cost, value, name=""):
    return {"cost": cost, "value": value, "name": name}


def test_dominates_strictly_better_on_both():
    assert dominates(row(1.0, 10.0), row(2.0, 5.0), OBJS)


def test_dominates_requires_at_least_one_strict_improvement():
    a, b = row(1.0, 10.0), row(1.0, 10.0)
    assert not dominates(a, b, OBJS)
    assert not dominates(b, a, OBJS)


def test_dominates_equal_on_one_better_on_other():
    assert dominates(row(1.0, 10.0), row(1.0, 5.0), OBJS)
    assert dominates(row(1.0, 10.0), row(2.0, 10.0), OBJS)


def test_dominates_is_antisymmetric_on_tradeoffs():
    cheap = row(1.0, 5.0)
    valuable = row(3.0, 10.0)
    assert not dominates(cheap, valuable, OBJS)
    assert not dominates(valuable, cheap, OBJS)


def test_dominates_respects_max_direction():
    # On a pure-max objective the larger value dominates.
    objs = (("value", "max"),)
    assert dominates(row(0, 2.0), row(0, 1.0), objs)
    assert not dominates(row(0, 1.0), row(0, 2.0), objs)


def test_pareto_front_prunes_dominated_points():
    rows = [
        row(1.0, 10.0, "best"),
        row(2.0, 8.0, "dominated_by_best"),
        row(0.5, 3.0, "cheap_tradeoff"),
        row(3.0, 12.0, "expensive_tradeoff"),
        row(4.0, 1.0, "dominated_by_everything"),
    ]
    front, dominated = pareto_front(rows, OBJS)
    assert {r["name"] for r in front} == {
        "best", "cheap_tradeoff", "expensive_tradeoff"
    }
    assert {r["name"] for r in dominated} == {
        "dominated_by_best", "dominated_by_everything"
    }


def test_pareto_front_partitions_the_input():
    rows = [row(float(i % 7), float(i % 5), str(i)) for i in range(30)]
    front, dominated = pareto_front(rows, OBJS)
    assert len(front) + len(dominated) == len(rows)
    # Nothing on the front dominates anything else on the front.
    for a in front:
        for b in front:
            if a is not b:
                assert not dominates(a, b, OBJS)
    # Everything pruned is dominated by at least one front member.
    for d in dominated:
        assert any(dominates(f, d, OBJS) for f in front)


def test_pareto_front_preserves_input_order():
    rows = [row(3.0, 1.0, "c"), row(1.0, 5.0, "a"), row(2.0, 3.0, "b")]
    front, _ = pareto_front(rows, OBJS)
    names = [r["name"] for r in front]
    assert names == sorted(names, key=lambda n: [r["name"] for r in rows].index(n))


def test_pareto_front_all_tied_rows_survive():
    rows = [row(1.0, 1.0, str(i)) for i in range(4)]
    front, dominated = pareto_front(rows, OBJS)
    assert len(front) == 4 and not dominated


def test_pareto_front_empty_input():
    front, dominated = pareto_front([], OBJS)
    assert front == [] and dominated == []


def test_default_objectives_shape():
    names = [name for name, _ in OBJECTIVES]
    directions = {direction for _, direction in OBJECTIVES}
    assert names == ["peak_temperature_k", "avg_power_w", "throughput_ips"]
    assert directions <= {"min", "max"}


def test_dominates_rejects_unknown_direction():
    with pytest.raises(ValueError):
        dominates(row(1, 1), row(2, 2), (("cost", "sideways"),))
