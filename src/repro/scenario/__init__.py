"""Declarative, serializable scenarios and batch experiment execution.

The imperative layer (``build_platform`` + floorplan + policy +
``EmulationFramework``) stays the engine room; this package makes whole
experiments *data*:

* :class:`Scenario` — one co-emulation run as a JSON-round-trippable
  spec (platform, workload, floorplan name, policy spec, framework
  config, run bounds).
* :mod:`~repro.scenario.registry` — string-keyed registries so specs
  reference floorplans, policies and workload generators by name.
* :func:`sweep` / :class:`ExperimentSuite` — parameter-grid expansion
  into scenario variants.
* :class:`Runner` — batch execution, optionally across worker
  processes, returning uniform :class:`ScenarioResult` objects.
* :data:`PRESETS` — named ready-to-run scenarios (``python -m repro``).
"""

from repro.scenario.registry import (
    FLOORPLANS,
    POLICIES,
    SOLVER_BACKENDS,
    WORKLOADS,
    Registry,
)
from repro.scenario.spec import PolicySpec, Scenario, WorkloadSpec
from repro.scenario.sweep import ExperimentSuite, Variant, sweep
from repro.scenario.runner import Runner, ScenarioResult
from repro.scenario.presets import PRESETS

__all__ = [
    "ExperimentSuite",
    "FLOORPLANS",
    "POLICIES",
    "PRESETS",
    "PolicySpec",
    "Registry",
    "Runner",
    "SOLVER_BACKENDS",
    "Scenario",
    "ScenarioResult",
    "Variant",
    "WORKLOADS",
    "WorkloadSpec",
    "sweep",
]
