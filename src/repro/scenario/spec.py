"""The declarative description of one co-emulation run.

A :class:`Scenario` captures everything `EmulationFramework` needs —
platform architecture, workload, floorplan, thermal policy, framework
knobs and run bounds — as plain data.  ``to_dict()``/``from_dict()``
round-trip losslessly through JSON, so scenarios can be named, saved,
swept (:func:`repro.scenario.sweep.sweep`) and executed in bulk
(:class:`repro.scenario.runner.Runner`) or from the command line
(``python -m repro``).  Both backend registries are sweepable knobs:
``sweep(base, {"config.solver_backend": [...]})`` explores thermal
solvers and ``sweep(base, {"config.emulation_backend": [...]})``
races the exact engines against the fast windowed model.
"""

import copy
from dataclasses import dataclass, field

from repro.core.framework import EmulationFramework, FrameworkConfig
from repro.mpsoc.platform import MPSoCConfig, build_platform
from repro.scenario.registry import FLOORPLANS, POLICIES, WORKLOADS


@dataclass
class WorkloadSpec:
    """A workload generator by registry name plus its parameters."""

    name: str
    params: dict = field(default_factory=dict)

    def to_dict(self):
        return {"name": self.name, "params": copy.deepcopy(self.params)}

    @classmethod
    def from_dict(cls, data):
        if isinstance(data, str):
            return cls(name=data)
        return cls(name=data["name"], params=copy.deepcopy(data.get("params", {})))


@dataclass
class PolicySpec:
    """A thermal-management policy by registry name plus its parameters."""

    name: str = "none"
    params: dict = field(default_factory=dict)

    def to_dict(self):
        return {"name": self.name, "params": copy.deepcopy(self.params)}

    @classmethod
    def from_dict(cls, data):
        if data is None:
            return cls()
        if isinstance(data, str):
            return cls(name=data)
        return cls(name=data["name"], params=copy.deepcopy(data.get("params", {})))


@dataclass
class Scenario:
    """One fully described co-emulation run.

    ``platform`` may be ``None`` for platform-less (profiled) runs; the
    workload spec must then produce the workload itself.  ``floorplan``
    (a registered name, or a ``{"name": ..., "params": {...}}`` dict for
    parameterized factories like ``"hetero"``), the policy name and the
    workload name resolve through the registries
    in :mod:`repro.scenario.registry`; the thermal solver backend rides
    inside ``config.solver_backend`` (a
    :data:`~repro.scenario.registry.SOLVER_BACKENDS` name or
    ``{"name": ..., "params": ...}`` dict) and round-trips through JSON
    like every other knob — so a sweep can explore backends with
    ``{"config.solver_backend": ["sparse_be", "cached_lu"]}``.
    """

    name: str
    workload: WorkloadSpec
    platform: MPSoCConfig | None = None
    floorplan: str | dict = "4xarm11"
    policy: PolicySpec = field(default_factory=PolicySpec)
    config: FrameworkConfig = field(default_factory=FrameworkConfig)
    max_emulated_seconds: float | None = None
    max_windows: int | None = None
    max_stall_windows: int | None = None  # bound consecutive zero-progress
    description: str = ""

    def __post_init__(self):
        if isinstance(self.workload, (str, dict)):
            self.workload = WorkloadSpec.from_dict(self.workload)
        if isinstance(self.policy, (str, dict)) or self.policy is None:
            self.policy = PolicySpec.from_dict(self.policy)
        if isinstance(self.platform, dict):
            self.platform = MPSoCConfig.from_dict(self.platform)
        if isinstance(self.config, dict):
            self.config = FrameworkConfig.from_dict(self.config)
        if isinstance(self.floorplan, dict):
            if "name" not in self.floorplan:
                raise ValueError("a floorplan dict needs a 'name' entry")
            unknown = set(self.floorplan) - {"name", "params"}
            if unknown:
                raise ValueError(
                    f"unknown floorplan keys: {', '.join(sorted(unknown))}"
                )

    # -- serialization -----------------------------------------------------------
    def to_dict(self):
        """Lossless JSON-compatible dict of the whole scenario."""
        return {
            "name": self.name,
            "description": self.description,
            "platform": self.platform.to_dict() if self.platform else None,
            "floorplan": copy.deepcopy(self.floorplan),
            "workload": self.workload.to_dict(),
            "policy": self.policy.to_dict(),
            "config": self.config.to_dict(),
            "max_emulated_seconds": self.max_emulated_seconds,
            "max_windows": self.max_windows,
            "max_stall_windows": self.max_stall_windows,
        }

    @classmethod
    def from_dict(cls, data):
        """Build a scenario from a (possibly abbreviated) dict: the
        workload/policy may be bare registry-name strings, and missing
        sections keep their defaults."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario keys: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
        for required in ("name", "workload"):
            if required not in data:
                raise ValueError(f"a scenario needs a {required!r} entry")
        return cls(**copy.deepcopy(dict(data)))

    # -- construction ------------------------------------------------------------
    def build(self, library=None):
        """Wire the scenario into a ready-to-run :class:`EmulationFramework`."""
        platform = build_platform(self.platform) if self.platform is not None else None
        if isinstance(self.floorplan, dict):
            floorplan = FLOORPLANS.get(self.floorplan["name"])(
                **self.floorplan.get("params", {})
            )
        else:
            floorplan = FLOORPLANS.get(self.floorplan)()
        policy = POLICIES.get(self.policy.name)(**self.policy.params)
        generator = WORKLOADS.get(self.workload.name)
        workload = generator(platform, floorplan, **self.workload.params)
        return EmulationFramework(
            platform,
            floorplan,
            workload=workload,
            policy=policy,
            config=self.config,
            library=library,
        )

    def run(self, library=None):
        """Build and run to the scenario's bounds; returns
        ``(framework, RunReport)``."""
        framework = self.build(library=library)
        report = framework.run(
            max_emulated_seconds=self.max_emulated_seconds,
            max_windows=self.max_windows,
            max_stall_windows=self.max_stall_windows,
        )
        return framework, report
