"""String-keyed registries behind the declarative scenario layer.

A :class:`Scenario` references floorplans, thermal policies and workload
generators by name, the way FireSim's config files name workloads and
platform descriptions.  Three registries resolve those names:

* :data:`FLOORPLANS` — name -> zero-argument floorplan factory.
* :data:`POLICIES` — name -> policy factory taking the spec's params.
* :data:`WORKLOADS` — name -> workload generator; called as
  ``generator(platform, floorplan, **params)`` and returns either a
  workload object for the framework or ``None`` (meaning "programs are
  loaded; let the framework run the platform cycle-accurately").

:data:`SOLVER_BACKENDS` (re-exported from
:mod:`repro.thermal.backends`) resolves the ``solver_backend`` field of
:class:`repro.core.framework.FrameworkConfig` the same way, and
:data:`EMULATION_BACKENDS` (re-exported from
:mod:`repro.emulation.backends`) resolves its ``emulation_backend``
field — the HW/SW-side counterpart to the thermal solver choice.

All registries are open: experiments register their own entries with
``REGISTRY.register(name, obj)`` or as a decorator.  Custom entries are
visible to a forked :class:`repro.scenario.runner.Runner` worker; under
a spawn start method only the built-ins below survive, so long-lived
custom generators belong in an importable module.
"""

from repro.core.workload_model import ActivityProfile, ProfiledWorkload
from repro.emulation.backends import EMULATION_BACKENDS
from repro.policy import BUILTIN_POLICIES
from repro.thermal.backends import SOLVER_BACKENDS
from repro.thermal.floorplan import BUILTIN_FLOORPLANS
from repro.util.registry import Registry
from repro.workloads import (
    compute_burst_program,
    dithering_programs,
    load_images,
    matrix_programs,
    shared_traffic_program,
)

__all__ = [
    "EMULATION_BACKENDS",
    "FLOORPLANS",
    "POLICIES",
    "Registry",
    "SOLVER_BACKENDS",
    "WORKLOADS",
]


FLOORPLANS = Registry("floorplan")
POLICIES = Registry("policy")
WORKLOADS = Registry("workload generator")

for _name, _factory in BUILTIN_FLOORPLANS.items():
    FLOORPLANS.register(_name, _factory)

for _name, _factory in BUILTIN_POLICIES.items():
    POLICIES.register(_name, _factory)


def _require_platform(name, platform):
    if platform is None:
        raise ValueError(f"workload {name!r} needs a platform in the scenario")
    return platform


@WORKLOADS.register("matrix")
def _matrix_workload(platform, floorplan, n=8, iterations=1):
    """The MATRIX kernel, run cycle-accurately on the emulated cores."""
    platform = _require_platform("matrix", platform)
    platform.load_program_all(matrix_programs(len(platform.cores), n, iterations))
    return None


@WORKLOADS.register("dithering")
def _dithering_workload(platform, floorplan, width=32, height=32, num_images=2):
    """The DITHERING kernel over ``num_images`` shared grey images."""
    platform = _require_platform("dithering", platform)
    load_images(platform, width, height, num_images=num_images)
    platform.load_program_all(
        dithering_programs(len(platform.cores), width, height, num_images)
    )
    return None


@WORKLOADS.register("shared_traffic")
def _shared_traffic_workload(platform, floorplan, **params):
    """Synthetic interconnect-traffic generator, one instance per core."""
    platform = _require_platform("shared_traffic", platform)
    platform.load_program_all(
        [
            shared_traffic_program(core_id, **params)
            for core_id in range(len(platform.cores))
        ]
    )
    return None


@WORKLOADS.register("compute_burst")
def _compute_burst_workload(platform, floorplan, **params):
    """Synthetic compute-burst generator on every core."""
    platform = _require_platform("compute_burst", platform)
    program = compute_burst_program(**params)
    platform.load_program_all([program] * len(platform.cores))
    return None


@WORKLOADS.register("profiled")
def _profiled_workload(platform, floorplan, profile, total_iterations):
    """Replay a serialized :class:`ActivityProfile` (no platform needed)."""
    if isinstance(profile, dict):
        profile = ActivityProfile.from_dict(profile)
    return ProfiledWorkload(profile, total_iterations=total_iterations)
