"""Named preset scenarios runnable from ``python -m repro``.

Each preset is a zero-argument factory returning a :class:`Scenario`;
``PRESETS.get(name)()`` (or the CLI) materializes it.  Presets are sized
to finish in seconds on a laptop — they are demonstrations and smoke
tests, not the paper's full 100 K-iteration stress runs.
"""

from repro.core.framework import FrameworkConfig
from repro.core.workload_model import ActivityProfile
from repro.mpsoc.cache import CacheConfig
from repro.mpsoc.noc import generate_custom
from repro.mpsoc.platform import CoreConfig, MPSoCConfig
from repro.scenario.registry import Registry
from repro.scenario.spec import PolicySpec, Scenario, WorkloadSpec
from repro.util.units import KB, MHZ

PRESETS = Registry("preset scenario")


def _four_core_platform(name, spec="microblaze", frequency_hz=None,
                        interconnect="bus", noc=None):
    return MPSoCConfig(
        name=name,
        cores=[
            CoreConfig(f"cpu{i}", spec=spec, frequency_hz=frequency_hz)
            for i in range(4)
        ],
        icache=CacheConfig(name="i", size=4 * KB, line_size=16),
        dcache=CacheConfig(name="d", size=4 * KB, line_size=16, assoc=2),
        shared_mem_size=64 * KB,
        interconnect=interconnect,
        noc=noc,
    )


def _stress_profile():
    """A MATRIX-TM-class synthetic stress signature (near-saturated cores)."""
    utilization = {}
    for i in range(4):
        utilization[("core", i)] = 0.97
        utilization[("icache", i)] = 0.5
        utilization[("dcache", i)] = 0.35
        utilization[("private_mem", i)] = 0.2
    utilization[("shared_mem", None)] = 0.25
    return ActivityProfile(
        name="stress",
        cycles_per_iteration=1000.0,
        utilization=utilization,
        instructions_per_iteration=850.0,
    )


@PRESETS.register("matrix_quickstart")
def matrix_quickstart():
    """Four Microblaze-class cores running MATRIX cycle-accurately."""
    return Scenario(
        name="matrix_quickstart",
        description="4-core MATRIX kernel on the custom bus, no management",
        platform=_four_core_platform("quickstart"),
        floorplan="4xarm7",
        workload=WorkloadSpec("matrix", {"n": 8, "iterations": 1}),
    )


@PRESETS.register("dithering_noc")
def dithering_noc():
    """DITHERING on the paper's 2-switch application-specific NoC."""
    return Scenario(
        name="dithering_noc",
        description="4-core Floyd-Steinberg dithering over a 2-switch NoC",
        platform=_four_core_platform(
            "dither-noc",
            interconnect="noc",
            noc=generate_custom("noc2", 2, ring=False),
        ),
        floorplan="4xarm7",
        workload=WorkloadSpec(
            "dithering", {"width": 16, "height": 16, "num_images": 2}
        ),
    )


@PRESETS.register("matrix_tm_dfs")
def matrix_tm_dfs():
    """A scaled-down Figure 6: stress profile under dual-threshold DFS."""
    return Scenario(
        name="matrix_tm_dfs",
        description="MATRIX-TM-class stress under the paper's 350/340 K DFS",
        workload=WorkloadSpec(
            "profiled",
            {"profile": _stress_profile().to_dict(), "total_iterations": 2_000_000},
        ),
        floorplan="4xarm11",
        policy=PolicySpec(
            "dual_threshold", {"high_hz": 500 * MHZ, "low_hz": 100 * MHZ}
        ),
        config=FrameworkConfig(virtual_hz=500 * MHZ, spreader_resolution=(2, 2)),
        max_emulated_seconds=60.0,
    )


@PRESETS.register("matrix_tm_unmanaged")
def matrix_tm_unmanaged():
    """The unmanaged baseline of the same scaled-down Figure 6 run."""
    scenario = matrix_tm_dfs()
    scenario.name = "matrix_tm_unmanaged"
    scenario.description = "MATRIX-TM-class stress with no thermal management"
    scenario.policy = PolicySpec("none")
    return scenario


@PRESETS.register("hetero_biglittle")
def hetero_biglittle():
    """A heterogeneous big.LITTLE-style platform on the 65 nm node: two
    PowerPC405-class big cores at 400 MHz beside two Microblaze-class
    littles at 100 MHz, on the parameterized ``hetero`` floorplan."""
    from repro.dse.space import point_scenario
    from repro.dse.space import DesignPoint

    scenario = point_scenario(
        DesignPoint(big=2, little=2, tech_node="65nm", big_hz=400 * MHZ),
        max_windows=40,
    )
    scenario.name = "hetero_biglittle"
    scenario.description = (
        "2 big ppc405 @ 400 MHz + 2 little microblaze @ 100 MHz, 65 nm "
        "V(f) power scaling, parameterized hetero floorplan"
    )
    return scenario


@PRESETS.register("matrix_tm_cached")
def matrix_tm_cached():
    """The DFS run on the cached-LU solver backend (factorize once,
    backsolve every window, refactorize on 1 K silicon drift) — same
    physics within the backend's bounded linearization error, several
    times the thermal-solve throughput."""
    scenario = matrix_tm_dfs()
    scenario.name = "matrix_tm_cached"
    scenario.description = (
        "MATRIX-TM-class stress under DFS, cached-LU thermal backend"
    )
    scenario.config.solver_backend = "cached_lu"
    return scenario
