"""Batch execution of scenarios, optionally across worker processes.

:class:`Runner` executes a list of scenarios (or raw scenario dicts) and
returns uniform :class:`ScenarioResult` objects in input order.  With
``workers > 1`` the batch fans out over a ``multiprocessing`` pool —
scenarios travel as their JSON-compatible dicts and come back as
serialized reports, so the only requirement on a scenario is the same
one the CLI imposes: it must be expressible as plain data.

:meth:`Runner.run_batched` is the orthogonal fast path: instead of
fanning scenarios out, it co-steps scenarios that share one network
structure through a single multi-RHS thermal solve per window (one
factorization for the whole group — see
:class:`repro.thermal.backends.BatchedLU`).
"""

import multiprocessing
import time
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.framework import RunReport
from repro.scenario.spec import Scenario
from repro.thermal.backends import BatchedLU


@dataclass
class ScenarioResult:
    """Outcome of one scenario in a batch."""

    name: str
    index: int
    report: RunReport | None = None
    wall_seconds: float = 0.0
    error: str | None = None
    trace: object = None  # ThermalTrace when the runner captures traces

    @property
    def ok(self):
        return self.error is None

    @property
    def policy_stats(self):
        """Per-policy statistics the run's policy exported via
        ``report()`` (``RunReport.extras["policy"]``), or ``{}``."""
        if self.report is None:
            return {}
        return dict(self.report.extras.get("policy", {}))

    def to_dict(self):
        out = {
            "name": self.name,
            "index": self.index,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
            "report": self.report.to_dict() if self.report else None,
        }
        if self.trace is not None:
            out["trace"] = self.trace.digest()
        return out

    def summary(self):
        if not self.ok:
            return f"{self.name}: FAILED — {self.error}"
        return f"{self.name}: {self.report.summary()}\n  wall {self.wall_seconds:.2f} s"


def _execute(payload):
    """Pool worker: run one scenario dict, return a picklable outcome."""
    index, scenario_dict, capture_trace = payload
    start = time.perf_counter()
    name = scenario_dict.get("name", f"scenario{index}")
    try:
        scenario = Scenario.from_dict(scenario_dict)
        framework, report = scenario.run()
        wall = time.perf_counter() - start
        trace = framework.trace if capture_trace else None
        return index, scenario.name, report.to_dict(), wall, None, trace
    except Exception as exc:  # the batch survives one bad scenario
        wall = time.perf_counter() - start
        return index, name, None, wall, f"{type(exc).__name__}: {exc}", None


class Runner:
    """Executes scenario batches with ``workers`` parallel processes.

    ``workers <= 1`` runs in-process (and then also sees workloads and
    policies registered after import, regardless of start method).
    ``capture_trace=True`` ships each run's :class:`ThermalTrace` back in
    the result — useful for plotting, costly for very long runs.
    """

    def __init__(self, workers=1, capture_trace=False, start_method=None):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.capture_trace = capture_trace
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method

    def run(self, scenarios):
        """Run every scenario; returns ``list[ScenarioResult]`` in input
        order.  Items may be :class:`Scenario` objects or raw dicts."""
        payloads = []
        for index, scenario in enumerate(scenarios):
            if isinstance(scenario, Scenario):
                scenario_dict = scenario.to_dict()
            else:
                scenario_dict = dict(scenario)
            payloads.append((index, scenario_dict, self.capture_trace))
        if not payloads:
            return []
        if self.workers <= 1 or len(payloads) == 1:
            raw = [_execute(p) for p in payloads]
        else:
            ctx = multiprocessing.get_context(self.start_method)
            with ctx.Pool(processes=min(self.workers, len(payloads))) as pool:
                raw = pool.map(_execute, payloads)
        results = []
        for index, name, report_dict, wall, error, trace in raw:
            results.append(
                ScenarioResult(
                    name=name,
                    index=index,
                    report=RunReport.from_dict(report_dict) if report_dict else None,
                    wall_seconds=wall,
                    error=error,
                    trace=trace,
                )
            )
        return results

    # -- batched thermal solving ----------------------------------------------
    def run_batched(self, scenarios, library=None):
        """Run the batch in-process, co-stepping structure-sharing groups.

        Scenarios whose floorplan + grid configuration + sampling period
        coincide (and therefore share one cached network structure) are
        advanced window by window *together*: every window each member
        contributes one right-hand-side column and one shared
        :class:`~repro.thermal.backends.BatchedLU` performs a single
        multi-RHS backward-Euler solve — one factorization for the whole
        group instead of one per scenario per window.  The members'
        configured solver backends are bypassed for the shared
        integration, which carries CachedLU's bounded linearization
        error (exact for linear stacks).

        Results return in input order.  ``wall_seconds`` of each member
        is its *group's* wall time (the solves are genuinely shared); a
        failure while co-stepping marks every unfinished member of that
        group as failed.
        """
        scenarios = list(scenarios)
        results = [None] * len(scenarios)
        groups = defaultdict(list)
        for index, item in enumerate(scenarios):
            if isinstance(item, Scenario):
                name = item.name
            else:
                item = dict(item)
                name = item.get("name", f"scenario{index}")
            try:  # the batch survives one bad scenario
                scenario = (
                    item if isinstance(item, Scenario) else Scenario.from_dict(item)
                )
                framework = scenario.build(library=library)
            except Exception as exc:
                results[index] = ScenarioResult(
                    name=name,
                    index=index,
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            key = (id(framework.grid), framework.config.sampling_period_s)
            groups[key].append((index, scenario, framework))
        for group in groups.values():
            start = time.perf_counter()
            completed = set()
            try:
                self._co_step(group, completed)
                error = None
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
            wall = time.perf_counter() - start
            for position, (index, scenario, framework) in enumerate(group):
                # A member that had already reached its bounds *before*
                # the failing window completed normally and keeps its
                # report; everyone else (including a member whose
                # workload happened to finish during the window that
                # raised) is marked failed, matching serial semantics.
                member_error = None if position in completed else error
                results[index] = ScenarioResult(
                    name=scenario.name,
                    index=index,
                    report=None if member_error else framework.report(),
                    wall_seconds=wall,
                    error=member_error,
                    trace=(
                        framework.trace
                        if self.capture_trace and not member_error
                        else None
                    ),
                )
        return results

    @staticmethod
    def _co_step(group, completed):
        """Advance one structure-sharing group to its bounds, window by
        window, through a single shared multi-RHS factorization.

        ``completed`` (a set of group positions) is filled in-place as
        members reach their bounds at a window boundary, so the caller
        knows who finished cleanly even if a later window raises.
        """
        frameworks = [framework for _, _, framework in group]
        bounds = [
            (
                scenario.max_emulated_seconds,
                scenario.max_windows,
                scenario.max_stall_windows,
            )
            for _, scenario, _ in group
        ]
        backend = BatchedLU().bind(frameworks[0].network)
        dt = frameworks[0].config.sampling_period_s
        active = list(range(len(frameworks)))
        while True:
            still = []
            for b in active:
                if frameworks[b].bounds_reached(*bounds[b]):
                    completed.add(b)
                else:
                    still.append(b)
            active = still
            if not active:
                return backend
            pending = []
            for b in active:
                powers, frequency = frameworks[b]._window_power()
                pending.append((b, powers, frequency))
            temps = np.stack(
                [frameworks[b].solver.temperatures for b, _, _ in pending], axis=1
            )
            rhs = np.stack(
                [frameworks[b].network.rhs() for b, _, _ in pending], axis=1
            )
            advanced = backend.step_batch(temps, dt, rhs)
            for col, (b, powers, frequency) in enumerate(pending):
                solver = frameworks[b].solver
                solver.temperatures = advanced[:, col]
                solver.time += dt
                frameworks[b]._window_commit(powers, frequency)
