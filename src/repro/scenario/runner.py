"""Batch execution of scenarios, optionally across worker processes.

:class:`Runner` executes a list of scenarios (or raw scenario dicts) and
returns uniform :class:`ScenarioResult` objects in input order.  With
``workers > 1`` the batch fans out over a ``multiprocessing`` pool —
scenarios travel as their JSON-compatible dicts and come back as
serialized reports, so the only requirement on a scenario is the same
one the CLI imposes: it must be expressible as plain data.

:meth:`Runner.run_batched` is the orthogonal fast path: instead of
fanning scenarios out, it co-steps scenarios that share one network
structure through a single multi-RHS thermal solve per window (one
factorization for the whole group — see
:class:`repro.thermal.backends.BatchedLU`).

``trace_store`` adds the record-once/replay-many decoupling from
:mod:`repro.trace`: every emulated scenario is captured into the store
under its canonical scenario digest
(:func:`repro.trace.store.scenario_trace_digest`), and any scenario
whose digest is already present — a previous run, or another member of
the *same* batch that differs only in thermal-side knobs — replays the
recorded boundary stream through the thermal solver instead of
re-emulating the platform.  Replayed members carry provenance in
``report.extras["replay"]``.
"""

import multiprocessing
import time
import traceback as traceback_module
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.framework import RunReport
from repro.obs import catalog as obs_catalog
from repro.obs import tracing as obs_tracing
from repro.scenario.spec import Scenario
from repro.thermal.backends import BatchedLU

#: Scenarios-per-batch histogram buckets (counts, not seconds).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass
class ScenarioResult:
    """Outcome of one scenario in a batch."""

    name: str
    index: int
    report: RunReport | None = None
    wall_seconds: float = 0.0
    error: str | None = None
    traceback: str | None = None  # the failing worker's formatted stack
    trace: object = None  # ThermalTrace when the runner captures traces

    @property
    def ok(self):
        return self.error is None

    @property
    def status(self):
        """``"ok"`` or ``"failed"`` — the uniform outcome tag batch
        consumers (and the farm's job records) key on."""
        return "ok" if self.error is None else "failed"

    @property
    def replayed(self):
        """True when this member replayed a recorded trace instead of
        re-emulating (see ``report.extras["replay"]``)."""
        return self.report is not None and "replay" in self.report.extras

    @property
    def policy_stats(self):
        """Per-policy statistics the run's policy exported via
        ``report()`` (``RunReport.extras["policy"]``), or ``{}``."""
        if self.report is None:
            return {}
        return dict(self.report.extras.get("policy", {}))

    def to_dict(self):
        out = {
            "name": self.name,
            "index": self.index,
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
            "traceback": self.traceback,
            "report": self.report.to_dict() if self.report else None,
        }
        if self.trace is not None:
            out["trace"] = self.trace.digest()
        return out

    def summary(self):
        if not self.ok:
            return f"{self.name}: FAILED — {self.error}"
        return f"{self.name}: {self.report.summary()}\n  wall {self.wall_seconds:.2f} s"


def _execute(payload):
    """Pool worker: run one scenario dict, return a picklable outcome.

    With ``capture_power`` the live run records its boundary stream and
    ships the :class:`~repro.trace.format.TraceArchive` back (NumPy
    arrays pickle fine), so the parent can file it in the trace store.
    """
    index, scenario_dict, capture_trace, capture_power = payload
    start = time.perf_counter()
    name = scenario_dict.get("name", f"scenario{index}")
    archive = None
    try:
        scenario = Scenario.from_dict(scenario_dict)
        if capture_power:
            from repro.trace.capture import record

            framework, report, archive = record(scenario)
        else:
            framework, report = scenario.run()
        wall = time.perf_counter() - start
        trace = framework.trace if capture_trace else None
        return (
            index, scenario.name, report.to_dict(), wall, None, None, trace,
            archive,
        )
    except Exception as exc:  # the batch survives one bad scenario
        wall = time.perf_counter() - start
        return (
            index, name, None, wall, f"{type(exc).__name__}: {exc}",
            traceback_module.format_exc(), None, None,
        )


def _group_key(runnable):
    """The batching key of one framework-shaped runnable.

    Grouping is defined by *configuration*, not object identity: the
    structure-keyed assembly cache stamps every network it hands out
    with its content key (:attr:`repro.thermal.rc_network.RCNetwork.
    structure_key`), so two scenarios whose floorplan + grid knobs
    coincide group together even when cache eviction (or a custom
    build) gave them distinct grid objects.  Networks without a content
    key (custom material properties) fall back to grid identity.
    """
    structure = runnable.network.structure_key
    if structure is None:
        # repro: allow[determinism] — process-local batching key; grouping affects solve order, never any emulated value
        structure = ("grid-id", id(runnable.grid))
    return (structure, runnable.config.sampling_period_s)


class Runner:
    """Executes scenario batches with ``workers`` parallel processes.

    ``workers <= 1`` runs in-process (and then also sees workloads and
    policies registered after import, regardless of start method).
    ``capture_trace=True`` ships each run's :class:`ThermalTrace` back in
    the result — useful for plotting, costly for very long runs;
    ``trace_stride=k`` decimates those traces to every k-th sample (the
    run's peak/final temperatures are tracked independently and stay
    exact).  ``trace_store`` (a :class:`repro.trace.store.TraceStore`,
    a directory path, or ``True`` for an in-memory store) turns on
    record-once/replay-many: see the module docstring.
    """

    def __init__(self, workers=1, capture_trace=False, start_method=None,
                 trace_store=None, trace_stride=None):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.capture_trace = capture_trace
        if trace_stride is not None and (
            not isinstance(trace_stride, int) or trace_stride < 1
        ):
            raise ValueError(
                f"trace_stride must be a positive integer, got {trace_stride!r}"
            )
        self.trace_stride = trace_stride
        if trace_store is not None:
            from repro.trace.store import TraceStore

            if trace_store is True:
                trace_store = TraceStore()
            elif not isinstance(trace_store, TraceStore):
                trace_store = TraceStore(trace_store)
        self.trace_store = trace_store
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method

    # -- scenario normalization ------------------------------------------------
    def _scenario_dict(self, item, index):
        """One scenario as its dict form, with runner overrides applied."""
        if isinstance(item, Scenario):
            data = item.to_dict()
        else:
            data = dict(item)
            data.setdefault("name", f"scenario{index}")
        if self.trace_stride is not None:
            config = dict(data.get("config") or {})
            config["trace_stride"] = self.trace_stride
            data["config"] = config
        return data

    def _replay_result(self, index, scenario_dict, archive, source):
        """Replay one store hit in-process; mirrors ``_execute``."""
        from repro.trace.replay import replay_for_scenario

        start = time.perf_counter()
        name = scenario_dict.get("name", f"scenario{index}")
        try:
            scenario = Scenario.from_dict(scenario_dict)
            player = replay_for_scenario(archive, scenario, source=source)
            report = player.run(
                max_emulated_seconds=scenario.max_emulated_seconds,
                max_windows=scenario.max_windows,
            )
            wall = time.perf_counter() - start
            return ScenarioResult(
                name=scenario.name,
                index=index,
                report=report,
                wall_seconds=wall,
                trace=player.trace if self.capture_trace else None,
            )
        except Exception as exc:
            wall = time.perf_counter() - start
            return ScenarioResult(
                name=name,
                index=index,
                wall_seconds=wall,
                error=f"{type(exc).__name__}: {exc}",
                traceback=traceback_module.format_exc(),
            )

    # -- observability ---------------------------------------------------------
    def _observe_batch(self, results, wall_s, kind):
        """Record one finished batch into the metrics registry (and the
        active tracer, when any): batch size, per-scenario modes, and —
        for pooled batches — worker utilization."""
        if not results:
            return
        obs_catalog.counter("repro_runner_batches_total").inc()
        obs_catalog.histogram(
            "repro_runner_batch_size", buckets=BATCH_SIZE_BUCKETS
        ).observe(len(results))
        scenarios_total = obs_catalog.counter(
            "repro_runner_scenarios_total", labels=("mode",)
        )
        modes = {}
        for result in results:
            mode = (
                "failed" if not result.ok
                else "replayed" if result.replayed
                else "emulated"
            )
            modes[mode] = modes.get(mode, 0) + 1
        for mode, count in modes.items():
            scenarios_total.labels(mode=mode).inc(count)
        workers_used = max(1, min(self.workers, len(results)))
        if wall_s > 0:
            busy_s = sum(r.wall_seconds for r in results)
            obs_catalog.gauge("repro_runner_worker_utilization_ratio").set(
                min(1.0, busy_s / (workers_used * wall_s))
            )
        tracer = obs_tracing.ACTIVE
        if tracer is not None:
            for result in results:
                tracer.emit(
                    "runner.scenario", result.wall_seconds,
                    scenario=result.name, status=result.status,
                    replayed=result.replayed,
                )
            tracer.emit(
                "runner.batch", wall_s, kind=kind,
                scenarios=len(results), workers=workers_used,
            )

    # -- plain batches ---------------------------------------------------------
    def run(self, scenarios):
        """Run every scenario; returns ``list[ScenarioResult]`` in input
        order.  Items may be :class:`Scenario` objects or raw dicts.

        With a trace store, scenarios are deduplicated by their
        canonical digest before anything runs: store hits replay
        immediately, exactly one *leader* per unseen digest emulates
        (and records), and the remaining *followers* replay the
        leader's fresh recording — so a 16-variant thermal sweep costs
        one emulation plus 16 thermal solves, not 16 emulations.
        """
        start = time.perf_counter()
        results = self._run(scenarios)
        self._observe_batch(results, time.perf_counter() - start, "run")
        return results

    def _run(self, scenarios):
        dicts = [
            self._scenario_dict(item, index)
            for index, item in enumerate(scenarios)
        ]
        if not dicts:
            return []
        if self.trace_store is None:
            raw = self._run_payloads(
                [(i, d, self.capture_trace, False) for i, d in enumerate(dicts)]
            )
            return [self._result_of(r) for r in sorted(raw)]

        from repro.trace.store import scenario_trace_digest

        store = self.trace_store
        source = "memory" if store.in_memory else str(store.root)
        results = [None] * len(dicts)
        digests = []
        for data in dicts:
            try:
                digests.append(scenario_trace_digest(data))
            except Exception:
                # Unparseable scenario: let _execute produce its error
                # result; it just can't participate in replay dedup.
                digests.append(None)
        leaders, followers = [], []
        claimed = set()
        for index, (data, digest) in enumerate(zip(dicts, digests)):
            archive = store.get(digest)
            if archive is not None:
                results[index] = self._replay_result(
                    index, data, archive, source
                )
            elif digest is not None and digest in claimed:
                followers.append(index)
            else:
                claimed.add(digest)
                leaders.append(index)
        raw = self._run_payloads(
            [(i, dicts[i], self.capture_trace, True) for i in leaders]
        )
        fresh = {}  # digest -> archive, so followers skip disk re-loads
        for row in raw:
            index, archive = row[0], row[7]
            results[index] = self._result_of(row)
            if archive is not None:
                fresh[archive.scenario_digest] = archive
                try:
                    store.put(archive)
                except OSError:
                    pass  # a full disk must not fail the run
        for index in followers:
            archive = fresh.get(digests[index])
            if archive is None:
                archive = store.get(digests[index])
            if archive is None:
                # The leader failed to record (its error is its own
                # result); the follower still runs live — its thermal
                # side differs, so the failure may not repeat.
                row = _execute((index, dicts[index], self.capture_trace, False))
                results[index] = self._result_of(row)
            else:
                results[index] = self._replay_result(
                    index, dicts[index], archive, source
                )
        return results

    def _run_payloads(self, payloads):
        if not payloads:
            return []
        if self.workers <= 1 or len(payloads) == 1:
            return [_execute(p) for p in payloads]
        ctx = multiprocessing.get_context(self.start_method)
        with ctx.Pool(processes=min(self.workers, len(payloads))) as pool:
            return pool.map(_execute, payloads)

    @staticmethod
    def _result_of(row):
        index, name, report_dict, wall, error, tb, trace, _archive = row
        return ScenarioResult(
            name=name,
            index=index,
            report=RunReport.from_dict(report_dict) if report_dict else None,
            wall_seconds=wall,
            error=error,
            traceback=tb,
            trace=trace,
        )

    # -- batched thermal solving ----------------------------------------------
    def run_batched(self, scenarios, library=None):
        """Run the batch in-process, co-stepping structure-sharing groups.

        Scenarios whose floorplan + grid configuration + sampling period
        coincide (and therefore share one cached network structure) are
        advanced window by window *together*: every window each member
        contributes one right-hand-side column and one shared
        :class:`~repro.thermal.backends.BatchedLU` performs a single
        multi-RHS backward-Euler solve — one factorization for the whole
        group instead of one per scenario per window.  The members'
        configured solver backends are bypassed for the shared
        integration, which carries CachedLU's bounded linearization
        error (exact for linear stacks).

        With a trace store, members are first deduplicated by scenario
        digest exactly like :meth:`run`: store hits and in-batch
        followers become :class:`~repro.trace.replay.ReplaySource`
        members (no platform, no workload — just the recorded stream
        driving the shared solve), leaders emulate with a capture
        attached and are filed into the store when their group ends.

        Results return in input order.  ``wall_seconds`` of each member
        is its *group's* wall time (the solves are genuinely shared); a
        failure while co-stepping marks every unfinished member of that
        group as failed.
        """
        start = time.perf_counter()
        results = self._run_batched(scenarios, library=library)
        self._observe_batch(results, time.perf_counter() - start, "batched")
        return results

    def _run_batched(self, scenarios, library=None):
        scenarios = list(scenarios)
        results = [None] * len(scenarios)
        store = self.trace_store
        source = None
        digests = [None] * len(scenarios)
        if store is not None:
            from repro.trace.store import scenario_trace_digest

            source = "memory" if store.in_memory else str(store.root)

        groups = defaultdict(list)
        followers = []
        captures = {}
        claimed = set()
        parsed = {}
        for index, item in enumerate(scenarios):
            if isinstance(item, Scenario):
                name = item.name
            else:
                item = dict(item)
                name = item.get("name", f"scenario{index}")
            try:  # the batch survives one bad scenario
                data = self._scenario_dict(item, index)
                scenario = Scenario.from_dict(data)
                parsed[index] = scenario
                if store is not None:
                    digests[index] = scenario_trace_digest(data)
                    archive = store.get(digests[index])
                    if archive is not None:
                        from repro.trace.replay import replay_for_scenario

                        player = replay_for_scenario(
                            archive, scenario, source=source
                        )
                        groups[_group_key(player)].append(
                            (index, scenario, player)
                        )
                        continue
                    if digests[index] in claimed:
                        followers.append(index)
                        continue
                    claimed.add(digests[index])
                framework = scenario.build(library=library)
                if store is not None:
                    from repro.trace.capture import PowerTraceCapture

                    captures[index] = framework.attach_capture(
                        PowerTraceCapture()
                    )
                groups[_group_key(framework)].append(
                    (index, scenario, framework)
                )
            except Exception as exc:
                results[index] = ScenarioResult(
                    name=name,
                    index=index,
                    error=f"{type(exc).__name__}: {exc}",
                    traceback=traceback_module.format_exc(),
                )
                continue
        self._run_groups(groups, results, captures, store)

        if followers:
            replay_groups = defaultdict(list)
            loaded = {}  # digest -> archive, one disk load per digest
            for index in followers:
                scenario = parsed[index]
                digest = digests[index]
                if digest not in loaded:
                    loaded[digest] = store.get(digest)
                archive = loaded[digest]
                try:
                    if archive is None:
                        # Leader never recorded (it failed); run live —
                        # this member's thermal side may still succeed.
                        framework = scenario.build(library=library)
                        replay_groups[_group_key(framework)].append(
                            (index, scenario, framework)
                        )
                        continue
                    from repro.trace.replay import replay_for_scenario

                    player = replay_for_scenario(
                        archive, scenario, source=source
                    )
                    replay_groups[_group_key(player)].append(
                        (index, scenario, player)
                    )
                except Exception as exc:
                    results[index] = ScenarioResult(
                        name=scenario.name,
                        index=index,
                        error=f"{type(exc).__name__}: {exc}",
                        traceback=traceback_module.format_exc(),
                    )
            self._run_groups(replay_groups, results, {}, None)
        return results

    def _run_groups(self, groups, results, captures, store):
        """Co-step every group, fill ``results``, file recordings."""
        for group in groups.values():
            start = time.perf_counter()
            completed = set()
            try:
                self._co_step(group, completed)
                error = tb = None
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                tb = traceback_module.format_exc()
            wall = time.perf_counter() - start
            for position, (index, scenario, runnable) in enumerate(group):
                # A member that had already reached its bounds *before*
                # the failing window completed normally and keeps its
                # report; everyone else (including a member whose
                # workload happened to finish during the window that
                # raised) is marked failed, matching serial semantics.
                member_error = None if position in completed else error
                report = None
                if not member_error:
                    report = runnable.report()
                    capture = captures.get(index)
                    if capture is not None and store is not None:
                        # Assembly errors propagate (they are bugs, and
                        # masking them would silently disable replay);
                        # only store I/O is best-effort.
                        archive = capture.to_archive(
                            runnable, scenario=scenario, report=report
                        )
                        try:
                            store.put(archive)
                        except OSError:
                            pass  # a full disk must not fail the run
                results[index] = ScenarioResult(
                    name=scenario.name,
                    index=index,
                    report=report,
                    wall_seconds=wall,
                    error=member_error,
                    traceback=tb if member_error else None,
                    trace=(
                        runnable.trace
                        if self.capture_trace and not member_error
                        else None
                    ),
                )

    @staticmethod
    def _co_step(group, completed):
        """Advance one structure-sharing group to its bounds, window by
        window, through a single shared multi-RHS factorization.

        ``completed`` (a set of group positions) is filled in-place as
        members reach their bounds at a window boundary, so the caller
        knows who finished cleanly even if a later window raises.
        Members may be live :class:`EmulationFramework` instances or
        :class:`~repro.trace.replay.ReplaySource` players — both speak
        the same window protocol.
        """
        frameworks = [framework for _, _, framework in group]
        bounds = [
            (
                scenario.max_emulated_seconds,
                scenario.max_windows,
                scenario.max_stall_windows,
            )
            for _, scenario, _ in group
        ]
        backend = BatchedLU().bind(frameworks[0].network)
        dt = frameworks[0].config.sampling_period_s
        active = list(range(len(frameworks)))
        while True:
            still = []
            for b in active:
                if frameworks[b].bounds_reached(*bounds[b]):
                    completed.add(b)
                else:
                    still.append(b)
            active = still
            if not active:
                return backend
            pending = []
            for b in active:
                powers, frequency = frameworks[b]._window_power()
                pending.append((b, powers, frequency))
            temps = np.stack(
                [frameworks[b].solver.temperatures for b, _, _ in pending], axis=1
            )
            rhs = np.stack(
                [frameworks[b].network.rhs() for b, _, _ in pending], axis=1
            )
            advanced = backend.step_batch(temps, dt, rhs)
            for col, (b, powers, frequency) in enumerate(pending):
                solver = frameworks[b].solver
                solver.temperatures = advanced[:, col]
                solver.time += dt
                frameworks[b]._window_commit(powers, frequency)
