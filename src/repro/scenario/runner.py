"""Batch execution of scenarios, optionally across worker processes.

:class:`Runner` executes a list of scenarios (or raw scenario dicts) and
returns uniform :class:`ScenarioResult` objects in input order.  With
``workers > 1`` the batch fans out over a ``multiprocessing`` pool —
scenarios travel as their JSON-compatible dicts and come back as
serialized reports, so the only requirement on a scenario is the same
one the CLI imposes: it must be expressible as plain data.
"""

import multiprocessing
import time
from dataclasses import dataclass

from repro.core.framework import RunReport
from repro.scenario.spec import Scenario


@dataclass
class ScenarioResult:
    """Outcome of one scenario in a batch."""

    name: str
    index: int
    report: RunReport | None = None
    wall_seconds: float = 0.0
    error: str | None = None
    trace: object = None  # ThermalTrace when the runner captures traces

    @property
    def ok(self):
        return self.error is None

    def to_dict(self):
        return {
            "name": self.name,
            "index": self.index,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
            "report": self.report.to_dict() if self.report else None,
        }

    def summary(self):
        if not self.ok:
            return f"{self.name}: FAILED — {self.error}"
        return f"{self.name}: {self.report.summary()}\n  wall {self.wall_seconds:.2f} s"


def _execute(payload):
    """Pool worker: run one scenario dict, return a picklable outcome."""
    index, scenario_dict, capture_trace = payload
    start = time.perf_counter()
    name = scenario_dict.get("name", f"scenario{index}")
    try:
        scenario = Scenario.from_dict(scenario_dict)
        framework, report = scenario.run()
        wall = time.perf_counter() - start
        trace = framework.trace if capture_trace else None
        return index, scenario.name, report.to_dict(), wall, None, trace
    except Exception as exc:  # the batch survives one bad scenario
        wall = time.perf_counter() - start
        return index, name, None, wall, f"{type(exc).__name__}: {exc}", None


class Runner:
    """Executes scenario batches with ``workers`` parallel processes.

    ``workers <= 1`` runs in-process (and then also sees workloads and
    policies registered after import, regardless of start method).
    ``capture_trace=True`` ships each run's :class:`ThermalTrace` back in
    the result — useful for plotting, costly for very long runs.
    """

    def __init__(self, workers=1, capture_trace=False, start_method=None):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.capture_trace = capture_trace
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method

    def run(self, scenarios):
        """Run every scenario; returns ``list[ScenarioResult]`` in input
        order.  Items may be :class:`Scenario` objects or raw dicts."""
        payloads = []
        for index, scenario in enumerate(scenarios):
            if isinstance(scenario, Scenario):
                scenario_dict = scenario.to_dict()
            else:
                scenario_dict = dict(scenario)
            payloads.append((index, scenario_dict, self.capture_trace))
        if not payloads:
            return []
        if self.workers <= 1 or len(payloads) == 1:
            raw = [_execute(p) for p in payloads]
        else:
            ctx = multiprocessing.get_context(self.start_method)
            with ctx.Pool(processes=min(self.workers, len(payloads))) as pool:
                raw = pool.map(_execute, payloads)
        results = []
        for index, name, report_dict, wall, error, trace in raw:
            results.append(
                ScenarioResult(
                    name=name,
                    index=index,
                    report=RunReport.from_dict(report_dict) if report_dict else None,
                    wall_seconds=wall,
                    error=error,
                    trace=trace,
                )
            )
        return results
