"""Parameter-grid expansion over scenario dicts.

:func:`sweep` takes a base :class:`Scenario` and a mapping of dotted
paths into its dict form to lists of candidate values, and expands the
cartesian product into named scenario variants — the design-space
front-end of the paper's "architecture exploration in minutes" pitch.
Because expansion works on ``Scenario.to_dict()`` trees, every variant
is by construction expressible as a JSON scenario file.
"""

import copy
import itertools
from dataclasses import dataclass, field

from repro.scenario.spec import Scenario


@dataclass(frozen=True)
class Variant:
    """A labelled candidate value for one swept key.

    Plain values label themselves (``"leaf=value"``); use a ``Variant``
    when the value is a whole subtree (a platform config, a policy spec)
    that needs a human name in the expanded scenario.
    """

    label: str
    value: object


def _set_path(tree, path, value):
    keys = path.split(".")
    node = tree
    for key in keys[:-1]:
        child = node.get(key)
        if not isinstance(child, dict):
            child = {}
            node[key] = child
        node = child
    node[keys[-1]] = value


def sweep(base, overrides, name=None):
    """Expand ``overrides`` into the grid of scenario variants.

    ``overrides`` maps dotted paths into the scenario dict (e.g.
    ``"config.sensor_upper_kelvin"``, ``"policy.params.low_hz"``,
    ``"platform"``) to lists of values or :class:`Variant` objects.
    Returns ``list[Scenario]``; with empty overrides the list holds one
    copy of ``base``.  Variant names are
    ``"<base name>[label1, label2, ...]"``.
    """
    base_dict = base.to_dict() if isinstance(base, Scenario) else copy.deepcopy(dict(base))
    base_name = name or base_dict.get("name", "scenario")
    keys = list(overrides)
    choices = []
    for key in keys:
        values = overrides[key]
        if isinstance(values, Variant):
            values = [values]
        if not isinstance(values, (list, tuple)) or not values:
            raise ValueError(f"sweep key {key!r} needs a non-empty list of values")
        leaf = key.split(".")[-1]
        choices.append(
            [
                value
                if isinstance(value, Variant)
                else Variant(f"{leaf}={value}", value)
                for value in values
            ]
        )
    scenarios = []
    for combo in itertools.product(*choices):
        tree = copy.deepcopy(base_dict)
        for key, variant in zip(keys, combo):
            value = variant.value
            _set_path(tree, key, copy.deepcopy(value))
        if combo:
            tree["name"] = f"{base_name}[{', '.join(v.label for v in combo)}]"
        else:
            tree["name"] = base_name
        scenarios.append(Scenario.from_dict(tree))
    return scenarios


@dataclass
class ExperimentSuite:
    """A named batch of scenarios, serializable as one JSON document."""

    name: str
    scenarios: list = field(default_factory=list)

    def __post_init__(self):
        self.scenarios = [
            s if isinstance(s, Scenario) else Scenario.from_dict(s)
            for s in self.scenarios
        ]

    @classmethod
    def from_sweep(cls, name, base, overrides):
        return cls(name=name, scenarios=sweep(base, overrides, name=name))

    def to_dict(self):
        return {
            "name": self.name,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], scenarios=list(data.get("scenarios", [])))

    def run(self, runner=None, batched=False):
        """Execute every scenario; see :class:`repro.scenario.runner.Runner`.

        ``batched=True`` co-steps structure-sharing scenarios through one
        multi-RHS thermal solve per window
        (:meth:`repro.scenario.runner.Runner.run_batched`) — the fast
        path for sweeps that vary workload/policy over one floorplan.
        """
        from repro.scenario.runner import Runner

        runner = runner or Runner()
        if batched:
            return runner.run_batched(self.scenarios)
        return runner.run(self.scenarios)

    def __len__(self):
        return len(self.scenarios)
