"""Small report helpers shared by the statistics code and the benches.

The benches regenerate the paper's tables as plain text; ``Table`` gives
them a uniform, dependency-free renderer.
"""

from __future__ import annotations

from typing import Iterable


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix (``1.2e-3`` -> ``"1.2 m"``).

    Returns a string such as ``"43 mW"`` or ``"1.65 s"``.
    """
    if value == 0:
        return f"0 {unit}".rstrip()
    prefixes = [
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
    ]
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            scaled = value / scale
            return f"{scaled:.{digits}g} {prefix}{unit}".rstrip()
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()


def format_duration(seconds: float) -> str:
    """Format a duration the way the paper's Table 3 does (``5' 02 sec``)."""
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds!r}")
    if seconds >= 86400:
        days = seconds / 86400.0
        return f"{days:.1f} days"
    if seconds >= 60:
        total = round(seconds)
        minutes, rem = divmod(total, 60)
        return f"{minutes}' {rem:02d} sec"
    if seconds >= 1:
        return f"{seconds:.2f} sec"
    return f"{seconds * 1e3:.2f} ms"


class Table:
    """A minimal fixed-width text table used by reports and benches."""

    def __init__(
        self, headers: Iterable[object], title: str | None = None
    ) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are stringified with ``str``."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        """Render the table to a single string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
