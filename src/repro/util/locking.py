"""Cross-process file locking and atomic writes.

The run-farm (:mod:`repro.farm`) and the shared :class:`~repro.trace.
store.TraceStore` coordinate many worker *processes* over one
directory tree.  Two primitives make that safe on POSIX filesystems:

* :class:`FileLock` — an advisory exclusive lock on a dedicated lock
  file (``fcntl.flock`` where available, ``O_CREAT | O_EXCL`` spin
  fallback elsewhere).  Each acquisition opens its own descriptor, so
  the lock excludes threads of one process as well as other processes.
* :func:`atomic_write_text` / :func:`atomic_write_json` — write to a
  uniquely named temp file in the target directory, then
  ``os.replace`` onto the destination.  Readers never observe a
  half-written file, and concurrent writers of the same path cannot
  interleave because each writes its own temp file.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from types import TracebackType
from typing import Any, Union

try:  # POSIX; the spin-lock fallback keeps exotic platforms working.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX only
    fcntl = None  # type: ignore[assignment]

PathLike = Union[str, "os.PathLike[str]"]


def unique_tmp_path(path: PathLike) -> pathlib.Path:
    """A collision-free sibling temp path for writes destined for
    ``path`` (unique per process *and* per call, so two writers racing
    on one content-addressed destination never share a temp file)."""
    target = pathlib.Path(path)
    token = f"{os.getpid()}.{os.urandom(4).hex()}"
    return target.with_name(f".{target.name}.{token}.tmp")


def atomic_write_text(path: PathLike, text: str) -> pathlib.Path:
    """Atomically replace ``path`` with ``text``; returns ``path``."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = unique_tmp_path(target)
    try:
        tmp.write_text(text)
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return target


def atomic_write_json(
    path: PathLike, payload: Any, **dumps_kwargs: Any
) -> pathlib.Path:
    """Atomically replace ``path`` with ``payload`` as JSON."""
    dumps_kwargs.setdefault("sort_keys", True)
    return atomic_write_text(path, json.dumps(payload, **dumps_kwargs) + "\n")


class FileLock:
    """An exclusive advisory lock usable as a context manager.

    ``FileLock(path)`` locks the file *at* ``path`` (created on
    demand); holders block until the current owner releases.  The lock
    file itself is never written through — it carries no data, so a
    crashed holder leaves nothing to clean up (flock evaporates with
    the process; the spin fallback honors ``stale_seconds``).
    """

    def __init__(
        self,
        path: PathLike,
        timeout: float = 30.0,
        poll_s: float = 0.01,
        stale_seconds: float = 60.0,
    ) -> None:
        self.path = pathlib.Path(path)
        self.timeout = timeout
        self.poll_s = poll_s
        self.stale_seconds = stale_seconds
        self._fd: int | None = None
        self._marker: pathlib.Path | None = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> FileLock:
        if self.held:
            raise RuntimeError(f"lock {self.path} is already held")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is not None:
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            deadline = time.monotonic() + self.timeout
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return self
                except OSError:
                    if time.monotonic() >= deadline:
                        os.close(fd)
                        raise TimeoutError(
                            f"could not acquire lock {self.path} "
                            f"within {self.timeout:g} s"
                        ) from None
                    time.sleep(self.poll_s)
        return self._acquire_spin()  # pragma: no cover - non-POSIX only

    def _acquire_spin(self) -> FileLock:  # pragma: no cover - non-POSIX only
        marker = self.path.with_name(self.path.name + ".held")
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_RDWR)
                self._fd = fd
                self._marker = marker
                return self
            except FileExistsError:
                try:  # break locks abandoned by a crashed process
                    age = time.time() - marker.stat().st_mtime
                    if age > self.stale_seconds:
                        marker.unlink(missing_ok=True)
                        continue
                except OSError:
                    pass
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"could not acquire lock {self.path} "
                        f"within {self.timeout:g} s"
                    ) from None
                time.sleep(self.poll_s)

    def release(self) -> None:
        if self._fd is None:
            return
        fd = self._fd
        self._fd = None
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        else:  # pragma: no cover - non-POSIX only
            os.close(fd)
            if self._marker is not None:
                self._marker.unlink(missing_ok=True)

    def __enter__(self) -> FileLock:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()
