"""A generic named string-keyed registry.

Used across layers: the scenario package resolves floorplans, policies
and workload generators by name, and the thermal package resolves solver
backends the same way.  Living in ``repro.util`` keeps the dependency
direction clean (thermal must not import scenario).
"""


class Registry:
    """A named string-keyed registry with helpful unknown-name errors."""

    def __init__(self, kind):
        self.kind = kind
        self._entries = {}

    def register(self, name, obj=None):
        """Register ``obj`` under ``name``; usable as a decorator when
        ``obj`` is omitted."""
        if obj is None:
            def decorator(fn):
                self.register(name, fn)
                return fn

            return decorator
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self.kind} name must be a non-empty string")
        if name in self._entries:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = obj
        return obj

    def unregister(self, name):
        self._entries.pop(name, None)

    def get(self, name):
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r} "
                f"(available: {', '.join(sorted(self._entries))})"
            ) from None

    def names(self):
        return sorted(self._entries)

    def __contains__(self, name):
        return name in self._entries

    def __len__(self):
        return len(self._entries)
