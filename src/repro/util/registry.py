"""A generic named string-keyed registry.

Used across layers: the scenario package resolves floorplans, policies
and workload generators by name, the thermal package resolves solver
backends the same way, and the static analysis resolves rules.  Living
in ``repro.util`` keeps the dependency direction clean (thermal must
not import scenario).
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar, overload

T = TypeVar("T")


class Registry(Generic[T]):
    """A named string-keyed registry with helpful unknown-name errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}

    @overload
    def register(self, name: str) -> Callable[[T], T]: ...

    @overload
    def register(self, name: str, obj: T) -> T: ...

    def register(
        self, name: str, obj: T | None = None
    ) -> T | Callable[[T], T]:
        """Register ``obj`` under ``name``; usable as a decorator when
        ``obj`` is omitted."""
        if obj is None:

            def decorator(fn: T) -> T:
                self.register(name, fn)
                return fn

            return decorator
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self.kind} name must be a non-empty string")
        if name in self._entries:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = obj
        return obj

    def unregister(self, name: str) -> None:
        self._entries.pop(name, None)

    def get(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r} "
                f"(available: {', '.join(sorted(self._entries))})"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)
