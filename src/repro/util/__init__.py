"""Shared helpers: units, small record/report utilities."""

from repro.util.units import (
    GHZ,
    HZ,
    KB,
    KHZ,
    MB,
    MHZ,
    MM2,
    MS,
    MW,
    S,
    UM,
    US,
    W,
    celsius_to_kelvin,
    kelvin_to_celsius,
)
from repro.util.records import Table, format_duration, format_si

__all__ = [
    "GHZ",
    "HZ",
    "KB",
    "KHZ",
    "MB",
    "MHZ",
    "MM2",
    "MS",
    "MW",
    "S",
    "UM",
    "US",
    "W",
    "celsius_to_kelvin",
    "kelvin_to_celsius",
    "Table",
    "format_duration",
    "format_si",
]
