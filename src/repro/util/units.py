"""Unit constants and conversions.

The code base works in SI base units internally (seconds, metres, watts,
kelvins) unless a name says otherwise.  These constants make call sites
read like the paper ("350 * UM silicon thickness", "100 * MHZ clock").
"""

# --- time ---------------------------------------------------------------
S = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9

# --- frequency ----------------------------------------------------------
HZ = 1.0
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# --- length / area ------------------------------------------------------
M = 1.0
MM = 1e-3
UM = 1e-6
MM2 = 1e-6  # square metres per square millimetre
UM2 = 1e-12

# --- power --------------------------------------------------------------
W = 1.0
MW = 1e-3
UW = 1e-6

# --- memory sizes (bytes) -------------------------------------------------
KB = 1024
MB = 1024 * 1024

# --- temperature ----------------------------------------------------------
ZERO_CELSIUS_IN_KELVIN = 273.15


def celsius_to_kelvin(t_celsius: float) -> float:
    """Convert a temperature from degrees Celsius to Kelvin."""
    return t_celsius + ZERO_CELSIUS_IN_KELVIN


def kelvin_to_celsius(t_kelvin: float) -> float:
    """Convert a temperature from Kelvin to degrees Celsius."""
    return t_kelvin - ZERO_CELSIUS_IN_KELVIN
