"""Transient and steady-state solvers for the RC thermal network.

The workhorse is a semi-implicit backward-Euler integrator: conductances
are assembled at the step's starting temperatures (freezing the
non-linear silicon resistances for one step) and the linear system

    (C/dt + G(T_n)) T_{n+1} = (C/dt) T_n + P + G_amb T_amb

is solved by a pluggable :class:`repro.thermal.backends.SolverBackend`.
This is unconditionally stable, so the framework can step exactly one
10 ms sampling period per co-emulation exchange.

Backends trade assembly/factorization work for bounded linearization
error; choose by name (``solver_backend`` in
:class:`repro.core.framework.FrameworkConfig`):

* ``sparse_be`` — the exact reference: re-assemble ``G(T_n)`` and
  factorize every step.
* ``cached_lu`` — factorize once, backsolve every window, and
  **refactorize only when** ``dt`` changes or a non-linear (silicon)
  cell drifts more than ``refactor_tolerance_kelvin`` (default 1 K)
  from the linearization temperature.  Exact for linear stacks; bounded
  error (sub-percent conductance perturbation) for non-linear silicon.
* ``batched_lu`` — ``cached_lu`` plus a multi-RHS path used by batched
  scenario sweeps: B runs share one factorization per window.

An explicit forward-Euler path (with a stability guard) and a Picard
steady-state solver complete the API; the calibration suite in
:mod:`repro.thermal.calibration` validates all three against
closed-form solutions.
"""

import numpy as np
from scipy.sparse.linalg import spsolve

from repro.thermal.backends import (
    SOLVER_BACKENDS,
    BatchedLU,
    CachedLU,
    SolverBackend,
    SparseBE,
    make_backend,
)

__all__ = [
    "SOLVER_BACKENDS",
    "BatchedLU",
    "CachedLU",
    "SolverBackend",
    "SparseBE",
    "ThermalSolver",
    "make_backend",
]


class ThermalSolver:
    """Time integrator bound to one :class:`RCNetwork`.

    ``backend`` picks the backward-Euler strategy: a registered name, a
    ``{"name": ..., "params": ...}`` dict, a
    :class:`~repro.thermal.backends.SolverBackend` instance, or ``None``
    for the exact ``sparse_be`` reference.
    """

    def __init__(self, network, initial_temperature=None, backend=None):
        self.network = network
        t0 = (
            network.properties.ambient
            if initial_temperature is None
            else initial_temperature
        )
        self.temperatures = np.full(network.num_cells, float(t0))
        self.time = 0.0
        self.backend = make_backend(backend).bind(network)

    # -- transient -----------------------------------------------------------
    def step_be(self, dt):
        """One semi-implicit backward-Euler step of length ``dt`` seconds."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.temperatures = self.backend.step(self.temperatures, dt)
        self.time += dt
        return self.temperatures

    def step_fe(self, dt):
        """One explicit forward-Euler step; raises if ``dt`` is unstable."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        net = self.network
        g = net.conductance_matrix(self.temperatures)
        diag = g.diagonal()
        with np.errstate(divide="ignore"):
            dt_max = float(np.min(net.capacitance / np.maximum(diag, 1e-300)))
        if dt > dt_max:
            raise ValueError(
                f"explicit step dt={dt:.3e}s unstable (limit {dt_max:.3e}s); "
                f"use step_be or a smaller dt"
            )
        flux = net.rhs() - g.dot(self.temperatures)
        self.temperatures = self.temperatures + dt * flux / net.capacitance
        self.time += dt
        return self.temperatures

    def run(self, duration, dt, method="be", callback=None):
        """Integrate for ``duration`` seconds in steps of ``dt``.

        ``callback(time, temperatures)`` is invoked after every step.
        Returns the final temperature vector.
        """
        step = self.step_be if method == "be" else self.step_fe
        steps = int(round(duration / dt))
        for _ in range(steps):
            step(dt)
            if callback is not None:
                callback(self.time, self.temperatures)
        return self.temperatures

    # -- steady state ------------------------------------------------------------
    def steady_state(self, tol=1e-6, max_iterations=100):
        """Picard iteration on ``G(T) T = P + G_amb T_amb``.

        Converges in a handful of iterations: the non-linearity is mild
        (k ~ T^-4/3) and the package resistance dominating the stack
        keeps the fixed point strongly attracting.
        """
        net = self.network
        t = self.temperatures.copy()
        for _ in range(max_iterations):
            g = net.conductance_matrix(t)
            t_next = spsolve(g.tocsc(), net.rhs())
            delta = float(np.max(np.abs(t_next - t)))
            t = t_next
            if delta < tol:
                break
        else:
            raise RuntimeError(
                f"steady state did not converge within {max_iterations} iterations"
            )
        self.temperatures = t
        return t

    # -- readout -------------------------------------------------------------------
    def max_temperature(self):
        return float(self.temperatures.max())

    def component_temperature(self, name):
        """Area-weighted mean temperature of a floorplan component."""
        return self.network.component_temperature(name, self.temperatures)

    def component_temperatures(self):
        """All component means in one sparse product (``W @ T``)."""
        return self.network.component_temperatures(self.temperatures)

    def reset(self, temperature=None):
        t0 = (
            self.network.properties.ambient if temperature is None else temperature
        )
        self.temperatures = np.full(self.network.num_cells, float(t0))
        self.time = 0.0
        self.backend.invalidate()
