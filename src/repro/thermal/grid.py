"""Cell-grid generation over die + spreader (Figure 3a).

The die and the heat spreader are divided into box-shaped cells of
several sizes: small cells at the critical points (component mode with
refined rectangles, or a fine uniform grid) and larger ones elsewhere.
Each cell later gets five thermal resistances and one capacitance in
:mod:`repro.thermal.rc_network`.

Two generation modes:

* ``component`` — one cell per floorplan rectangle (components and
  filler), with ``critical`` rectangles optionally subdivided
  ``refine x refine``; this produces the paper's coarse co-emulation
  grids (~28 cells for the Figure 4 floorplans).
* ``uniform`` — an ``nx x ny`` uniform grid per layer; this produces the
  fine grids (the paper's 660-cell solver-performance claim).

Adjacency handles hanging nodes (a large cell bordering several small
ones) by computing per-pair face overlaps.
"""

from collections import defaultdict
from dataclasses import dataclass, field

from repro.thermal.properties import ThermalProperties

LAYER_DIE = "die"
LAYER_SPREADER = "spreader"

_QUANTUM = 1e-10  # 0.1 nm: coordinate quantum for face matching


def _q(coord):
    return round(coord / _QUANTUM)


@dataclass
class Cell:
    """One box-shaped thermal cell."""

    index: int
    layer: str
    x: float
    y: float
    width: float
    height: float
    thickness: float
    component: str = None  # dominant floorplan component (reporting)

    @property
    def area(self):
        return self.width * self.height

    @property
    def volume(self):
        return self.area * self.thickness

    @property
    def x1(self):
        return self.x + self.width

    @property
    def y1(self):
        return self.y + self.height


@dataclass
class Grid:
    """The generated cell grid plus its adjacency structure."""

    floorplan: object
    properties: ThermalProperties
    cells: list = field(default_factory=list)
    die_cells: list = field(default_factory=list)
    spreader_cells: list = field(default_factory=list)
    # (i, j, shared_face_length, axis): lateral neighbour pairs.
    lateral_edges: list = field(default_factory=list)
    # (i, j, overlap_area): die cell <-> spreader cell pairs.
    vertical_edges: list = field(default_factory=list)
    # component name -> [(die cell index, overlap area)]
    component_cover: dict = field(default_factory=dict)

    @property
    def num_cells(self):
        return len(self.cells)

    def cells_of(self, layer):
        indices = self.die_cells if layer == LAYER_DIE else self.spreader_cells
        return [self.cells[i] for i in indices]

    def summary(self):
        return {
            "cells": self.num_cells,
            "die_cells": len(self.die_cells),
            "spreader_cells": len(self.spreader_cells),
            "lateral_edges": len(self.lateral_edges),
            "vertical_edges": len(self.vertical_edges),
        }


def _subdivide(x, y, w, h, nx, ny):
    """Split a rectangle into an ``nx x ny`` array of sub-rectangles."""
    rects = []
    for i in range(nx):
        for j in range(ny):
            rects.append((x + i * w / nx, y + j * h / ny, w / nx, h / ny))
    return rects


def _component_rects(floorplan, refine):
    """(rect, component name) list for component mode."""
    rects = []
    for comp in floorplan.components:
        n = refine if (comp.critical and refine > 1) else 1
        for rect in _subdivide(comp.x, comp.y, comp.width, comp.height, n, n):
            rects.append((rect, None if comp.is_filler else comp.name))
    return rects


def _uniform_rects(width, height, nx, ny):
    return [(rect, None) for rect in _subdivide(0.0, 0.0, width, height, nx, ny)]


def _lateral_adjacency(cells):
    """Face-sharing pairs within one layer, with shared face lengths.

    Uses edge-coordinate bucketing: a cell's right edge can only touch
    left edges at the same x coordinate (and likewise in y), so only
    those few candidates are checked for overlap.
    """
    edges = []
    left = defaultdict(list)  # quantized x0 -> cells
    bottom = defaultdict(list)  # quantized y0 -> cells
    for cell in cells:
        left[_q(cell.x)].append(cell)
        bottom[_q(cell.y)].append(cell)
    def _candidates(buckets, coord):
        # Look in the quantum bucket and its neighbours so values that
        # round across a bucket boundary are still matched.
        k = _q(coord)
        for key in (k - 1, k, k + 1):
            yield from buckets.get(key, ())

    for cell in cells:
        for other in _candidates(left, cell.x1):
            if abs(cell.x1 - other.x) > 2 * _QUANTUM:
                continue
            overlap = min(cell.y1, other.y1) - max(cell.y, other.y)
            if overlap > _QUANTUM:
                edges.append((cell.index, other.index, overlap, "x"))
        for other in _candidates(bottom, cell.y1):
            if abs(cell.y1 - other.y) > 2 * _QUANTUM:
                continue
            overlap = min(cell.x1, other.x1) - max(cell.x, other.x)
            if overlap > _QUANTUM:
                edges.append((cell.index, other.index, overlap, "y"))
    return edges


def _rect_overlaps(cells_a, cells_b):
    """(a, b, overlap_area) pairs across two layers via spatial hashing."""
    if not cells_a or not cells_b:
        return []
    bin_size = max(max(c.width for c in cells_b), max(c.height for c in cells_b))
    bins = defaultdict(list)
    for cell in cells_b:
        i0, i1 = int(cell.x / bin_size), int(cell.x1 / bin_size)
        j0, j1 = int(cell.y / bin_size), int(cell.y1 / bin_size)
        for i in range(i0, i1 + 1):
            for j in range(j0, j1 + 1):
                bins[(i, j)].append(cell)
    pairs = []
    seen = set()
    for cell in cells_a:
        i0, i1 = int(cell.x / bin_size), int(cell.x1 / bin_size)
        j0, j1 = int(cell.y / bin_size), int(cell.y1 / bin_size)
        for i in range(i0, i1 + 1):
            for j in range(j0, j1 + 1):
                for other in bins.get((i, j), ()):
                    key = (cell.index, other.index)
                    if key in seen:
                        continue
                    seen.add(key)
                    dx = min(cell.x1, other.x1) - max(cell.x, other.x)
                    dy = min(cell.y1, other.y1) - max(cell.y, other.y)
                    if dx > _QUANTUM and dy > _QUANTUM:
                        pairs.append((cell.index, other.index, dx * dy))
    return pairs


def build_grid(
    floorplan,
    properties=None,
    mode="component",
    refine_critical=1,
    die_resolution=(8, 8),
    spreader_resolution=(4, 4),
):
    """Generate a :class:`Grid` over ``floorplan``.

    ``mode='component'`` uses the floorplan rectangles as die cells
    (``refine_critical`` subdivides critical components); the spreader is
    covered by a ``spreader_resolution`` uniform grid.  ``mode='uniform'``
    uses ``die_resolution`` for the die instead.
    """
    props = properties or ThermalProperties()
    if mode == "component":
        die_rects = _component_rects(floorplan, refine_critical)
    elif mode == "uniform":
        die_rects = _uniform_rects(floorplan.width, floorplan.height, *die_resolution)
    else:
        raise ValueError(f"unknown grid mode {mode!r}")
    spreader_rects = _uniform_rects(
        floorplan.width, floorplan.height, *spreader_resolution
    )

    grid = Grid(floorplan=floorplan, properties=props)
    for (x, y, w, h), comp_name in die_rects:
        cell = Cell(
            index=len(grid.cells),
            layer=LAYER_DIE,
            x=x,
            y=y,
            width=w,
            height=h,
            thickness=props.die_thickness,
            component=comp_name,
        )
        grid.cells.append(cell)
        grid.die_cells.append(cell.index)
    for (x, y, w, h), _ in spreader_rects:
        cell = Cell(
            index=len(grid.cells),
            layer=LAYER_SPREADER,
            x=x,
            y=y,
            width=w,
            height=h,
            thickness=props.spreader_thickness,
        )
        grid.cells.append(cell)
        grid.spreader_cells.append(cell.index)

    die = [grid.cells[i] for i in grid.die_cells]
    spreader = [grid.cells[i] for i in grid.spreader_cells]
    grid.lateral_edges = _lateral_adjacency(die) + _lateral_adjacency(spreader)
    grid.vertical_edges = _rect_overlaps(die, spreader)

    # Component coverage (power injection + sensor readout weights).
    for comp in floorplan.components:
        if comp.is_filler:
            continue
        cover = []
        for cell in die:
            area = comp.overlap_area(cell.x, cell.y, cell.x1, cell.y1)
            if area > _QUANTUM * _QUANTUM:
                cover.append((cell.index, area))
        if not cover:
            raise ValueError(
                f"grid over {floorplan.name}: component {comp.name} covered "
                f"by no die cell"
            )
        grid.component_cover[comp.name] = cover
        # Tag uniform-mode cells with their dominant component.
        for index, area in cover:
            cell = grid.cells[index]
            if cell.component is None and area >= 0.5 * cell.area:
                cell.component = comp.name
    return grid
