"""Temperature sensors bound to floorplan components (Section 4.2).

The emulated MPSoC carries one HW temperature sensor per monitored
component; the SW thermal tool writes the freshly computed temperatures
back over Ethernet, and each sensor raises/clears a signal to the VPCM
when its component crosses the configured thresholds.  The dual-threshold
hysteresis (350 K upper / 340 K lower in the paper's experiment) lives
here; the DFS reaction lives in the policies of :mod:`repro.policy`.
"""

from dataclasses import dataclass, field

OVER_UPPER = "over-upper"
UNDER_LOWER = "under-lower"
IN_BAND = "in-band"


@dataclass
class TemperatureSensor:
    """One per-component sensor with dual-threshold hysteresis."""

    component: str
    upper_kelvin: float = 350.0
    lower_kelvin: float = 340.0
    temperature: float = 0.0
    hot: bool = False  # latched: crossed upper, not yet back under lower
    crossings: list = field(default_factory=list)

    def __post_init__(self):
        if self.lower_kelvin >= self.upper_kelvin:
            raise ValueError(
                f"sensor {self.component}: lower threshold must be below upper"
            )

    def update(self, temperature, time=None):
        """Feed a new reading; returns the band classification."""
        self.temperature = float(temperature)
        if not self.hot and temperature >= self.upper_kelvin:
            self.hot = True
            self.crossings.append((time, OVER_UPPER, self.temperature))
            return OVER_UPPER
        if self.hot and temperature <= self.lower_kelvin:
            self.hot = False
            self.crossings.append((time, UNDER_LOWER, self.temperature))
            return UNDER_LOWER
        return IN_BAND


class SensorBank:
    """The set of sensors for one emulated MPSoC."""

    def __init__(self, components, upper_kelvin=350.0, lower_kelvin=340.0):
        self.sensors = {
            name: TemperatureSensor(name, upper_kelvin, lower_kelvin)
            for name in components
        }

    def update(self, component_temperatures, time=None):
        """Feed all sensors; returns ``{component: band}`` for changed ones."""
        transitions = {}
        for name, sensor in self.sensors.items():
            if name not in component_temperatures:
                continue
            band = sensor.update(component_temperatures[name], time)
            if band != IN_BAND:
                transitions[name] = band
        return transitions

    @property
    def any_hot(self):
        return any(s.hot for s in self.sensors.values())

    def max_temperature(self):
        return max((s.temperature for s in self.sensors.values()), default=0.0)

    def crossings(self):
        rows = []
        for name, sensor in self.sensors.items():
            for time, kind, temp in sensor.crossings:
                rows.append((time, name, kind, temp))
        rows.sort(key=lambda r: (r[0] is None, r[0]))
        return rows
