"""Floorplans: named rectangles bound to power classes (Figure 4).

A floorplan tiles the die exactly with component rectangles plus named
filler (empty silicon) rectangles; exact tiling lets the grid generator
produce both the paper's coarse 28-cell co-emulation grids and fine
multi-hundred-cell grids from the same description.

The two experiment floorplans of Figure 4 are built here:
``floorplan_4xarm7`` (4 ARM7 cores at 100 MHz) and ``floorplan_4xarm11``
(4 ARM11 cores at 500 MHz), both in 130 nm.  The paper does not publish
coordinates, so the layouts place the cores in the four corners with
their caches and private memories alongside and the shared memory plus
the four NoC switches in the centre, as Figure 4 shows.  Component areas
are derived from Table 1 (area = max power / power density).

``activity_source`` ties each component to the platform statistics that
drive its power: ``("core", i)``, ``("icache", i)``, ``("dcache", i)``,
``("private_mem", i)``, ``("shared_mem", None)``,
``("noc_switch", switch_name)`` or ``None`` for passive silicon.
"""

from dataclasses import dataclass, field

from repro.util.units import MM2

_AREA_TOLERANCE = 1e-9


@dataclass(frozen=True)
class FloorplanComponent:
    """One axis-aligned rectangle of the floorplan (SI metres)."""

    name: str
    x: float
    y: float
    width: float
    height: float
    power_class: str = None  # key into the Table 1 power library
    activity_source: tuple = None
    critical: bool = False  # refine this rectangle in multi-resolution grids

    @property
    def area(self):
        return self.width * self.height

    @property
    def x1(self):
        return self.x + self.width

    @property
    def y1(self):
        return self.y + self.height

    @property
    def is_filler(self):
        return self.power_class is None

    def overlap_area(self, x0, y0, x1, y1):
        """Area of intersection with the rectangle [x0,x1] x [y0,y1]."""
        dx = min(self.x1, x1) - max(self.x, x0)
        dy = min(self.y1, y1) - max(self.y, y0)
        if dx <= 0 or dy <= 0:
            return 0.0
        return dx * dy


@dataclass
class Floorplan:
    """An exact rectangular tiling of the die."""

    name: str
    width: float
    height: float
    components: list = field(default_factory=list)

    def __post_init__(self):
        self.validate()

    @property
    def area(self):
        return self.width * self.height

    def component(self, name):
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(f"{self.name}: no component {name!r}")

    def fingerprint(self):
        """Hashable structural identity of the floorplan.

        Two floorplans with equal fingerprints produce identical grids
        and RC networks, so the fingerprint is the key under which
        :func:`repro.thermal.rc_network.network_for` shares assembly.
        """
        return (
            self.name,
            self.width,
            self.height,
            tuple(
                (c.name, c.x, c.y, c.width, c.height, c.power_class, c.critical)
                for c in self.components
            ),
        )

    def active_components(self):
        return [c for c in self.components if not c.is_filler]

    def validate(self):
        """Check bounds, pairwise disjointness and exact coverage."""
        names = [c.name for c in self.components]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate component names")
        total = 0.0
        for comp in self.components:
            if comp.width <= 0 or comp.height <= 0:
                raise ValueError(f"{self.name}/{comp.name}: non-positive size")
            if (
                comp.x < -_AREA_TOLERANCE
                or comp.y < -_AREA_TOLERANCE
                or comp.x1 > self.width + _AREA_TOLERANCE
                or comp.y1 > self.height + _AREA_TOLERANCE
            ):
                raise ValueError(f"{self.name}/{comp.name}: outside the die")
            total += comp.area
        for i, a in enumerate(self.components):
            for b in self.components[i + 1 :]:
                if a.overlap_area(b.x, b.y, b.x1, b.y1) > _AREA_TOLERANCE:
                    raise ValueError(
                        f"{self.name}: components {a.name} and {b.name} overlap"
                    )
        if abs(total - self.area) > 1e-6 * self.area:
            raise ValueError(
                f"{self.name}: tiling covers {total:.3e} m^2 of {self.area:.3e} m^2"
            )

    def summary(self):
        """Rows of (name, class, area mm^2, critical) for reports."""
        return [
            (c.name, c.power_class or "-", c.area / MM2, c.critical)
            for c in self.components
        ]


class _RowBuilder:
    """Builds an exactly tiled floorplan row by row.

    Each row is a horizontal strip of the die; items are placed left to
    right and ``gap`` inserts filler.  Any remaining width at the end of
    a row becomes filler automatically, so tiling is exact by
    construction.
    """

    def __init__(self, name, width):
        self.name = name
        self.width = width
        self.components = []
        self._y = 0.0
        self._fill_count = 0

    def row(self, height, items):
        x = 0.0
        for item in items:
            if isinstance(item, (int, float)):
                x = self._fill(x, x + item, height)
                continue
            comp_name, power_class, area, source, critical = item
            width = area / height
            if x + width > self.width + 1e-9:
                raise ValueError(
                    f"{self.name}: row at y={self._y:.4e} overflows the die "
                    f"({comp_name})"
                )
            self.components.append(
                FloorplanComponent(
                    name=comp_name,
                    x=x,
                    y=self._y,
                    width=width,
                    height=height,
                    power_class=power_class,
                    activity_source=source,
                    critical=critical,
                )
            )
            x += width
        self._fill(x, self.width, height)
        self._y += height

    def _fill(self, x0, x1, height):
        if x1 - x0 > 1e-9:
            self.components.append(
                FloorplanComponent(
                    name=f"fill{self._fill_count}",
                    x=x0,
                    y=self._y,
                    width=x1 - x0,
                    height=height,
                )
            )
            self._fill_count += 1
        return x1

    def build(self):
        return Floorplan(
            name=self.name, width=self.width, height=self._y, components=self.components
        )


def _corner_floorplan(name, core_class, core_area, die_width, core_row_h, cache_row_h):
    """Common Figure 4 structure: cores in the corners, caches and private
    memories alongside, shared memory and the four NoC switches centred."""
    from repro.power.library import DEFAULT_LIBRARY

    lib = DEFAULT_LIBRARY
    icache_area = lib.area("icache_8k_dm")
    dcache_area = lib.area("dcache_8k_2w")
    mem_area = lib.area("sram_32k")
    switch_area = lib.area("noc_switch")

    def core(i):
        return (f"{core_class}_{i}", core_class, core_area, ("core", i), True)

    def icache(i):
        return (f"icache_{i}", "icache_8k_dm", icache_area, ("icache", i), False)

    def dcache(i):
        return (f"dcache_{i}", "dcache_8k_2w", dcache_area, ("dcache", i), False)

    def privmem(i):
        return (f"privmem_{i}", "sram_32k", mem_area, ("private_mem", i), False)

    def switch(i):
        return (f"switch_{i}", "noc_switch", switch_area, ("noc_switch", f"sw{i}"), False)

    shared = ("shared_mem", "sram_32k", mem_area, ("shared_mem", None), False)

    b = _RowBuilder(name, die_width)
    gap = 0.2e-3
    # Top strip: cores 0 and 1 in the corners.
    b.row(core_row_h, [core(0), icache(0), privmem(0), gap, privmem(1), icache(1), core(1)])
    # Upper middle: the two top D-caches around the shared memory.
    b.row(cache_row_h, [dcache(0), gap, shared, switch(0), switch(1), gap, dcache(1)])
    # Lower middle: bottom D-caches around the remaining switches.
    b.row(cache_row_h, [dcache(2), gap, switch(2), switch(3), gap, dcache(3)])
    # Bottom strip: cores 2 and 3 in the corners.
    b.row(core_row_h, [core(2), icache(2), privmem(2), gap, privmem(3), icache(3), core(3)])
    return b.build()


def floorplan_4xarm7():
    """Figure 4(a): 4 ARM7 cores at 100 MHz, 130 nm."""
    from repro.power.library import DEFAULT_LIBRARY

    core_area = DEFAULT_LIBRARY.area("arm7")
    return _corner_floorplan(
        name="4xarm7",
        core_class="arm7",
        core_area=core_area,
        die_width=4.9e-3,
        core_row_h=0.8e-3,
        cache_row_h=1.9e-3,
    )


def floorplan_4xarm11():
    """Figure 4(b): 4 ARM11 cores at 500 MHz, 130 nm."""
    from repro.power.library import DEFAULT_LIBRARY

    core_area = DEFAULT_LIBRARY.area("arm11")
    return _corner_floorplan(
        name="4xarm11",
        core_class="arm11",
        core_area=core_area,
        die_width=6.4e-3,
        core_row_h=1.6e-3,
        cache_row_h=1.9e-3,
    )


def floorplan_hetero(big=2, little=2, big_class="arm11", little_class="arm7"):
    """A parameterized big.LITTLE-style floorplan for heterogeneous DSE.

    ``big`` big-class cores occupy one strip per core at the top of the
    die, ``little`` little-class cores one strip per core at the bottom,
    each with its I-cache and private memory alongside; the shared
    memory and a bus region sit in the centre.  Core activity indices
    follow platform order: big cores first (``("core", 0..big-1)``),
    then little cores — the :mod:`repro.dse` space generator builds its
    :class:`~repro.mpsoc.platform.MPSoCConfig` core lists in the same
    order.

    The name (hence :meth:`Floorplan.fingerprint` and the shared
    RC-network structure cache) is deterministic per (counts, classes),
    so a sweep over thousands of configs with the same core mix shares
    one grid assembly.
    """
    from repro.power.library import DEFAULT_LIBRARY

    if big < 0 or little < 0 or big + little < 1:
        raise ValueError(
            f"floorplan_hetero needs non-negative core counts with at "
            f"least one core, got big={big}, little={little}"
        )
    lib = DEFAULT_LIBRARY
    icache_area = lib.area("icache_8k_dm")
    mem_area = lib.area("sram_32k")
    bus_area = lib.area("noc_switch")  # a bus region, switch-class sized

    name = f"hetero_{big}x{big_class}_{little}x{little_class}"
    gap = 0.2e-3
    side_area = icache_area + mem_area

    def core_row(height, core_area):
        # Row width: one core plus its I-cache and private memory.
        return (core_area + side_area) / height + 3 * gap

    big_area = lib.area(big_class)
    little_area = lib.area(little_class)
    big_h = max(0.8e-3, (big_area / 2.0) ** 0.5)
    little_h = max(0.6e-3, (little_area / 2.0) ** 0.5)
    centre_h = 0.9e-3
    die_width = max(
        core_row(big_h, big_area) if big else 0.0,
        core_row(little_h, little_area) if little else 0.0,
        (mem_area + bus_area) / centre_h + 3 * gap,
    )

    b = _RowBuilder(name, die_width)
    for i in range(big):
        b.row(big_h, [
            (f"{big_class}_{i}", big_class, big_area, ("core", i), True),
            gap,
            (f"icache_{i}", "icache_8k_dm", icache_area, ("icache", i), False),
            gap,
            (f"privmem_{i}", "sram_32k", mem_area, ("private_mem", i), False),
        ])
    b.row(centre_h, [
        ("shared_mem", "sram_32k", mem_area, ("shared_mem", None), False),
        gap,
        ("bus", "noc_switch", bus_area, ("bus", None), False),
    ])
    for j in range(little):
        i = big + j
        b.row(little_h, [
            (f"{little_class}_{i}", little_class, little_area, ("core", i), True),
            gap,
            (f"icache_{i}", "icache_8k_dm", icache_area, ("icache", i), False),
            gap,
            (f"privmem_{i}", "sram_32k", mem_area, ("private_mem", i), False),
        ])
    return b.build()


# Named floorplan factories; ``repro.scenario`` seeds its floorplan
# registry from this map so scenario specs can say "floorplan": "4xarm11"
# (or, for parameterized entries like "hetero", a
# ``{"name": ..., "params": {...}}`` dict).
BUILTIN_FLOORPLANS = {
    "4xarm7": floorplan_4xarm7,
    "4xarm11": floorplan_4xarm11,
    "hetero": floorplan_hetero,
}
