"""SW thermal modelling library (Section 5).

An equivalent-electrical RC model of a silicon die plus copper heat
spreader: the chip is divided into cubic cells of several sizes, each
cell gets five thermal resistances (four lateral, one vertical) and one
thermal capacitance, silicon conductivity is non-linear in temperature,
heat enters as current sources on the bottom cells and leaves through a
package-to-air convection resistance above the spreader.
"""

from repro.thermal.properties import (
    AMBIENT_KELVIN,
    COPPER,
    PACKAGE_TO_AIR_RESISTANCE,
    SILICON,
    Material,
    ThermalProperties,
    silicon_conductivity,
)
from repro.thermal.floorplan import (
    Floorplan,
    FloorplanComponent,
    floorplan_4xarm7,
    floorplan_4xarm11,
)
from repro.thermal.grid import Cell, Grid, build_grid
from repro.thermal.rc_network import RCNetwork, clear_assembly_cache, network_for
from repro.thermal.backends import (
    SOLVER_BACKENDS,
    BatchedLU,
    CachedLU,
    SolverBackend,
    SparseBE,
    make_backend,
)
from repro.thermal.solver import ThermalSolver
from repro.thermal.sensors import TemperatureSensor, SensorBank
from repro.thermal.analysis import OperatingPoint, OperatingPointAnalyzer

__all__ = [
    "AMBIENT_KELVIN",
    "BatchedLU",
    "CachedLU",
    "OperatingPoint",
    "OperatingPointAnalyzer",
    "COPPER",
    "Cell",
    "Floorplan",
    "FloorplanComponent",
    "Grid",
    "Material",
    "PACKAGE_TO_AIR_RESISTANCE",
    "RCNetwork",
    "SILICON",
    "SOLVER_BACKENDS",
    "SensorBank",
    "SolverBackend",
    "SparseBE",
    "TemperatureSensor",
    "ThermalProperties",
    "ThermalSolver",
    "build_grid",
    "clear_assembly_cache",
    "floorplan_4xarm7",
    "floorplan_4xarm11",
    "make_backend",
    "network_for",
    "silicon_conductivity",
]
