"""Equivalent-electrical RC network assembly (Figure 3b).

Each cell carries one thermal capacitance and couples to its neighbours
through thermal resistances: four lateral and one vertical (Figure 3b).
A resistance between two cells is the series of each cell's *half*
resistance, so the non-linear silicon conductivity is evaluated at each
cell's own temperature — exactly the "non-linear resistances inside the
silicon" the paper adopts.  The heat spreader is linear copper.

Boundary conditions (Section 5.2):

* power enters as current sources on the bottom (die) cells, each
  injecting the covering components' power density times the overlap
  area;
* no heat is transferred down into the package from the bottom cells
  (adiabatic bottom and sides);
* the top (spreader) cells lose heat by natural convection through a
  resistance equal to the package-to-air resistance weighted by the
  spreader-to-cell area ratio, in series with the cell's own vertical
  half resistance.

Every cell interacts only with its neighbours, so assembly and solve
cost are linear in the number of cells (sparse matrices).

Power injection and component readout are precomputed sparse maps:
``set_power`` is one matrix-vector product ``P = M_inj @ w`` over the
component wattage vector, and per-component mean temperatures are one
product ``W @ T`` — no per-window Python loops on the hot path.

:func:`network_for` is a structure-keyed assembly cache: scenarios that
share a floorplan and grid configuration (a parameter sweep, a batched
run) get clones of one assembled network — grid generation and edge/
matrix assembly happen exactly once per structure per process.
"""

import copy

import numpy as np
from scipy import sparse

from repro.thermal.grid import LAYER_DIE, build_grid
from repro.thermal.properties import silicon_conductivity


class RCNetwork:
    """Sparse thermal RC network over a :class:`repro.thermal.grid.Grid`."""

    #: process-wide count of full assemblies (clones don't count) — lets
    #: tests assert that a sweep shared one assembly across B scenarios.
    assemblies = 0

    #: content key of the structure this network was assembled from
    #: (set by :func:`network_for`; ``None`` for direct/custom-property
    #: builds).  Equal keys mean identical structure arrays even across
    #: distinct prototype objects, so batch grouping can key on
    #: configuration instead of object identity.
    structure_key = None

    def __init__(self, grid):
        RCNetwork.assemblies += 1
        self.grid = grid
        self.properties = grid.properties
        n = grid.num_cells
        self.num_cells = n

        cells = grid.cells
        props = self.properties
        # Per-cell capacitance C = volumetric heat * volume.
        self.capacitance = np.array(
            [
                (
                    props.die_material.volumetric_heat
                    if c.layer == LAYER_DIE
                    else props.spreader_material.volumetric_heat
                )
                * c.volume
                for c in cells
            ]
        )
        # Which cells have temperature-dependent conductivity (silicon die).
        self.is_nonlinear = np.array(
            [
                c.layer == LAYER_DIE and props.die_material.nonlinear
                for c in cells
            ],
            dtype=bool,
        )
        self._linear_k = np.array(
            [
                (
                    props.die_material.k(300.0)
                    if c.layer == LAYER_DIE
                    else props.spreader_material.k(300.0)
                )
                for c in cells
            ]
        )

        # Edge arrays: conductance of edge e = 1 / (geom_i/k_i + geom_j/k_j)
        # where geom is the half-resistance geometric factor (1/m).
        edge_i, edge_j, geom_i, geom_j = [], [], [], []
        for i, j, face_len, axis in grid.lateral_edges:
            ci, cj = cells[i], cells[j]
            di = ci.width if axis == "x" else ci.height
            dj = cj.width if axis == "x" else cj.height
            edge_i.append(i)
            edge_j.append(j)
            geom_i.append((di / 2.0) / (face_len * ci.thickness))
            geom_j.append((dj / 2.0) / (face_len * cj.thickness))
        for i, j, area in grid.vertical_edges:
            ci, cj = cells[i], cells[j]
            edge_i.append(i)
            edge_j.append(j)
            geom_i.append((ci.thickness / 2.0) / area)
            geom_j.append((cj.thickness / 2.0) / area)
        self.edge_i = np.array(edge_i, dtype=np.int64)
        self.edge_j = np.array(edge_j, dtype=np.int64)
        self.geom_i = np.array(geom_i)
        self.geom_j = np.array(geom_j)

        # Convection from top (spreader) cells to ambient: the package
        # resistance weighted by area ratio, in series with the copper
        # half resistance of the cell itself.
        spreader_area = grid.floorplan.area
        g_amb = np.zeros(n)
        k_cu = props.spreader_material.k(300.0)
        for index in grid.spreader_cells:
            cell = cells[index]
            r_conv = props.package_to_air_resistance * (spreader_area / cell.area)
            r_half = (cell.thickness / 2.0) / (k_cu * cell.area)
            g_amb[index] = 1.0 / (r_conv + r_half)
        self.g_ambient = g_amb

        # Precomputed sparse injection / readout maps (component order is
        # the floorplan's cover order; both matrices are built once).
        self.component_names = tuple(grid.component_cover)
        self._comp_index = {
            name: k for k, name in enumerate(self.component_names)
        }
        comp_area = {
            comp.name: comp.area for comp in grid.floorplan.components
        }
        inj_rows, inj_cols, inj_data = [], [], []
        read_rows, read_cols, read_data = [], [], []
        for k, name in enumerate(self.component_names):
            cover = grid.component_cover[name]
            cover_area = sum(area for _, area in cover)
            for cell_index, overlap in cover:
                inj_rows.append(cell_index)
                inj_cols.append(k)
                inj_data.append(overlap / comp_area[name])
                read_rows.append(k)
                read_cols.append(cell_index)
                read_data.append(overlap / cover_area)
        m = len(self.component_names)
        # injection: watts vector (m,) -> per-cell sources (n,)
        self._injection = sparse.csr_matrix(
            (inj_data, (inj_rows, inj_cols)), shape=(n, m)
        )
        # readout: cell temperatures (n,) -> area-weighted means (m,)
        self._readout = sparse.csr_matrix(
            (read_data, (read_rows, read_cols)), shape=(m, n)
        )

        # Power injection vector (set_power refreshes it).
        self.power = np.zeros(n)

    # -- power -----------------------------------------------------------------
    def watts_vector(self, component_powers):
        """A ``{component: watts}`` map as a vector in
        ``component_names`` order.

        Shared by :meth:`set_power` and the power-trace capture
        (:mod:`repro.trace.capture`): replay fidelity depends on the
        recorded vector being built exactly the way injection consumes
        it, so there must be only one implementation.
        """
        watts = np.zeros(len(self.component_names))
        for name, value in component_powers.items():
            if value == 0.0:  # passive/filler entries carry no source
                continue
            index = self._comp_index.get(name)
            if index is None:
                raise KeyError(f"no floorplan component {name!r}")
            watts[index] = value
        return watts

    def set_power(self, component_powers):
        """Set the current sources from a ``{component: watts}`` map.

        Power is spread over the component's covering die cells
        proportionally to overlap area ("the heat injected by the current
        source corresponds to the power density of the architectural
        component covering the cell multiplied by the surface area of the
        cell") — one sparse product ``P = M_inj @ w``.
        """
        self.power = self._injection @ self.watts_vector(component_powers)

    def total_power(self):
        return float(self.power.sum())

    # -- readout ---------------------------------------------------------------
    def component_temperatures(self, temperatures):
        """Area-weighted mean temperature per component: ``W @ T``."""
        means = self._readout @ np.asarray(temperatures)
        return dict(zip(self.component_names, means.tolist()))

    def component_temperature(self, name, temperatures):
        index = self._comp_index.get(name)
        if index is None:
            raise KeyError(f"no floorplan component {name!r}")
        row = self._readout.getrow(index)
        return float((row @ np.asarray(temperatures))[0])

    # -- conductance assembly ---------------------------------------------------
    def cell_conductivity(self, temperatures):
        """Per-cell conductivity at the given temperatures."""
        k = self._linear_k.copy()
        if self.is_nonlinear.any():
            t = np.asarray(temperatures)
            k[self.is_nonlinear] = silicon_conductivity(t[self.is_nonlinear])
        return k

    def edge_conductances(self, temperatures):
        k = self.cell_conductivity(temperatures)
        r = self.geom_i / k[self.edge_i] + self.geom_j / k[self.edge_j]
        return 1.0 / r

    def conductance_matrix(self, temperatures):
        """Sparse G(T): graph Laplacian over the edges + ambient leakage."""
        n = self.num_cells
        g = self.edge_conductances(temperatures)
        i, j = self.edge_i, self.edge_j
        rows = np.concatenate([i, j, i, j, np.arange(n)])
        cols = np.concatenate([j, i, i, j, np.arange(n)])
        data = np.concatenate([-g, -g, g, g, self.g_ambient])
        return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))

    def rhs(self):
        """Right-hand side: injected power + ambient Dirichlet term."""
        return self.power + self.g_ambient * self.properties.ambient

    # -- energy bookkeeping (property tests) ---------------------------------
    def heat_outflow(self, temperatures):
        """Watts leaving through the package at the given temperatures."""
        t = np.asarray(temperatures)
        return float(
            np.sum(self.g_ambient * (t - self.properties.ambient))
        )

    # -- structure sharing ----------------------------------------------------
    def clone(self):
        """A new network sharing this one's immutable structure arrays.

        Only the per-run ``power`` vector is private; capacitances, edge
        arrays, ambient conductances and the injection/readout matrices
        are shared read-only.  This is what makes the assembly cache in
        :func:`network_for` safe and cheap.
        """
        twin = copy.copy(self)
        twin.power = np.zeros(self.num_cells)
        return twin


# -- structure-keyed assembly cache ------------------------------------------

_ASSEMBLY_CACHE = {}
_ASSEMBLY_CACHE_LIMIT = 32


def network_for(
    floorplan,
    mode="component",
    refine_critical=1,
    die_resolution=(8, 8),
    spreader_resolution=(4, 4),
    properties=None,
):
    """A ready :class:`RCNetwork` for the floorplan + grid configuration.

    Structurally identical requests (same floorplan geometry, same grid
    knobs, default properties) share one grid generation and one matrix
    assembly per process: later calls return :meth:`RCNetwork.clone`
    views of the cached prototype.  Custom ``properties`` bypass the
    cache (the key would need a material fingerprint).
    """
    if properties is not None:
        grid = build_grid(
            floorplan,
            properties=properties,
            mode=mode,
            refine_critical=refine_critical,
            die_resolution=die_resolution,
            spreader_resolution=spreader_resolution,
        )
        return RCNetwork(grid)
    key = (
        floorplan.fingerprint(),
        mode,
        refine_critical,
        tuple(die_resolution),
        tuple(spreader_resolution),
    )
    prototype = _ASSEMBLY_CACHE.get(key)
    if prototype is None:
        grid = build_grid(
            floorplan,
            mode=mode,
            refine_critical=refine_critical,
            die_resolution=die_resolution,
            spreader_resolution=spreader_resolution,
        )
        prototype = RCNetwork(grid)
        prototype.structure_key = key
        if len(_ASSEMBLY_CACHE) >= _ASSEMBLY_CACHE_LIMIT:
            _ASSEMBLY_CACHE.pop(next(iter(_ASSEMBLY_CACHE)))
        _ASSEMBLY_CACHE[key] = prototype
    return prototype.clone()


def clear_assembly_cache():
    """Drop all cached network prototypes (tests, floorplan edits)."""
    _ASSEMBLY_CACHE.clear()
