"""Analytic calibration of the thermal model.

The paper calibrated its RC model "against a 3D-finite element analysis
given by an industrial partner"; we have no such reference, so the model
is validated against closed-form solutions that exercise the same
properties the FEM calibration would (DESIGN.md, substitution table):

* **steady layered wall** — uniform power through the si/cu/package
  stack has a 1-D analytic solution, including the non-linear silicon
  (solved by integrating ``dT/dz = q / k(T)``);
* **lumped transient** — the package resistance (20 K/W) dwarfs the
  internal resistances (~0.1 K/W), so the step response is nearly a
  single exponential with ``tau = R_pkg * C_total``;
* **grid convergence** — refining the grid must converge to the same
  steady answer.
"""

import numpy as np

from repro.thermal.floorplan import Floorplan, FloorplanComponent
from repro.thermal.grid import build_grid
from repro.thermal.properties import (
    ThermalProperties,
    silicon_conductivity,
)
from repro.thermal.rc_network import RCNetwork
from repro.thermal.solver import ThermalSolver


def uniform_floorplan(width=4e-3, height=4e-3, power_class="arm11"):
    """A die fully covered by one heat-producing component."""
    return Floorplan(
        name="uniform",
        width=width,
        height=height,
        components=[
            FloorplanComponent(
                name="block",
                x=0.0,
                y=0.0,
                width=width,
                height=height,
                power_class=power_class,
                activity_source=("core", 0),
            )
        ],
    )


def analytic_layered_wall(power, area, properties=None, nz=2000):
    """Analytic bottom temperature of the 1-D si/cu/package stack.

    With uniform heat flux ``q = power/area`` entering the die bottom and
    leaving through the package, temperature rises from ambient by the
    package drop, the copper drop and the integrated silicon drop
    (``dT/dz = q / k_si(T)``, integrated numerically to honour the
    non-linear conductivity).
    """
    props = properties or ThermalProperties()
    q = power / area
    t_spreader_top = props.ambient + power * props.package_to_air_resistance
    k_cu = props.spreader_material.k(300.0)
    t_si_top = t_spreader_top + q * props.spreader_thickness / k_cu
    # March down through the silicon against the heat flow.
    t = t_si_top
    dz = props.die_thickness / nz
    for _ in range(nz):
        t += q * dz / silicon_conductivity(t)
    return t


def steady_state_error(power=10.0, resolution=(6, 6), properties=None):
    """Compare solver steady state against the layered-wall analytic.

    Returns ``(analytic, simulated, relative_error)`` for the hottest
    (bottom/die) cell temperature.
    """
    props = properties or ThermalProperties()
    plan = uniform_floorplan()
    grid = build_grid(
        plan,
        properties=props,
        mode="uniform",
        die_resolution=resolution,
        spreader_resolution=resolution,
    )
    network = RCNetwork(grid)
    network.set_power({"block": power})
    solver = ThermalSolver(network)
    solver.steady_state()
    simulated = solver.max_temperature()
    analytic = analytic_layered_wall(power, plan.area, props)
    error = abs(simulated - analytic) / (analytic - props.ambient)
    return analytic, simulated, error


def lumped_time_constant(properties=None):
    """tau = R_pkg * C_total for the uniform floorplan (seconds)."""
    props = properties or ThermalProperties()
    plan = uniform_floorplan()
    c_total = plan.area * (
        props.die_thickness * props.die_material.volumetric_heat
        + props.spreader_thickness * props.spreader_material.volumetric_heat
    )
    return props.package_to_air_resistance * c_total


def transient_error(power=10.0, dt=0.05, properties=None):
    """Compare the simulated step response against the lumped exponential.

    Returns the maximum absolute temperature error (K) over one time
    constant, normalized by the steady-state rise.
    """
    props = properties or ThermalProperties()
    plan = uniform_floorplan()
    grid = build_grid(
        plan,
        properties=props,
        mode="uniform",
        die_resolution=(4, 4),
        spreader_resolution=(4, 4),
    )
    network = RCNetwork(grid)
    network.set_power({"block": power})
    solver = ThermalSolver(network)
    tau = lumped_time_constant(props)
    rise = power * props.package_to_air_resistance
    worst = 0.0
    steps = int(round(tau / dt))
    for _ in range(steps):
        solver.step_be(dt)
        lumped = props.ambient + rise * (1.0 - np.exp(-solver.time / tau))
        mean_t = float(np.mean(solver.temperatures))
        worst = max(worst, abs(mean_t - lumped) / rise)
    return worst


def convergence_profile(power=10.0, resolutions=((2, 2), (4, 4), (8, 8), (16, 16))):
    """Steady max temperature at increasing grid resolutions.

    Returns ``[(cells, max_temperature)]``; the sequence must flatten as
    the grid refines (checked by the calibration tests).
    """
    profile = []
    plan = uniform_floorplan()
    for resolution in resolutions:
        grid = build_grid(
            plan,
            mode="uniform",
            die_resolution=resolution,
            spreader_resolution=resolution,
        )
        network = RCNetwork(grid)
        network.set_power({"block": power})
        solver = ThermalSolver(network)
        solver.steady_state()
        profile.append((grid.num_cells, solver.max_temperature()))
    return profile


def calibration_report(power=10.0):
    """All calibration checks in one dict (used by tests and benches)."""
    analytic, simulated, err_ss = steady_state_error(power)
    err_tr = transient_error(power)
    profile = convergence_profile(power)
    spread = max(t for _, t in profile) - min(t for _, t in profile)
    return {
        "steady_analytic_K": analytic,
        "steady_simulated_K": simulated,
        "steady_relative_error": err_ss,
        "transient_relative_error": err_tr,
        "lumped_tau_s": lumped_time_constant(),
        "convergence_profile": profile,
        "convergence_spread_K": spread,
    }
