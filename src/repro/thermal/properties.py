"""Material and package thermal properties (Table 2 of the paper).

=============================  =======================================
silicon thermal conductivity   ``150 * (300/T)^(4/3)`` W/(m K)
silicon specific heat          ``1.628e-12`` J/(um^3 K)
silicon thickness              350 um
copper thermal conductivity    400 W/(m K)
copper specific heat           ``3.55e-12`` J/(um^3 K)
copper thickness               1000 um
package-to-air conductivity    20 K/W (low-power package)
=============================  =======================================

Specific heats are volumetric; the table's J/(um^3 K) values convert to
J/(m^3 K) by a factor 1e18.  The non-linear silicon conductivity is the
paper's deliberate improvement over constant-k RC models ("we have
adopted non-linear resistances inside the silicon, in order to match
the behaviour of thermal conductivity").
"""

from dataclasses import dataclass

from repro.util.units import UM

# Table 2, converted to SI.
SILICON_K300 = 150.0  # W/(m K) at 300 K
SILICON_EXPONENT = 4.0 / 3.0
SILICON_VOLUMETRIC_HEAT = 1.628e-12 * 1e18  # J/(m^3 K)
SILICON_THICKNESS = 350 * UM

COPPER_CONDUCTIVITY = 400.0  # W/(m K)
COPPER_VOLUMETRIC_HEAT = 3.55e-12 * 1e18  # J/(m^3 K)
COPPER_THICKNESS = 1000 * UM

# The paper uses 20 K/W, deliberately above vendor numbers, "because of
# the uncertainty of final MPSoC working conditions".
PACKAGE_TO_AIR_RESISTANCE = 20.0  # K/W

AMBIENT_KELVIN = 300.0


def silicon_conductivity(t_kelvin):
    """Temperature-dependent silicon conductivity, W/(m K).

    ``k(T) = 150 * (300/T)^(4/3)`` — Table 2.  Accepts scalars or NumPy
    arrays.  Conductivity falls as the die heats, which makes hot spots
    self-reinforcing; this is why the paper insists on non-linear
    resistances inside the silicon.
    """
    return SILICON_K300 * (300.0 / t_kelvin) ** SILICON_EXPONENT


@dataclass(frozen=True)
class Material:
    """One solid material of the thermal stack.

    ``conductivity`` is either a constant (W/(m K)) or a callable of
    temperature; :meth:`k` resolves both.
    """

    name: str
    conductivity: object
    volumetric_heat: float  # J/(m^3 K)

    @property
    def nonlinear(self):
        return callable(self.conductivity)

    def k(self, t_kelvin):
        if self.nonlinear:
            return self.conductivity(t_kelvin)
        return self.conductivity


SILICON = Material(
    name="silicon",
    conductivity=silicon_conductivity,
    volumetric_heat=SILICON_VOLUMETRIC_HEAT,
)

COPPER = Material(
    name="copper",
    conductivity=COPPER_CONDUCTIVITY,
    volumetric_heat=COPPER_VOLUMETRIC_HEAT,
)


@dataclass(frozen=True)
class ThermalProperties:
    """The full Table 2 parameter set, overridable for exploration."""

    die_material: Material = SILICON
    spreader_material: Material = COPPER
    die_thickness: float = SILICON_THICKNESS
    spreader_thickness: float = COPPER_THICKNESS
    package_to_air_resistance: float = PACKAGE_TO_AIR_RESISTANCE
    ambient: float = AMBIENT_KELVIN

    def table(self):
        """Render Table 2 rows (used by the Table 2 bench)."""
        return [
            ("silicon thermal conductivity", "150 * (300/T)^(4/3) W/mK"),
            ("silicon specific heat", "1.628e-12 J/um^3K"),
            ("silicon thickness", f"{self.die_thickness / UM:.0f} um"),
            ("copper thermal conductivity", f"{COPPER_CONDUCTIVITY:.0f} W/mK"),
            ("copper specific heat", "3.55e-12 J/um^3K"),
            ("copper thickness", f"{self.spreader_thickness / UM:.0f} um"),
            (
                "package-to-air conductivity",
                f"{self.package_to_air_resistance:.0f} K/W in low power",
            ),
        ]
