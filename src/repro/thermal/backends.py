"""Pluggable linear-solver backends for the backward-Euler integrator.

The co-emulation loop advances one sampling period per window by solving

    (C/dt + G(T_n)) T_{n+1} = (C/dt) T_n + P + G_amb T_amb

Three strategies for that solve, all behind one :class:`SolverBackend`
interface and resolvable by name through :data:`SOLVER_BACKENDS`:

``sparse_be`` (:class:`SparseBE`)
    The reference: re-assemble ``G(T_n)`` and run a fresh sparse
    factorization every step.  Exact semi-implicit behaviour, and the
    baseline every other backend is tested against.

``cached_lu`` (:class:`CachedLU`)
    Factorize ``A = C/dt + G(T_ref)`` once and reuse the LU factors
    across windows.  **Refactorization policy:** the factors are rebuilt
    only when (a) ``dt`` changes, (b) :meth:`~SolverBackend.invalidate`
    is called, or (c) any *non-linear* cell (silicon die) has drifted
    more than ``refactor_tolerance_kelvin`` away from the temperature
    the factors were built at.  For linear stacks (constant-k die, or a
    spreader-dominated regime) this is exact and factorizes exactly
    once; with the paper's non-linear silicon the frozen conductivity
    introduces a bounded error of order ``(4/3) * tol / T`` in the
    silicon conductances — well under 1 % for the default 1 K tolerance.

``batched_lu`` (:class:`BatchedLU`)
    :class:`CachedLU` plus a true multi-right-hand-side path: B
    structurally identical scenarios step together through **one**
    factorization and a single ``solve(n x B)`` call per window, so a
    B-scenario sweep costs one factorization instead of B x windows.
    The shared reference temperature is the batch column mean, refreshed
    under the same drift tolerance.

Backends carry ``factorizations`` / ``solves`` counters so benchmarks
and tests can assert the reuse actually happens.
"""

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import factorized, spsolve

from repro.util.registry import Registry

SOLVER_BACKENDS = Registry("solver backend")


class SolverBackend:
    """One strategy for the backward-Euler solve, bound to a network.

    Subclasses implement :meth:`step`; :meth:`step_batch` has a generic
    per-column reference implementation that exact backends inherit.
    """

    name = None

    def __init__(self):
        self.network = None
        self.factorizations = 0
        self.solves = 0

    def bind(self, network):
        """Attach to an :class:`repro.thermal.rc_network.RCNetwork`.

        A backend serves exactly one network: rebinding a live backend
        to a different network would silently mix two runs' physics, so
        it raises — construct a fresh backend per solver instead.
        """
        if self.network is not None and self.network is not network:
            raise ValueError(
                f"{type(self).__name__} is already bound to a network; "
                f"construct one backend per solver"
            )
        self.network = network
        self.invalidate()
        return self

    def invalidate(self):
        """Drop any cached factorization (grid or material change)."""

    def step(self, temperatures, dt):
        """Return ``T_{n+1}`` after one implicit step of length ``dt``."""
        raise NotImplementedError

    def step_batch(self, temperatures, dt, rhs):
        """Step an ``(n, B)`` batch of temperature columns at once.

        ``rhs`` holds each column's full source term ``P + G_amb T_amb``
        (the batch shares one network *structure* but not one power
        vector).  The reference implementation solves column by column
        with each column's own ``G(T)`` — exact, but B factorizations.
        """
        out = np.empty_like(temperatures)
        net = self.network
        c_over_dt = net.capacitance / dt
        for col in range(temperatures.shape[1]):
            t = temperatures[:, col]
            a = net.conductance_matrix(t) + sparse.diags(c_over_dt)
            self.factorizations += 1
            self.solves += 1
            out[:, col] = spsolve(a.tocsc(), c_over_dt * t + rhs[:, col])
        return out

    def stats(self):
        return {"factorizations": self.factorizations, "solves": self.solves}


@SOLVER_BACKENDS.register("sparse_be")
class SparseBE(SolverBackend):
    """Reference backend: assemble and factorize from scratch each step."""

    name = "sparse_be"

    def step(self, temperatures, dt):
        net = self.network
        c_over_dt = net.capacitance / dt
        a = net.conductance_matrix(temperatures) + sparse.diags(c_over_dt)
        b = c_over_dt * temperatures + net.rhs()
        self.factorizations += 1
        self.solves += 1
        return spsolve(a.tocsc(), b)


@SOLVER_BACKENDS.register("cached_lu")
class CachedLU(SolverBackend):
    """Factorize once, backsolve every window, refactorize on drift.

    ``refactor_tolerance_kelvin`` bounds how far any non-linear (silicon)
    cell may drift from the linearization temperature before the factors
    are rebuilt; see the module docstring for the error analysis.
    """

    name = "cached_lu"

    def __init__(self, refactor_tolerance_kelvin=1.0):
        super().__init__()
        if refactor_tolerance_kelvin <= 0:
            raise ValueError("refactor tolerance must be positive kelvin")
        self.refactor_tolerance_kelvin = float(refactor_tolerance_kelvin)
        self._solve = None
        self._dt = None
        self._t_ref = None
        self._c_over_dt = None

    def invalidate(self):
        self._solve = None
        self._dt = None
        self._t_ref = None
        self._c_over_dt = None

    # -- factorization policy ------------------------------------------------
    def _drifted(self, temperatures):
        """Has any non-linear cell left the tolerance band around T_ref?"""
        mask = self.network.is_nonlinear
        if not mask.any():
            return False
        drift = np.abs(temperatures[mask] - self._t_ref[mask])
        return float(drift.max()) > self.refactor_tolerance_kelvin

    def _refactor(self, t_ref, dt):
        net = self.network
        self._c_over_dt = net.capacitance / dt
        a = net.conductance_matrix(t_ref) + sparse.diags(self._c_over_dt)
        self._solve = factorized(a.tocsc())
        self._dt = dt
        self._t_ref = np.array(t_ref, dtype=float, copy=True)
        self.factorizations += 1

    def _ensure_factors(self, t_ref, temperatures, dt):
        if self._solve is None or dt != self._dt or self._drifted(temperatures):
            self._refactor(t_ref, dt)

    # -- stepping ------------------------------------------------------------
    def step(self, temperatures, dt):
        self._ensure_factors(temperatures, temperatures, dt)
        b = self._c_over_dt * temperatures + self.network.rhs()
        self.solves += 1
        return self._solve(b)


@SOLVER_BACKENDS.register("batched_lu")
class BatchedLU(CachedLU):
    """CachedLU with a shared multi-RHS solve for scenario batches.

    As a single-scenario backend it behaves exactly like
    :class:`CachedLU`.  Bound once per *group* of structurally identical
    networks, :meth:`step_batch` advances every group member through one
    factorization (linearized at the batch-mean temperature) and one
    multi-column backsolve per window.
    """

    name = "batched_lu"

    def step_batch(self, temperatures, dt, rhs):
        reference = temperatures.mean(axis=1)
        self._ensure_factors(reference, temperatures, dt)
        b = self._c_over_dt[:, None] * temperatures + rhs
        self.solves += temperatures.shape[1]
        return self._solve(b)

    def _drifted(self, temperatures):
        # Refactorize when the *batch mean* leaves the tolerance band:
        # a persistent spread between columns cannot be reduced by
        # re-linearizing (one matrix serves every column), so chasing
        # individual columns would thrash the factorization for no
        # accuracy gain.  The residual per-column error is bounded by
        # the column's distance from the batch mean.
        mask = self.network.is_nonlinear
        if not mask.any():
            return False
        t = temperatures.mean(axis=1) if temperatures.ndim == 2 else temperatures
        drift = np.abs(t[mask] - self._t_ref[mask])
        return float(drift.max()) > self.refactor_tolerance_kelvin


def make_backend(spec=None):
    """Resolve a backend spec to a fresh (unbound) backend instance.

    ``spec`` may be ``None`` (the reference ``sparse_be``), a registered
    name, a ``{"name": ..., "params": {...}}`` dict (the JSON form that
    rides inside :class:`repro.core.framework.FrameworkConfig`), or an
    already constructed :class:`SolverBackend`.
    """
    if spec is None:
        spec = "sparse_be"
    if isinstance(spec, SolverBackend):
        return spec
    if isinstance(spec, str):
        return SOLVER_BACKENDS.get(spec)()
    if isinstance(spec, dict):
        if "name" not in spec:
            raise ValueError("a solver-backend dict needs a 'name' entry")
        unknown = set(spec) - {"name", "params"}
        if unknown:
            raise ValueError(
                f"unknown solver-backend keys: {', '.join(sorted(unknown))}"
            )
        return SOLVER_BACKENDS.get(spec["name"])(**spec.get("params", {}))
    raise TypeError(
        f"solver backend must be a name, dict or SolverBackend, "
        f"got {type(spec).__name__}"
    )
