"""Thermal operating-point analysis.

Design aids built on the steady-state solver, formalizing the questions
the paper's DFS experiment raises: *what temperature does an operating
point settle at*, *can a given DFS low point hold a ceiling at all*, and
*what is the slowest clock that still holds it* — the quantities a
designer sweeps before committing to a policy (Section 7's "explore the
design space of complex thermal management policies").
"""

from dataclasses import dataclass

from repro.power.models import ActivityVector, PowerModel
from repro.thermal.grid import build_grid
from repro.thermal.rc_network import RCNetwork
from repro.thermal.solver import ThermalSolver


@dataclass
class OperatingPoint:
    """Steady-state outcome of one (frequency, activity) pair."""

    frequency_hz: float
    total_power_w: float
    max_temperature_k: float
    component_temperatures: dict

    def holds(self, ceiling_kelvin):
        """True if this operating point stays below the ceiling."""
        return self.max_temperature_k < ceiling_kelvin


class OperatingPointAnalyzer:
    """Steady-state explorer over one floorplan + activity profile."""

    def __init__(self, floorplan, library=None, grid_mode="component",
                 spreader_resolution=(3, 3)):
        self.floorplan = floorplan
        self.power_model = PowerModel(floorplan, library)
        grid = build_grid(
            floorplan, mode=grid_mode, spreader_resolution=spreader_resolution
        )
        self.network = RCNetwork(grid)

    def _activity(self, utilization):
        if isinstance(utilization, ActivityVector):
            return utilization
        activity = ActivityVector(1)
        for comp in self.floorplan.active_components():
            activity.set(comp.activity_source, utilization)
        return activity

    def steady_state(self, frequency_hz, utilization=1.0):
        """Solve the steady state of one operating point.

        ``utilization`` is either a scalar applied to every component or
        a full :class:`ActivityVector` (e.g. a measured workload profile).
        """
        activity = self._activity(utilization)
        powers = self.power_model.component_power(
            activity, frequency_hz=frequency_hz
        )
        self.network.set_power(powers)
        solver = ThermalSolver(self.network)
        solver.steady_state()
        return OperatingPoint(
            frequency_hz=frequency_hz,
            total_power_w=sum(powers.values()),
            max_temperature_k=solver.max_temperature(),
            component_temperatures=solver.component_temperatures(),
        )

    def sweep(self, frequencies, utilization=1.0):
        """Steady states over a list of frequencies (for plots/tables)."""
        return [self.steady_state(f, utilization) for f in frequencies]

    def minimum_holding_frequency(self, ceiling_kelvin, utilization=1.0,
                                  low_hz=1e6, high_hz=2e9, tol_hz=1e6):
        """The highest clock whose steady state stays below the ceiling.

        Binary search over frequency (steady temperature is monotone in
        clock under the linear-in-frequency dynamic power model).
        Returns 0.0 if even ``low_hz`` overheats, ``high_hz`` if the
        ceiling is never reached.
        """
        if ceiling_kelvin <= self.network.properties.ambient:
            raise ValueError("ceiling below ambient is unreachable")
        if self.steady_state(high_hz, utilization).holds(ceiling_kelvin):
            return high_hz
        if not self.steady_state(low_hz, utilization).holds(ceiling_kelvin):
            return 0.0
        lo, hi = low_hz, high_hz
        while hi - lo > tol_hz:
            mid = 0.5 * (lo + hi)
            if self.steady_state(mid, utilization).holds(ceiling_kelvin):
                lo = mid
            else:
                hi = mid
        return lo

    def dfs_low_point_holds(self, low_hz, ceiling_kelvin, utilization=1.0):
        """Can a DFS policy with this low operating point hold the
        ceiling at all?  (The ablation's 250 MHz insight, as an API.)"""
        return self.steady_state(low_hz, utilization).holds(ceiling_kelvin)
