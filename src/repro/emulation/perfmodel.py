"""Calibrated wall-clock models: FPGA emulator vs MPARM-class simulator.

Table 3's experiment compares the same workloads on (a) the FPGA
emulation framework and (b) the MPARM cycle-accurate SystemC simulator
on a 3 GHz Pentium 4.  We cannot run either, so this module models both
platforms' wall-clock from first principles, calibrated against the
paper's own six published rows:

* **Emulator**: executes one virtual cycle per 100 MHz board cycle
  regardless of system size (all components are real parallel hardware),
  stretched only by VPCM freezes.  This is why its Table 3 column is
  flat.
* **MPARM-class simulator**: host seconds per simulated cycle grow as a
  power law in the number of monitored components (every component's
  signals are evaluated every cycle; per-core modules are part of the
  component count), with multipliers for interconnect-bound workloads
  (more signal activity per cycle — the paper blames exactly this for
  the dithering rows), for flit-level NoC switches, and for co-simulated
  SW thermal modelling:

      cost(s/cycle) = c * components^p * (1 + s*switches)
                        * io_mult^[io-bound] * thermal_mult^[thermal]

  ``fit_mparm_model`` derives (c, p) from the three MATRIX rows and each
  multiplier from the row that isolates it; the Table 3 bench prints the
  fit and its residuals.

Known inconsistencies in the source data, reported as-is: the paper's
MATRIX-TM row prints a 1612x speedup while its own wall-clocks
(2 days vs 5'02") give 572x, and the Table 3 ratios imply a ~1 MHz
single-core MPARM rate while the text quotes 120 kHz.  We calibrate
against the printed per-row speedups.
"""

import math
from dataclasses import dataclass, field

from repro.util.units import MHZ

# The six published rows: (name, cores, monitored components, noc switches,
# io_bound?, thermal?, MPARM seconds, emulator seconds, printed speedup).
TABLE3_ROWS = [
    ("Matrix (one core)", 1, 7, 0, False, False, 106.0, 1.2, 88),
    ("Matrix (4 cores)", 4, 22, 0, False, False, 323.0, 1.2, 269),
    ("Matrix (8 cores)", 8, 42, 0, False, False, 797.0, 1.2, 664),
    ("Dithering (4 cores-bus)", 4, 30, 0, True, False, 155.0, 0.18, 861),
    ("Dithering (4 cores-NoC)", 4, 30, 2, True, False, 195.0, 0.17, 1147),
    ("Matrix-TM (4 cores-NoC)", 4, 28, 4, False, True, 172800.0, 302.0, 1612),
]


@dataclass
class EmulatorPerformanceModel:
    """Wall-clock model of the FPGA side (Section 4.2 timing rules)."""

    physical_hz: float = 100 * MHZ

    def wall_seconds(self, virtual_cycles, virtual_hz=None, freeze_seconds=0.0):
        """Board wall-clock for a run of ``virtual_cycles``.

        One virtual cycle per physical cycle; emulating above the board
        clock does not slow the board down (cycles are cycles) — it only
        changes how the sampling windows are *interpreted*, so the wall
        clock for a fixed virtual-cycle count is flat in ``virtual_hz``
        and in system size.  Freezes (Ethernet congestion, memory
        penalties) add on top.
        """
        if virtual_cycles < 0:
            raise ValueError("negative cycle count")
        return virtual_cycles / self.physical_hz + freeze_seconds

    def rate_hz(self):
        return self.physical_hz


@dataclass
class MparmPerformanceModel:
    """Power-law cost model of an MPARM-class cycle-accurate simulator."""

    c: float  # base seconds per simulated cycle (single component)
    p: float  # component-count exponent
    switch_coeff: float  # extra fraction per flit-level NoC switch
    io_multiplier: float  # interconnect-bound workload factor
    thermal_multiplier: float  # SW thermal co-simulation factor
    fit_residuals: dict = field(default_factory=dict)

    def seconds_per_cycle(
        self, cores, components=None, noc_switches=0, io_bound=False, thermal=False
    ):
        """Host seconds per simulated cycle.

        ``components`` defaults to the platform structure the paper's
        configurations imply (five modules per core plus shared memory
        and interconnect) when only ``cores`` is given.
        """
        if components is None:
            components = 5 * cores + 2
        cost = self.c * components**self.p * (1.0 + self.switch_coeff * noc_switches)
        if io_bound:
            cost *= self.io_multiplier
        if thermal:
            cost *= self.thermal_multiplier
        return cost

    def rate_hz(self, cores, components=None, noc_switches=0, io_bound=False,
                thermal=False):
        """Simulated cycles per host second for a configuration."""
        return 1.0 / self.seconds_per_cycle(
            cores, components, noc_switches, io_bound, thermal
        )

    def wall_seconds(self, virtual_cycles, cores, components=None, noc_switches=0,
                     io_bound=False, thermal=False):
        return virtual_cycles * self.seconds_per_cycle(
            cores, components, noc_switches, io_bound, thermal
        )


def fit_mparm_model(physical_hz=100 * MHZ, rows=None):
    """Calibrate the MPARM cost model from the paper's Table 3 rows.

    Printed speedup = emulator rate x seconds per simulated cycle, so
    each row's implied cost is ``speedup / physical_hz``.  The MATRIX
    series (compute-bound, bus, no thermal) fixes the power law (c, p)
    by least squares in log space; the dithering-bus row isolates the
    interconnect-bound multiplier, the dithering-NoC row the per-switch
    coefficient, and the MATRIX-TM row the thermal multiplier.
    """
    rows = TABLE3_ROWS if rows is None else rows
    matrix_rows = [r for r in rows if not r[4] and not r[5] and r[3] == 0]
    log_n = [math.log(r[2]) for r in matrix_rows]
    log_cost = [math.log(r[8] / physical_hz) for r in matrix_rows]
    n = len(matrix_rows)
    mean_x = sum(log_n) / n
    mean_y = sum(log_cost) / n
    var = sum((x - mean_x) ** 2 for x in log_n)
    p = sum((x - mean_x) * (y - mean_y) for x, y in zip(log_n, log_cost)) / var
    c = math.exp(mean_y - p * mean_x)

    model = MparmPerformanceModel(
        c=c, p=p, switch_coeff=0.0, io_multiplier=1.0, thermal_multiplier=1.0
    )

    def _implied_cost(row):
        return row[8] / physical_hz

    for row in rows:
        _, cores, comps, switches, io_bound, thermal, *_ = row
        if io_bound and switches == 0:
            base = model.seconds_per_cycle(cores, comps)
            model.io_multiplier = max(1.0, _implied_cost(row) / base)
    for row in rows:
        _, cores, comps, switches, io_bound, thermal, *_ = row
        if io_bound and switches > 0:
            base = model.seconds_per_cycle(cores, comps, 0, io_bound=True)
            ratio = _implied_cost(row) / base
            model.switch_coeff = max(0.0, (ratio - 1.0) / switches)
    for row in rows:
        _, cores, comps, switches, io_bound, thermal, *_ = row
        if thermal:
            base = model.seconds_per_cycle(cores, comps, switches, io_bound)
            model.thermal_multiplier = max(1.0, _implied_cost(row) / base)

    residuals = {}
    for name, cores, comps, switches, io_bound, thermal, _m, _e, speedup in rows:
        predicted = physical_hz * model.seconds_per_cycle(
            cores, comps, switches, io_bound, thermal
        )
        residuals[name] = (speedup, predicted, predicted / speedup - 1.0)
    model.fit_residuals = residuals
    return model


DEFAULT_MPARM_MODEL = fit_mparm_model()
