"""Execution engines and platform performance models.

* :mod:`repro.emulation.engine` — the fast event-driven engine that
  plays the FPGA's role: cores advance in global time order, shared
  resources are timed with busy-until bookkeeping.
* :mod:`repro.emulation.cycle_accurate` — a signal-level engine that
  evaluates every component every cycle, the way an HDL/SystemC kernel
  (MPARM) does; the measured baseline for Table 3's shape.
* :mod:`repro.emulation.windowed` — the vectorized window-level fast
  model, calibrated once against the event-driven engine.
* :mod:`repro.emulation.backends` — the ``EMULATION_BACKENDS`` registry
  putting all three behind one contract (mirrors ``SOLVER_BACKENDS``).
* :mod:`repro.emulation.perfmodel` — calibrated wall-clock models of the
  FPGA emulator and an MPARM-class simulator.
* :mod:`repro.emulation.ethernet` — the FPGA-to-host statistics link.
"""

from repro.emulation.backends import (
    EMULATION_BACKENDS,
    EmulationBackend,
    make_emulation_backend,
)
from repro.emulation.engine import EventDrivenEngine
from repro.emulation.ethernet import EthernetLink
from repro.emulation.perfmodel import (
    EmulatorPerformanceModel,
    MparmPerformanceModel,
    TABLE3_ROWS,
)
from repro.emulation.windowed import WindowedWorkload

__all__ = [
    "EMULATION_BACKENDS",
    "EmulationBackend",
    "EmulatorPerformanceModel",
    "EthernetLink",
    "EventDrivenEngine",
    "MparmPerformanceModel",
    "TABLE3_ROWS",
    "WindowedWorkload",
    "make_emulation_backend",
]
