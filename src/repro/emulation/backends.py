"""Pluggable emulation backends for the HW/SW side of the co-emulation.

The thermal side has had fast/exact strategies behind one contract since
:data:`repro.thermal.backends.SOLVER_BACKENDS`; this module gives the
emulation side the same split (the CHESSY pattern from PAPERS.md: a fast
engine and an exact engine coexisting behind one synchronization
contract).  A backend builds the *workload model* the framework steps
once per sampling window — anything with the ``DirectWorkload`` duck
type (``done`` / ``advance(window_cycles)`` / ``instructions``):

``event_driven`` (:class:`EventDrivenBackend`)
    The exact reference: interpret every instruction with
    :class:`repro.emulation.engine.EventDrivenEngine`.  Functional and
    timing results are the ground truth every other backend is measured
    against.

``cycle_accurate`` (:class:`CycleAccurateBackend`)
    The signal-level reference: evaluate every component every cycle
    (:class:`repro.emulation.cycle_accurate.CycleAccurateEngine`).
    Architecturally exact and deterministic; its per-cycle pipeline
    timing differs from the event-driven model's (each instruction pays
    explicit fetch-issue/wait cycles), so per-window power agrees only
    loosely — and it is orders of magnitude *slower*; register it for
    cross-checks, not for sweeps.

``windowed`` (:class:`WindowedBackend`)
    The fast path: calibrate once against the event-driven engine, then
    advance all cores one window at a time in NumPy array operations
    (:mod:`repro.emulation.windowed`).  Identical workload-completion
    semantics; per-window power within a declared tolerance.

Each backend declares ``exact`` (bit-for-bit deterministic timing) and
``power_tolerance_pct`` — the maximum per-window total-power deviation
from ``event_driven`` the registry-driven equivalence tests enforce.
"""

from repro.emulation.cycle_accurate import CycleAccurateEngine
from repro.emulation.windowed import WindowedWorkload
from repro.util.registry import Registry

EMULATION_BACKENDS = Registry("emulation backend")


class EmulationBackend:
    """One strategy for advancing the platform per sampling window.

    Subclasses implement :meth:`build_workload`, returning a
    workload-model object (``DirectWorkload`` duck type) bound to the
    given platform and power model.
    """

    name = None
    #: Timing is exact and deterministic (digests are bit-for-bit
    #: reproducible and match the event-driven reference's semantics).
    exact = True
    #: Max per-window total-power deviation from ``event_driven`` (%),
    #: enforced by the registry-driven equivalence tests.
    power_tolerance_pct = 0.0

    def build_workload(self, platform, power_model):
        raise NotImplementedError


@EMULATION_BACKENDS.register("event_driven")
class EventDrivenBackend(EmulationBackend):
    """Exact reference: per-instruction event-driven interpretation."""

    name = "event_driven"
    exact = True
    power_tolerance_pct = 0.0

    def build_workload(self, platform, power_model):
        from repro.core.workload_model import DirectWorkload

        return DirectWorkload(platform, power_model)


class CycleAccurateWorkload:
    """``DirectWorkload``-shaped wrapper around the signal-level engine."""

    def __init__(self, platform, power_model):
        from repro.core.stats import diff_stats

        self.platform = platform
        self.power_model = power_model
        self.engine = CycleAccurateEngine(platform)
        self._diff_stats = diff_stats
        self._horizon = 0
        self._last_stats = platform.stats()
        self.instructions = 0

    @property
    def done(self):
        return self.engine.all_halted

    def advance(self, window_cycles):
        if window_cycles < 0:
            raise ValueError("negative window")
        self._horizon += window_cycles
        self.instructions += self.engine.run_window(self._horizon)
        stats = self.platform.stats()
        delta = self._diff_stats(stats, self._last_stats)
        self._last_stats = stats
        return self.power_model.activity_from_stats(delta, window_cycles)


@EMULATION_BACKENDS.register("cycle_accurate")
class CycleAccurateBackend(EmulationBackend):
    """Signal-level reference: every component evaluated every cycle."""

    name = "cycle_accurate"
    exact = True
    # The per-cycle pipeline charges explicit fetch/memory wait cycles
    # the event-driven timing folds into instruction latency, so the
    # active/stall split (hence core power) differs structurally.
    power_tolerance_pct = 50.0

    def build_workload(self, platform, power_model):
        return CycleAccurateWorkload(platform, power_model)


@EMULATION_BACKENDS.register("windowed")
class WindowedBackend(EmulationBackend):
    """Fast vectorized model calibrated against the event-driven engine.

    See :mod:`repro.emulation.windowed` for the calibration, replay and
    contention model.
    """

    name = "windowed"
    exact = False
    # Steady-state windows agree with event_driven to well under 1%; the
    # bound is set by boundary windows at very fine sampling (the cold
    # cache warm-up and the workload's final partial window concentrate
    # activity the stationary per-instruction rates spread out).
    power_tolerance_pct = 10.0

    def __init__(self, max_utilization=0.95,
                 calibration_max_instructions=50_000_000):
        if not 0.0 < max_utilization < 1.0:
            raise ValueError("max_utilization must be in (0, 1)")
        if calibration_max_instructions is not None \
                and calibration_max_instructions < 1:
            raise ValueError("calibration budget must be positive or None")
        self.max_utilization = max_utilization
        self.calibration_max_instructions = calibration_max_instructions

    def build_workload(self, platform, power_model):
        return WindowedWorkload(
            platform,
            power_model,
            max_utilization=self.max_utilization,
            calibration_max_instructions=self.calibration_max_instructions,
        )


def make_emulation_backend(spec=None):
    """Resolve a backend spec to an :class:`EmulationBackend` instance.

    ``spec`` may be ``None`` (the exact ``event_driven`` reference), a
    registered name, a ``{"name": ..., "params": {...}}`` dict (the JSON
    form that rides inside
    :class:`repro.core.framework.FrameworkConfig`), or an already
    constructed :class:`EmulationBackend`.
    """
    if spec is None:
        spec = "event_driven"
    if isinstance(spec, EmulationBackend):
        return spec
    if isinstance(spec, str):
        return EMULATION_BACKENDS.get(spec)()
    if isinstance(spec, dict):
        if "name" not in spec:
            raise ValueError("an emulation-backend dict needs a 'name' entry")
        unknown = set(spec) - {"name", "params"}
        if unknown:
            raise ValueError(
                f"unknown emulation-backend keys: {', '.join(sorted(unknown))}"
            )
        return EMULATION_BACKENDS.get(spec["name"])(**spec.get("params", {}))
    raise TypeError(
        f"emulation backend must be a name, dict or EmulationBackend, "
        f"got {type(spec).__name__}"
    )
