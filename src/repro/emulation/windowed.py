"""Vectorized window-level performance model (the fast emulation backend).

Where :class:`repro.emulation.engine.EventDrivenEngine` interprets every
instruction of every core in Python, this model advances **all cores of
a platform for one sampling window in a handful of NumPy array
operations**.  The trade is the one FASE makes (PAPERS.md): give up
per-instruction exactness to get a fast vehicle for end-to-end
performance/thermal numbers, while the event-driven engine stays
available as the exact reference behind the same
:data:`repro.emulation.backends.EMULATION_BACKENDS` contract.

How it works
------------

*Calibration (once per platform content).*  The event-driven engine runs
the loaded programs to completion once and we record exact per-core
totals: instructions, active/stall cycles, instruction-class mix, cache
hit/miss/eviction traffic, private/shared-memory words, memory-controller
fetch/load/store and clock-suppression counts, interconnect transactions
and per-master bus wait.  Everything is reduced to per-instruction rates.
Calibrations are cached process-wide, keyed by a digest of the platform
configuration plus the loaded program text and memory contents — a sweep
of N thermal/policy variants over one workload calibrates **once**
(mirroring how ``network_for`` shares one RC-network assembly).  The
calibration run is side-effect free: functional state (memories, caches,
registers) is snapshotted and restored, statistics counters are reset.

*Replay (every window).*  Each core advances ``n_c = W / b_c`` modeled
instructions per window of ``W`` cycles (``b_c`` = busy cycles per
instruction), clipped to its remaining calibrated instruction budget, and
the per-instruction rates are bulk-applied to the *real* platform
counters.  The sniffers, ``Platform.stats()`` deltas and
``PowerModel.activity_from_stats`` therefore see the same observables a
real run produces — ``_window_power()`` is untouched.

*Contention.*  Shared-resource waiting is corrected with a closed-form
M/M/1-style model: the measured per-instruction bus wait ``w_c``
decomposes as ``w_c = k_c * U/(1-U)`` at the calibrated utilization
``U_cal``, fixing the constant ``k_c``; at run time the utilization is
re-estimated from the aggregate instruction throughput of the still-
running cohort and the wait re-applied, so when cores halt at different
times the survivors speed up the way they do under the event-driven
engine.  With the full cohort running the fixed point reproduces the
calibrated per-core busy time *exactly*, which is what makes workload
completion land on the same window as the reference.

What it does **not** do: execute instructions.  Architectural memory
state stays at its pre-run contents (the calibration run restores it),
so results computed by the program never materialize — this is a
performance/power model, not a functional simulator.  Use the
``event_driven`` backend when the run's outputs matter.
"""

import copy
import hashlib
import json
import time

import numpy as np

from repro.core.stats import diff_stats
from repro.emulation.engine import EventDrivenEngine
from repro.mpsoc import events as ev
from repro.mpsoc.processor import STATE_HALTED

# Process-wide calibration cache: content digest -> WindowedCalibration.
# One calibration serves every scenario variant sharing a platform +
# workload (thermal knobs, policies and solver backends don't affect it).
_CALIBRATIONS = {}

# stats()-delta key -> raw CounterBlock key, per component family.  The
# calibration reads stats deltas; replay bulk-writes the raw counters so
# stats()/sniffers reproduce the same numbers.
_CACHE_KEYS = (
    ("accesses", "accesses"),
    ("hits", ev.CACHE_HIT),
    ("misses", ev.CACHE_MISS),
    ("evictions", ev.CACHE_EVICT),
    ("writebacks", ev.CACHE_WRITEBACK),
)
_MEM_KEYS = (("reads", ev.MEM_READ), ("writes", ev.MEM_WRITE))
_MEMCTRL_KEYS = ("fetches", "loads", "stores", "clk_suppression_requests",
                 "suppressed_real_cycles")
_BUS_KEYS = (
    ("transactions", ev.BUS_TXN),
    ("words", "words"),
    ("busy_cycles", "busy_cycles"),
)
_NOC_KEYS = (
    ("packets", ev.NOC_PACKET),
    ("flits", ev.NOC_FLIT),
    ("ocp_transactions", "ocp_transactions"),
)


def clear_calibration_cache():
    """Drop all cached calibrations (tests / memory pressure)."""
    _CALIBRATIONS.clear()


def calibration_cache_size():
    return len(_CALIBRATIONS)


def platform_content_digest(platform):
    """Digest of everything that determines the platform's timing run.

    Covers the architecture configuration, each core's bound program
    (entry/text base/code words) and the initial contents of every
    memory (program data, shared input sets).
    """
    h = hashlib.sha256()
    h.update(json.dumps(platform.config.to_dict(), sort_keys=True).encode())
    for core in platform.cores:
        h.update(b"|core|")
        program = core.program
        if program is not None:
            h.update(str((program.entry, program.text_base)).encode())
            for word in program.code:
                h.update(int(word & 0xFFFFFFFF).to_bytes(4, "little"))
    for memory in [*platform.private_mems, platform.shared_mem]:
        h.update(b"|mem|")
        h.update(bytes(memory.data))
    return h.hexdigest()


def _functional_snapshot(platform):
    """Capture the architectural (functional) state the calibration run
    will mutate: memory bytes, cache tag arrays, core registers/PC."""
    return {
        "mems": [bytes(m.data)
                 for m in [*platform.private_mems, platform.shared_mem]],
        "caches": [copy.deepcopy(c._sets)
                   for c in platform.icaches + platform.dcaches],
        "cores": [(list(c.regs), c.pc, c.state) for c in platform.cores],
    }


def _restore_functional(platform, snapshot):
    for memory, blob in zip(
        [*platform.private_mems, platform.shared_mem], snapshot["mems"]
    ):
        memory.data[:] = blob
    for cache, sets in zip(
        platform.icaches + platform.dcaches, snapshot["caches"]
    ):
        cache._sets = copy.deepcopy(sets)
    for core, (regs, pc, state) in zip(platform.cores, snapshot["cores"]):
        core.regs = list(regs)
        core.pc = pc
        core.state = state


def _reset_statistics(platform):
    """Zero every statistics counter and timing residue the calibration
    run accumulated, leaving the platform observably pristine."""
    for core in platform.cores:
        core.reset_stats()
        core.cycle = 0
    for cache in platform.icaches + platform.dcaches:
        cache.counters.reset()
    for memory in [*platform.private_mems, platform.shared_mem]:
        memory.counters.reset()
        memory.port_busy_until = 0
    for memctrl in platform.memctrls:
        memctrl.counters.reset()
    inter = platform.interconnect
    inter.counters.reset()
    for master in getattr(inter, "per_master_wait", {}):
        inter.per_master_wait[master] = 0
    if hasattr(inter, "_busy_until"):
        inter._busy_until = 0
    if hasattr(inter, "switch_flits"):
        for switch in inter.switch_flits:
            inter.switch_flits[switch] = 0
        inter.link_flits.clear()
    if hasattr(inter, "_link_busy"):
        inter._link_busy.clear()


def _per_instruction(total, instructions):
    """Element-wise ``total / instructions`` with 0 where a core never ran."""
    out = np.zeros(len(total), dtype=float)
    mask = instructions > 0
    out[mask] = np.asarray(total, dtype=float)[mask] / instructions[mask]
    return out


class WindowedCalibration:
    """Exact whole-run totals from one event-driven reference run,
    reduced to per-instruction rates (see the module docstring)."""

    def __init__(self, platform, max_instructions):
        num = len(platform.cores)
        before = platform.stats()
        memctrl_before = [
            {key: mc.counters.get(key) for key in _MEMCTRL_KEYS}
            for mc in platform.memctrls
        ]
        snapshot = _functional_snapshot(platform)
        # The calibration run must not leak clock-suppression freezes
        # into the live VPCM — detach the hooks for its duration.
        hooks = [mc.clk_suppression_hook for mc in platform.memctrls]
        for memctrl in platform.memctrls:
            memctrl.clk_suppression_hook = None
        try:
            engine = EventDrivenEngine(platform)
            try:
                _, end_cycle = engine.run_to_completion(
                    max_instructions=max_instructions
                )
            except RuntimeError as exc:
                raise RuntimeError(
                    f"windowed-backend calibration needs the workload to "
                    f"halt within {max_instructions or 'unbounded'} "
                    f"instructions; use the event_driven backend for "
                    f"non-terminating programs ({exc})"
                ) from None
            delta = diff_stats(platform.stats(), before)
            memctrl_totals = {
                key: np.array(
                    [mc.counters.get(key) - b[key]
                     for mc, b in zip(platform.memctrls, memctrl_before)],
                    dtype=float,
                )
                for key in _MEMCTRL_KEYS
            }
        finally:
            for memctrl, hook in zip(platform.memctrls, hooks):
                memctrl.clk_suppression_hook = hook
            _restore_functional(platform, snapshot)
            _reset_statistics(platform)

        cores = list(delta["cores"].values())
        self.end_cycle = float(end_cycle)
        self.instr_total = np.array(
            [c["instructions"] for c in cores], dtype=float
        )
        active = np.array([c["active_cycles"] for c in cores], dtype=float)
        stall = np.array([c["stall_cycles"] for c in cores], dtype=float)
        busy = active + stall
        self.busy_total = busy
        self.active_pi = _per_instruction(active, self.instr_total)
        self.busy_pi = np.maximum(
            _per_instruction(busy, self.instr_total), 1e-9
        )
        classes = set()
        for stats in cores:
            classes.update(stats.get("class_counts", {}))
        self.class_pi = {
            cls: _per_instruction(
                [c.get("class_counts", {}).get(cls, 0) for c in cores],
                self.instr_total,
            )
            for cls in sorted(classes)
        }

        def per_core_rates(family, key_map):
            """Per-core per-instruction rates for a stats family whose
            entries parallel the core list (keyed by counter name)."""
            stats_list = list(delta.get(family, {}).values())
            rates = {}
            for stats_key, counter_key in key_map:
                if len(stats_list) == num:
                    totals = [s.get(stats_key, 0) for s in stats_list]
                else:  # platform built without this cache level
                    totals = np.zeros(num)
                rates[counter_key] = _per_instruction(totals, self.instr_total)
            return rates

        self.icache_pi = per_core_rates("icaches", _CACHE_KEYS)
        self.dcache_pi = per_core_rates("dcaches", _CACHE_KEYS)
        self.private_mem_pi = per_core_rates("private_mems", _MEM_KEYS)
        self.memctrl_pi = {
            key: _per_instruction(totals, self.instr_total)
            for key, totals in memctrl_totals.items()
        }

        instr_sum = max(float(self.instr_total.sum()), 1.0)
        shared = delta.get("shared_mem", {})
        self.shared_mem_pi = {
            counter_key: shared.get(stats_key, 0) / instr_sum
            for stats_key, counter_key in _MEM_KEYS
        }
        inter = delta.get("interconnect", {})
        self.is_bus = "busy_cycles" in inter
        if self.is_bus:
            self.bus_pi = {
                counter_key: inter.get(stats_key, 0) / instr_sum
                for stats_key, counter_key in _BUS_KEYS
            }
            waits = inter.get("per_master_wait", {})
            wait_total = np.array(
                [waits.get(i, 0) for i in range(num)], dtype=float
            )
            self.wait_pi = _per_instruction(wait_total, self.instr_total)
            self.utilization_cal = min(
                0.99, inter.get("busy_cycles", 0) / max(self.end_cycle, 1.0)
            )
        else:
            self.noc_pi = {
                counter_key: inter.get(stats_key, 0) / instr_sum
                for stats_key, counter_key in _NOC_KEYS
            }
            self.switch_flits_pi = {
                switch: flits / instr_sum
                for switch, flits in inter.get("switch_flits", {}).items()
            }
            self.link_flits_pi = {
                link: flits / instr_sum
                for link, flits in inter.get("link_flits", {}).items()
            }
            # The fast NoC model does not accumulate per-master waits, so
            # the contention correction degenerates to the identity (all
            # queueing is already inside the calibrated busy time).
            self.wait_pi = np.zeros(num)
            self.utilization_cal = 0.0
        # Closed-form M/M/1 constant per core: wait(U) = k * U / (1 - U),
        # anchored so wait(U_cal) equals the measured per-master wait.
        u = self.utilization_cal
        self.wait_k = (
            self.wait_pi * ((1.0 - u) / u) if u > 0 else np.zeros(num)
        )
        self.base_pi = np.maximum(self.busy_pi - self.wait_pi, 1e-9)
        # Full-cohort aggregate throughput (instructions per cycle) that
        # anchors the run-time utilization estimate.
        self.throughput_cal = float(
            np.sum(np.where(self.instr_total > 0, 1.0 / self.busy_pi, 0.0))
        )


def calibration_for(platform, max_instructions=50_000_000):
    """Fetch (or measure and cache) the calibration for ``platform``."""
    from repro.obs import catalog as obs_catalog
    from repro.obs import tracing as obs_tracing

    digest = platform_content_digest(platform)
    calibration = _CALIBRATIONS.get(digest)
    if calibration is None:
        obs_catalog.counter("repro_emulation_calibration_misses_total").inc()
        tracer = obs_tracing.ACTIVE
        t0 = time.perf_counter()
        calibration = WindowedCalibration(platform, max_instructions)
        if tracer is not None:
            tracer.emit(
                "emulation.calibrate",
                time.perf_counter() - t0,
                digest=digest[:12],
            )
        _CALIBRATIONS[digest] = calibration
    else:
        obs_catalog.counter("repro_emulation_calibration_hits_total").inc()
    return calibration


class WindowedWorkload:
    """Workload-shaped fast model (same duck type as ``DirectWorkload``).

    ``advance(window_cycles)`` bulk-updates the real platform counters
    from the calibrated per-instruction rates, so sniffer payloads,
    stats deltas and the power model see ordinary observables.
    """

    def __init__(self, platform, power_model, max_utilization=0.95,
                 calibration_max_instructions=50_000_000):
        self.platform = platform
        self.power_model = power_model
        self.calibration = calibration_for(
            platform, calibration_max_instructions
        )
        self.max_utilization = max(
            max_utilization, self.calibration.utilization_cal
        )
        self._remaining = self.calibration.instr_total.copy()
        self._horizon = 0
        self._last_stats = platform.stats()
        self.instructions = 0.0

    @property
    def done(self):
        return bool((self._remaining <= 1e-9).all())

    # -- the contention fixed point ---------------------------------------
    def _effective_busy(self, running):
        """Per-core busy cycles/instruction for the running cohort.

        Iterates the closed-form correction ``b = base + k * U/(1-U)``
        with ``U`` proportional to the cohort's aggregate instruction
        throughput; converges in a few iterations and reproduces the
        calibrated busy time exactly when every core is running.
        """
        cal = self.calibration
        b_eff = cal.busy_pi.copy()
        if cal.utilization_cal <= 0 or cal.throughput_cal <= 0:
            return b_eff
        u_cal = cal.utilization_cal
        cap = self.max_utilization
        for _ in range(6):
            throughput = float(np.sum(np.where(running, 1.0 / b_eff, 0.0)))
            u = min(cap, u_cal * throughput / cal.throughput_cal)
            b_eff = cal.base_pi + cal.wait_k * (u / (1.0 - u))
        return np.maximum(b_eff, 1e-9)

    # -- bulk counter application -----------------------------------------
    def _apply_window(self, window_cycles, n, b_eff):
        cal = self.calibration
        platform = self.platform
        cycles_used = n * b_eff
        active = np.minimum(n * cal.active_pi, cycles_used)
        stall = cycles_used - active
        idle = np.maximum(window_cycles - cycles_used, 0.0)
        n_total = float(n.sum())

        for i, core in enumerate(platform.cores):
            core.active_cycles += active[i]
            core.stall_cycles += stall[i]
            core.idle_cycles += idle[i]
            core.instructions += n[i]
            core.cycle = self._horizon
            if n[i] > 0:
                for cls, rates in cal.class_pi.items():
                    if rates[i]:
                        core.class_counts[cls] = (
                            core.class_counts.get(cls, 0) + rates[i] * n[i]
                        )

        def bulk(counters, rates, index):
            for key, rate in rates.items():
                amount = rate[index] * n[index]
                if amount:
                    counters.add(key, amount)

        for i, cache in enumerate(platform.icaches):
            bulk(cache.counters, cal.icache_pi, i)
        for i, cache in enumerate(platform.dcaches):
            bulk(cache.counters, cal.dcache_pi, i)
        for i, memory in enumerate(platform.private_mems):
            bulk(memory.counters, cal.private_mem_pi, i)
        for i, memctrl in enumerate(platform.memctrls):
            bulk(memctrl.counters, cal.memctrl_pi, i)
            suppressed = cal.memctrl_pi["suppressed_real_cycles"][i] * n[i]
            if suppressed > 0 and memctrl.clk_suppression_hook is not None:
                memctrl.clk_suppression_hook(suppressed)

        if n_total <= 0:
            return
        shared = platform.shared_mem.counters
        for key, rate in cal.shared_mem_pi.items():
            if rate:
                shared.add(key, rate * n_total)
        inter = platform.interconnect
        if cal.is_bus:
            for key, rate in cal.bus_pi.items():
                if rate:
                    inter.counters.add(key, rate * n_total)
            wait_window = np.maximum(b_eff - cal.base_pi, 0.0) * n
            total_wait = float(wait_window.sum())
            if total_wait > 0:
                inter.counters.add(ev.BUS_WAIT, total_wait)
                for i, wait in enumerate(wait_window):
                    if wait:
                        inter.per_master_wait[i] += wait
        else:
            for key, rate in cal.noc_pi.items():
                if rate:
                    inter.counters.add(key, rate * n_total)
            for switch, rate in cal.switch_flits_pi.items():
                inter.switch_flits[switch] += rate * n_total
            for link, rate in cal.link_flits_pi.items():
                inter.link_flits[link] = (
                    inter.link_flits.get(link, 0) + rate * n_total
                )

    def advance(self, window_cycles):
        """Model one window; returns its :class:`ActivityVector`."""
        if window_cycles < 0:
            raise ValueError("negative window")
        self._horizon += window_cycles
        if window_cycles > 0:
            remaining = self._remaining
            running = remaining > 1e-9
            n = np.zeros_like(remaining)
            if running.any():
                b_eff = self._effective_busy(running)
                n[running] = np.minimum(
                    remaining[running], window_cycles / b_eff[running]
                )
            else:
                b_eff = self.calibration.busy_pi
            self._apply_window(window_cycles, n, b_eff)
            self._remaining = remaining - n
            self.instructions += float(n.sum())
            for i, core in enumerate(self.platform.cores):
                if self._remaining[i] <= 1e-9 and not core.halted:
                    self._remaining[i] = 0.0
                    core.state = STATE_HALTED
        stats = self.platform.stats()
        delta = diff_stats(stats, self._last_stats)
        self._last_stats = stats
        return self.power_model.activity_from_stats(delta, window_cycles)
