"""Signal-level cycle-by-cycle engine (the MPARM stand-in).

Where the event-driven engine skips idle time, this engine does what a
SystemC/HDL cycle-accurate kernel does: advance a global clock and
evaluate every component's state machine on every cycle — cores, caches,
the bus arbiter, the memory ports, the NoC's flit buffers.  That is
exactly the "signal management overhead" the paper blames for MPARM's
10-100 kHz simulation speeds, and measuring this engine against the
event-driven one reproduces Table 3's *shape* with real numbers
(``benchmarks/bench_table3_timing.py``).

The engine reuses the platform's *functional* components (register
semantics, cache tag arrays, byte-accurate memories), so both engines
must produce identical architectural results; ``tests/emulation``
asserts that.
"""

from repro.mpsoc.bus import Arbiter
from repro.mpsoc.isa import CLASS_LOAD, CLASS_STORE, CLASS_SYSTEM

S_FETCH = "fetch"
S_FETCH_WAIT = "fetch-wait"
S_EXEC = "exec"
S_MEM_WAIT = "mem-wait"
S_HALTED = "halted"


class _CaBus:
    """Per-cycle shared bus: posted requests, one arbitration per cycle."""

    def __init__(self, bus, shared_mem):
        self.bus = bus  # the platform Bus (for config + counters)
        self.shared_mem = shared_mem
        self.pending = {}  # master_id -> (cycles_needed, callback)
        self.granted = None  # (master_id, remaining, callback)
        self.arbiter = Arbiter(
            bus.config.arbitration,
            max(1, len(bus.masters)),
            bus.config.tdma_slot_cycles,
        )

    def post(self, master_id, is_write, nwords, callback):
        occupancy = self.bus.occupancy_cycles(nwords)
        service = self.shared_mem.access_latency(nwords)
        self.pending[master_id] = (occupancy + service, callback, is_write, nwords)

    def tick(self, cycle):
        if self.granted is not None:
            master_id, remaining, callback = self.granted
            remaining -= 1
            if remaining <= 0:
                self.granted = None
                callback()
            else:
                self.granted = (master_id, remaining, callback)
            # Waiters burn a cycle.
            for waiter in self.pending:
                self.bus.per_master_wait[waiter] += 1
            return
        if not self.pending:
            return
        choice = self.arbiter.pick(list(self.pending), cycle)
        if choice is None:  # TDMA slot owner idle
            for waiter in self.pending:
                self.bus.per_master_wait[waiter] += 1
            return
        cycles_needed, callback, is_write, nwords = self.pending.pop(choice)
        self.granted = (choice, cycles_needed, callback)
        self.bus.counters.add("bus.txn")
        self.bus.counters.add("words", nwords)
        self.bus.counters.add("busy_cycles", cycles_needed)
        self.shared_mem.record_access(cycle, is_write, nwords)
        for waiter in self.pending:
            self.bus.per_master_wait[waiter] += 1


class _CaNocLink:
    """One directed link: at most one flit per cycle."""

    def __init__(self):
        self.queue = []  # packets: [remaining_flits, callback]

    def tick(self):
        if not self.queue:
            return
        packet = self.queue[0]
        packet[0] -= 1
        if packet[0] <= 0:
            self.queue.pop(0)
            packet[1]()


class _CaNoc:
    """Flit-level NoC: packets stream one flit per cycle per link, in
    order, along their static route; each hop adds the router pipeline
    latency (modelled as extra flit-times on the hop's link)."""

    def __init__(self, noc, shared_mem):
        self.noc = noc
        self.shared_mem = shared_mem
        self.links = {}
        self.mem_busy = 0
        self.mem_queue = []  # (is_write, nwords, callback)

    def _link(self, a, b):
        key = (a, b)
        if key not in self.links:
            self.links[key] = _CaNocLink()
        return self.links[key]

    def post(self, master_id, is_write, nwords, callback):
        master_name = self.noc.masters[master_id]
        path = self.noc.route(master_name, self.shared_mem.name)
        cfg = self.noc.config
        from repro.mpsoc.ocp import CMD_READ, CMD_WRITE, OcpRequest

        request = OcpRequest(
            master=master_name,
            cmd=CMD_WRITE if is_write else CMD_READ,
            addr=0,
            burst_len=nwords,
        )
        req_flits = request.request_flits()
        resp_flits = request.response_flits()
        self.noc.counters.add("noc.packet", 2)
        self.noc.counters.add("noc.flit", req_flits + resp_flits)
        self.noc.counters.add("ocp_transactions")
        hops = list(zip(path, path[1:]))
        for a, b in hops:
            self.noc.link_flits[(a, b)] = (
                self.noc.link_flits.get((a, b), 0) + req_flits
            )
            self.noc.switch_flits[b] += req_flits
        if path:
            self.noc.switch_flits[path[0]] += req_flits
        for a, b in reversed(hops):
            self.noc.link_flits[(b, a)] = (
                self.noc.link_flits.get((b, a), 0) + resp_flits
            )

        def after_response():
            callback()

        def after_memory():
            # Stream the response back along the reversed path.
            self._send(
                [(b, a) for a, b in reversed(hops)],
                resp_flits + cfg.ni_latency,
                after_response,
            )

        def after_request():
            self.mem_queue.append((is_write, nwords, after_memory))

        self._send(hops, req_flits + 2 * cfg.ni_latency, after_request)

    def _send(self, hops, flits, callback):
        if not hops:
            # Master and slave on the same switch: just the NI latencies.
            self.mem_queue_delay(flits, callback)
            return
        # Chain the hops: each link transfers the packet's flits plus the
        # per-hop pipeline cost, then hands it to the next link.
        cfg = self.noc.config
        per_hop = flits + cfg.hop_latency + cfg.link_latency - 1

        def chain(index):
            if index >= len(hops):
                callback()
                return
            self._link(*hops[index]).queue.append([per_hop, lambda: chain(index + 1)])

        chain(0)

    def mem_queue_delay(self, cycles, callback):
        self.mem_queue.append(("delay", cycles, callback))

    def tick(self, cycle):
        for link in self.links.values():
            link.tick()
        if self.mem_busy > 0:
            self.mem_busy -= 1
            if self.mem_busy == 0:
                _, _, callback = self._active
                callback()
            return
        if self.mem_queue:
            kind, nwords, callback = self.mem_queue.pop(0)
            if kind == "delay":
                self.mem_busy = max(1, nwords)
                self._active = (kind, nwords, callback)
            else:
                is_write = kind
                self.mem_busy = self.shared_mem.access_latency(nwords)
                self.shared_mem.record_access(cycle, is_write, nwords)
                self._active = (kind, nwords, callback)


class _CaCore:
    """Per-cycle state machine around one platform Processor."""

    def __init__(self, core, engine, master_id):
        self.core = core
        self.engine = engine
        self.master_id = master_id
        self.state = S_FETCH if not core.halted else S_HALTED
        self.countdown = 0
        self._pending_instr = None

    # -- memory path helpers -------------------------------------------------
    def _shared_request(self, is_write, nwords, on_done):
        self.engine.fabric.post(self.master_id, is_write, nwords, on_done)

    def _local_latency(self, rng, is_write, nwords):
        memory = rng.target
        memory.record_access(self.engine.cycle, is_write, nwords)
        return memory.access_latency(nwords)

    def _issue_access(self, addr, is_write, is_fetch, on_done):
        """Start one memory access; calls ``on_done()`` when data arrives."""
        core = self.core
        memctrl = core.memctrl
        rng = memctrl.decode(addr)
        if rng.is_mmio:
            self._finish_in(1, on_done)
            return
        cache = memctrl.icache if is_fetch else memctrl.dcache
        if rng.cacheable and cache is not None:
            result = cache.access(addr, is_write, self.engine.cycle)
            latency = cache.config.hit_latency
            line_words = cache.config.line_words
            needs = []
            if result.writeback:
                needs.append((True, line_words))
            if result.fill:
                needs.append((False, line_words))
            if result.through_write:
                needs.append((True, 1))
            if not needs:
                self._finish_in(latency, on_done)
                return
            self._run_backing_chain(rng, needs, latency, on_done)
            return
        if rng.via is not None:
            self._shared_request(is_write, 1, on_done)
        else:
            self._finish_in(self._local_latency(rng, is_write, 1), on_done)

    def _run_backing_chain(self, rng, needs, head_latency, on_done):
        """Serialize cache-miss backing accesses (writeback, fill...)."""

        def next_step(index):
            if index >= len(needs):
                on_done()
                return
            is_write, nwords = needs[index]
            if rng.via is not None:
                self._shared_request(is_write, nwords, lambda: next_step(index + 1))
            else:
                latency = self._local_latency(rng, is_write, nwords)
                self._finish_in(latency, lambda: next_step(index + 1))

        self._finish_in(head_latency, lambda: next_step(0))

    def _finish_in(self, cycles, on_done):
        self.engine.schedule(max(1, cycles), on_done)

    # -- the state machine ------------------------------------------------------
    def tick(self):
        if self.state == S_HALTED:
            return
        if self.state in (S_FETCH_WAIT, S_MEM_WAIT):
            # Waiting on a memory or interconnect response: a stalled
            # pipeline cycle in the sniffers' active/stall/idle split.
            self.core.stall_cycles += 1
            return
        if self.state == S_EXEC:
            self.core.active_cycles += 1
            self.countdown -= 1
            if self.countdown <= 0:
                self._finish_instruction()
            return
        if self.state == S_FETCH:
            core = self.core
            if core.halted:
                self.state = S_HALTED
                return
            core.active_cycles += 1  # fetch-issue cycle
            fetch_addr = core.program.text_base + 4 * core.pc
            core.memctrl.counters.add("fetches")
            self.state = S_FETCH_WAIT
            self._issue_access(fetch_addr, False, True, self._after_fetch)

    def _after_fetch(self):
        core = self.core
        instr = core._code[core.pc]
        self._pending_instr = instr
        cpi = core.spec.cycles_for(instr.cls)
        if instr.cls in (CLASS_LOAD, CLASS_STORE):
            # Execute semantics now (functional), pay the memory timing.
            addr, is_write = self._data_access_of(instr)
            self.state = S_MEM_WAIT
            self.countdown = cpi

            def on_data():
                self.state = S_EXEC  # burn the CPI after the data returns

            self._issue_access(addr, is_write, False, on_data)
            return
        self.state = S_EXEC
        self.countdown = cpi

    def _data_access_of(self, instr):
        """Perform the functional part of a load/store; returns (addr, W)."""
        core = self.core
        regs = core.regs
        addr = (regs[instr.rs1] + instr.imm) & 0xFFFFFFFF
        size = 4 if instr.mnemonic in ("lw", "sw") else 1
        memctrl = core.memctrl
        if instr.cls == CLASS_LOAD:
            memctrl.counters.add("loads")
            rng = memctrl.decode(addr)
            if rng.is_mmio:
                value = rng.target.mmio_read(rng.offset(addr))
            else:
                value = memctrl.read_value(addr, size)
            if instr.mnemonic == "lb":
                from repro.mpsoc.isa import sign_extend

                value = sign_extend(value, 8) & 0xFFFFFFFF
            if instr.rd != 0:
                regs[instr.rd] = value & 0xFFFFFFFF
            return addr, False
        memctrl.counters.add("stores")
        memctrl.write_value(addr, size, regs[instr.rd])
        return addr, True

    def _finish_instruction(self):
        core = self.core
        instr = self._pending_instr
        self._pending_instr = None
        m = instr.mnemonic
        next_pc = core.pc + 1
        if instr.cls == CLASS_SYSTEM:
            if m == "halt":
                core.state = "halted"
        elif instr.cls in (CLASS_LOAD, CLASS_STORE):
            pass  # handled in _data_access_of
        elif instr.cls == "branch":
            if core._branch_taken(instr):
                next_pc = core.pc + 1 + instr.imm
        elif instr.cls == "jump":
            if m == "j":
                next_pc = instr.imm
            elif m == "jal":
                if instr.rd != 0:
                    core.regs[instr.rd] = core.pc + 1
                next_pc = instr.imm
            elif m == "jr":
                next_pc = core.regs[instr.rs1]
            elif m == "jalr":
                target = core.regs[instr.rs1]
                if instr.rd != 0:
                    core.regs[instr.rd] = core.pc + 1
                next_pc = target
        elif instr.cls in ("mul", "div"):
            core._execute_muldiv(instr)
        else:
            core._execute_alu(instr)
        core.instructions += 1
        core.class_counts[instr.cls] += 1
        core.pc = next_pc
        core.cycle = self.engine.cycle
        self.state = S_HALTED if core.halted else S_FETCH


class CycleAccurateEngine:
    """Global-clock engine evaluating every component every cycle."""

    def __init__(self, platform):
        self.platform = platform
        self.cycle = 0
        self._timers = []  # (fire_cycle, seq, callback)
        self._seq = 0
        from repro.mpsoc.bus import Bus

        if isinstance(platform.interconnect, Bus):
            self.fabric = _CaBus(platform.interconnect, platform.shared_mem)
        else:
            self.fabric = _CaNoc(platform.interconnect, platform.shared_mem)
        self.cores = [
            _CaCore(core, self, master_id)
            for master_id, core in enumerate(platform.cores)
        ]
        self.evaluations = 0  # component evaluations (the signal cost)

    def schedule(self, cycles_ahead, callback):
        self._seq += 1
        self._timers.append([self.cycle + cycles_ahead, self._seq, callback])

    def _fire_timers(self):
        if not self._timers:
            return
        due = [t for t in self._timers if t[0] <= self.cycle]
        if not due:
            return
        due.sort(key=lambda t: (t[0], t[1]))
        self._timers = [t for t in self._timers if t[0] > self.cycle]
        for _, _, callback in due:
            callback()

    @property
    def all_halted(self):
        return all(c.state == S_HALTED for c in self.cores)

    def run(self, max_cycles=10**9):
        """Tick the global clock until every core halts."""
        components = len(list(self.platform.components()))
        while not self.all_halted:
            if self.cycle >= max_cycles:
                raise RuntimeError(f"cycle budget exhausted at {self.cycle}")
            self.cycle += 1
            self._fire_timers()
            self.fabric.tick(self.cycle)
            for core in self.cores:
                core.tick()
            # Model the per-cycle evaluation of every monitored component
            # (this is the honest cost accounting, not make-work).
            self.evaluations += components
        for ca_core in self.cores:
            ca_core.core.cycle = self.cycle
        return self.cycle

    def run_window(self, until_cycle, max_cycles=10**9):
        """Tick the global clock up to ``until_cycle`` (a window boundary).

        The workload-model counterpart of
        :meth:`EventDrivenEngine.run_window`: halted cores idle to the
        boundary so their idle cycles are accounted.  Returns the number
        of instructions that completed inside this window.
        """
        components = len(list(self.platform.components()))
        before = sum(c.core.instructions for c in self.cores)
        while self.cycle < until_cycle and not self.all_halted:
            if self.cycle >= max_cycles:
                raise RuntimeError(f"cycle budget exhausted at {self.cycle}")
            self.cycle += 1
            self._fire_timers()
            self.fabric.tick(self.cycle)
            for core in self.cores:
                core.tick()
            self.evaluations += components
        for ca_core in self.cores:
            if ca_core.state == S_HALTED:
                ca_core.core.idle_until(until_cycle)
            else:
                ca_core.core.cycle = self.cycle
        return sum(c.core.instructions for c in self.cores) - before
