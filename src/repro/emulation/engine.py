"""Event-driven MPSoC execution engine (the FPGA's stand-in).

Cores are interleaved in global virtual-time order: the engine always
steps the core with the smallest local clock, so accesses to shared
resources (bus, NoC links, shared-memory port) are issued in causal
order and the busy-until bookkeeping inside those models yields correct
contention.  This is conservative discrete-event simulation with zero
lookahead — the fast vehicle that lets the framework skip idle cycles,
which is exactly why FPGA emulation (and this engine) beats a
signal-level simulator that must evaluate every component every cycle.
"""

import heapq


class EventDrivenEngine:
    """Runs all cores of a :class:`repro.mpsoc.platform.Platform`."""

    def __init__(self, platform):
        self.platform = platform
        self.instructions_executed = 0

    def run_window(self, until_cycle, max_instructions=None, idle_to_boundary=True):
        """Run every core up to ``until_cycle`` (local virtual time).

        Halted cores idle to the window boundary so their idle cycles are
        accounted (the sniffers report active/stalled/idle splits).
        Returns the number of instructions executed in this window.
        """
        heap = []
        for index, core in enumerate(self.platform.cores):
            if not core.halted and core.cycle < until_cycle:
                # Tie-break same-cycle cores by platform index: a stable,
                # process-independent order (id() varies per process and
                # would make contention outcomes and trace digests
                # irreproducible).
                heapq.heappush(heap, (core.cycle, index, core))
        executed = 0
        budget = max_instructions
        while heap:
            cycle, index, core = heapq.heappop(heap)
            if core.halted or core.cycle >= until_cycle:
                continue
            # Run this core while it remains the globally earliest one:
            # accesses it issues cannot be overtaken by any other core.
            next_cycle = heap[0][0] if heap else until_cycle
            horizon = min(until_cycle, next_cycle)
            while core.cycle <= horizon and not core.halted:
                if core.cycle >= until_cycle:
                    break
                core.step()
                executed += 1
                if budget is not None:
                    budget -= 1
                    if budget <= 0:
                        if idle_to_boundary:
                            self._idle_stragglers(until_cycle)
                        self.instructions_executed += executed
                        return executed
            if not core.halted and core.cycle < until_cycle:
                heapq.heappush(heap, (core.cycle, index, core))
        if idle_to_boundary:
            self._idle_stragglers(until_cycle)
        self.instructions_executed += executed
        return executed

    def _idle_stragglers(self, until_cycle):
        for core in self.platform.cores:
            if core.halted and core.cycle < until_cycle:
                core.idle_until(until_cycle)

    def run_to_completion(self, max_cycles=10**12, max_instructions=None):
        """Run until every core halts; returns (instructions, end_cycle).

        ``max_cycles`` bounds runaway programs; the end cycle is the
        largest local clock among the cores (the platform finish time).
        """
        executed = self.run_window(
            max_cycles, max_instructions, idle_to_boundary=False
        )
        if any(not core.halted for core in self.platform.cores):
            raise RuntimeError(
                "engine budget exhausted before all cores halted "
                f"(executed {executed} instructions)"
            )
        end_cycle = max(core.cycle for core in self.platform.cores)
        # Align the early finishers: they idle until the platform is done.
        self._idle_stragglers(end_cycle)
        return executed, end_cycle

    @property
    def all_halted(self):
        return all(core.halted for core in self.platform.cores)
