"""The FPGA-to-host Ethernet statistics link.

The paper streams statistics as MAC packets in a custom format over a
standard Ethernet port and freezes the platform's virtual clocks when
the connection saturates (Section 4.2).  We model the link as a
bandwidth/latency pipe with per-frame overhead; the dispatcher asks it
how long a window's worth of frames takes to drain and converts any
excess over the real window duration into VPCM freeze time.
"""

from dataclasses import dataclass

ETHERNET_100_MBIT = 100e6
MAC_FRAME_OVERHEAD_BYTES = 38  # preamble + header + FCS + interframe gap
MAC_MAX_PAYLOAD_BYTES = 1500


@dataclass
class EthernetLink:
    """A full-duplex Ethernet pipe between the FPGA and the host PC."""

    bandwidth_bps: float = ETHERNET_100_MBIT
    latency_s: float = 50e-6  # propagation + host stack turnaround

    def __post_init__(self):
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.bytes_sent = 0
        self.frames_sent = 0

    def frame_count(self, payload_bytes):
        """MAC frames needed for a payload (1500-byte maximum units)."""
        if payload_bytes <= 0:
            return 0
        return -(-payload_bytes // MAC_MAX_PAYLOAD_BYTES)

    def wire_bytes(self, payload_bytes):
        """Payload plus per-frame MAC overhead."""
        return payload_bytes + self.frame_count(payload_bytes) * MAC_FRAME_OVERHEAD_BYTES

    def transfer_time(self, payload_bytes):
        """Seconds to push a payload down the wire (one direction)."""
        if payload_bytes <= 0:
            return 0.0
        return self.wire_bytes(payload_bytes) * 8.0 / self.bandwidth_bps

    def send(self, payload_bytes):
        """Account a transfer; returns its duration in seconds."""
        duration = self.transfer_time(payload_bytes)
        self.bytes_sent += payload_bytes
        self.frames_sent += self.frame_count(payload_bytes)
        return duration

    def round_trip_time(self, out_bytes, back_bytes):
        """Stats out + temperatures back, including turnaround latency."""
        return (
            self.transfer_time(out_bytes)
            + self.transfer_time(back_bytes)
            + self.latency_s
        )
