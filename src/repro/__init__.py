"""repro — a HW/SW FPGA-based thermal emulation framework for MPSoC.

A faithful, executable reproduction of Atienza et al., *"A Fast HW/SW
FPGA-Based Thermal Emulation Framework for Multi-Processor
System-on-Chip"* (DAC 2006): an emulated MPSoC platform (cores, caches,
memories, buses, NoCs) with a transparent statistics-extraction fabric,
a Virtual Platform Clock Manager, an Ethernet statistics link, an RC
thermal model with non-linear silicon conductivity, and the closed
co-emulation loop that lets run-time thermal-management policies (DFS)
act on live temperatures.

Quick start::

    from repro import (MPSoCConfig, CoreConfig, CacheConfig, build_platform,
                       matrix_programs, floorplan_4xarm11,
                       EmulationFramework, DualThresholdDfsPolicy)

    platform = build_platform(MPSoCConfig(
        name="demo",
        cores=[CoreConfig(f"cpu{i}", spec="arm11") for i in range(4)],
        icache=CacheConfig(name="i", size=8192, line_size=16),
        dcache=CacheConfig(name="d", size=8192, line_size=16, assoc=2),
    ))
    platform.load_program_all(matrix_programs(4, n=8))
    framework = EmulationFramework(platform, floorplan_4xarm11(),
                                   policy=DualThresholdDfsPolicy())
    report = framework.run(max_emulated_seconds=1.0)

Or declaratively, as a serializable :class:`Scenario` (saved, swept and
run in bulk through :class:`Runner` — see ``python -m repro``)::

    from repro import PolicySpec, Runner, Scenario, WorkloadSpec

    scenario = Scenario(
        name="demo",
        workload=WorkloadSpec("matrix", {"n": 8}),
        platform=platform_config,          # an MPSoCConfig (or its dict)
        floorplan="4xarm11",
        policy=PolicySpec("dual_threshold"),
    )
    [result] = Runner(workers=1).run([scenario])

See README.md for the paper-to-module map, the scenario quick start and
the reproduced tables and figures.
"""

from repro.core import (
    ActivityProfile,
    DirectWorkload,
    DualThresholdDfsPolicy,
    EmulationFlow,
    EmulationFramework,
    FrameworkConfig,
    NoManagementPolicy,
    PerCoreDfsPolicy,
    ProfiledWorkload,
    SnifferBank,
    StopGoPolicy,
    SynthesisModel,
    ThermalTrace,
    Vpcm,
    profile_platform_run,
)
from repro.mpsoc import (
    BusConfig,
    CacheConfig,
    MemoryConfig,
    MPSoCConfig,
    NocConfig,
    Program,
    assemble,
    build_platform,
    generate_custom,
    generate_mesh,
)
from repro.mpsoc.platform import CoreConfig
from repro.policy import (
    DvfsLadderPolicy,
    PerDomainPolicy,
    PidFrequencyPolicy,
    PredictiveThrottlePolicy,
    ThermalPolicy,
)
from repro.policy.comparison import (
    PolicyComparison,
    PolicyOutcome,
    compare_policies,
)
from repro.power import DEFAULT_LIBRARY, PowerClass, PowerLibrary, PowerModel
from repro.thermal import (
    Floorplan,
    FloorplanComponent,
    RCNetwork,
    SensorBank,
    ThermalProperties,
    ThermalSolver,
    build_grid,
    floorplan_4xarm7,
    floorplan_4xarm11,
)
from repro.scenario import (
    ExperimentSuite,
    PolicySpec,
    Runner,
    Scenario,
    ScenarioResult,
    Variant,
    WorkloadSpec,
    sweep,
)
from repro.trace import (
    ReplaySource,
    TraceArchive,
    TraceStore,
    load_archive,
    record,
    replay,
    scenario_trace_digest,
)
from repro.workloads import (
    dithering_programs,
    golden_dither,
    load_images,
    matrix_programs,
    read_image,
)

__version__ = "1.1.0"

__all__ = [
    "ActivityProfile",
    "BusConfig",
    "CacheConfig",
    "CoreConfig",
    "DEFAULT_LIBRARY",
    "DirectWorkload",
    "DualThresholdDfsPolicy",
    "DvfsLadderPolicy",
    "EmulationFlow",
    "EmulationFramework",
    "ExperimentSuite",
    "Floorplan",
    "FloorplanComponent",
    "FrameworkConfig",
    "MemoryConfig",
    "MPSoCConfig",
    "NoManagementPolicy",
    "NocConfig",
    "PerCoreDfsPolicy",
    "PerDomainPolicy",
    "PidFrequencyPolicy",
    "PolicyComparison",
    "PolicyOutcome",
    "PolicySpec",
    "PredictiveThrottlePolicy",
    "PowerClass",
    "PowerLibrary",
    "PowerModel",
    "ProfiledWorkload",
    "Program",
    "RCNetwork",
    "ReplaySource",
    "Runner",
    "Scenario",
    "ScenarioResult",
    "SensorBank",
    "SnifferBank",
    "StopGoPolicy",
    "SynthesisModel",
    "ThermalPolicy",
    "ThermalProperties",
    "ThermalSolver",
    "ThermalTrace",
    "TraceArchive",
    "TraceStore",
    "Variant",
    "Vpcm",
    "WorkloadSpec",
    "assemble",
    "build_grid",
    "build_platform",
    "compare_policies",
    "dithering_programs",
    "floorplan_4xarm7",
    "floorplan_4xarm11",
    "generate_custom",
    "generate_mesh",
    "golden_dither",
    "load_archive",
    "load_images",
    "matrix_programs",
    "profile_platform_run",
    "read_image",
    "record",
    "replay",
    "scenario_trace_digest",
    "sweep",
    "__version__",
]
