"""Main-memory models: private and shared memories.

Section 3.2 of the paper defines, per memory controller, a private main
memory (configurable range/size/latency), a shared main memory backed by
real board memory (e.g. DDR), and HW-controlled caches in front of the
cacheable ranges.

The model here is *functional + timed*: a flat byte store gives
functional correctness (programs really execute), while configurable
latencies give the timing the statistics system observes.  The split
between ``latency`` (what the designer configured for the emulated
design) and ``physical_latency`` (what the board's memory actually
needs) drives the VPCM clock-suppression mechanism: whenever the
physical device is slower than the configured latency, the memory
controller asks the VPCM to freeze the virtual clock for the difference.
"""

from dataclasses import dataclass

from repro.mpsoc import events as ev
from repro.mpsoc.events import CounterBlock, Observable

KIND_PRIVATE = "private"
KIND_SHARED = "shared"


@dataclass
class MemoryConfig:
    """Configuration of one main memory.

    ``latency``: access latency in virtual cycles as configured by the
    designer.  ``physical_latency``: cycles the backing board device needs
    (defaults to ``latency``; set it higher to model DDR backing a faster
    configured memory, which makes the VPCM freeze clocks).
    ``ports``: number of concurrent accesses the device can serve (shared
    memories on a bus are single-ported in the paper's platform).
    """

    name: str
    size: int
    latency: int = 1
    physical_latency: int = None
    kind: str = KIND_PRIVATE
    ports: int = 1

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"memory {self.name}: size must be positive")
        if self.latency < 1:
            raise ValueError(f"memory {self.name}: latency must be >= 1 cycle")
        if self.physical_latency is None:
            self.physical_latency = self.latency
        if self.physical_latency < 1:
            raise ValueError(f"memory {self.name}: physical latency must be >= 1")


class MemoryError_(Exception):
    """Raised on out-of-range or misaligned accesses."""


class Memory(Observable):
    """A flat byte-addressed memory with configurable timing."""

    def __init__(self, config):
        super().__init__()
        self.config = config
        self.name = config.name
        self.data = bytearray(config.size)
        self.counters = CounterBlock(config.name)
        # Time (in virtual cycles) until which the device port is busy;
        # used by interconnect models for slave-side contention.
        self.port_busy_until = 0

    # -- functional access (offsets relative to the memory base) ----------
    def _check(self, offset, size):
        if offset < 0 or offset + size > self.config.size:
            raise MemoryError_(
                f"{self.name}: access at offset 0x{offset:x} size {size} "
                f"outside {self.config.size} bytes"
            )
        if offset % size:
            raise MemoryError_(
                f"{self.name}: misaligned {size}-byte access at 0x{offset:x}"
            )

    def read_word(self, offset):
        self._check(offset, 4)
        return int.from_bytes(self.data[offset : offset + 4], "little")

    def write_word(self, offset, value):
        self._check(offset, 4)
        self.data[offset : offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def read_byte(self, offset):
        self._check(offset, 1)
        return self.data[offset]

    def write_byte(self, offset, value):
        self._check(offset, 1)
        self.data[offset] = value & 0xFF

    def load_blob(self, offset, blob):
        """Bulk-load program text/data at ``offset``."""
        if offset < 0 or offset + len(blob) > self.config.size:
            raise MemoryError_(
                f"{self.name}: blob of {len(blob)} bytes does not fit at "
                f"0x{offset:x}"
            )
        self.data[offset : offset + len(blob)] = blob

    # -- timing ------------------------------------------------------------
    def access_latency(self, nwords=1):
        """Virtual cycles to serve a burst of ``nwords`` words.

        First word costs the configured latency, subsequent words stream
        one per cycle (standard pipelined burst).
        """
        return self.config.latency + max(0, nwords - 1)

    def physical_penalty(self, nwords=1):
        """Extra *physical* cycles the board device needs beyond the
        configured latency; the memory controller converts this into a
        VPCM clock-suppression request (Section 3.2 / 4.2)."""
        extra = self.config.physical_latency - self.config.latency
        return max(0, extra) * nwords if extra > 0 else 0

    # -- statistics ----------------------------------------------------------
    def record_access(self, cycle, is_write, nwords=1):
        kind = ev.MEM_WRITE if is_write else ev.MEM_READ
        self.counters.add(kind, nwords)
        if self.has_hooks:
            self.emit(cycle, self.name, kind, (nwords,))

    def stats(self):
        return {
            "reads": self.counters.get(ev.MEM_READ),
            "writes": self.counters.get(ev.MEM_WRITE),
        }
