"""Clock-domain bookkeeping shared between the platform and the VPCM.

The paper's VPCM generates per-domain virtual clocks derived from the
100 MHz physical FPGA oscillator.  A domain's virtual frequency can
differ from the physical frequency (e.g. emulate a 500 MHz design on a
100 MHz board) and can be suppressed (frozen) at run time.  The VPCM in
:mod:`repro.core.vpcm` owns the control logic; this module holds the
plain domain state so the MPSoC substrate does not depend on the
framework package.
"""

from dataclasses import dataclass, field

# The paper's implementation uses two domains: (1) processors, memories and
# interconnections; (2) memory controllers.
DOMAIN_SYSTEM = "system"
DOMAIN_MEMCTRL = "memctrl"


@dataclass
class ClockDomain:
    """One virtual clock domain.

    ``virtual_hz`` is the frequency the emulated design is supposed to run
    at; ``physical_hz`` the frequency of the underlying board oscillator.
    ``suppressed_real_cycles`` accumulates physical cycles during which the
    virtual clock was inhibited (memory-latency hiding, Ethernet
    congestion or DFS throttling).
    """

    name: str
    virtual_hz: float
    physical_hz: float = 100e6
    suppressed: bool = False
    virtual_cycles: int = 0
    suppressed_real_cycles: int = 0
    members: list = field(default_factory=list)

    @property
    def stretch_factor(self):
        """Real seconds of board time per emulated second.

        A 500 MHz virtual clock on a 100 MHz board needs five real cycles
        per virtual cycle, so a 10 ms emulated sampling period takes 50 ms
        of wall-clock on the FPGA (Section 4.2 of the paper).
        """
        return self.virtual_hz / self.physical_hz

    def advance(self, cycles):
        """Account ``cycles`` virtual cycles of progress."""
        if cycles < 0:
            raise ValueError(f"negative cycle count {cycles}")
        self.virtual_cycles += cycles

    def suppress(self, real_cycles):
        """Account ``real_cycles`` physical cycles of clock inhibition."""
        if real_cycles < 0:
            raise ValueError(f"negative suppression {real_cycles}")
        self.suppressed_real_cycles += real_cycles

    def virtual_time(self):
        """Emulated seconds elapsed in this domain."""
        return self.virtual_cycles / self.virtual_hz

    def real_time(self):
        """Wall-clock seconds of board time consumed by this domain.

        Each virtual cycle costs ``virtual_hz / physical_hz`` physical
        cycles when emulating a design faster than the board (the VPCM
        stretches the sampling period), and exactly one physical cycle
        otherwise; suppressed periods add on top.
        """
        cycles_per_virtual = max(1.0, self.virtual_hz / self.physical_hz)
        real_cycles = self.virtual_cycles * cycles_per_virtual
        return (real_cycles + self.suppressed_real_cycles) / self.physical_hz
