"""OCP-like transaction records (Section 3.3).

The paper modifies its memory controllers and main-memory bridges to
generate Open Core Protocol transactions, because the xpipes network
interfaces consume OCP.  These records are what flows between a memory
controller's bridge and a NoC network interface in our model.
"""

from dataclasses import dataclass

CMD_READ = "RD"
CMD_WRITE = "WR"


@dataclass(frozen=True)
class OcpRequest:
    """One OCP request burst."""

    master: str
    cmd: str
    addr: int
    burst_len: int = 1  # words

    def __post_init__(self):
        if self.cmd not in (CMD_READ, CMD_WRITE):
            raise ValueError(f"bad OCP command {self.cmd!r}")
        if self.burst_len < 1:
            raise ValueError(f"bad OCP burst length {self.burst_len}")

    @property
    def is_write(self):
        return self.cmd == CMD_WRITE

    def request_flits(self):
        """Flits needed on a 32-bit link for the request packet.

        Header flit + address flit, plus one data flit per word written.
        """
        payload = self.burst_len if self.is_write else 0
        return 2 + payload

    def response_flits(self):
        """Flits of the response packet: header + read data (or an ack)."""
        return 1 + (self.burst_len if not self.is_write else 0)


@dataclass(frozen=True)
class OcpResponse:
    """Completion record for one OCP request."""

    master: str
    cmd: str
    addr: int
    latency: int  # virtual cycles from request issue to completion
