"""Per-core memory controllers (Section 3.2).

One memory controller is connected to each processing core and captures
all its memory requests, forwarding them to the right device by address
range: private main memory (direct attach), shared main memory (through
the bus or NoC bridge), transparent L1 caches in front of cacheable
ranges, and memory-mapped sniffer control registers.

The controller also implements the paper's latency bookkeeping: it keeps
internal counters comparing elapsed time against the user-defined
latencies, and raises a ``VIRTUAL_CLK_SUPPRESSION`` request to the VPCM
whenever a physical backing device cannot respond within the configured
latency (Sections 3.2 and 4.2).
"""

from dataclasses import dataclass

from repro.mpsoc.events import CounterBlock, Observable


class AccessFault(Exception):
    """Raised when an address decodes to no range."""


@dataclass
class AddressRange:
    """One decoded address window.

    ``target`` is a :class:`repro.mpsoc.memory.Memory` or an MMIO handler
    (exposing ``mmio_read``/``mmio_write``).  ``via`` is ``None`` for a
    direct attachment or an interconnect (Bus/Noc) reached with
    ``master_id``.  ``cacheable`` routes the access through the L1s.
    """

    name: str
    base: int
    size: int
    target: object
    cacheable: bool = False
    via: object = None
    master_id: int = None
    is_mmio: bool = False

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"range {self.name}: size must be positive")
        if self.via is not None and self.master_id is None:
            raise ValueError(f"range {self.name}: interconnect needs a master_id")

    def contains(self, addr):
        return self.base <= addr < self.base + self.size

    def offset(self, addr):
        return addr - self.base


class MemoryController(Observable):
    """Memory controller for one processing core."""

    def __init__(self, name, icache=None, dcache=None):
        super().__init__()
        self.name = name
        self.icache = icache
        self.dcache = dcache
        self.ranges = []
        self.counters = CounterBlock(name)
        # Set by the VPCM when the framework wires the platform; receives
        # the number of *physical* cycles to inhibit the virtual clock.
        self.clk_suppression_hook = None

    def add_range(self, address_range):
        for existing in self.ranges:
            overlap = not (
                address_range.base + address_range.size <= existing.base
                or existing.base + existing.size <= address_range.base
            )
            if overlap:
                raise ValueError(
                    f"{self.name}: range {address_range.name} overlaps {existing.name}"
                )
        self.ranges.append(address_range)
        return address_range

    def decode(self, addr):
        for rng in self.ranges:
            if rng.contains(addr):
                return rng
        raise AccessFault(f"{self.name}: no range maps address 0x{addr:08x}")

    # -- functional data access ------------------------------------------------
    def read_value(self, addr, size):
        rng = self.decode(addr)
        if rng.is_mmio:
            return rng.target.mmio_read(rng.offset(addr))
        off = rng.offset(addr)
        if size == 4:
            return rng.target.read_word(off)
        return rng.target.read_byte(off)

    def write_value(self, addr, size, value):
        rng = self.decode(addr)
        if rng.is_mmio:
            rng.target.mmio_write(rng.offset(addr), value)
            return
        off = rng.offset(addr)
        if size == 4:
            rng.target.write_word(off, value)
        else:
            rng.target.write_byte(off, value)

    # -- timing helpers ----------------------------------------------------------
    def _suppress(self, real_cycles):
        if real_cycles <= 0:
            return
        self.counters.add("clk_suppression_requests")
        self.counters.add("suppressed_real_cycles", real_cycles)
        if self.clk_suppression_hook is not None:
            self.clk_suppression_hook(real_cycles)

    def _backing_latency(self, rng, addr, is_write, nwords, t):
        """Latency of touching the backing device behind ``rng``.

        Either way the device's physical penalty (board memory slower
        than the configured latency, e.g. DDR backing a fast emulated
        memory) raises a VPCM clock-suppression request.
        """
        memory = rng.target
        if rng.via is not None:
            latency = rng.via.transfer(
                rng.master_id, memory, addr, is_write, nwords, t
            )
        else:
            latency = memory.access_latency(nwords)
            memory.record_access(t, is_write, nwords)
        self._suppress(memory.physical_penalty(nwords))
        return latency

    def _cached_access(self, cache, rng, addr, is_write, t):
        """Access through an L1; returns total latency in virtual cycles."""
        result = cache.access(addr, is_write, t)
        latency = cache.config.hit_latency
        line_words = cache.config.line_words
        if result.writeback:
            latency += self._backing_latency(
                rng, result.victim_addr, True, line_words, t + latency
            )
        if result.fill:
            latency += self._backing_latency(
                rng, cache.line_base(addr), False, line_words, t + latency
            )
        if result.through_write:
            latency += self._backing_latency(rng, addr, True, 1, t + latency)
        return latency

    # -- the three access paths used by the processor ---------------------------
    def fetch_timing(self, addr, t):
        """Instruction-fetch latency at virtual cycle ``t``."""
        rng = self.decode(addr)
        self.counters.add("fetches")
        if rng.cacheable and self.icache is not None:
            return self._cached_access(self.icache, rng, addr, False, t)
        return self._backing_latency(rng, addr, False, 1, t)

    def load(self, addr, size, t):
        """Data load; returns ``(value, latency)``."""
        rng = self.decode(addr)
        self.counters.add("loads")
        if rng.is_mmio:
            return rng.target.mmio_read(rng.offset(addr)), 1
        value = self.read_value(addr, size)
        if rng.cacheable and self.dcache is not None:
            return value, self._cached_access(self.dcache, rng, addr, False, t)
        return value, self._backing_latency(rng, addr, False, 1, t)

    def store(self, addr, size, value, t):
        """Data store; returns the latency."""
        rng = self.decode(addr)
        self.counters.add("stores")
        if rng.is_mmio:
            rng.target.mmio_write(rng.offset(addr), value)
            return 1
        self.write_value(addr, size, value)
        if rng.cacheable and self.dcache is not None:
            return self._cached_access(self.dcache, rng, addr, True, t)
        return self._backing_latency(rng, addr, True, 1, t)

    def stats(self):
        return {
            "fetches": self.counters.get("fetches"),
            "loads": self.counters.get("loads"),
            "stores": self.counters.get("stores"),
            "clk_suppression_requests": self.counters.get("clk_suppression_requests"),
            "suppressed_real_cycles": self.counters.get("suppressed_real_cycles"),
        }
