"""Processing-element models (Section 3.1).

The paper ports a PowerPC405 hard core and a Microblaze soft core onto
the FPGA and keeps the framework open to other cores (ARM, VLIW); only
the instruction-set part of a core is used — its L1 hierarchy is always
replaced by the framework's own caches.

We model a core as a RISC-32 interpreter parameterized by a
:class:`CoreSpec` (per-class CPI, default frequency, power class, FPGA
resource cost).  The interpreter is *timed*: every instruction charges
its CPI and any memory latency reported by the memory controller, and
the core keeps the active/stall/idle accounting the thermal sniffers
need ("HW sniffers measure the time that each processor spends in
active/stalled/idle mode", Section 4.1).
"""

from dataclasses import dataclass

from repro.mpsoc import isa
from repro.mpsoc.events import CounterBlock, Observable
from repro.mpsoc.isa import (
    CLASS_ALU,
    CLASS_BRANCH,
    CLASS_DIV,
    CLASS_JUMP,
    CLASS_LOAD,
    CLASS_MUL,
    CLASS_STORE,
    CLASS_SYSTEM,
    to_signed,
    to_unsigned,
)

STATE_RUNNING = "running"
STATE_HALTED = "halted"


@dataclass(frozen=True)
class CoreSpec:
    """Static description of a processing-core family."""

    name: str
    description: str
    cpi: dict
    default_hz: float
    power_class: str  # key into the Table 1 power library
    fpga_slices: int  # resource model (V2VP30 has 13696 slices)

    def cycles_for(self, cls):
        return self.cpi[cls]


# CPI tables: simple single-issue in-order models.  The values follow the
# usual pipeline depths: ARM7 is a 3-stage core with slow multiplies and
# 3-cycle taken branches; ARM11/PowerPC405 are deeper but predicted;
# Microblaze is the 3-stage Xilinx soft core (its divider is iterative).
CORE_SPECS = {
    "microblaze": CoreSpec(
        name="microblaze",
        description="Xilinx Microblaze RISC-32 soft core",
        cpi={
            CLASS_ALU: 1,
            CLASS_MUL: 3,
            CLASS_DIV: 32,
            CLASS_LOAD: 1,
            CLASS_STORE: 1,
            CLASS_BRANCH: 2,
            CLASS_JUMP: 2,
            CLASS_SYSTEM: 1,
        },
        default_hz=100e6,
        power_class="arm7",  # closest Table 1 class for a small RISC-32
        fpga_slices=574,  # 4% of the V2VP30's 13696 slices (Section 3.1)
    ),
    "ppc405": CoreSpec(
        name="ppc405",
        description="PowerPC 405 hard core",
        cpi={
            CLASS_ALU: 1,
            CLASS_MUL: 2,
            CLASS_DIV: 35,
            CLASS_LOAD: 1,
            CLASS_STORE: 1,
            CLASS_BRANCH: 2,
            CLASS_JUMP: 2,
            CLASS_SYSTEM: 1,
        },
        default_hz=100e6,
        power_class="arm7",
        fpga_slices=0,  # hard macro: consumes no slices
    ),
    "arm7": CoreSpec(
        name="arm7",
        description="ARM7-class RISC-32 (Table 1 / Figure 4a)",
        cpi={
            CLASS_ALU: 1,
            CLASS_MUL: 4,
            CLASS_DIV: 40,
            CLASS_LOAD: 2,
            CLASS_STORE: 2,
            CLASS_BRANCH: 3,
            CLASS_JUMP: 3,
            CLASS_SYSTEM: 1,
        },
        default_hz=100e6,
        power_class="arm7",
        fpga_slices=900,
    ),
    "arm11": CoreSpec(
        name="arm11",
        description="ARM11-class RISC-32 (Table 1 / Figure 4b)",
        cpi={
            CLASS_ALU: 1,
            CLASS_MUL: 2,
            CLASS_DIV: 20,
            CLASS_LOAD: 1,
            CLASS_STORE: 1,
            CLASS_BRANCH: 2,
            CLASS_JUMP: 2,
            CLASS_SYSTEM: 1,
        },
        default_hz=500e6,
        power_class="arm11",
        fpga_slices=1400,
    ),
    # The TC4SOC-class 32-bit VLIW the related work brings up (Section 2).
    # Our interpreter is single-issue, so the VLIW advantage appears as a
    # uniformly aggressive CPI table rather than multi-issue slots.
    "vliw32": CoreSpec(
        name="vliw32",
        description="TC4SOC-class 32-bit VLIW core",
        cpi={
            CLASS_ALU: 1,
            CLASS_MUL: 1,
            CLASS_DIV: 12,
            CLASS_LOAD: 1,
            CLASS_STORE: 1,
            CLASS_BRANCH: 2,
            CLASS_JUMP: 1,
            CLASS_SYSTEM: 1,
        },
        default_hz=200e6,
        power_class="arm11",
        fpga_slices=2300,
    ),
}


class ExecutionError(Exception):
    """Raised on run-time program faults (bad jump, misaligned access...)."""


class Processor(Observable):
    """A timed RISC-32 interpreter bound to one memory controller."""

    def __init__(self, name, spec, memctrl, frequency_hz=None):
        super().__init__()
        self.name = name
        self.spec = spec
        self.memctrl = memctrl
        self.frequency_hz = frequency_hz or spec.default_hz
        self.counters = CounterBlock(name)
        self.regs = [0] * isa.NUM_REGISTERS
        self.pc = 0
        self.cycle = 0  # local virtual time
        self.state = STATE_HALTED
        self.program = None
        self._code = []  # decoded instructions (decode once, execute many)
        self._text_base = 0
        # active/stall/idle accounting (virtual cycles)
        self.active_cycles = 0
        self.stall_cycles = 0
        self.idle_cycles = 0
        self.instructions = 0
        self.class_counts = {cls: 0 for cls in isa.INSTRUCTION_CLASSES}

    # -- program loading ----------------------------------------------------
    def load_program(self, program):
        """Bind an assembled program; text/data must already be in memory
        (the platform loader does that) — the core keeps a decoded copy of
        the text for interpretation speed."""
        self.program = program
        self._code = [isa.decode(word) for word in program.code]
        self._text_base = program.text_base
        self.pc = program.entry
        self.regs = [0] * isa.NUM_REGISTERS
        self.state = STATE_RUNNING

    def reset_stats(self):
        self.counters.reset()
        self.active_cycles = 0
        self.stall_cycles = 0
        self.idle_cycles = 0
        self.instructions = 0
        self.class_counts = {cls: 0 for cls in isa.INSTRUCTION_CLASSES}

    @property
    def halted(self):
        return self.state == STATE_HALTED

    # -- execution --------------------------------------------------------------
    def step(self):
        """Execute one instruction; returns the virtual cycles it took.

        Returns 0 when the core is halted.  Fetch goes through the
        I-cache path of the memory controller; loads/stores through the
        D-side.  Cycle split: CPI + cache hit latencies count as *active*,
        anything beyond (miss refills, bus waits) as *stall*.
        """
        if self.state != STATE_RUNNING:
            return 0
        if not 0 <= self.pc < len(self._code):
            raise ExecutionError(
                f"{self.name}: pc {self.pc} outside text ({len(self._code)} instrs)"
            )
        fetch_addr = self._text_base + 4 * self.pc
        fetch_latency = self.memctrl.fetch_timing(fetch_addr, self.cycle)
        instr = self._code[self.pc]
        cls = instr.cls
        cpi = self.spec.cycles_for(cls)
        exec_start = self.cycle + fetch_latency
        mem_latency = 0
        taken_extra = 0

        m = instr.mnemonic
        regs = self.regs
        next_pc = self.pc + 1

        if cls == CLASS_ALU:
            self._execute_alu(instr)
        elif cls in (CLASS_MUL, CLASS_DIV):
            self._execute_muldiv(instr)
        elif cls == CLASS_LOAD:
            addr = to_unsigned(regs[instr.rs1] + instr.imm)
            size = 4 if m == "lw" else 1
            if size == 4 and addr % 4:
                raise ExecutionError(f"{self.name}: misaligned lw at 0x{addr:08x}")
            value, mem_latency = self.memctrl.load(addr, size, exec_start + 1)
            if m == "lb":
                value = isa.sign_extend(value, 8) & 0xFFFFFFFF
            if instr.rd != 0:
                regs[instr.rd] = value & 0xFFFFFFFF
        elif cls == CLASS_STORE:
            addr = to_unsigned(regs[instr.rs1] + instr.imm)
            size = 4 if m == "sw" else 1
            if size == 4 and addr % 4:
                raise ExecutionError(f"{self.name}: misaligned sw at 0x{addr:08x}")
            mem_latency = self.memctrl.store(addr, size, regs[instr.rd], exec_start + 1)
        elif cls == CLASS_BRANCH:
            if self._branch_taken(instr):
                next_pc = self.pc + 1 + instr.imm
                taken_extra = 0  # CPI table already charges the taken cost
        elif cls == CLASS_JUMP:
            if m == "j":
                next_pc = instr.imm
            elif m == "jal":
                if instr.rd != 0:
                    regs[instr.rd] = self.pc + 1
                next_pc = instr.imm
            elif m == "jr":
                next_pc = regs[instr.rs1]
            elif m == "jalr":
                target = regs[instr.rs1]
                if instr.rd != 0:
                    regs[instr.rd] = self.pc + 1
                next_pc = target
        elif cls == CLASS_SYSTEM:
            if m == "halt":
                self.state = STATE_HALTED

        # Timing and accounting.
        hit_lat = 0
        if self.memctrl.icache is not None:
            hit_lat += self.memctrl.icache.config.hit_latency
        else:
            hit_lat += 1
        active = cpi + min(fetch_latency, hit_lat)
        if cls in (CLASS_LOAD, CLASS_STORE):
            dhit = (
                self.memctrl.dcache.config.hit_latency
                if self.memctrl.dcache is not None
                else 1
            )
            active += min(mem_latency, dhit)
        total = fetch_latency + cpi + mem_latency + taken_extra
        stall = total - active
        self.active_cycles += active
        self.stall_cycles += stall
        self.cycle += total
        self.instructions += 1
        self.class_counts[cls] += 1
        self.pc = next_pc
        return total

    def run(self, max_instructions=None, until_cycle=None):
        """Run until halt / instruction budget / cycle horizon.

        Returns the number of instructions executed in this call.
        """
        executed = 0
        while self.state == STATE_RUNNING:
            if max_instructions is not None and executed >= max_instructions:
                break
            if until_cycle is not None and self.cycle >= until_cycle:
                break
            self.step()
            executed += 1
        return executed

    def idle_until(self, cycle):
        """Advance local time in the idle state (halted core, frozen clock)."""
        if cycle > self.cycle:
            self.idle_cycles += cycle - self.cycle
            self.cycle = cycle

    # -- semantics helpers -----------------------------------------------------
    def _execute_alu(self, instr):
        regs = self.regs
        m = instr.mnemonic
        a = regs[instr.rs1]
        if instr.spec.fmt == "R":
            b = regs[instr.rs2]
        else:
            b = instr.imm & 0xFFFFFFFF if instr.imm >= 0 else instr.imm

        if m in ("add", "addi"):
            value = a + (b if m == "add" else instr.imm)
        elif m == "sub":
            value = a - b
        elif m in ("and", "andi"):
            value = a & (b if m == "and" else instr.imm)
        elif m in ("or", "ori"):
            value = a | (b if m == "or" else instr.imm)
        elif m in ("xor", "xori"):
            value = a ^ (b if m == "xor" else instr.imm)
        elif m in ("sll", "slli"):
            shift = (b if m == "sll" else instr.imm) & 31
            value = a << shift
        elif m in ("srl", "srli"):
            shift = (b if m == "srl" else instr.imm) & 31
            value = (a & 0xFFFFFFFF) >> shift
        elif m in ("sra", "srai"):
            shift = (b if m == "sra" else instr.imm) & 31
            value = to_signed(a) >> shift
        elif m in ("slt", "slti"):
            rhs = to_signed(b) if m == "slt" else instr.imm
            value = 1 if to_signed(a) < rhs else 0
        elif m == "sltu":
            value = 1 if to_unsigned(a) < to_unsigned(b) else 0
        elif m == "lui":
            value = (instr.imm & 0xFFFF) << 16
        elif m == "nop":
            return
        else:  # pragma: no cover - exhaustive over CLASS_ALU mnemonics
            raise ExecutionError(f"unhandled ALU op {m}")
        if instr.rd != 0:
            regs[instr.rd] = value & 0xFFFFFFFF

    def _execute_muldiv(self, instr):
        regs = self.regs
        a = to_signed(regs[instr.rs1])
        b = to_signed(regs[instr.rs2])
        m = instr.mnemonic
        if m == "mul":
            value = a * b
        elif m == "div":
            if b == 0:
                value = -1
            else:
                value = int(a / b)  # C-style truncation toward zero
        elif m == "rem":
            if b == 0:
                value = a
            else:
                value = a - int(a / b) * b
        else:  # pragma: no cover
            raise ExecutionError(f"unhandled mul/div op {m}")
        if instr.rd != 0:
            regs[instr.rd] = value & 0xFFFFFFFF

    def _branch_taken(self, instr):
        a = self.regs[instr.rs1]
        b = self.regs[instr.rs2]
        m = instr.mnemonic
        if m == "beq":
            return a == b
        if m == "bne":
            return a != b
        if m == "blt":
            return to_signed(a) < to_signed(b)
        if m == "bge":
            return to_signed(a) >= to_signed(b)
        if m == "bltu":
            return to_unsigned(a) < to_unsigned(b)
        if m == "bgeu":
            return to_unsigned(a) >= to_unsigned(b)
        raise ExecutionError(f"unhandled branch {m}")  # pragma: no cover

    # -- statistics -----------------------------------------------------------
    def stats(self):
        total = self.active_cycles + self.stall_cycles + self.idle_cycles
        busy = self.active_cycles + self.stall_cycles
        return {
            "instructions": self.instructions,
            "cycles": self.cycle,
            "active_cycles": self.active_cycles,
            "stall_cycles": self.stall_cycles,
            "idle_cycles": self.idle_cycles,
            "activity": (self.active_cycles / total) if total else 0.0,
            "class_counts": dict(self.class_counts),
            # CPI over execution cycles only — idle (post-halt / frozen
            # clock) time is not instruction time.
            "cpi": (busy / self.instructions) if self.instructions else 0.0,
        }
