"""Event taxonomy emitted by emulated MPSoC components.

Count-logging sniffers read component counters; event-logging sniffers
attach hooks and receive :class:`Event` records.  Components always keep
their counters up to date and only build ``Event`` objects when at least
one hook is attached (the paper's event-logging sniffers are likewise
optional pieces of monitoring hardware).
"""

from dataclasses import dataclass, field

# -- processor events ------------------------------------------------------
CORE_ACTIVE = "core.active"
CORE_STALL = "core.stall"
CORE_IDLE = "core.idle"
CORE_INSTR = "core.instr"

# -- cache events ----------------------------------------------------------
CACHE_HIT = "cache.hit"
CACHE_MISS = "cache.miss"
CACHE_EVICT = "cache.evict"
CACHE_WRITEBACK = "cache.writeback"

# -- memory events ---------------------------------------------------------
MEM_READ = "mem.read"
MEM_WRITE = "mem.write"

# -- interconnect events ---------------------------------------------------
BUS_TXN = "bus.txn"
BUS_WAIT = "bus.wait"
NOC_PACKET = "noc.packet"
NOC_FLIT = "noc.flit"

# -- framework events --------------------------------------------------------
VPCM_FREEZE = "vpcm.freeze"
SENSOR_THRESHOLD = "sensor.threshold"

ALL_EVENT_KINDS = (
    CORE_ACTIVE,
    CORE_STALL,
    CORE_IDLE,
    CORE_INSTR,
    CACHE_HIT,
    CACHE_MISS,
    CACHE_EVICT,
    CACHE_WRITEBACK,
    MEM_READ,
    MEM_WRITE,
    BUS_TXN,
    BUS_WAIT,
    NOC_PACKET,
    NOC_FLIT,
    VPCM_FREEZE,
    SENSOR_THRESHOLD,
)


@dataclass(frozen=True)
class Event:
    """One observed hardware event.

    ``cycle`` is the virtual cycle at which the event happened, ``source``
    the component name, ``kind`` one of the constants above and ``info`` a
    small free-form payload (address, size, ...).
    """

    cycle: int
    source: str
    kind: str
    info: tuple = ()


class Observable:
    """Mixin giving a component an event-hook list.

    Hooks are callables ``fn(event)``; :meth:`emit` is cheap when no hook
    is attached, which is the common (count-logging only) case.
    """

    def __init__(self):
        self._event_hooks = []

    @property
    def has_hooks(self):
        return bool(self._event_hooks)

    def attach_hook(self, fn):
        """Register an event callback (used by event-logging sniffers)."""
        self._event_hooks.append(fn)

    def detach_hook(self, fn):
        self._event_hooks.remove(fn)

    def emit(self, cycle, source, kind, info=()):
        """Deliver an event to all attached hooks."""
        event = Event(cycle, source, kind, tuple(info))
        for fn in self._event_hooks:
            fn(event)


@dataclass
class CounterBlock:
    """A named bundle of monotonically increasing event counters."""

    name: str
    counts: dict = field(default_factory=dict)

    def add(self, kind, amount=1):
        self.counts[kind] = self.counts.get(kind, 0) + amount

    def get(self, kind):
        return self.counts.get(kind, 0)

    def snapshot(self):
        """Copy of the counters (used per sampling window)."""
        return dict(self.counts)

    def reset(self):
        self.counts.clear()
