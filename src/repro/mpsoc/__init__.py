"""Emulated MPSoC hardware substrate.

This package is the Python stand-in for the FPGA side of the paper's
framework: parameterizable processing cores, a configurable memory
hierarchy (per-core memory controllers, private/shared memories,
HW-controlled caches) and configurable interconnects (buses and an
xpipes-class NoC).
"""

from repro.mpsoc.cache import Cache, CacheConfig
from repro.mpsoc.isa import Instruction, assemble_word, decode
from repro.mpsoc.asm import AssemblyError, Program, assemble
from repro.mpsoc.memory import Memory, MemoryConfig
from repro.mpsoc.memctrl import AddressRange, MemoryController
from repro.mpsoc.processor import CoreSpec, Processor, CORE_SPECS
from repro.mpsoc.bus import Bus, BusConfig
from repro.mpsoc.noc import Noc, NocConfig, generate_mesh, generate_custom
from repro.mpsoc.platform import MPSoCConfig, Platform, build_platform
from repro.mpsoc.trace import TraceCore, TraceOp, strided_trace

__all__ = [
    "AddressRange",
    "AssemblyError",
    "Bus",
    "BusConfig",
    "Cache",
    "CacheConfig",
    "CORE_SPECS",
    "CoreSpec",
    "Instruction",
    "Memory",
    "MemoryConfig",
    "MemoryController",
    "MPSoCConfig",
    "Noc",
    "NocConfig",
    "Platform",
    "Processor",
    "Program",
    "TraceCore",
    "TraceOp",
    "assemble",
    "assemble_word",
    "build_platform",
    "decode",
    "generate_custom",
    "generate_mesh",
    "strided_trace",
]
