"""Trace-driven processing elements.

The paper's framework accepts proprietary cores as netlist black boxes;
when only a memory-access trace of such a core exists (no ISA model),
a :class:`TraceCore` replays it against the same memory controllers,
caches and interconnects the interpreted cores use — so hierarchy and
interconnect exploration works for workloads we cannot execute.

A trace is a sequence of :class:`TraceOp`: compute gaps (cycles with no
memory activity) interleaved with loads/stores at explicit addresses.
"""

from dataclasses import dataclass

from repro.mpsoc.events import CounterBlock, Observable


@dataclass(frozen=True)
class TraceOp:
    """One trace record: ``gap`` compute cycles, then one optional
    memory access (``addr is None`` for pure compute)."""

    gap: int = 0
    addr: int = None
    is_write: bool = False
    size: int = 4

    def __post_init__(self):
        if self.gap < 0:
            raise ValueError("negative compute gap")
        if self.size not in (1, 4):
            raise ValueError("access size must be 1 or 4 bytes")


class TraceCore(Observable):
    """Replays a memory-access trace through a memory controller.

    API-compatible with :class:`repro.mpsoc.processor.Processor` where
    the engine and the sniffers are concerned (``step``/``run``/
    ``halted``/``cycle``/``stats``), so it can stand in for a core in
    any platform slot.
    """

    def __init__(self, name, memctrl, trace, frequency_hz=100e6, repeat=1):
        super().__init__()
        if repeat < 1:
            raise ValueError("repeat must be >= 1")
        self.name = name
        self.memctrl = memctrl
        self.frequency_hz = frequency_hz
        self.trace = list(trace)
        self.repeat = repeat
        self.counters = CounterBlock(name)
        self._position = 0
        self._iteration = 0
        self.cycle = 0
        self.active_cycles = 0
        self.stall_cycles = 0
        self.idle_cycles = 0
        self.instructions = 0  # trace records replayed
        self.state = "running" if self.trace else "halted"

    @property
    def halted(self):
        return self.state == "halted"

    def step(self):
        """Replay one trace record; returns the virtual cycles consumed."""
        if self.halted:
            return 0
        op = self.trace[self._position]
        cycles = op.gap
        self.active_cycles += op.gap
        if op.addr is not None:
            if op.is_write:
                latency = self.memctrl.store(op.addr, op.size, 0, self.cycle + op.gap)
            else:
                _value, latency = self.memctrl.load(
                    op.addr, op.size, self.cycle + op.gap
                )
            cycles += latency
            self.active_cycles += 1
            self.stall_cycles += max(0, latency - 1)
        self.cycle += cycles
        self.instructions += 1
        self._position += 1
        if self._position >= len(self.trace):
            self._position = 0
            self._iteration += 1
            if self._iteration >= self.repeat:
                self.state = "halted"
        return cycles

    def run(self, max_instructions=None, until_cycle=None):
        executed = 0
        while not self.halted:
            if max_instructions is not None and executed >= max_instructions:
                break
            if until_cycle is not None and self.cycle >= until_cycle:
                break
            self.step()
            executed += 1
        return executed

    def idle_until(self, cycle):
        if cycle > self.cycle:
            self.idle_cycles += cycle - self.cycle
            self.cycle = cycle

    def stats(self):
        total = self.active_cycles + self.stall_cycles + self.idle_cycles
        return {
            "instructions": self.instructions,
            "cycles": self.cycle,
            "active_cycles": self.active_cycles,
            "stall_cycles": self.stall_cycles,
            "idle_cycles": self.idle_cycles,
            "activity": (self.active_cycles / total) if total else 0.0,
        }


def strided_trace(base, num_accesses, stride=4, reads_per_write=3, gap=2):
    """Generate a synthetic strided trace (array sweep with compute gaps).

    Every ``reads_per_write + 1``-th access is a store; addresses advance
    by ``stride`` bytes.
    """
    if num_accesses < 1 or stride < 1 or reads_per_write < 0:
        raise ValueError("bad trace parameters")
    ops = []
    for index in range(num_accesses):
        is_write = reads_per_write > 0 and (index % (reads_per_write + 1)) == (
            reads_per_write
        )
        ops.append(TraceOp(gap=gap, addr=base + index * stride, is_write=is_write))
    return ops
