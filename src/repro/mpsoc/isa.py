"""RISC-32: the small load/store instruction set executed by emulated cores.

The paper's emulator runs gcc-compiled C on PowerPC405/Microblaze netlists.
We substitute a compact 32-bit RISC instruction set with a two-pass
assembler (:mod:`repro.mpsoc.asm`); the MATRIX and DITHERING drivers are
written in it.  The set is MIPS-flavoured: 32 registers (``r0`` wired to
zero), sign-extended arithmetic immediates, zero-extended logical
immediates, branch offsets in instruction units relative to ``pc + 1``.

Encoding formats (32 bits):

====== =========================================================
R      ``op[31:26] rd[25:21] rs1[20:16] rs2[15:11] 0[10:0]``
I      ``op[31:26] rd[25:21] rs1[20:16] imm16[15:0]``
B      ``op[31:26] rs1[25:21] rs2[20:16] imm16[15:0]``
J      ``op[31:26] rd[25:21] imm21[20:0]`` (absolute instruction index)
====== =========================================================
"""

from dataclasses import dataclass

WORD_MASK = 0xFFFFFFFF
NUM_REGISTERS = 32

# Instruction classes drive per-core CPI tables and sniffer accounting.
CLASS_ALU = "alu"
CLASS_MUL = "mul"
CLASS_DIV = "div"
CLASS_LOAD = "load"
CLASS_STORE = "store"
CLASS_BRANCH = "branch"
CLASS_JUMP = "jump"
CLASS_SYSTEM = "system"

INSTRUCTION_CLASSES = (
    CLASS_ALU,
    CLASS_MUL,
    CLASS_DIV,
    CLASS_LOAD,
    CLASS_STORE,
    CLASS_BRANCH,
    CLASS_JUMP,
    CLASS_SYSTEM,
)

# Format tags.
FMT_R = "R"
FMT_I = "I"
FMT_B = "B"
FMT_J = "J"


@dataclass(frozen=True)
class OpSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    opcode: int
    fmt: str
    cls: str
    signed_imm: bool = True


_OPS = [
    # mnemonic, opcode, fmt, class, signed_imm
    OpSpec("nop", 0x00, FMT_R, CLASS_ALU),
    OpSpec("add", 0x01, FMT_R, CLASS_ALU),
    OpSpec("sub", 0x02, FMT_R, CLASS_ALU),
    OpSpec("mul", 0x03, FMT_R, CLASS_MUL),
    OpSpec("div", 0x04, FMT_R, CLASS_DIV),
    OpSpec("rem", 0x05, FMT_R, CLASS_DIV),
    OpSpec("and", 0x06, FMT_R, CLASS_ALU),
    OpSpec("or", 0x07, FMT_R, CLASS_ALU),
    OpSpec("xor", 0x08, FMT_R, CLASS_ALU),
    OpSpec("sll", 0x09, FMT_R, CLASS_ALU),
    OpSpec("srl", 0x0A, FMT_R, CLASS_ALU),
    OpSpec("sra", 0x0B, FMT_R, CLASS_ALU),
    OpSpec("slt", 0x0C, FMT_R, CLASS_ALU),
    OpSpec("sltu", 0x0D, FMT_R, CLASS_ALU),
    OpSpec("jr", 0x0E, FMT_R, CLASS_JUMP),
    OpSpec("jalr", 0x0F, FMT_R, CLASS_JUMP),
    OpSpec("addi", 0x10, FMT_I, CLASS_ALU),
    OpSpec("andi", 0x11, FMT_I, CLASS_ALU, signed_imm=False),
    OpSpec("ori", 0x12, FMT_I, CLASS_ALU, signed_imm=False),
    OpSpec("xori", 0x13, FMT_I, CLASS_ALU, signed_imm=False),
    OpSpec("slli", 0x14, FMT_I, CLASS_ALU, signed_imm=False),
    OpSpec("srli", 0x15, FMT_I, CLASS_ALU, signed_imm=False),
    OpSpec("srai", 0x16, FMT_I, CLASS_ALU, signed_imm=False),
    OpSpec("slti", 0x17, FMT_I, CLASS_ALU),
    OpSpec("lui", 0x18, FMT_I, CLASS_ALU, signed_imm=False),
    OpSpec("lw", 0x19, FMT_I, CLASS_LOAD),
    OpSpec("lb", 0x1A, FMT_I, CLASS_LOAD),
    OpSpec("lbu", 0x1B, FMT_I, CLASS_LOAD),
    OpSpec("sw", 0x1C, FMT_I, CLASS_STORE),
    OpSpec("sb", 0x1D, FMT_I, CLASS_STORE),
    OpSpec("beq", 0x20, FMT_B, CLASS_BRANCH),
    OpSpec("bne", 0x21, FMT_B, CLASS_BRANCH),
    OpSpec("blt", 0x22, FMT_B, CLASS_BRANCH),
    OpSpec("bge", 0x23, FMT_B, CLASS_BRANCH),
    OpSpec("bltu", 0x24, FMT_B, CLASS_BRANCH),
    OpSpec("bgeu", 0x25, FMT_B, CLASS_BRANCH),
    OpSpec("j", 0x30, FMT_J, CLASS_JUMP),
    OpSpec("jal", 0x31, FMT_J, CLASS_JUMP),
    OpSpec("halt", 0x3F, FMT_R, CLASS_SYSTEM),
]

OPS_BY_NAME = {spec.mnemonic: spec for spec in _OPS}
OPS_BY_CODE = {spec.opcode: spec for spec in _OPS}

IMM16_MIN = -(1 << 15)
IMM16_MAX = (1 << 15) - 1
UIMM16_MAX = (1 << 16) - 1
IMM21_MAX = (1 << 21) - 1


class IsaError(ValueError):
    """Raised on malformed instructions or encodings."""


def sign_extend(value, bits):
    """Sign-extend the low ``bits`` of ``value`` to a Python int."""
    mask = (1 << bits) - 1
    value &= mask
    sign_bit = 1 << (bits - 1)
    if value & sign_bit:
        return value - (1 << bits)
    return value


def to_signed(word):
    """Interpret a 32-bit word as a signed integer."""
    return sign_extend(word, 32)


def to_unsigned(value):
    """Wrap an integer into an unsigned 32-bit word."""
    return value & WORD_MASK


@dataclass(frozen=True)
class Instruction:
    """One decoded RISC-32 instruction.

    Fields not used by the instruction's format are zero.  ``imm`` holds the
    already sign-/zero-extended immediate for I/B formats and the absolute
    instruction index for J format.
    """

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    @property
    def spec(self):
        return OPS_BY_NAME[self.mnemonic]

    @property
    def cls(self):
        return self.spec.cls

    def _check_reg(self, name, value):
        if not 0 <= value < NUM_REGISTERS:
            raise IsaError(f"{self.mnemonic}: register {name}={value} out of range")

    def encode(self):
        """Encode to a 32-bit word; raises :class:`IsaError` if out of range."""
        spec = OPS_BY_NAME.get(self.mnemonic)
        if spec is None:
            raise IsaError(f"unknown mnemonic {self.mnemonic!r}")
        self._check_reg("rd", self.rd)
        self._check_reg("rs1", self.rs1)
        self._check_reg("rs2", self.rs2)
        word = spec.opcode << 26
        if spec.fmt == FMT_R:
            word |= (self.rd << 21) | (self.rs1 << 16) | (self.rs2 << 11)
        elif spec.fmt == FMT_I:
            imm = self.imm
            if spec.signed_imm:
                if not IMM16_MIN <= imm <= IMM16_MAX:
                    raise IsaError(f"{self.mnemonic}: immediate {imm} out of i16 range")
            else:
                if not 0 <= imm <= UIMM16_MAX:
                    raise IsaError(f"{self.mnemonic}: immediate {imm} out of u16 range")
            word |= (self.rd << 21) | (self.rs1 << 16) | (imm & 0xFFFF)
        elif spec.fmt == FMT_B:
            imm = self.imm
            if not IMM16_MIN <= imm <= IMM16_MAX:
                raise IsaError(f"{self.mnemonic}: branch offset {imm} out of range")
            word |= (self.rs1 << 21) | (self.rs2 << 16) | (imm & 0xFFFF)
        elif spec.fmt == FMT_J:
            if not 0 <= self.imm <= IMM21_MAX:
                raise IsaError(f"{self.mnemonic}: jump target {self.imm} out of range")
            word |= (self.rd << 21) | self.imm
        else:  # pragma: no cover - formats are fixed above
            raise IsaError(f"unknown format {spec.fmt!r}")
        return word

    def __str__(self):
        spec = self.spec
        if self.mnemonic in ("nop", "halt"):
            return self.mnemonic
        if spec.fmt == FMT_R:
            if self.mnemonic == "jr":
                return f"jr r{self.rs1}"
            if self.mnemonic == "jalr":
                return f"jalr r{self.rd}, r{self.rs1}"
            return f"{self.mnemonic} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if spec.fmt == FMT_I:
            if self.mnemonic == "lui":
                return f"lui r{self.rd}, {self.imm}"
            if spec.cls in (CLASS_LOAD, CLASS_STORE):
                return f"{self.mnemonic} r{self.rd}, {self.imm}(r{self.rs1})"
            return f"{self.mnemonic} r{self.rd}, r{self.rs1}, {self.imm}"
        if spec.fmt == FMT_B:
            return f"{self.mnemonic} r{self.rs1}, r{self.rs2}, {self.imm}"
        if self.mnemonic == "jal":
            return f"jal r{self.rd}, {self.imm}"
        return f"{self.mnemonic} {self.imm}"


def decode(word):
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises :class:`IsaError` for unknown opcodes.  ``decode(i.encode()) == i``
    for every well-formed instruction (the property test in
    ``tests/mpsoc/test_isa.py`` exercises this).
    """
    word &= WORD_MASK
    opcode = (word >> 26) & 0x3F
    spec = OPS_BY_CODE.get(opcode)
    if spec is None:
        raise IsaError(f"unknown opcode 0x{opcode:02x} in word 0x{word:08x}")
    if spec.fmt == FMT_R:
        return Instruction(
            spec.mnemonic,
            rd=(word >> 21) & 0x1F,
            rs1=(word >> 16) & 0x1F,
            rs2=(word >> 11) & 0x1F,
        )
    if spec.fmt == FMT_I:
        raw = word & 0xFFFF
        imm = sign_extend(raw, 16) if spec.signed_imm else raw
        return Instruction(
            spec.mnemonic,
            rd=(word >> 21) & 0x1F,
            rs1=(word >> 16) & 0x1F,
            imm=imm,
        )
    if spec.fmt == FMT_B:
        return Instruction(
            spec.mnemonic,
            rs1=(word >> 21) & 0x1F,
            rs2=(word >> 16) & 0x1F,
            imm=sign_extend(word & 0xFFFF, 16),
        )
    # J format
    return Instruction(spec.mnemonic, rd=(word >> 21) & 0x1F, imm=word & 0x1FFFFF)


def assemble_word(mnemonic, rd=0, rs1=0, rs2=0, imm=0):
    """Convenience constructor + encoder in one call."""
    return Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2, imm=imm).encode()
