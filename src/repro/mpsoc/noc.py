"""Network-on-Chip interconnect (Section 3.3).

An xpipes-class NoC: network interfaces (NIs) translate OCP bursts from
the memory-controller bridges into wormhole packets; switches with small
output buffers forward flits over 32-bit links; routing is static
shortest-path (XY on meshes), precomputed into per-switch tables the way
``XpipesCompiler`` instantiates application-specific NoCs.

Timing model (fast path): the head flit pays ``ni_latency`` for
packetization, ``hop_latency + link_latency`` per hop, and contends for
links whose occupancy is tracked with per-link busy times (a packet of F
flits holds each traversed link for F cycles — wormhole serialization).
The signal-level engine in :mod:`repro.emulation.cycle_accurate` moves
individual flits cycle by cycle instead.

:func:`generate_mesh` and :func:`generate_custom` play the role of the
XpipesCompiler topology generator.
"""

from dataclasses import dataclass

import networkx as nx

from repro.mpsoc import events as ev
from repro.mpsoc.events import CounterBlock, Observable
from repro.mpsoc.ocp import CMD_READ, CMD_WRITE, OcpRequest


@dataclass
class NocConfig:
    """Static description of one NoC instance."""

    name: str
    switches: list
    links: list  # (switch_a, switch_b) bidirectional pairs
    flit_width_bits: int = 32
    buffer_flits: int = 3
    hop_latency: int = 2
    link_latency: int = 1
    ni_latency: int = 2

    def __post_init__(self):
        if not self.switches:
            raise ValueError(f"{self.name}: NoC needs at least one switch")
        known = set(self.switches)
        if len(known) != len(self.switches):
            raise ValueError(f"{self.name}: duplicate switch names")
        for a, b in self.links:
            if a not in known or b not in known:
                raise ValueError(f"{self.name}: link ({a}, {b}) references unknown switch")
            if a == b:
                raise ValueError(f"{self.name}: self-link on {a}")
        if self.buffer_flits < 1:
            raise ValueError(f"{self.name}: buffers must hold at least one flit")

    def to_dict(self):
        return {
            "name": self.name,
            "switches": list(self.switches),
            "links": [list(link) for link in self.links],
            "flit_width_bits": self.flit_width_bits,
            "buffer_flits": self.buffer_flits,
            "hop_latency": self.hop_latency,
            "link_latency": self.link_latency,
            "ni_latency": self.ni_latency,
        }

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        data["links"] = [tuple(link) for link in data.get("links", [])]
        return cls(**data)

    def graph(self):
        g = nx.Graph()
        g.add_nodes_from(self.switches)
        g.add_edges_from(self.links)
        return g


class Noc(Observable):
    """Fast timed-transaction NoC sharing the :class:`Bus` transfer API."""

    def __init__(self, config):
        super().__init__()
        self.config = config
        self.name = config.name
        self.counters = CounterBlock(config.name)
        self._graph = config.graph()
        if self._graph.number_of_nodes() > 1 and not nx.is_connected(self._graph):
            raise ValueError(f"{config.name}: topology is not connected")
        self._endpoints = {}  # endpoint name -> switch
        self._routes = {}  # (src switch, dst switch) -> [switches]
        self._link_busy = {}  # (a, b) directed -> busy-until cycle
        self.switch_flits = {s: 0 for s in config.switches}
        self.link_flits = {}
        self.per_master_wait = {}
        self.masters = []
        self._precompute_routes()

    def _precompute_routes(self):
        paths = dict(nx.all_pairs_shortest_path(self._graph))
        for src, targets in paths.items():
            for dst, path in targets.items():
                self._routes[(src, dst)] = path

    # -- topology / attachment ---------------------------------------------
    def register_endpoint(self, name, switch):
        """Attach an NI for ``name`` (a core bridge or a memory bridge)."""
        if switch not in self.switch_flits:
            raise ValueError(f"{self.name}: unknown switch {switch!r}")
        if name in self._endpoints:
            raise ValueError(f"{self.name}: endpoint {name!r} already attached")
        self._endpoints[name] = switch
        return name

    def register_master(self, name, switch=None):
        """Bus-compatible master registration; returns the master id."""
        master_id = len(self.masters)
        self.masters.append(name)
        self.per_master_wait[master_id] = 0
        if switch is not None:
            self.register_endpoint(name, switch)
        return master_id

    def endpoint_switch(self, name):
        return self._endpoints[name]

    def switch_radix(self, switch):
        """Channels on a switch: inter-switch links + attached NIs."""
        degree = self._graph.degree(switch)
        nis = sum(1 for s in self._endpoints.values() if s == switch)
        return degree + nis

    def route(self, src_endpoint, dst_endpoint):
        """Switch path between two endpoints (for tests and reports)."""
        src = self._endpoints[src_endpoint]
        dst = self._endpoints[dst_endpoint]
        return list(self._routes[(src, dst)])

    # -- fast timed transfer ---------------------------------------------------
    def _traverse(self, path, nflits, t):
        """Send one packet's flits along ``path``; returns tail arrival time.

        Wormhole: the head advances hop by hop, stalling on busy links;
        each traversed link stays occupied for ``nflits`` cycles behind
        the head (flits stream in its wake).
        """
        cfg = self.config
        head_t = t + cfg.ni_latency
        for a, b in zip(path, path[1:]):
            link = (a, b)
            free_t = self._link_busy.get(link, 0)
            head_t = max(head_t, free_t) + cfg.hop_latency + cfg.link_latency
            self._link_busy[link] = head_t + nflits - 1
            self.link_flits[link] = self.link_flits.get(link, 0) + nflits
            self.switch_flits[b] += nflits
        if path:
            self.switch_flits[path[0]] += nflits
        # Tail flit arrives nflits-1 cycles behind the head, plus the
        # depacketization latency at the destination NI.
        return head_t + nflits - 1 + cfg.ni_latency

    def transfer(self, master_id, slave, addr, is_write, nwords, t):
        """Execute one OCP burst over the NoC; returns total latency.

        ``slave`` must expose ``name``/``access_latency``/``record_access``
        and have been attached with :meth:`register_endpoint`.
        """
        if not 0 <= master_id < len(self.masters):
            raise ValueError(f"{self.name}: unknown master id {master_id}")
        master_name = self.masters[master_id]
        request = OcpRequest(
            master=master_name,
            cmd=CMD_WRITE if is_write else CMD_READ,
            addr=addr,
            burst_len=nwords,
        )
        path = self.route(master_name, slave.name)
        req_arrival = self._traverse(path, request.request_flits(), t)
        # Memory service at the destination.
        service_start = max(req_arrival, getattr(slave, "port_busy_until", 0))
        service_done = service_start + slave.access_latency(nwords)
        slave.port_busy_until = service_done
        slave.record_access(service_start, is_write, nwords)
        # Response packet back to the master.
        resp_done = self._traverse(
            list(reversed(path)), request.response_flits(), service_done
        )
        latency = resp_done - t
        total_flits = request.request_flits() + request.response_flits()
        self.counters.add(ev.NOC_PACKET, 2)
        self.counters.add(ev.NOC_FLIT, total_flits)
        self.counters.add("ocp_transactions")
        if self.has_hooks:
            self.emit(t, self.name, ev.NOC_PACKET, (master_name, slave.name, nwords))
        return latency

    # -- statistics ------------------------------------------------------------
    def stats(self):
        return {
            "packets": self.counters.get(ev.NOC_PACKET),
            "flits": self.counters.get(ev.NOC_FLIT),
            "ocp_transactions": self.counters.get("ocp_transactions"),
            "switch_flits": dict(self.switch_flits),
            "link_flits": dict(self.link_flits),
        }


def generate_mesh(name, rows, cols, **kwargs):
    """Generate a ``rows x cols`` mesh NoC (XY-minimal shortest paths)."""
    if rows < 1 or cols < 1:
        raise ValueError("mesh dimensions must be positive")
    switches = [f"sw{r}_{c}" for r in range(rows) for c in range(cols)]
    links = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                links.append((f"sw{r}_{c}", f"sw{r}_{c + 1}"))
            if r + 1 < rows:
                links.append((f"sw{r}_{c}", f"sw{r + 1}_{c}"))
    return NocConfig(name=name, switches=switches, links=links, **kwargs)


def generate_custom(name, num_switches, extra_links=(), ring=True, **kwargs):
    """Generate an application-specific topology the XpipesCompiler way.

    ``num_switches`` switches named ``sw0..swN-1`` connected in a ring
    (or a chain when ``ring=False``) plus any ``extra_links`` given as
    ``(i, j)`` switch-index pairs.
    """
    if num_switches < 1:
        raise ValueError("need at least one switch")
    switches = [f"sw{i}" for i in range(num_switches)]
    links = []
    for i in range(num_switches - 1):
        links.append((f"sw{i}", f"sw{i + 1}"))
    if ring and num_switches > 2:
        links.append((f"sw{num_switches - 1}", "sw0"))
    for i, j in extra_links:
        links.append((f"sw{i}", f"sw{j}"))
    return NocConfig(name=name, switches=switches, links=links, **kwargs)
