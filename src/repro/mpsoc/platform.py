"""MPSoC platform builder (Section 3, Figure 1).

``build_platform(MPSoCConfig)`` instantiates the baseline architecture of
the paper: N processing cores, one memory controller per core with
private I/D caches and a private main memory, one shared main memory,
and a bus or NoC interconnect between the memory controllers and the
shared memory.  A memory-mapped I/O window per core exposes the sniffer
control registers (sniffers can be de/activated at run time through SW
calls, Section 4.1).

The module also carries the FPGA resource-utilization model calibrated
against the slice counts the paper reports for the Virtex-2 Pro VP30
(Microblaze 4 %, memory controller 2 %, private memory 1 %, custom bus
1 %, 6-switch NoC ~70 %, full 4-core MPSoC 66 %...).
"""

from dataclasses import dataclass, field, replace

from repro.mpsoc.bus import Bus, BusConfig
from repro.mpsoc.cache import Cache, CacheConfig
from repro.mpsoc.clock import DOMAIN_MEMCTRL, DOMAIN_SYSTEM, ClockDomain
from repro.mpsoc.memctrl import AddressRange, MemoryController
from repro.mpsoc.memory import KIND_PRIVATE, KIND_SHARED, Memory, MemoryConfig
from repro.mpsoc.noc import Noc, NocConfig
from repro.mpsoc.processor import CORE_SPECS, Processor
from repro.util.units import KB, MB

# -- memory map --------------------------------------------------------------
PRIVATE_BASE = 0x0000_0000
SHARED_BASE = 0x1000_0000
MMIO_BASE = 0x2000_0000
MMIO_SIZE = 0x1000

# -- FPGA resource model ------------------------------------------------------
V2VP30_SLICES = 13696  # Virtex-2 Pro VP30 (Section 3.1)

SLICE_COSTS = {
    "memctrl": 274,  # 2% of the V2VP30 (Section 3.2)
    "private_mem": 137,  # 1% (Section 3.2), BRAM aside
    "shared_mem_ctrl": 180,  # DDR controller share
    "bus_custom": 137,  # 1% (Section 3.3)
    "bus_opb": 160,
    "bus_plb": 220,
    "cache_ctrl": 80,
    "noc_ni": 120,
    "sniffer_event_logging": 27,  # 0.2% (Section 4.1)
    "sniffer_count_logging": 41,  # 0.3% (Section 4.1)
    "ethernet_dispatcher": 450,
    "vpcm": 250,
    "base_infrastructure": 2600,  # EDK clocking, JTAG, MAC, board glue
}


def switch_slices(radix_in, radix_out, buffer_flits):
    """Slice cost of one NoC switch.

    Calibrated so six 4x4 switches with 3-flit output buffers come out
    near the paper's 70% V2VP30 figure (Section 3.3).
    """
    return 40 * (radix_in + radix_out) + 25 * radix_in * radix_out * buffer_flits


@dataclass
class CoreConfig:
    """One processing element in the platform."""

    name: str
    spec: str = "microblaze"
    frequency_hz: float = None

    def __post_init__(self):
        if self.spec not in CORE_SPECS:
            raise ValueError(
                f"core {self.name}: unknown spec {self.spec!r} "
                f"(available: {sorted(CORE_SPECS)})"
            )

    def to_dict(self):
        return {"name": self.name, "spec": self.spec, "frequency_hz": self.frequency_hz}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


@dataclass
class MPSoCConfig:
    """Whole-platform configuration (the user-definable HW architecture)."""

    name: str
    cores: list
    icache: CacheConfig = None
    dcache: CacheConfig = None
    private_mem_size: int = 16 * KB
    private_mem_latency: int = 1
    private_mem_physical_latency: int = None
    shared_mem_size: int = 1 * MB
    shared_mem_latency: int = 2
    shared_mem_physical_latency: int = None
    interconnect: str = "bus"  # "bus" | "noc"
    bus: BusConfig = None
    noc: NocConfig = None
    noc_placement: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.cores:
            raise ValueError(f"{self.name}: platform needs at least one core")
        if self.interconnect not in ("bus", "noc"):
            raise ValueError(f"{self.name}: bad interconnect {self.interconnect!r}")
        if self.interconnect == "noc" and self.noc is None:
            raise ValueError(f"{self.name}: interconnect 'noc' needs a NocConfig")
        names = [c.name for c in self.cores]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate core names")

    # -- heterogeneity ----------------------------------------------------------
    def core_class_counts(self):
        """Multiset of core spec names, e.g. ``{"ppc405": 2, "microblaze": 2}``."""
        counts = {}
        for core in self.cores:
            counts[core.spec] = counts.get(core.spec, 0) + 1
        return counts

    def static_core_frequencies(self):
        """Per-core-index static clock (explicit or the spec default)."""
        return {
            index: (core.frequency_hz or CORE_SPECS[core.spec].default_hz)
            for index, core in enumerate(self.cores)
        }

    @property
    def is_heterogeneous(self):
        """True when the platform mixes core specs or static clocks."""
        return (
            len(self.core_class_counts()) > 1
            or len(set(self.static_core_frequencies().values())) > 1
        )

    def to_dict(self):
        """Lossless JSON-compatible dict (``from_dict`` round-trips it)."""
        return {
            "name": self.name,
            "cores": [c.to_dict() for c in self.cores],
            "icache": self.icache.to_dict() if self.icache else None,
            "dcache": self.dcache.to_dict() if self.dcache else None,
            "private_mem_size": self.private_mem_size,
            "private_mem_latency": self.private_mem_latency,
            "private_mem_physical_latency": self.private_mem_physical_latency,
            "shared_mem_size": self.shared_mem_size,
            "shared_mem_latency": self.shared_mem_latency,
            "shared_mem_physical_latency": self.shared_mem_physical_latency,
            "interconnect": self.interconnect,
            "bus": self.bus.to_dict() if self.bus else None,
            "noc": self.noc.to_dict() if self.noc else None,
            "noc_placement": dict(self.noc_placement),
        }

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        data["cores"] = [CoreConfig.from_dict(c) for c in data.get("cores", [])]
        for cache_key in ("icache", "dcache"):
            if data.get(cache_key) is not None:
                data[cache_key] = CacheConfig.from_dict(data[cache_key])
        if data.get("bus") is not None:
            data["bus"] = BusConfig.from_dict(data["bus"])
        if data.get("noc") is not None:
            data["noc"] = NocConfig.from_dict(data["noc"])
        return cls(**data)


class _MmioHub:
    """Per-core MMIO window dispatching to registered handlers.

    Handlers (sniffer register files) occupy 16-byte sub-windows in
    registration order; reads/writes outside any window return 0 / are
    dropped, like unconnected peripheral addresses on the real bus.
    """

    WINDOW = 16

    def __init__(self, name):
        self.name = name
        self._handlers = []

    def register(self, handler):
        """Attach a handler exposing ``mmio_read(off)``/``mmio_write(off, v)``;
        returns the base offset of its window."""
        base = len(self._handlers) * self.WINDOW
        if base + self.WINDOW > MMIO_SIZE:
            raise ValueError(f"{self.name}: MMIO window space exhausted")
        self._handlers.append(handler)
        return base

    def mmio_read(self, offset):
        index = offset // self.WINDOW
        if 0 <= index < len(self._handlers):
            return self._handlers[index].mmio_read(offset % self.WINDOW)
        return 0

    def mmio_write(self, offset, value):
        index = offset // self.WINDOW
        if 0 <= index < len(self._handlers):
            self._handlers[index].mmio_write(offset % self.WINDOW, value)


class Platform:
    """An instantiated MPSoC: cores, hierarchy, interconnect, clocking."""

    def __init__(self, config):
        self.config = config
        self.name = config.name
        self.cores = []
        self.memctrls = []
        self.icaches = []
        self.dcaches = []
        self.private_mems = []
        self.shared_mem = None
        self.interconnect = None
        self.mmio = _MmioHub(f"{config.name}.mmio")
        self.clock_domains = {}
        self._build()

    # -- construction -----------------------------------------------------------
    def _build(self):
        cfg = self.config
        self.shared_mem = Memory(
            MemoryConfig(
                name=f"{cfg.name}.shared_mem",
                size=cfg.shared_mem_size,
                latency=cfg.shared_mem_latency,
                physical_latency=cfg.shared_mem_physical_latency,
                kind=KIND_SHARED,
            )
        )
        if cfg.interconnect == "bus":
            bus_cfg = cfg.bus or BusConfig(name=f"{cfg.name}.bus")
            self.interconnect = Bus(bus_cfg)
        else:
            self.interconnect = Noc(cfg.noc)
            shared_switch = cfg.noc_placement.get(
                "shared_mem", cfg.noc.switches[0]
            )
            self.interconnect.register_endpoint(self.shared_mem.name, shared_switch)

        system_hz = max(
            (c.frequency_hz or CORE_SPECS[c.spec].default_hz) for c in cfg.cores
        )
        self.clock_domains[DOMAIN_SYSTEM] = ClockDomain(DOMAIN_SYSTEM, system_hz)
        self.clock_domains[DOMAIN_MEMCTRL] = ClockDomain(DOMAIN_MEMCTRL, system_hz)

        for index, core_cfg in enumerate(cfg.cores):
            spec = CORE_SPECS[core_cfg.spec]
            icache = dcache = None
            if cfg.icache is not None:
                icache = Cache(replace(cfg.icache, name=f"{core_cfg.name}.icache"))
                self.icaches.append(icache)
            if cfg.dcache is not None:
                dcache = Cache(replace(cfg.dcache, name=f"{core_cfg.name}.dcache"))
                self.dcaches.append(dcache)
            memctrl = MemoryController(
                f"{core_cfg.name}.memctrl", icache=icache, dcache=dcache
            )
            private = Memory(
                MemoryConfig(
                    name=f"{core_cfg.name}.private_mem",
                    size=cfg.private_mem_size,
                    latency=cfg.private_mem_latency,
                    physical_latency=cfg.private_mem_physical_latency,
                    kind=KIND_PRIVATE,
                )
            )
            self.private_mems.append(private)
            memctrl.add_range(
                AddressRange(
                    name=f"{core_cfg.name}.private",
                    base=PRIVATE_BASE,
                    size=cfg.private_mem_size,
                    target=private,
                    cacheable=True,
                )
            )
            bridge_name = f"{core_cfg.name}.bridge"
            if cfg.interconnect == "bus":
                master_id = self.interconnect.register_master(bridge_name)
            else:
                switch = cfg.noc_placement.get(
                    core_cfg.name,
                    cfg.noc.switches[index % len(cfg.noc.switches)],
                )
                master_id = self.interconnect.register_master(bridge_name, switch)
            memctrl.add_range(
                AddressRange(
                    name=f"{core_cfg.name}.shared",
                    base=SHARED_BASE,
                    size=cfg.shared_mem_size,
                    target=self.shared_mem,
                    cacheable=False,
                    via=self.interconnect,
                    master_id=master_id,
                )
            )
            memctrl.add_range(
                AddressRange(
                    name=f"{core_cfg.name}.mmio",
                    base=MMIO_BASE,
                    size=MMIO_SIZE,
                    target=self.mmio,
                    is_mmio=True,
                )
            )
            core = Processor(
                core_cfg.name, spec, memctrl, frequency_hz=core_cfg.frequency_hz
            )
            self.cores.append(core)
            self.memctrls.append(memctrl)
            self.clock_domains[DOMAIN_SYSTEM].members.append(core_cfg.name)
            self.clock_domains[DOMAIN_MEMCTRL].members.append(memctrl.name)

    # -- program loading -----------------------------------------------------
    def load_program(self, core_index, program):
        """Load text+data into the core's private memory and bind it."""
        core = self.cores[core_index]
        private = self.private_mems[core_index]
        private.load_blob(program.text_base - PRIVATE_BASE, _encode_words(program.code))
        if program.data:
            private.load_blob(program.data_base - PRIVATE_BASE, program.data)
        core.load_program(program)

    def load_program_all(self, programs):
        """Load one program per core (a list, like EDK loading different
        binaries on each processor)."""
        if len(programs) != len(self.cores):
            raise ValueError(
                f"{self.name}: {len(programs)} programs for {len(self.cores)} cores"
            )
        for index, program in enumerate(programs):
            self.load_program(index, program)

    # -- shared memory helpers (hosts load input data sets) ---------------------
    def write_shared(self, addr, blob):
        self.shared_mem.load_blob(addr - SHARED_BASE, blob)

    def read_shared(self, addr, size):
        off = addr - SHARED_BASE
        return bytes(self.shared_mem.data[off : off + size])

    # -- reporting ----------------------------------------------------------------
    def components(self):
        """(name, object) pairs of everything a sniffer can monitor.

        Memory controllers are monitored components in their own right
        (Section 4.1: the sniffers watch "certain signals of the memory
        controller"), so a 1-core bus platform counts 7 components and a
        4-core one 22 — the counts behind the paper's Table 3 rows.
        """
        for core in self.cores:
            yield core.name, core
        for memctrl in self.memctrls:
            yield memctrl.name, memctrl
        for cache in self.icaches + self.dcaches:
            yield cache.name, cache
        for mem in self.private_mems:
            yield mem.name, mem
        yield self.shared_mem.name, self.shared_mem
        yield self.interconnect.name, self.interconnect

    def stats(self):
        report = {
            "cores": {c.name: c.stats() for c in self.cores},
            "icaches": {c.name: c.stats() for c in self.icaches},
            "dcaches": {c.name: c.stats() for c in self.dcaches},
            "private_mems": {m.name: m.stats() for m in self.private_mems},
            "shared_mem": self.shared_mem.stats(),
            "interconnect": self.interconnect.stats(),
        }
        return report

    def resource_report(self, num_event_sniffers=0, num_count_sniffers=0):
        """FPGA slice-utilization estimate for this platform.

        Returns ``{component: slices, ..., 'total': n, 'percent': p}``.
        """
        cfg = self.config
        report = {}
        core_slices = sum(CORE_SPECS[c.spec].fpga_slices for c in cfg.cores)
        report["cores"] = core_slices
        report["memctrls"] = SLICE_COSTS["memctrl"] * len(self.cores)
        report["caches"] = SLICE_COSTS["cache_ctrl"] * (
            len(self.icaches) + len(self.dcaches)
        )
        report["private_mems"] = SLICE_COSTS["private_mem"] * len(self.private_mems)
        report["shared_mem_ctrl"] = SLICE_COSTS["shared_mem_ctrl"]
        if cfg.interconnect == "bus":
            kind = (cfg.bus or BusConfig(name="default")).kind
            report["interconnect"] = SLICE_COSTS[f"bus_{kind}"]
        else:
            noc = self.interconnect
            total = 0
            for switch in cfg.noc.switches:
                radix = max(2, noc.switch_radix(switch))
                total += switch_slices(radix, radix, cfg.noc.buffer_flits)
            total += SLICE_COSTS["noc_ni"] * (len(self.cores) + 1)
            report["interconnect"] = total
        report["sniffers"] = (
            SLICE_COSTS["sniffer_event_logging"] * num_event_sniffers
            + SLICE_COSTS["sniffer_count_logging"] * num_count_sniffers
        )
        report["ethernet_dispatcher"] = SLICE_COSTS["ethernet_dispatcher"]
        report["vpcm"] = SLICE_COSTS["vpcm"]
        report["base_infrastructure"] = SLICE_COSTS["base_infrastructure"]
        total = sum(report.values())
        report["total"] = total
        report["percent"] = 100.0 * total / V2VP30_SLICES
        return report


def _encode_words(words):
    blob = bytearray()
    for word in words:
        blob.extend(int(word & 0xFFFFFFFF).to_bytes(4, "little"))
    return bytes(blob)


def build_platform(config):
    """Instantiate a :class:`Platform` from an :class:`MPSoCConfig`."""
    return Platform(config)
