"""Two-pass assembler for the RISC-32 ISA.

Supports ``.text``/``.data`` sections, labels, data directives
(``.word``, ``.byte``, ``.space``, ``.align``), ``symbol+offset``
expressions and a small set of pseudo-instructions (``li``, ``la``,
``mv``, ``b``, ``bgt``, ``ble``, ``neg``, ``call``, ``ret``).

The paper compiles its drivers with gcc from the Xilinx EDK; this
assembler plays that role for our emulated cores (see DESIGN.md,
substitution table).
"""

from dataclasses import dataclass, field

from repro.mpsoc import isa
from repro.mpsoc.isa import (
    CLASS_LOAD,
    CLASS_STORE,
    FMT_B,
    FMT_I,
    FMT_J,
    FMT_R,
    IMM16_MAX,
    IMM16_MIN,
    OPS_BY_NAME,
    UIMM16_MAX,
    Instruction,
)

REGISTER_ALIASES = {"zero": 0, "ra": 31, "sp": 30}


class AssemblyError(ValueError):
    """Raised on any source-level assembly problem, with a line number."""

    def __init__(self, message, line_no=None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


@dataclass
class Program:
    """An assembled program ready to load into an emulated core's memory."""

    code: list
    data: bytes
    text_base: int
    data_base: int
    symbols: dict
    entry: int = 0
    source_map: list = field(default_factory=list)

    @property
    def text_size(self):
        """Size of the text section in bytes."""
        return 4 * len(self.code)

    @property
    def data_size(self):
        return len(self.data)

    def disassemble(self):
        """Return the decoded instruction list (for tests and debugging)."""
        return [isa.decode(word) for word in self.code]


def parse_register(token, line_no):
    token = token.strip().lower()
    if token in REGISTER_ALIASES:
        return REGISTER_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        index = int(token[1:])
        if 0 <= index < isa.NUM_REGISTERS:
            return index
    raise AssemblyError(f"bad register {token!r}", line_no)


def _parse_int(token):
    token = token.strip()
    negative = token.startswith("-")
    body = token[1:] if token[:1] in ("-", "+") else token
    if body.lower().startswith("0x"):
        value = int(body, 16)
    elif body.isdigit():
        value = int(body, 10)
    else:
        return None
    return -value if negative else value


@dataclass
class _SymRef:
    """A symbol reference with an additive offset, resolved in pass 2."""

    name: str
    offset: int = 0


def _parse_operand_value(token, line_no):
    """Parse an integer literal or a ``symbol[+-]offset`` expression."""
    value = _parse_int(token)
    if value is not None:
        return value
    token = token.strip()
    for sep in ("+", "-"):
        # Split on the last separator so 'tab+4' and 'tab-4' both work.
        if sep in token[1:]:
            idx = token.rindex(sep)
            base, off = token[:idx], token[idx:]
            off_val = _parse_int(off)
            if off_val is not None and _is_identifier(base):
                return _SymRef(base.strip(), off_val)
    if _is_identifier(token):
        return _SymRef(token)
    raise AssemblyError(f"cannot parse operand {token!r}", line_no)


def _is_identifier(token):
    token = token.strip()
    return bool(token) and (token[0].isalpha() or token[0] == "_") and all(
        c.isalnum() or c == "_" for c in token
    )


@dataclass
class _PendingInstr:
    """An instruction awaiting symbol resolution."""

    line_no: int
    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: object = 0  # int or _SymRef
    imm_kind: str = "value"  # value | branch | jump | hi16 | lo16


def _strip_comment(line):
    for marker in ("#", ";", "//"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _split_operands(rest):
    return [tok.strip() for tok in rest.split(",")] if rest.strip() else []


def _parse_mem_operand(token, line_no):
    """Parse ``offset(rN)`` used by loads and stores."""
    token = token.strip()
    if token.endswith(")") and "(" in token:
        open_idx = token.rindex("(")
        offset_tok = token[:open_idx].strip() or "0"
        reg_tok = token[open_idx + 1 : -1]
        base = parse_register(reg_tok, line_no)
        offset = _parse_operand_value(offset_tok, line_no)
        return offset, base
    # Bare symbol or literal: absolute address with r0 base.
    return _parse_operand_value(token, line_no), 0


class _Assembler:
    def __init__(self, text_base, data_base):
        self.text_base = text_base
        self.data_base = data_base
        self.instrs = []  # list of _PendingInstr
        self.data = bytearray()
        self.data_fixups = []  # (byte offset, _SymRef) for .word with symbols
        self.symbols = {}
        self.section = "text"
        self.source_map = []

    # -- pass 1 ------------------------------------------------------------
    def feed(self, line, line_no):
        line = _strip_comment(line)
        if not line:
            return
        while True:
            label, sep, rest = line.partition(":")
            if sep and _is_identifier(label):
                self._define_label(label.strip(), line_no)
                line = rest.strip()
                if not line:
                    return
            else:
                break
        if line.startswith("."):
            self._directive(line, line_no)
        else:
            self._instruction(line, line_no)

    def _define_label(self, name, line_no):
        if name in self.symbols:
            raise AssemblyError(f"duplicate label {name!r}", line_no)
        if self.section == "text":
            self.symbols[name] = ("text", len(self.instrs))
        else:
            self.symbols[name] = ("data", len(self.data))

    def _directive(self, line, line_no):
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            self.section = "text"
        elif name == ".data":
            self.section = "data"
        elif name == ".word":
            self._require_data(name, line_no)
            for tok in _split_operands(rest):
                value = _parse_operand_value(tok, line_no)
                if isinstance(value, _SymRef):
                    self.data_fixups.append((len(self.data), value))
                    value = 0
                self.data.extend(int(value & 0xFFFFFFFF).to_bytes(4, "little"))
        elif name == ".byte":
            self._require_data(name, line_no)
            for tok in _split_operands(rest):
                value = _parse_int(tok)
                if value is None or not -128 <= value <= 255:
                    raise AssemblyError(f"bad byte value {tok!r}", line_no)
                self.data.append(value & 0xFF)
        elif name == ".space":
            self._require_data(name, line_no)
            count = _parse_int(rest)
            if count is None or count < 0:
                raise AssemblyError(f"bad .space size {rest!r}", line_no)
            self.data.extend(bytes(count))
        elif name == ".align":
            self._require_data(name, line_no)
            boundary = _parse_int(rest)
            if boundary is None or boundary <= 0:
                raise AssemblyError(f"bad .align boundary {rest!r}", line_no)
            while len(self.data) % boundary:
                self.data.append(0)
        else:
            raise AssemblyError(f"unknown directive {name!r}", line_no)

    def _require_data(self, directive, line_no):
        if self.section != "data":
            raise AssemblyError(f"{directive} outside .data section", line_no)

    def _emit(self, pending):
        self.instrs.append(pending)
        self.source_map.append(pending.line_no)

    def _instruction(self, line, line_no):
        if self.section != "text":
            raise AssemblyError("instruction outside .text section", line_no)
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        ops = _split_operands(parts[1]) if len(parts) > 1 else []
        handler = getattr(self, f"_pseudo_{mnemonic}", None)
        if handler is not None:
            handler(ops, line_no)
            return
        spec = OPS_BY_NAME.get(mnemonic)
        if spec is None:
            raise AssemblyError(f"unknown instruction {mnemonic!r}", line_no)
        self._concrete(spec, mnemonic, ops, line_no)

    def _concrete(self, spec, mnemonic, ops, line_no):
        p = _PendingInstr(line_no, mnemonic)
        if spec.fmt == FMT_R:
            if mnemonic in ("nop", "halt"):
                self._expect(ops, 0, mnemonic, line_no)
            elif mnemonic == "jr":
                self._expect(ops, 1, mnemonic, line_no)
                p.rs1 = parse_register(ops[0], line_no)
            elif mnemonic == "jalr":
                self._expect(ops, 2, mnemonic, line_no)
                p.rd = parse_register(ops[0], line_no)
                p.rs1 = parse_register(ops[1], line_no)
            else:
                self._expect(ops, 3, mnemonic, line_no)
                p.rd = parse_register(ops[0], line_no)
                p.rs1 = parse_register(ops[1], line_no)
                p.rs2 = parse_register(ops[2], line_no)
        elif spec.fmt == FMT_I:
            if spec.cls in (CLASS_LOAD, CLASS_STORE):
                self._expect(ops, 2, mnemonic, line_no)
                p.rd = parse_register(ops[0], line_no)
                p.imm, p.rs1 = _parse_mem_operand(ops[1], line_no)
            elif mnemonic == "lui":
                self._expect(ops, 2, mnemonic, line_no)
                p.rd = parse_register(ops[0], line_no)
                p.imm = _parse_operand_value(ops[1], line_no)
            else:
                self._expect(ops, 3, mnemonic, line_no)
                p.rd = parse_register(ops[0], line_no)
                p.rs1 = parse_register(ops[1], line_no)
                p.imm = _parse_operand_value(ops[2], line_no)
        elif spec.fmt == FMT_B:
            self._expect(ops, 3, mnemonic, line_no)
            p.rs1 = parse_register(ops[0], line_no)
            p.rs2 = parse_register(ops[1], line_no)
            p.imm = _parse_operand_value(ops[2], line_no)
            p.imm_kind = "branch"
        elif spec.fmt == FMT_J:
            if mnemonic == "jal":
                if len(ops) == 1:
                    p.rd = 31
                    target = ops[0]
                else:
                    self._expect(ops, 2, mnemonic, line_no)
                    p.rd = parse_register(ops[0], line_no)
                    target = ops[1]
            else:
                self._expect(ops, 1, mnemonic, line_no)
                target = ops[0]
            p.imm = _parse_operand_value(target, line_no)
            p.imm_kind = "jump"
        self._emit(p)

    @staticmethod
    def _expect(ops, count, mnemonic, line_no):
        if len(ops) != count:
            raise AssemblyError(
                f"{mnemonic} expects {count} operand(s), got {len(ops)}", line_no
            )

    # -- pseudo-instructions -------------------------------------------------
    def _pseudo_li(self, ops, line_no):
        self._expect(ops, 2, "li", line_no)
        rd = parse_register(ops[0], line_no)
        value = _parse_int(ops[1])
        if value is None:
            raise AssemblyError(f"li needs a constant, got {ops[1]!r}", line_no)
        value &= 0xFFFFFFFF
        signed = isa.to_signed(value)
        if IMM16_MIN <= signed <= IMM16_MAX:
            self._emit(_PendingInstr(line_no, "addi", rd=rd, rs1=0, imm=signed))
        elif 0 <= value <= UIMM16_MAX:
            self._emit(_PendingInstr(line_no, "ori", rd=rd, rs1=0, imm=value))
        else:
            hi, lo = value >> 16, value & 0xFFFF
            self._emit(_PendingInstr(line_no, "lui", rd=rd, imm=hi))
            if lo:
                self._emit(_PendingInstr(line_no, "ori", rd=rd, rs1=rd, imm=lo))

    def _pseudo_la(self, ops, line_no):
        self._expect(ops, 2, "la", line_no)
        rd = parse_register(ops[0], line_no)
        ref = _parse_operand_value(ops[1], line_no)
        if not isinstance(ref, _SymRef):
            # A plain constant: same as li.
            self._pseudo_li([ops[0], ops[1]], line_no)
            return
        self._emit(_PendingInstr(line_no, "lui", rd=rd, imm=ref, imm_kind="hi16"))
        self._emit(
            _PendingInstr(line_no, "ori", rd=rd, rs1=rd, imm=ref, imm_kind="lo16")
        )

    def _pseudo_mv(self, ops, line_no):
        self._expect(ops, 2, "mv", line_no)
        rd = parse_register(ops[0], line_no)
        rs = parse_register(ops[1], line_no)
        self._emit(_PendingInstr(line_no, "addi", rd=rd, rs1=rs, imm=0))

    def _pseudo_b(self, ops, line_no):
        self._expect(ops, 1, "b", line_no)
        target = _parse_operand_value(ops[0], line_no)
        self._emit(_PendingInstr(line_no, "beq", imm=target, imm_kind="branch"))

    def _pseudo_bgt(self, ops, line_no):
        # bgt a, b, t  ==  blt b, a, t
        self._expect(ops, 3, "bgt", line_no)
        rs1 = parse_register(ops[0], line_no)
        rs2 = parse_register(ops[1], line_no)
        target = _parse_operand_value(ops[2], line_no)
        self._emit(
            _PendingInstr(
                line_no, "blt", rs1=rs2, rs2=rs1, imm=target, imm_kind="branch"
            )
        )

    def _pseudo_ble(self, ops, line_no):
        # ble a, b, t  ==  bge b, a, t
        self._expect(ops, 3, "ble", line_no)
        rs1 = parse_register(ops[0], line_no)
        rs2 = parse_register(ops[1], line_no)
        target = _parse_operand_value(ops[2], line_no)
        self._emit(
            _PendingInstr(
                line_no, "bge", rs1=rs2, rs2=rs1, imm=target, imm_kind="branch"
            )
        )

    def _pseudo_neg(self, ops, line_no):
        self._expect(ops, 2, "neg", line_no)
        rd = parse_register(ops[0], line_no)
        rs = parse_register(ops[1], line_no)
        self._emit(_PendingInstr(line_no, "sub", rd=rd, rs1=0, rs2=rs))

    def _pseudo_call(self, ops, line_no):
        self._expect(ops, 1, "call", line_no)
        target = _parse_operand_value(ops[0], line_no)
        self._emit(_PendingInstr(line_no, "jal", rd=31, imm=target, imm_kind="jump"))

    def _pseudo_ret(self, ops, line_no):
        self._expect(ops, 0, "ret", line_no)
        self._emit(_PendingInstr(line_no, "jr", rs1=31))

    # -- pass 2 ------------------------------------------------------------
    def resolve(self):
        if self.data_base is None:
            text_end = self.text_base + 4 * len(self.instrs)
            self.data_base = (text_end + 15) & ~15
        addresses = {}
        for name, (section, offset) in self.symbols.items():
            if section == "text":
                addresses[name] = self.text_base + 4 * offset
            else:
                addresses[name] = self.data_base + offset
        code = []
        for index, p in enumerate(self.instrs):
            imm = p.imm
            if isinstance(imm, _SymRef):
                if imm.name not in self.symbols:
                    raise AssemblyError(f"undefined symbol {imm.name!r}", p.line_no)
                section, offset = self.symbols[imm.name]
                if p.imm_kind == "branch":
                    if section != "text":
                        raise AssemblyError(
                            f"branch to data symbol {imm.name!r}", p.line_no
                        )
                    imm = offset + imm.offset - (index + 1)
                elif p.imm_kind == "jump":
                    if section != "text":
                        raise AssemblyError(
                            f"jump to data symbol {imm.name!r}", p.line_no
                        )
                    imm = offset + imm.offset
                elif p.imm_kind == "hi16":
                    imm = ((addresses[imm.name] + imm.offset) >> 16) & 0xFFFF
                elif p.imm_kind == "lo16":
                    imm = (addresses[imm.name] + imm.offset) & 0xFFFF
                else:
                    imm = addresses[imm.name] + imm.offset
            try:
                instr = Instruction(
                    p.mnemonic, rd=p.rd, rs1=p.rs1, rs2=p.rs2, imm=imm
                )
                code.append(instr.encode())
            except isa.IsaError as exc:
                raise AssemblyError(str(exc), p.line_no) from exc
        for offset, ref in self.data_fixups:
            if ref.name not in addresses:
                raise AssemblyError(f"undefined symbol {ref.name!r} in .word")
            value = (addresses[ref.name] + ref.offset) & 0xFFFFFFFF
            self.data[offset : offset + 4] = value.to_bytes(4, "little")
        entry = 0
        if "main" in self.symbols and self.symbols["main"][0] == "text":
            entry = self.symbols["main"][1]
        return Program(
            code=code,
            data=bytes(self.data),
            text_base=self.text_base,
            data_base=self.data_base,
            symbols=addresses,
            entry=entry,
            source_map=self.source_map,
        )


def assemble(source, text_base=0x0, data_base=None):
    """Assemble RISC-32 source text into a :class:`Program`.

    ``text_base`` is the byte address where the code will be loaded;
    ``data_base`` defaults to just past the text section, 16-byte aligned.
    The entry point is the ``main`` label when present, else the first
    instruction.
    """
    assembler = _Assembler(text_base, data_base)
    for line_no, line in enumerate(source.splitlines(), start=1):
        assembler.feed(line, line_no)
    return assembler.resolve()
