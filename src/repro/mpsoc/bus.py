"""Shared-bus interconnects: OPB-, PLB-class and the custom exploration bus.

Section 3.3: the framework ships the Xilinx On-chip Peripheral Bus (OPB)
and Processor Local Bus (PLB), plus a custom configurable 32-bit
data/address bus (configurable bandwidth and arbitration policy) used
for architecture exploration.

Two layers live here:

* :class:`Arbiter` — a cycle-level arbitration state machine
  (fixed-priority, round-robin, TDMA) used directly by the signal-level
  engine and by the fairness property tests.
* :class:`Bus` — the fast timed-transaction model used by the
  event-driven engine: transactions are serialized in arrival order
  (the engine resolves calls in global time order), the policy decides
  same-cycle ties and per-grant overhead.  The signal-level engine
  performs true per-cycle arbitration; `tests/emulation/` checks the two
  agree on single-master traffic and conserve cycles on multi-master.
"""

from dataclasses import dataclass

from repro.mpsoc import events as ev
from repro.mpsoc.events import CounterBlock, Observable

ARB_FIXED_PRIORITY = "fixed-priority"
ARB_ROUND_ROBIN = "round-robin"
ARB_TDMA = "tdma"

BUS_KIND_OPB = "opb"
BUS_KIND_PLB = "plb"
BUS_KIND_CUSTOM = "custom"

# Per-kind default grant/address overheads (cycles).  OPB is a simple
# general-purpose peripheral bus; PLB is the faster processor-local bus.
_BUS_KIND_DEFAULTS = {
    BUS_KIND_OPB: {"arb_cycles": 2, "address_cycles": 1, "data_cycles_per_word": 1},
    BUS_KIND_PLB: {"arb_cycles": 1, "address_cycles": 1, "data_cycles_per_word": 1},
    BUS_KIND_CUSTOM: {"arb_cycles": 1, "address_cycles": 1, "data_cycles_per_word": 1},
}


@dataclass
class BusConfig:
    """Configuration of one shared bus."""

    name: str
    kind: str = BUS_KIND_CUSTOM
    width_bits: int = 32
    arbitration: str = ARB_FIXED_PRIORITY
    arb_cycles: int = None
    address_cycles: int = None
    data_cycles_per_word: int = None
    tdma_slot_cycles: int = 8

    def __post_init__(self):
        if self.kind not in _BUS_KIND_DEFAULTS:
            raise ValueError(f"{self.name}: unknown bus kind {self.kind!r}")
        if self.arbitration not in (ARB_FIXED_PRIORITY, ARB_ROUND_ROBIN, ARB_TDMA):
            raise ValueError(f"{self.name}: unknown arbitration {self.arbitration!r}")
        if self.width_bits % 8:
            raise ValueError(f"{self.name}: width must be a whole number of bytes")
        defaults = _BUS_KIND_DEFAULTS[self.kind]
        for key, value in defaults.items():
            if getattr(self, key) is None:
                setattr(self, key, value)
        if self.tdma_slot_cycles < 1:
            raise ValueError(f"{self.name}: TDMA slot must be >= 1 cycle")

    def to_dict(self):
        return {
            "name": self.name,
            "kind": self.kind,
            "width_bits": self.width_bits,
            "arbitration": self.arbitration,
            "arb_cycles": self.arb_cycles,
            "address_cycles": self.address_cycles,
            "data_cycles_per_word": self.data_cycles_per_word,
            "tdma_slot_cycles": self.tdma_slot_cycles,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(**data)

    def words_per_beat(self):
        """32-bit words transferred per data beat (wider buses move more)."""
        return max(1, self.width_bits // 32)


class Arbiter:
    """Cycle-level bus arbiter.

    ``pick(requesters, cycle)`` returns the granted master id (an index)
    among the currently requesting masters, or ``None`` when there is no
    request (or, for TDMA, when the slot owner is not requesting).
    """

    def __init__(self, policy, num_masters, tdma_slot_cycles=8):
        if num_masters < 1:
            raise ValueError("arbiter needs at least one master")
        self.policy = policy
        self.num_masters = num_masters
        self.tdma_slot_cycles = tdma_slot_cycles
        self._rr_next = 0

    def pick(self, requesters, cycle):
        """Grant one master among ``requesters`` at ``cycle``."""
        pending = sorted(set(requesters))
        if not pending:
            return None
        for master in pending:
            if not 0 <= master < self.num_masters:
                raise ValueError(f"unknown master {master}")
        if self.policy == ARB_FIXED_PRIORITY:
            return pending[0]
        if self.policy == ARB_ROUND_ROBIN:
            for offset in range(self.num_masters):
                candidate = (self._rr_next + offset) % self.num_masters
                if candidate in pending:
                    self._rr_next = (candidate + 1) % self.num_masters
                    return candidate
            return None
        # TDMA: the cycle's slot owner gets the bus, nobody else.
        slot_owner = (cycle // self.tdma_slot_cycles) % self.num_masters
        return slot_owner if slot_owner in pending else None

    def slot_wait(self, master, cycle):
        """TDMA only: cycles until ``master``'s next slot starts at/after
        ``cycle`` (0 if the current slot already belongs to it)."""
        if self.policy != ARB_TDMA:
            return 0
        slot = self.tdma_slot_cycles
        frame = slot * self.num_masters
        slot_start_in_frame = master * slot
        pos = cycle % frame
        delta = slot_start_in_frame - pos
        if delta < 0:
            # Already past this frame's slot...
            if pos < slot_start_in_frame + slot:
                return 0  # ...but still inside it.
            delta += frame
        return delta


class Bus(Observable):
    """Fast timed-transaction shared bus.

    Masters are registered with :meth:`register_master`; slaves are
    :class:`repro.mpsoc.memory.Memory` objects (or anything exposing
    ``access_latency``/``record_access``/``port_busy_until``).
    """

    def __init__(self, config, num_masters=0):
        super().__init__()
        self.config = config
        self.name = config.name
        self.masters = []
        self.counters = CounterBlock(config.name)
        self.per_master_wait = {}
        self._busy_until = 0
        self._arbiter = None
        for _ in range(num_masters):
            self.register_master(f"{config.name}.m{len(self.masters)}")

    def register_master(self, name):
        """Add a master; returns its id (arbitration priority order)."""
        master_id = len(self.masters)
        self.masters.append(name)
        self.per_master_wait[master_id] = 0
        self._arbiter = Arbiter(
            self.config.arbitration, len(self.masters), self.config.tdma_slot_cycles
        )
        return master_id

    # -- the fast transfer path ----------------------------------------------
    def occupancy_cycles(self, nwords):
        """Bus cycles one transaction occupies (excluding slave latency)."""
        cfg = self.config
        beats = -(-nwords // cfg.words_per_beat())  # ceil division
        return cfg.arb_cycles + cfg.address_cycles + beats * cfg.data_cycles_per_word

    def transfer(self, master_id, slave, addr, is_write, nwords, t):
        """Execute one burst; returns total latency in virtual cycles.

        Latency = wait for bus grant (+ TDMA slot) + bus occupancy +
        slave access latency.  The bus is held for the whole transaction
        (OPB-style non-split transfers, as in the paper's platform).
        """
        if not 0 <= master_id < len(self.masters):
            raise ValueError(f"{self.name}: unknown master id {master_id}")
        if nwords < 1:
            raise ValueError(f"{self.name}: empty transfer")
        grant_t = max(t, self._busy_until, getattr(slave, "port_busy_until", 0))
        if self.config.arbitration == ARB_TDMA:
            grant_t += self._arbiter.slot_wait(master_id, grant_t)
        wait = grant_t - t
        occupancy = self.occupancy_cycles(nwords)
        slave_latency = slave.access_latency(nwords)
        total_busy = occupancy + slave_latency
        self._busy_until = grant_t + total_busy
        slave.port_busy_until = self._busy_until
        slave.record_access(grant_t, is_write, nwords)
        # Statistics.
        self.counters.add(ev.BUS_TXN)
        self.counters.add("words", nwords)
        self.counters.add("busy_cycles", total_busy)
        if wait:
            self.counters.add(ev.BUS_WAIT, wait)
            self.per_master_wait[master_id] += wait
        if self.has_hooks:
            self.emit(
                grant_t, self.name, ev.BUS_TXN, (master_id, addr, is_write, nwords)
            )
        return wait + total_busy

    # -- statistics ------------------------------------------------------------
    def stats(self):
        return {
            "transactions": self.counters.get(ev.BUS_TXN),
            "words": self.counters.get("words"),
            "busy_cycles": self.counters.get("busy_cycles"),
            "wait_cycles": self.counters.get(ev.BUS_WAIT),
            "per_master_wait": dict(self.per_master_wait),
        }

    def utilization(self, elapsed_cycles):
        """Fraction of ``elapsed_cycles`` the bus was occupied."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.counters.get("busy_cycles") / elapsed_cycles)
