"""HW-controlled L1 caches (Section 3.2).

The paper supports private data and instruction caches, transparent to
the processors, embedded before the cacheable address ranges; total
size, line size and latency are independently configurable and both
direct-mapped and set-associative organizations exist.

The model is *timing-first*: functional data lives in the backing
memories (write-through keeps them coherent by construction; for
write-back mode stores still update the backing store functionally while
the timing model charges the write-back traffic on eviction).  The tag
arrays here are exact, so hit/miss/eviction statistics — what the
sniffers feed to the power model — are cycle-accurate.
"""

from dataclasses import dataclass

from repro.mpsoc import events as ev
from repro.mpsoc.events import CounterBlock, Observable

WRITE_THROUGH = "write-through"
WRITE_BACK = "write-back"


@dataclass
class CacheConfig:
    """Configuration of one L1 cache.

    ``assoc=1`` is a direct-mapped cache; higher values are LRU
    set-associative.  Write-through caches do not allocate on write miss
    (no-write-allocate), write-back caches do — the usual pairings.
    """

    name: str
    size: int = 4096
    line_size: int = 16
    assoc: int = 1
    hit_latency: int = 1
    write_policy: str = WRITE_THROUGH

    def __post_init__(self):
        if self.line_size <= 0 or self.line_size % 4:
            raise ValueError(f"{self.name}: line size must be a positive multiple of 4")
        if self.size % (self.line_size * self.assoc):
            raise ValueError(
                f"{self.name}: size {self.size} not divisible by "
                f"line_size*assoc = {self.line_size * self.assoc}"
            )
        if self.write_policy not in (WRITE_THROUGH, WRITE_BACK):
            raise ValueError(f"{self.name}: bad write policy {self.write_policy!r}")
        if self.hit_latency < 1:
            raise ValueError(f"{self.name}: hit latency must be >= 1")

    def to_dict(self):
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        return cls(**data)

    @property
    def num_sets(self):
        return self.size // (self.line_size * self.assoc)

    @property
    def line_words(self):
        return self.line_size // 4


@dataclass
class CacheResult:
    """Outcome of one cache access, consumed by the memory controller.

    ``fill`` — a whole line must be fetched from backing store.
    ``writeback`` — a dirty victim line must be written back first.
    ``through_write`` — the word must also be written to backing store
    (write-through stores).
    """

    hit: bool
    fill: bool = False
    writeback: bool = False
    through_write: bool = False
    victim_addr: int = None


class Cache(Observable):
    """Exact tag-array model of an L1 cache."""

    def __init__(self, config):
        super().__init__()
        self.config = config
        self.name = config.name
        # Per set: list of [tag, dirty] entries, LRU order (index 0 = LRU,
        # last = MRU).  Exact, order-preserving model.
        self._sets = [[] for _ in range(config.num_sets)]
        self.counters = CounterBlock(config.name)

    # -- address helpers -----------------------------------------------------
    def _index_tag(self, addr):
        line = addr // self.config.line_size
        return line % self.config.num_sets, line // self.config.num_sets

    def line_base(self, addr):
        """Base address of the line containing ``addr``."""
        return addr - (addr % self.config.line_size)

    def _victim_base(self, set_index, tag):
        line = tag * self.config.num_sets + set_index
        return line * self.config.line_size

    # -- the access path -------------------------------------------------------
    def access(self, addr, is_write, cycle=0):
        """Perform one access; returns a :class:`CacheResult`.

        Pure tag-state transition — the memory controller turns the result
        into latencies and backing-store traffic.
        """
        cfg = self.config
        set_index, tag = self._index_tag(addr)
        entries = self._sets[set_index]
        self.counters.add("accesses")
        for pos, entry in enumerate(entries):
            if entry[0] == tag:
                # Hit: move to MRU position.
                entries.append(entries.pop(pos))
                if is_write:
                    if cfg.write_policy == WRITE_BACK:
                        entry[1] = True
                        result = CacheResult(hit=True)
                    else:
                        result = CacheResult(hit=True, through_write=True)
                else:
                    result = CacheResult(hit=True)
                self.counters.add(ev.CACHE_HIT)
                if self.has_hooks:
                    self.emit(cycle, self.name, ev.CACHE_HIT, (addr, is_write))
                return result
        # Miss.
        self.counters.add(ev.CACHE_MISS)
        if self.has_hooks:
            self.emit(cycle, self.name, ev.CACHE_MISS, (addr, is_write))
        if is_write and cfg.write_policy == WRITE_THROUGH:
            # No-write-allocate: just pass the write through.
            return CacheResult(hit=False, through_write=True)
        # Allocate: evict the LRU entry if the set is full.
        writeback = False
        victim_addr = None
        if len(entries) >= cfg.assoc:
            victim_tag, victim_dirty = entries.pop(0)
            self.counters.add(ev.CACHE_EVICT)
            victim_addr = self._victim_base(set_index, victim_tag)
            if victim_dirty:
                writeback = True
                self.counters.add(ev.CACHE_WRITEBACK)
                if self.has_hooks:
                    self.emit(cycle, self.name, ev.CACHE_WRITEBACK, (victim_addr,))
        dirty = bool(is_write and cfg.write_policy == WRITE_BACK)
        entries.append([tag, dirty])
        return CacheResult(
            hit=False, fill=True, writeback=writeback, victim_addr=victim_addr
        )

    def contains(self, addr):
        """True if the line holding ``addr`` is resident (for tests)."""
        set_index, tag = self._index_tag(addr)
        return any(entry[0] == tag for entry in self._sets[set_index])

    def resident_lines(self):
        """All resident line base addresses (for invariant checks)."""
        lines = []
        for set_index, entries in enumerate(self._sets):
            for tag, _dirty in entries:
                lines.append(self._victim_base(set_index, tag))
        return lines

    def dirty_lines(self):
        lines = []
        for set_index, entries in enumerate(self._sets):
            for tag, dirty in entries:
                if dirty:
                    lines.append(self._victim_base(set_index, tag))
        return lines

    def flush(self):
        """Invalidate everything; returns the number of dirty lines dropped
        from the timing state (their data is already in backing store —
        see the module docstring on the functional/timing split)."""
        dirty = len(self.dirty_lines())
        self._sets = [[] for _ in range(self.config.num_sets)]
        return dirty

    def stats(self):
        accesses = self.counters.get("accesses")
        misses = self.counters.get(ev.CACHE_MISS)
        return {
            "accesses": accesses,
            "hits": self.counters.get(ev.CACHE_HIT),
            "misses": misses,
            "evictions": self.counters.get(ev.CACHE_EVICT),
            "writebacks": self.counters.get(ev.CACHE_WRITEBACK),
            "miss_rate": (misses / accesses) if accesses else 0.0,
        }
