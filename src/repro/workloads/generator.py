"""Synthetic workload generators for sweeps and ablations.

These produce small parameterized kernels with controllable
compute/communication mixes — the knobs the interconnect and sniffer
ablation benches turn.
"""

from repro.mpsoc.asm import assemble
from repro.mpsoc.platform import SHARED_BASE


def shared_traffic_program(core_id, num_words=256, reads_per_write=1, stride=1,
                           iterations=1):
    """A core that streams reads (and writes) over the interconnect.

    Walks ``num_words`` words of shared memory with the given stride,
    issuing ``reads_per_write`` loads per store — pure interconnect
    traffic for bus-vs-NoC comparisons.
    """
    if num_words < 1 or stride < 1 or reads_per_write < 1 or iterations < 1:
        raise ValueError("generator parameters must be positive")
    base = SHARED_BASE + 4 * core_id * num_words * stride
    reads = "\n".join(
        f"        lw   r7, {4 * r}(r6)" for r in range(reads_per_write)
    )
    return assemble(
        f"""
# shared-memory traffic generator, core {core_id}
        .text
main:   li   r20, {iterations}
iter:   li   r6, 0x{base:08x}
        li   r2, 0
loop:
{reads}
        add  r8, r8, r7
        sw   r8, 0(r6)
        addi r6, r6, {4 * stride}
        addi r2, r2, 1
        blt  r2, r0, loop            # patched below: loop bound in r1
        addi r20, r20, -1
        bgt  r20, r0, iter
        halt
"""
        .replace("blt  r2, r0, loop", f"slti r9, r2, {num_words}\n        bne  r9, r0, loop")
    )


def compute_burst_program(busy_loops=1000, idle_loops=0, iterations=1):
    """Alternating compute bursts and low-activity phases.

    ``busy_loops`` tight ALU iterations followed by ``idle_loops`` of a
    slow pointer-free loop; shapes core activity for power-model and
    DFS-policy tests.
    """
    if busy_loops < 1 or idle_loops < 0 or iterations < 1:
        raise ValueError("generator parameters must be positive")
    idle_block = ""
    if idle_loops:
        idle_block = f"""
        li   r3, {idle_loops}
idle:   addi r3, r3, -1
        nop
        nop
        nop
        bgt  r3, r0, idle
"""
    return assemble(
        f"""
# compute-burst generator
        .text
main:   li   r20, {iterations}
iter:   li   r2, {busy_loops}
busy:   add  r4, r4, r2
        xor  r5, r4, r2
        slli r6, r5, 1
        addi r2, r2, -1
        bgt  r2, r0, busy
{idle_block}
        addi r20, r20, -1
        bgt  r20, r0, iter
        halt
"""
    )
