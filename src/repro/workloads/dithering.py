"""The DITHERING driver (Section 7, Table 3 rows 4-5).

Floyd-Steinberg dithering of two grey images stored in shared memory,
split into four horizontal segments — one per core.  The kernel is
highly parallel and imposes almost the same workload on each processor,
and every pixel touch is a shared-memory transaction, which is what
makes this driver interconnect-bound (the paper uses it to compare the
bus against the NoC).

Error diffusion is segment-local (a core never writes another core's
rows, so the parallel run is race-free); :func:`golden_dither`
implements the identical arithmetic in NumPy-free Python for bit-exact
verification, including the arithmetic-shift (floor) semantics of the
``(err * w) >> 4`` weights and the 0..255 clamped adds.
"""

import numpy as np

from repro.mpsoc.asm import assemble
from repro.mpsoc.platform import SHARED_BASE
from repro.workloads.images import synthetic_grey_image

THRESHOLD = 128


def image_base(index, width, height):
    """Shared-memory byte address of image ``index``."""
    return SHARED_BASE + index * width * height


def dithering_source(core_id, num_cores, width=128, height=128, num_images=2):
    """RISC-32 assembly for one core's dithering segment."""
    if height % num_cores:
        raise ValueError(f"height {height} not divisible by {num_cores} cores")
    rows = height // num_cores
    row_start = core_id * rows
    row_end = row_start + rows
    return f"""
# DITHERING kernel: Floyd-Steinberg over rows [{row_start}, {row_end})
# of {num_images} {width}x{height} images in shared memory, core {core_id}.
# r1=img base r2=width r3=y r4=x r5=row_end r6=pixel addr r7=old r8=new
# r9=err r10=diffuse addr r11=diffuse delta r15=img counter r16=img stride
        .text
main:   li   r15, 0                  # image index
        li   r2, {width}
        li   r16, {width * height}
        li   r21, 7                  # error-diffusion weights
        li   r22, 3
        li   r23, 5
img_loop:
        li   r1, 0x{SHARED_BASE:08x}
        mul  r6, r15, r16
        add  r1, r1, r6              # base of this image
        li   r3, {row_start}
        li   r5, {row_end}
y_loop: li   r4, 0
x_loop: mul  r6, r3, r2              # addr = base + y*width + x
        add  r6, r6, r4
        add  r6, r6, r1
        lbu  r7, 0(r6)               # old pixel
        li   r8, 0
        slti r9, r7, {THRESHOLD}
        bne  r9, r0, store           # old < threshold -> new = 0
        li   r8, 255
store:  sb   r8, 0(r6)
        sub  r9, r7, r8              # err = old - new
# east: (x+1, y) += err*7 >> 4
        addi r12, r4, 1
        bge  r12, r2, south_west
        addi r10, r6, 1
        mul  r11, r9, r21
        srai r11, r11, 4
        jal  r31, diffuse
south_west:
        addi r13, r3, 1
        bge  r13, r5, next_x         # last row of the segment: no south
        beq  r4, r0, south
        add  r10, r6, r2
        addi r10, r10, -1            # (x-1, y+1)
        mul  r11, r9, r22
        srai r11, r11, 4
        jal  r31, diffuse
south:  add  r10, r6, r2             # (x, y+1)
        mul  r11, r9, r23
        srai r11, r11, 4
        jal  r31, diffuse
        addi r12, r4, 1
        bge  r12, r2, next_x
        add  r10, r6, r2
        addi r10, r10, 1             # (x+1, y+1)
        srai r11, r9, 4              # err * 1 >> 4
        jal  r31, diffuse
next_x: addi r4, r4, 1
        blt  r4, r2, x_loop
        addi r3, r3, 1
        blt  r3, r5, y_loop
        addi r15, r15, 1
        slti r9, r15, {num_images}
        bne  r9, r0, img_loop
        halt

# diffuse: [r10] = clamp([r10] + r11, 0, 255)
diffuse:
        lbu  r17, 0(r10)
        add  r17, r17, r11
        bge  r17, r0, d_hi
        li   r17, 0
        b    d_store
d_hi:   li   r18, 255
        ble  r17, r18, d_store
        li   r17, 255
d_store:
        sb   r17, 0(r10)
        jr   r31
"""


def dithering_programs(num_cores=4, width=128, height=128, num_images=2):
    """Assemble the per-core dithering programs."""
    return [
        assemble(
            dithering_source(
                core_id, num_cores, width=width, height=height, num_images=num_images
            )
        )
        for core_id in range(num_cores)
    ]


def load_images(platform, width=128, height=128, num_images=2):
    """Write the synthetic input images into shared memory.

    Returns the list of input images as NumPy arrays (the goldens'
    starting point).
    """
    images = []
    for index in range(num_images):
        image = synthetic_grey_image(width, height, variant=index)
        platform.write_shared(image_base(index, width, height), image.tobytes())
        images.append(image)
    return images


def read_image(platform, index, width=128, height=128):
    """Read one dithered image back out of shared memory."""
    blob = platform.read_shared(image_base(index, width, height), width * height)
    return np.frombuffer(blob, dtype=np.uint8).reshape(height, width).copy()


def golden_dither(image, num_segments=4):
    """Bit-exact reference of the emulated kernel (segment-local FS)."""
    height, width = image.shape
    if height % num_segments:
        raise ValueError(f"height {height} not divisible by {num_segments}")
    pixels = [[int(v) for v in row] for row in image]
    rows_per_segment = height // num_segments

    def clamped_add(y, x, delta):
        value = pixels[y][x] + delta
        pixels[y][x] = 0 if value < 0 else (255 if value > 255 else value)

    for segment in range(num_segments):
        y0 = segment * rows_per_segment
        y1 = y0 + rows_per_segment
        for y in range(y0, y1):
            for x in range(width):
                old = pixels[y][x]
                new = 255 if old >= THRESHOLD else 0
                pixels[y][x] = new
                err = old - new
                if x + 1 < width:
                    clamped_add(y, x + 1, (err * 7) >> 4)
                if y + 1 < y1:
                    if x > 0:
                        clamped_add(y + 1, x - 1, (err * 3) >> 4)
                    clamped_add(y + 1, x, (err * 5) >> 4)
                    if x + 1 < width:
                        clamped_add(y + 1, x + 1, (err * 1) >> 4)
    return np.array(pixels, dtype=np.uint8)
