"""Deterministic synthetic grey images for the dithering driver.

The paper dithers two 128x128 grey images; we generate deterministic
synthetic ones (a diagonal gradient with a superimposed interference
pattern) so every run and every test sees identical pixels without
shipping binary assets.
"""

import numpy as np


def synthetic_grey_image(width=128, height=128, variant=0):
    """An 8-bit grey image with smooth gradients and local structure.

    ``variant`` selects one of the deterministic patterns (the paper
    uses two input images).
    """
    if width <= 0 or height <= 0:
        raise ValueError("image dimensions must be positive")
    y, x = np.mgrid[0:height, 0:width]
    base = (x * 3 + y * 7 + (variant + 1) * (x * y // 5)) % 256
    swirl = (x * x + y * y) // (7 + 3 * variant) % 97
    return ((base + swirl) % 256).astype(np.uint8)
