"""SW drivers executed on the emulated MPSoC (Section 7).

* :mod:`repro.workloads.matrix` — the MATRIX kernel: independent integer
  matrix multiplications in each core's private memory, combined in
  shared memory at the end; MATRIX-TM is its 100 K-iteration
  thermal-stress variant.
* :mod:`repro.workloads.dithering` — the DITHERING kernel:
  Floyd-Steinberg dithering of two grey images split in four segments in
  shared memory.
* :mod:`repro.workloads.generator` — synthetic traffic/compute
  generators for sweeps and ablations.
"""

from repro.workloads.matrix import (
    expected_checksum,
    expected_product,
    matrix_program,
    matrix_programs,
)
from repro.workloads.dithering import (
    dithering_programs,
    golden_dither,
    load_images,
    read_image,
)
from repro.workloads.images import synthetic_grey_image
from repro.workloads.generator import (
    compute_burst_program,
    shared_traffic_program,
)

__all__ = [
    "compute_burst_program",
    "dithering_programs",
    "expected_checksum",
    "expected_product",
    "golden_dither",
    "load_images",
    "matrix_program",
    "matrix_programs",
    "read_image",
    "shared_traffic_program",
    "synthetic_grey_image",
]
