"""The MATRIX driver (Section 7, Table 3 rows 1-3 and MATRIX-TM).

Each core multiplies two ``n x n`` integer matrices held in its private
memory, repeating for a configurable number of iterations, and finally
combines its result into shared memory (a checksum of the product is
stored in a per-core slot, as the paper's kernel "combines in memory at
the end").  MATRIX-TM is the same kernel run for a 100 K-matrix workload
to stress the processing power and expose thermal effects.

The assembly is generated from a template parameterized by the matrix
size, the iteration count and the core's shared-memory slot;
:func:`expected_product` / :func:`expected_checksum` are the NumPy
golden models the tests compare against.
"""

import numpy as np

from repro.mpsoc.asm import assemble
from repro.mpsoc.platform import SHARED_BASE


def matrix_elements(n, core_id, which):
    """Deterministic input matrix (int32) for one core.

    ``which`` is "a" or "b"; values are small signed integers so
    products stay well inside 32 bits until they wrap naturally.
    """
    i, j = np.mgrid[0:n, 0:n]
    if which == "a":
        values = (i * 3 + j * 5 + core_id * 7) % 23 - 11
    elif which == "b":
        values = (i * 7 + j * 2 + core_id * 13) % 19 - 9
    else:
        raise ValueError(f"which must be 'a' or 'b', got {which!r}")
    return values.astype(np.int64)


def expected_product(n, core_id):
    """The 32-bit wrapped product matrix the emulated core must compute."""
    a = matrix_elements(n, core_id, "a")
    b = matrix_elements(n, core_id, "b")
    return ((a @ b) & 0xFFFFFFFF).astype(np.uint32)


def expected_checksum(n, core_id):
    """The 32-bit checksum the core stores into its shared-memory slot."""
    return int(expected_product(n, core_id).sum(dtype=np.uint64) & 0xFFFFFFFF)


def _words(values):
    """Render a flat iterable of ints as .word directives (8 per line)."""
    values = [int(v) & 0xFFFFFFFF for v in values]
    lines = []
    for start in range(0, len(values), 8):
        chunk = ", ".join(f"0x{v:08x}" for v in values[start : start + 8])
        lines.append(f"        .word {chunk}")
    return "\n".join(lines)


def matrix_source(n=8, iterations=1, core_id=0):
    """Generate the RISC-32 assembly for one core's MATRIX kernel."""
    if n < 1:
        raise ValueError("matrix size must be >= 1")
    if iterations < 1:
        raise ValueError("need at least one iteration")
    a = matrix_elements(n, core_id, "a").flatten()
    b = matrix_elements(n, core_id, "b").flatten()
    slot_addr = SHARED_BASE + 4 * core_id
    return f"""
# MATRIX kernel: {n}x{n} int matmul x{iterations}, core {core_id}
# r1=n r2=i r3=j r4=k r5=acc r6=addr r7/r8=operands r9=prod r20=iters
        .text
main:   li   r20, {iterations}
        li   r1, {n}
iter:   la   r10, mat_a
        la   r11, mat_b
        la   r12, mat_c
        li   r2, 0
i_loop: li   r3, 0
j_loop: li   r5, 0
        li   r4, 0
k_loop: mul  r6, r2, r1          # A[i][k]
        add  r6, r6, r4
        slli r6, r6, 2
        add  r6, r6, r10
        lw   r7, 0(r6)
        mul  r6, r4, r1          # B[k][j]
        add  r6, r6, r3
        slli r6, r6, 2
        add  r6, r6, r11
        lw   r8, 0(r6)
        mul  r9, r7, r8
        add  r5, r5, r9
        addi r4, r4, 1
        blt  r4, r1, k_loop
        mul  r6, r2, r1          # C[i][j] = acc
        add  r6, r6, r3
        slli r6, r6, 2
        add  r6, r6, r12
        sw   r5, 0(r6)
        addi r3, r3, 1
        blt  r3, r1, j_loop
        addi r2, r2, 1
        blt  r2, r1, i_loop
        addi r20, r20, -1
        bgt  r20, r0, iter
# combine: checksum of C into this core's shared-memory slot
        la   r12, mat_c
        li   r5, 0
        li   r2, 0
        mul  r13, r1, r1
sum:    lw   r7, 0(r12)
        add  r5, r5, r7
        addi r12, r12, 4
        addi r2, r2, 1
        blt  r2, r13, sum
        li   r14, 0x{slot_addr:08x}
        sw   r5, 0(r14)
        halt
        .data
        .align 4
mat_a:
{_words(a)}
mat_b:
{_words(b)}
mat_c:  .space {4 * n * n}
"""


def matrix_program(n=8, iterations=1, core_id=0):
    """Assemble the MATRIX kernel for one core."""
    return assemble(matrix_source(n=n, iterations=iterations, core_id=core_id))


def matrix_programs(num_cores, n=8, iterations=1):
    """One independent MATRIX program per core (Table 3 configuration)."""
    return [
        matrix_program(n=n, iterations=iterations, core_id=core)
        for core in range(num_cores)
    ]
