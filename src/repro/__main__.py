"""``python -m repro`` — run scenarios from JSON files or named presets.

Usage::

    python -m repro <scenario.json | preset-name> [--workers N] [--json]
    python -m repro <suite.json> --batched [--backend cached_lu]
    python -m repro --list-presets
    python -m repro --list-backends
    python -m repro matrix_quickstart --dump > scenario.json
    python -m repro report [--artifact NAME] [--check]
    python -m repro policies [--verbose] [--json]
    python -m repro trace record|replay|info|list ...
    python -m repro farm serve|submit|status|workers|work ...
    python -m repro dse [--check] [--out report.json] ...
    python -m repro lint [--check] [--list-rules] [--rule ID] ...
    python -m repro obs timeline|metrics|catalog ...

A spec file holds either one scenario (``Scenario.to_dict()`` form) or a
suite (``{"name": ..., "scenarios": [...]}``); every run prints the
report summary, and ``--json`` emits the full serialized results.  The
``report`` subcommand runs the paper-reproduction pipeline
(:mod:`repro.report`): all registered artifacts, one ``REPRODUCTION.md``.
The ``policies`` subcommand lists the registered thermal-management
policies (:mod:`repro.policy`) with their parameters.
"""

import argparse
import json
import pathlib
import sys

from repro.scenario import ExperimentSuite, Runner, Scenario
from repro.scenario.presets import PRESETS


def _load_scenarios(spec):
    """Resolve a CLI spec (file path or preset name) to scenarios."""
    path = pathlib.Path(spec)
    if path.is_file():
        data = json.loads(path.read_text())
        if isinstance(data, dict) and "scenarios" in data:
            return ExperimentSuite.from_dict(data).scenarios
        if isinstance(data, list):
            return [Scenario.from_dict(d) for d in data]
        return [Scenario.from_dict(data)]
    if spec in PRESETS:
        return [PRESETS.get(spec)()]
    raise ValueError(
        f"{spec!r} is neither a readable JSON file nor a preset "
        f"(presets: {', '.join(PRESETS.names())})"
    )


def _policies_main(argv):
    """``python -m repro policies`` — list registered thermal policies."""
    parser = argparse.ArgumentParser(
        prog="python -m repro policies",
        description="List the registered thermal-management policies "
        "(repro.policy) a PolicySpec can name.",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="also show each policy's parameters and example spec params",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the listing as JSON",
    )
    args = parser.parse_args(argv)

    from repro.policy import EXAMPLE_PARAMS, describe_policies
    from repro.scenario.registry import POLICIES

    rows = describe_policies(POLICIES)
    if args.as_json:
        print(json.dumps({
            name: {
                "summary": summary,
                "parameters": parameters,
                "example_params": EXAMPLE_PARAMS.get(name),
            }
            for name, parameters, summary in rows
        }, indent=2))
        return 0
    for name, parameters, summary in rows:
        print(f"{name:16s} {summary}")
        if args.verbose:
            print(f"{'':16s}   params: {parameters or '(none)'}")
            if name in EXAMPLE_PARAMS:
                print(f"{'':16s}   example: {json.dumps(EXAMPLE_PARAMS[name])}")
    return 0


def main(argv=None):
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "report":
        # The reproduction pipeline has its own flags; hand it the rest.
        from repro.report.cli import main as report_main

        return report_main(argv[1:])
    if argv and argv[0] == "policies":
        return _policies_main(argv[1:])
    if argv and argv[0] == "trace":
        # Power-trace capture & replay (repro.trace) has its own flags.
        from repro.trace.cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "farm":
        # The distributed run-farm (repro.farm) has its own flags.
        from repro.farm.cli import main as farm_main

        return farm_main(argv[1:])
    if argv and argv[0] == "dse":
        # Heterogeneous design-space exploration (repro.dse).
        from repro.dse.cli import main as dse_main

        return dse_main(argv[1:])
    if argv and argv[0] == "lint":
        # Static analysis of the repo's invariants (repro.analysis).
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "obs":
        # Observability: span-log timelines and metric snapshots.
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run thermal co-emulation scenarios from JSON specs or presets.",
    )
    parser.add_argument(
        "spec", nargs="?",
        help="path to a scenario/suite JSON file, a preset name, or the "
        "'report' subcommand (python -m repro report --help)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel worker processes for multi-scenario specs (default 1)",
    )
    parser.add_argument(
        "--list-presets", action="store_true", help="list preset names and exit"
    )
    parser.add_argument(
        "--list-backends", action="store_true",
        help="list thermal solver backend names and exit",
    )
    parser.add_argument(
        "--backend", metavar="NAME",
        help="override every scenario's thermal solver backend "
        "(sparse_be, cached_lu, batched_lu, ...)",
    )
    parser.add_argument(
        "--list-emulation-backends", action="store_true",
        help="list emulation backend names and exit",
    )
    parser.add_argument(
        "--emulation-backend", metavar="NAME",
        help="override every scenario's emulation backend "
        "(event_driven, windowed, cycle_accurate)",
    )
    parser.add_argument(
        "--batched", action="store_true",
        help="co-step structure-sharing scenarios through one multi-RHS "
        "thermal solve per window (in-process; ignores --workers)",
    )
    parser.add_argument(
        "--dump", action="store_true",
        help="print the resolved scenario JSON instead of running it",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print results as JSON instead of summaries",
    )
    parser.add_argument(
        "--obs-log", metavar="PATH",
        help="record a JSONL span log of the run (inspect with "
        "'python -m repro obs timeline PATH')",
    )
    args = parser.parse_args(argv)

    if args.list_presets:
        for name in PRESETS.names():
            scenario = PRESETS.get(name)()
            print(f"{name:24s} {scenario.description}")
        return 0
    if args.list_backends:
        from repro.scenario.registry import SOLVER_BACKENDS

        for name in SOLVER_BACKENDS.names():
            doc = (SOLVER_BACKENDS.get(name).__doc__ or "").strip().splitlines()
            print(f"{name:24s} {doc[0] if doc else ''}")
        return 0
    if args.list_emulation_backends:
        from repro.scenario.registry import EMULATION_BACKENDS

        for name in EMULATION_BACKENDS.names():
            doc = (EMULATION_BACKENDS.get(name).__doc__ or "").strip().splitlines()
            print(f"{name:24s} {doc[0] if doc else ''}")
        return 0
    if not args.spec:
        parser.print_usage()
        return 2

    try:
        scenarios = _load_scenarios(args.spec)
        if args.backend:
            for scenario in scenarios:
                scenario.config.solver_backend = args.backend
                scenario.config._validate_solver_backend()
        if args.emulation_backend:
            for scenario in scenarios:
                scenario.config.emulation_backend = args.emulation_backend
                scenario.config._validate_emulation_backend()
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.dump:
        payload = (
            scenarios[0].to_dict()
            if len(scenarios) == 1
            else {"name": args.spec, "scenarios": [s.to_dict() for s in scenarios]}
        )
        print(json.dumps(payload, indent=2))
        return 0

    import contextlib

    observe = contextlib.nullcontext()
    if args.obs_log:
        from repro.obs import tracing as obs_tracing

        observe = obs_tracing.trace_to(args.obs_log)
    with observe:
        runner = Runner(workers=args.workers)
        if args.batched:
            results = runner.run_batched(scenarios)
        else:
            results = runner.run(scenarios)
    if args.as_json:
        print(json.dumps([r.to_dict() for r in results], indent=2))
    else:
        for result in results:
            print(result.summary())
    return 0 if all(r.ok for r in results) else 1


if __name__ == "__main__":
    sys.exit(main())
