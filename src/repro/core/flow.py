"""The complete HW/SW design flow of Figure 5.

Three phases:

1. **HW/SW definition** — the user picks an :class:`MPSoCConfig` (cores,
   hierarchy, interconnect, sniffers) and the driver applications; the
   synthesis-time model estimates the EDK build the paper reports
   (10-12 hours for a complex 8-processor MPSoC, under one hour for a
   resynthesis, minutes per extra application).
2. **Floorplan definition** — the floorplan, the technology's
   energy/frequency values, the temperature-update granularity and the
   FPGA-host communication parameters are fixed.
3. **Run** — the bitstream is "uploaded" (resource check against the
   V2VP30) and the autonomous co-emulation loop starts.
"""

from dataclasses import dataclass

from repro.core.framework import EmulationFramework, FrameworkConfig
from repro.mpsoc.platform import build_platform

HOURS = 3600.0
MINUTES = 60.0


@dataclass
class SynthesisModel:
    """Wall-clock model of the EDK synthesis/compilation phase.

    Calibrated to Section 6: a complex MPSoC with 8 processors and 20
    additional HW modules takes 10-12 hours to synthesize; a resynthesis
    after core reconfiguration takes under an hour; compiling an extra
    application takes a few minutes.
    """

    base_hours: float = 3.0
    hours_per_processor: float = 0.6
    hours_per_module: float = 0.16
    resynthesis_hours: float = 0.75
    app_compile_minutes: float = 3.0

    def full_synthesis_seconds(self, num_processors, num_modules):
        hours = (
            self.base_hours
            + self.hours_per_processor * num_processors
            + self.hours_per_module * num_modules
        )
        return hours * HOURS

    def resynthesis_seconds(self):
        return self.resynthesis_hours * HOURS

    def application_compile_seconds(self, num_applications=1):
        return self.app_compile_minutes * MINUTES * num_applications


class FlowError(RuntimeError):
    """Raised when flow phases are used out of order or the design does
    not fit the FPGA."""


class EmulationFlow:
    """Drives the three Figure 5 phases in order."""

    def __init__(self, synthesis_model=None):
        self.synthesis = synthesis_model or SynthesisModel()
        self.platform = None
        self.programs = None
        self.floorplan = None
        self.framework_config = None
        self.build_log = []

    # -- phase 1: HW/SW definition ----------------------------------------------
    def define_hw(self, mpsoc_config, programs=None, num_extra_modules=None):
        """Instantiate the platform and estimate the synthesis time."""
        self.platform = build_platform(mpsoc_config)
        self.programs = programs
        modules = (
            num_extra_modules
            if num_extra_modules is not None
            else 3 * len(self.platform.cores)  # ctrl + I$ + D$ per core
        )
        synth = self.synthesis.full_synthesis_seconds(
            len(self.platform.cores), modules
        )
        self.build_log.append(("synthesis", synth))
        if programs is not None:
            compile_s = self.synthesis.application_compile_seconds(len(programs))
            self.build_log.append(("application-compile", compile_s))
            self.platform.load_program_all(programs)
        return self

    # -- phase 2: floorplan / technology definition ---------------------------------
    def define_floorplan(self, floorplan, framework_config=None):
        if self.platform is None:
            raise FlowError("define_hw must run before define_floorplan")
        self.floorplan = floorplan
        self.framework_config = framework_config or FrameworkConfig()
        return self

    # -- phase 3: upload + autonomous run -----------------------------------------
    def upload(self, num_count_sniffers=None):
        """Check the design against the FPGA's capacity (JTAG upload)."""
        if self.floorplan is None:
            raise FlowError("define_floorplan must run before upload")
        sniffers = (
            num_count_sniffers
            if num_count_sniffers is not None
            else sum(1 for _ in self.platform.components())
        )
        report = self.platform.resource_report(num_count_sniffers=sniffers)
        if report["percent"] > 100.0:
            raise FlowError(
                f"design needs {report['percent']:.0f}% of the FPGA "
                f"({report['total']} slices) — does not fit"
            )
        self.build_log.append(("upload", 60.0))  # JTAG programming
        return report

    def launch(self, workload=None, policy=None):
        """Build the wired :class:`EmulationFramework`, ready to run."""
        if self.floorplan is None:
            raise FlowError("define_floorplan must run before launch")
        return EmulationFramework(
            platform=self.platform,
            floorplan=self.floorplan,
            workload=workload,
            policy=policy,
            config=self.framework_config,
        )

    def total_build_seconds(self):
        return sum(seconds for _, seconds in self.build_log)
