"""Back-compat shim — thermal policies moved to :mod:`repro.policy`.

The four original Section 7 policies started life here as a 122-line
module; they are now the seed of the first-class policy subsystem
(:mod:`repro.policy`: protocol, builtins, exploration policies and the
comparison pipeline).  This module keeps the historical import path
``repro.core.thermal_manager`` working.
"""

from repro.policy.base import ThermalPolicy
from repro.policy.builtin import (
    DualThresholdDfsPolicy,
    NoManagementPolicy,
    PerCoreDfsPolicy,
    StopGoPolicy,
)

__all__ = [
    "DualThresholdDfsPolicy",
    "NoManagementPolicy",
    "PerCoreDfsPolicy",
    "StopGoPolicy",
    "ThermalPolicy",
]
