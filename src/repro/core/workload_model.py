"""Workload execution models for the co-emulation loop.

Two ways to produce per-window activity:

* :class:`DirectWorkload` — actually run the emulated cores
  (cycle-accurate, instruction by instruction) for every sampling
  window.  This is what the FPGA does, and what we use for short runs,
  tests and examples.
* :class:`ProfiledWorkload` — replay a measured per-iteration activity
  profile.  The paper's thermal drivers are homogeneous kernels (100 K
  identical matrix iterations), so one cycle-accurate iteration
  characterizes the stream; long runs then scale the profile instead of
  interpreting 10^11 instructions (README.md documents this
  substitution).  DFS still slows *progress* naturally: a window at
  100 MHz contains 5x fewer cycles, hence 5x fewer iterations, than one
  at 500 MHz.
"""

from dataclasses import dataclass, field

from repro.core.stats import diff_stats
from repro.emulation.engine import EventDrivenEngine
from repro.power.models import ActivityVector


@dataclass
class ActivityProfile:
    """Steady-state activity signature of one workload iteration."""

    name: str
    cycles_per_iteration: float
    utilization: dict = field(default_factory=dict)
    instructions_per_iteration: float = 0.0

    def __post_init__(self):
        if self.cycles_per_iteration <= 0:
            raise ValueError(f"{self.name}: cycles per iteration must be positive")

    def scaled(self, busy_fraction):
        """Utilizations scaled by the fraction of a window spent busy."""
        return {k: v * busy_fraction for k, v in self.utilization.items()}

    def to_dict(self):
        """JSON-compatible dict.  Utilization keys are activity-source
        tuples (``("core", 0)``), so they serialize as ``[source, value]``
        pairs rather than as dict keys."""
        return {
            "name": self.name,
            "cycles_per_iteration": self.cycles_per_iteration,
            "instructions_per_iteration": self.instructions_per_iteration,
            "utilization": [
                [list(source) if isinstance(source, tuple) else source, value]
                for source, value in self.utilization.items()
            ],
        }

    @classmethod
    def from_dict(cls, data):
        utilization = {}
        for source, value in data.get("utilization", []):
            if isinstance(source, (list, tuple)):
                source = tuple(source)
            utilization[source] = value
        return cls(
            name=data["name"],
            cycles_per_iteration=data["cycles_per_iteration"],
            utilization=utilization,
            instructions_per_iteration=data.get("instructions_per_iteration", 0.0),
        )


class DirectWorkload:
    """Run the platform's cores for real, window by window."""

    def __init__(self, platform, power_model):
        self.platform = platform
        self.power_model = power_model
        self.engine = EventDrivenEngine(platform)
        self._horizon = 0
        self._last_stats = platform.stats()
        self.instructions = 0

    @property
    def done(self):
        return self.engine.all_halted

    def advance(self, window_cycles):
        """Run one window; returns its :class:`ActivityVector`."""
        if window_cycles < 0:
            raise ValueError("negative window")
        self._horizon += window_cycles
        self.instructions += self.engine.run_window(self._horizon)
        stats = self.platform.stats()
        delta = diff_stats(stats, self._last_stats)
        self._last_stats = stats
        return self.power_model.activity_from_stats(delta, window_cycles)


class ProfiledWorkload:
    """Replay a measured :class:`ActivityProfile` for N iterations."""

    def __init__(self, profile, total_iterations):
        if total_iterations <= 0:
            raise ValueError("need at least one iteration")
        self.profile = profile
        self.total_iterations = float(total_iterations)
        self.remaining = float(total_iterations)
        self.instructions = 0.0

    @property
    def done(self):
        return self.remaining <= 1e-12

    @property
    def completed_iterations(self):
        return self.total_iterations - self.remaining

    def advance(self, window_cycles):
        activity = ActivityVector(window_cycles)
        if window_cycles <= 0 or self.done:
            return activity
        possible = window_cycles / self.profile.cycles_per_iteration
        executed = min(self.remaining, possible)
        busy_fraction = executed / possible
        self.remaining -= executed
        self.instructions += executed * self.profile.instructions_per_iteration
        for source, value in self.profile.scaled(busy_fraction).items():
            activity.set(source, value)
        return activity


def profile_platform_run(platform, power_model, iterations=1, name="workload",
                         max_instructions=None):
    """Measure an :class:`ActivityProfile` from a cycle-accurate run.

    The platform must have its programs loaded; this runs every core to
    completion, extracts whole-run utilizations and divides the finish
    cycle by ``iterations`` (the number of kernel iterations the loaded
    program performs).
    """
    engine = EventDrivenEngine(platform)
    before = platform.stats()
    executed, end_cycle = engine.run_to_completion(max_instructions=max_instructions)
    delta = diff_stats(platform.stats(), before)
    activity = power_model.activity_from_stats(delta, end_cycle)
    return ActivityProfile(
        name=name,
        cycles_per_iteration=end_cycle / iterations,
        utilization=dict(activity.utilization),
        instructions_per_iteration=executed / iterations,
    )
