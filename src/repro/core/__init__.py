"""The paper's primary contribution: the HW/SW co-emulation framework.

Wires the emulated MPSoC (``repro.mpsoc``), the statistics extraction
subsystem (sniffers + BRAM buffer + Ethernet dispatcher), the Virtual
Platform Clock Manager, and the SW thermal library (``repro.thermal``)
into the closed loop of Figure 5: statistics flow to the thermal model
every sampling period, temperatures flow back, and run-time thermal
management policies act on the virtual clocks.
"""

from repro.core.framework import EmulationFramework, FrameworkConfig
from repro.core.flow import EmulationFlow, SynthesisModel
from repro.core.sniffers import (
    CountLoggingSniffer,
    EventLoggingSniffer,
    Sniffer,
    SnifferBank,
)
from repro.core.dispatcher import BramBuffer, EthernetDispatcher, StatisticsFrame
from repro.core.stats import ThermalTrace, TraceSample, diff_stats
from repro.core.thermal_manager import (
    DualThresholdDfsPolicy,
    NoManagementPolicy,
    PerCoreDfsPolicy,
    StopGoPolicy,
    ThermalPolicy,
)
from repro.core.vpcm import Vpcm
from repro.core.workload_model import (
    ActivityProfile,
    DirectWorkload,
    ProfiledWorkload,
    profile_platform_run,
)

__all__ = [
    "ActivityProfile",
    "BramBuffer",
    "CountLoggingSniffer",
    "DirectWorkload",
    "DualThresholdDfsPolicy",
    "EmulationFlow",
    "EmulationFramework",
    "EthernetDispatcher",
    "EventLoggingSniffer",
    "FrameworkConfig",
    "NoManagementPolicy",
    "PerCoreDfsPolicy",
    "ProfiledWorkload",
    "Sniffer",
    "SnifferBank",
    "StatisticsFrame",
    "StopGoPolicy",
    "SynthesisModel",
    "ThermalPolicy",
    "ThermalTrace",
    "TraceSample",
    "Vpcm",
    "diff_stats",
    "profile_platform_run",
]
