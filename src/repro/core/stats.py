"""Statistics records, snapshot diffing and the thermal trace.

The framework samples absolute component counters once per window and
works with deltas; :func:`diff_stats` does the recursive numeric diff.
:class:`ThermalTrace` is the recorded output of a co-emulation run — the
data behind Figure 6.
"""

import io
import math
from dataclasses import dataclass, field


def diff_stats(new, old):
    """Recursive numeric difference ``new - old`` over nested dicts.

    Non-numeric leaves are copied from ``new``; keys missing from
    ``old`` diff against zero.
    """
    if isinstance(new, dict):
        out = {}
        for key, value in new.items():
            out[key] = diff_stats(value, old.get(key) if isinstance(old, dict) else None)
        return out
    if isinstance(new, bool) or not isinstance(new, (int, float)):
        return new
    base = old if isinstance(old, (int, float)) and not isinstance(old, bool) else 0
    return new - base


def flatten_numeric(stats, prefix=""):
    """Flatten a nested numeric dict into ``{dotted.key: value}``."""
    flat = {}
    for key, value in stats.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten_numeric(value, name))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[name] = value
    return flat


@dataclass
class TraceSample:
    """One sampling window of a co-emulation run."""

    time_s: float  # emulated time at the end of the window
    frequency_hz: float
    total_power_w: float
    max_temp_k: float
    component_temps: dict = field(default_factory=dict)
    events: tuple = ()  # sensor/DFS transitions this window

    def to_dict(self):
        """JSON-compatible dict; ``from_dict`` round-trips it losslessly
        (the ``events`` tuple-of-pairs serializes as a list of lists)."""
        return {
            "time_s": self.time_s,
            "frequency_hz": self.frequency_hz,
            "total_power_w": self.total_power_w,
            "max_temp_k": self.max_temp_k,
            "component_temps": dict(self.component_temps),
            "events": [list(event) for event in self.events],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            time_s=data["time_s"],
            frequency_hz=data["frequency_hz"],
            total_power_w=data["total_power_w"],
            max_temp_k=data["max_temp_k"],
            component_temps=dict(data.get("component_temps", {})),
            events=tuple(tuple(event) for event in data.get("events", ())),
        )


@dataclass
class ThermalTrace:
    """The full temperature/power/frequency history of a run (Figure 6)."""

    samples: list = field(default_factory=list)

    def append(self, sample):
        self.samples.append(sample)

    def __len__(self):
        return len(self.samples)

    def times(self):
        return [s.time_s for s in self.samples]

    def max_temps(self):
        return [s.max_temp_k for s in self.samples]

    def frequencies(self):
        return [s.frequency_hz for s in self.samples]

    def series(self, component):
        return [s.component_temps.get(component, float("nan")) for s in self.samples]

    def peak_temperature(self):
        """Highest per-window max temperature, or NaN for an empty trace.

        NaN, not 0.0: the sentinel flows into
        ``RunReport.peak_temperature_k`` where a literal 0.0 K reads as a
        real (absurd) temperature and silently passes ``high=...``
        tolerance checks.  NaN propagates, fails every comparison, and
        renders as ``n/a`` in summaries.
        """
        return max(self.max_temps(), default=float("nan"))

    def final_temperature(self):
        """Last window's max temperature, or NaN for an empty trace."""
        return self.samples[-1].max_temp_k if self.samples else float("nan")

    def duty_cycle(self, frequency_hz):
        """Fraction of samples spent at the given clock frequency."""
        if not self.samples:
            return 0.0
        hits = sum(1 for s in self.samples if abs(s.frequency_hz - frequency_hz) < 1.0)
        return hits / len(self.samples)

    def time_above(self, threshold_k):
        """Emulated seconds with max temperature above ``threshold_k``."""
        if len(self.samples) < 2:
            return 0.0
        total = 0.0
        for prev, cur in zip(self.samples, self.samples[1:]):
            if cur.max_temp_k > threshold_k:
                total += cur.time_s - prev.time_s
        return total

    def digest(self):
        """A JSON-safe summary of the trace (the full sample list stays
        on the object; use :meth:`to_csv` or :meth:`to_dict` to export
        it).  Empty traces report ``None`` temperatures (NaN is not
        valid JSON)."""
        peak = self.peak_temperature()
        final = self.final_temperature()
        return {
            "samples": len(self),
            "peak_temperature_k": None if math.isnan(peak) else peak,
            "final_temperature_k": None if math.isnan(final) else final,
        }

    def to_dict(self):
        """Lossless JSON-compatible dict of every sample."""
        return {"samples": [sample.to_dict() for sample in self.samples]}

    @classmethod
    def from_dict(cls, data):
        return cls(
            samples=[TraceSample.from_dict(s) for s in data.get("samples", [])]
        )

    def to_csv(self):
        """CSV text: time, frequency, power, max temperature, components."""
        if not self.samples:
            return ""
        components = sorted(self.samples[0].component_temps)
        out = io.StringIO()
        header = ["time_s", "frequency_hz", "total_power_w", "max_temp_k"]
        out.write(",".join(header + components) + "\n")
        for s in self.samples:
            row = [
                f"{s.time_s:.6f}",
                f"{s.frequency_hz:.0f}",
                f"{s.total_power_w:.6f}",
                f"{s.max_temp_k:.3f}",
            ]
            row += [f"{s.component_temps.get(c, float('nan')):.3f}" for c in components]
            out.write(",".join(row) + "\n")
        return out.getvalue()

    def ascii_chart(self, width=72, height=18, title=None):
        """Plot max temperature over time as ASCII (bench output).

        Rows are temperature bins, columns time bins; ``*`` marks the
        trace, so the Figure 6 shape is visible in a terminal.
        """
        if not self.samples:
            return "(empty trace)"
        times = self.times()
        temps = self.max_temps()
        t0, t1 = times[0], times[-1]
        lo, hi = min(temps), max(temps)
        if hi - lo < 1e-9:
            hi = lo + 1.0
        span_t = (t1 - t0) or 1.0
        grid = [[" "] * width for _ in range(height)]
        for t, temp in zip(times, temps):
            col = min(width - 1, int((t - t0) / span_t * (width - 1)))
            row = min(height - 1, int((hi - temp) / (hi - lo) * (height - 1)))
            grid[row][col] = "*"
        lines = []
        if title:
            lines.append(title)
        for index, row in enumerate(grid):
            label = hi - (hi - lo) * index / (height - 1)
            lines.append(f"{label:7.1f}K |" + "".join(row))
        lines.append(" " * 9 + "+" + "-" * width)
        lines.append(f"{'':9}{t0:<10.2f}{'time (s)':^{max(0, width - 20)}}{t1:>10.2f}")
        return "\n".join(lines)
