"""Virtual Platform Clock Manager (Section 4.2, Figure 2).

The VPCM generates the virtual clocks of the emulated MPSoC from the
board's physical oscillator (100 MHz in the paper's implementation).
Its three input classes map to three methods here:

* ``VIRTUAL_CLK_SUPPRESSION`` requests from the memory controllers when
  a physical memory cannot honour the configured latency —
  :meth:`freeze_cycles`;
* congestion stop/resume from the Ethernet dispatcher —
  :meth:`freeze_seconds`;
* temperature-sensor signals driving dynamic frequency scaling —
  :meth:`set_frequency`.

The virtual/real time accounting implements the paper's example: with a
500 MHz virtual clock on a 100 MHz board, a 10 ms emulated sampling
period takes 50 ms of board time ("our framework will sample every
50 ms of real execution, but analyzed by the SW thermal library as
representing 10 ms of actual emulated execution").
"""

from dataclasses import dataclass, field

from repro.util.units import MHZ

FREEZE_MEMORY = "memory-latency"
FREEZE_ETHERNET = "ethernet-congestion"
FREEZE_THERMAL = "thermal-stop"


@dataclass
class FrequencyTransition:
    time_s: float  # emulated time of the switch
    from_hz: float
    to_hz: float
    reason: str = ""


@dataclass
class Vpcm:
    """Virtual clock generation and accounting for one platform."""

    physical_hz: float = 100 * MHZ
    virtual_hz: float = 100 * MHZ
    emulated_seconds: float = 0.0
    real_seconds: float = 0.0
    freezes: dict = field(default_factory=dict)
    transitions: list = field(default_factory=list)

    def attach_platform(self, platform):
        """Wire the memory controllers' suppression signals to this VPCM."""
        for memctrl in platform.memctrls:
            memctrl.clk_suppression_hook = self.freeze_cycles
        return self

    # -- virtual frequency (DFS) -------------------------------------------------
    def set_frequency(self, hz, time_s=None, reason=""):
        """Switch the system domain's virtual clock (the DFS actuator)."""
        if hz < 0:
            raise ValueError(f"negative frequency {hz}")
        if hz != self.virtual_hz:
            self.transitions.append(
                FrequencyTransition(
                    time_s if time_s is not None else self.emulated_seconds,
                    self.virtual_hz,
                    hz,
                    reason,
                )
            )
            self.virtual_hz = hz
        return self.virtual_hz

    @property
    def stretch_factor(self):
        """Physical cycles per virtual cycle (>= 1 when emulating a design
        faster than the board)."""
        if self.virtual_hz <= 0:
            return 1.0
        return max(1.0, self.virtual_hz / self.physical_hz)

    def window_cycles(self, emulated_seconds):
        """Virtual cycles the platform advances in one sampling window."""
        return int(round(emulated_seconds * self.virtual_hz))

    def window_real_seconds(self, emulated_seconds):
        """Board seconds one window takes (excluding freezes).

        A virtual cycle executes as one physical cycle, so a window of
        ``E`` emulated seconds at a virtual clock above the board clock
        takes ``E * f_virt / f_phys`` board seconds (the paper's 10 ms ->
        50 ms example); at or below the board clock the virtual clock is
        generated directly and a window takes exactly ``E``.
        """
        if self.virtual_hz <= 0:
            return emulated_seconds  # clocks stopped: the board just waits
        return emulated_seconds * self.stretch_factor

    # -- freezes -------------------------------------------------------------------
    def freeze_cycles(self, physical_cycles, reason=FREEZE_MEMORY):
        """Inhibit the virtual clock for ``physical_cycles`` board cycles."""
        self.freeze_seconds(physical_cycles / self.physical_hz, reason)

    def freeze_seconds(self, seconds, reason=FREEZE_ETHERNET):
        if seconds < 0:
            raise ValueError(f"negative freeze {seconds}")
        if seconds == 0:
            return
        self.freezes[reason] = self.freezes.get(reason, 0.0) + seconds
        self.real_seconds += seconds

    def total_freeze_seconds(self):
        return sum(self.freezes.values())

    # -- window accounting ------------------------------------------------------------
    def account_window(self, emulated_seconds):
        """Advance emulated and real time by one sampling window."""
        self.emulated_seconds += emulated_seconds
        self.real_seconds += self.window_real_seconds(emulated_seconds)

    def report(self):
        return {
            "virtual_hz": self.virtual_hz,
            "physical_hz": self.physical_hz,
            "emulated_seconds": self.emulated_seconds,
            "real_seconds": self.real_seconds,
            "freeze_breakdown": dict(self.freezes),
            "frequency_transitions": len(self.transitions),
        }
