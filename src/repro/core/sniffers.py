"""HW sniffers (Section 4.1).

Sniffers transparently extract statistics from each MPSoC component:
they have a dedicated interface to the monitored module's internal
signals plus a connection to the statistics bus, and they are
memory-mapped in the processors' address range so the emulated software
can de/activate them at run time.

Two flavours, built on a common skeleton, as in the paper:

* **event-logging** — exhaustively logs every event the component emits
  (big payloads, used for deep debugging);
* **count-logging** — counts switching activity and high-level events
  (cache misses, bus transactions, memory accesses) and produces the
  concise per-window records the thermal flow consumes.

FPGA overhead: 0.2 % of the V2VP30 per event-logging sniffer, 0.3 % per
count-logging sniffer (Section 4.1); the resource model uses those.
"""

from repro.core.stats import diff_stats, flatten_numeric

# MMIO register map (one 16-byte window per sniffer).
REG_ENABLE = 0x0
REG_KIND = 0x4
REG_SELECT = 0x8
REG_VALUE = 0xC

KIND_EVENT_LOGGING = 1
KIND_COUNT_LOGGING = 2

# Payload sizing for the Ethernet dispatcher.
COUNT_RECORD_HEADER_BYTES = 8  # component id + window sequence
COUNT_RECORD_BYTES_PER_COUNTER = 8  # counter id + 32-bit value
EVENT_RECORD_BYTES = 12  # cycle + source + kind + info


class Sniffer:
    """The common sniffer skeleton: enable state + MMIO register file."""

    kind_code = 0
    fpga_overhead_percent = 0.0

    def __init__(self, name, component):
        self.name = name
        self.component = component
        self.enabled = True
        self._selected = 0

    # -- MMIO register file (mapped by the platform's MMIO hub) -------------
    def mmio_read(self, offset):
        if offset == REG_ENABLE:
            return 1 if self.enabled else 0
        if offset == REG_KIND:
            return self.kind_code
        if offset == REG_SELECT:
            return self._selected
        if offset == REG_VALUE:
            return self._selected_value()
        return 0

    def mmio_write(self, offset, value):
        if offset == REG_ENABLE:
            self.enabled = bool(value)
        elif offset == REG_SELECT:
            self._selected = int(value)

    def _selected_value(self):
        return 0

    # -- window interface ---------------------------------------------------------
    def window_payload_bytes(self):
        """Bytes this sniffer contributes to one statistics window."""
        raise NotImplementedError

    def collect(self):
        """Produce this window's records (and reset per-window state)."""
        raise NotImplementedError


class CountLoggingSniffer(Sniffer):
    """Counts high-level events; reports per-window counter deltas."""

    kind_code = KIND_COUNT_LOGGING
    fpga_overhead_percent = 0.3

    def __init__(self, name, component):
        super().__init__(name, component)
        self._last = {}

    def _current(self):
        return flatten_numeric(self.component.stats())

    def _selected_value(self):
        flat = self._current()
        keys = sorted(flat)
        if 0 <= self._selected < len(keys):
            value = flat[keys[self._selected]]
            return int(value) & 0xFFFFFFFF
        return 0

    def counter_names(self):
        return sorted(self._current())

    def collect(self):
        """Counter deltas since the previous window (empty if disabled)."""
        if not self.enabled:
            return {}
        current = self._current()
        delta = diff_stats(current, self._last)
        self._last = current
        return delta

    def window_payload_bytes(self):
        if not self.enabled:
            return 0
        return (
            COUNT_RECORD_HEADER_BYTES
            + COUNT_RECORD_BYTES_PER_COUNTER * len(self._current())
        )


class EventLoggingSniffer(Sniffer):
    """Logs every event the component emits (needs an Observable)."""

    kind_code = KIND_EVENT_LOGGING
    fpga_overhead_percent = 0.2

    def __init__(self, name, component, max_events=100000):
        super().__init__(name, component)
        self.max_events = max_events
        self.events = []
        self.dropped = 0
        component.attach_hook(self._on_event)

    def _on_event(self, event):
        if not self.enabled:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def _selected_value(self):
        return len(self.events)

    def collect(self):
        """Drain and return the window's event list."""
        events, self.events = self.events, []
        return events

    def window_payload_bytes(self):
        return EVENT_RECORD_BYTES * len(self.events)


class SnifferBank:
    """The full statistics-extraction fabric of one platform.

    ``from_platform`` instantiates one count-logging sniffer per
    component (the cycle-accurate-report configuration of Section 7) and
    maps every sniffer into the platform MMIO hub so emulated software
    can toggle it.  The paper's observation that "practically an
    unlimited number of event-counting sniffers can be added without
    deteriorating the emulation speed" is mirrored here: sniffers read
    counters the components maintain anyway.
    """

    def __init__(self):
        self.sniffers = []
        self.mmio_offsets = {}

    @classmethod
    def from_platform(cls, platform, event_logging=()):
        """Build the bank: count-logging everywhere, event-logging where
        requested (an iterable of component names)."""
        bank = cls()
        wanted_events = set(event_logging)
        for name, component in platform.components():
            sniffer = CountLoggingSniffer(f"{name}.cnt", component)
            bank.add(sniffer, platform.mmio)
            if name in wanted_events:
                bank.add(EventLoggingSniffer(f"{name}.evt", component), platform.mmio)
        return bank

    def add(self, sniffer, mmio_hub=None):
        self.sniffers.append(sniffer)
        if mmio_hub is not None:
            self.mmio_offsets[sniffer.name] = mmio_hub.register(sniffer)
        return sniffer

    def __len__(self):
        return len(self.sniffers)

    def count_sniffers(self):
        return [s for s in self.sniffers if isinstance(s, CountLoggingSniffer)]

    def event_sniffers(self):
        return [s for s in self.sniffers if isinstance(s, EventLoggingSniffer)]

    def window_payload_bytes(self):
        return sum(s.window_payload_bytes() for s in self.sniffers)

    def collect_window(self):
        """All sniffers' records for this window, keyed by sniffer name."""
        return {s.name: s.collect() for s in self.sniffers}

    def fpga_overhead_percent(self):
        return sum(s.fpga_overhead_percent for s in self.sniffers)
