"""The HW/SW co-emulation framework (Sections 4-6, Figure 5).

``EmulationFramework`` owns one emulated platform, its statistics
fabric, the VPCM, the Ethernet dispatcher and the SW thermal tool, and
runs the paper's closed loop: every sampling period (10 ms of emulated
time by default) the window's activity statistics are converted to
power, streamed to the thermal solver, integrated into new cell
temperatures, fed back to the temperature sensors, and acted upon by the
run-time thermal-management policy through the VPCM.
"""

import time
from dataclasses import asdict, dataclass, field

from repro.core.dispatcher import BramBuffer, EthernetDispatcher
from repro.core.sniffers import SnifferBank
from repro.core.stats import ThermalTrace, TraceSample
from repro.core.vpcm import FREEZE_ETHERNET, Vpcm
from repro.emulation.backends import make_emulation_backend
from repro.emulation.ethernet import EthernetLink
from repro.obs import catalog as obs_catalog
from repro.obs import tracing as obs_tracing
from repro.policy.builtin import NoManagementPolicy
from repro.power.models import PowerModel, make_tech_node
from repro.thermal.backends import make_backend
from repro.thermal.rc_network import network_for
from repro.thermal.sensors import SensorBank
from repro.thermal.solver import ThermalSolver
from repro.util.units import MHZ, MS


@dataclass
class FrameworkConfig:
    """Knobs of the co-emulation loop (the Figure 5 "floorplan definition"
    phase fixes these before launch)."""

    sampling_period_s: float = 10 * MS  # granularity of temperature updates
    virtual_hz: float = 100 * MHZ  # initial emulated clock
    physical_hz: float = 100 * MHZ  # board oscillator
    sensor_upper_kelvin: float = 350.0
    sensor_lower_kelvin: float = 340.0
    monitored_components: tuple | None = None  # default: every active component
    grid_mode: str = "component"
    refine_critical: int = 1
    die_resolution: tuple = (8, 8)  # uniform-mode die grid (cells x, y)
    spreader_resolution: tuple = (3, 3)
    ethernet_bandwidth_bps: float = 100e6
    bram_capacity_bytes: int = 64 * 1024
    initial_temperature_kelvin: float | None = None  # default: ambient
    solver_backend: str | dict = "sparse_be"  # see repro.thermal.backends
    trace_stride: int = 1  # keep every k-th ThermalTrace sample
    emulation_backend: str | dict = "event_driven"  # see repro.emulation.backends
    tech_node: str | dict | None = None  # see repro.power.models.TECH_NODES

    def __post_init__(self):
        if self.sampling_period_s <= 0:
            raise ValueError("sampling period must be positive")
        if self.virtual_hz <= 0:
            raise ValueError("initial virtual frequency must be positive")
        if self.physical_hz <= 0:
            raise ValueError("physical board frequency must be positive")
        if (
            self.initial_temperature_kelvin is not None
            and self.initial_temperature_kelvin <= 0
        ):
            raise ValueError(
                f"initial temperature must be positive kelvin, "
                f"got {self.initial_temperature_kelvin}"
            )
        self._validate_solver_backend()
        self._validate_emulation_backend()
        self._validate_tech_node()
        if not isinstance(self.trace_stride, int) or isinstance(
            self.trace_stride, bool
        ) or self.trace_stride < 1:
            raise ValueError(
                f"trace_stride must be a positive integer (1 keeps every "
                f"sample), got {self.trace_stride!r}"
            )
        if self.sensor_upper_kelvin <= self.sensor_lower_kelvin:
            raise ValueError(
                f"sensor upper threshold ({self.sensor_upper_kelvin} K) must be "
                f"above the lower threshold ({self.sensor_lower_kelvin} K)"
            )
        if self.ethernet_bandwidth_bps <= 0:
            raise ValueError("Ethernet bandwidth must be positive")
        if self.monitored_components is not None:
            self.monitored_components = tuple(self.monitored_components)
            if not self.monitored_components:
                raise ValueError(
                    "monitored_components must name at least one component "
                    "(pass None to monitor every active component); an "
                    "empty sensor set would leave the closed loop blind"
                )
        self.die_resolution = tuple(self.die_resolution)
        self.spreader_resolution = tuple(self.spreader_resolution)
        for label, resolution in (
            ("die_resolution", self.die_resolution),
            ("spreader_resolution", self.spreader_resolution),
        ):
            if len(resolution) != 2 or any(
                not isinstance(n, int) or n < 1 for n in resolution
            ):
                raise ValueError(
                    f"{label} must be two positive cell counts, got {resolution}"
                )

    def _validate_solver_backend(self):
        """Reject bad backend specs (unknown names, malformed dicts, bad
        params) at config time rather than when the framework is wired.

        Only plain data is accepted — the config must stay JSON-round-
        trippable and each framework built from it must get its *own*
        backend.  Pass a live backend to
        :class:`repro.thermal.solver.ThermalSolver` directly instead.
        Validation delegates to :func:`repro.thermal.backends.make_backend`
        by constructing (and discarding) an instance — construction is
        cheap, and it exercises the exact code path ``build`` will use.
        """
        spec = self.solver_backend
        if not isinstance(spec, (str, dict)):
            raise ValueError(
                f"solver_backend must be a registered name or "
                f"{{'name': ..., 'params': ...}} dict, "
                f"got {type(spec).__name__}"
            )
        make_backend(spec)

    def _validate_emulation_backend(self):
        """Reject bad emulation-backend specs at config time; same
        contract as :meth:`_validate_solver_backend` (plain data only so
        the config stays JSON-round-trippable; pass a live workload to
        :class:`EmulationFramework` directly instead)."""
        spec = self.emulation_backend
        if not isinstance(spec, (str, dict)):
            raise ValueError(
                f"emulation_backend must be a registered name or "
                f"{{'name': ..., 'params': ...}} dict, "
                f"got {type(spec).__name__}"
            )
        make_emulation_backend(spec)

    def _validate_tech_node(self):
        """Reject bad tech-node specs at config time; plain data only
        (``None``, a :data:`repro.power.models.TECH_NODES` name, or a
        full ``TechNode.to_dict()``) so the config stays
        JSON-round-trippable."""
        spec = self.tech_node
        if spec is not None and not isinstance(spec, (str, dict)):
            raise ValueError(
                f"tech_node must be None, a registered name or a "
                f"TechNode.to_dict() dict, got {type(spec).__name__}"
            )
        make_tech_node(spec)

    def to_dict(self):
        """JSON-compatible dict; ``from_dict`` round-trips it losslessly."""
        out = asdict(self)
        out["die_resolution"] = list(self.die_resolution)
        out["spreader_resolution"] = list(self.spreader_resolution)
        if self.monitored_components is not None:
            out["monitored_components"] = list(self.monitored_components)
        return out

    @classmethod
    def from_dict(cls, data):
        """Rebuild from a (possibly partial) ``to_dict`` dict; missing keys
        keep their defaults, lists re-become tuples in ``__post_init__``."""
        return cls(**data)


@dataclass
class RunReport:
    """Summary of one co-emulation run."""

    emulated_seconds: float
    fpga_real_seconds: float
    windows: int
    workload_done: bool
    peak_temperature_k: float
    final_temperature_k: float
    freeze_breakdown: dict
    frequency_transitions: int
    dispatcher: dict
    instructions: float = 0.0
    stalled: bool = False  # ended in a zero-progress streak with work left
    extras: dict = field(default_factory=dict)

    def to_dict(self):
        """JSON-compatible dict, serializable next to the Scenario spec."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        return cls(**data)

    def summary(self):
        """A short human-readable account of the run."""
        from repro.util.records import format_duration

        status = "done" if self.workload_done else "unfinished"
        if self.stalled:
            status += ", STALLED"

        def kelvin(value):
            # Zero-window runs carry NaN temperatures (no sample ever
            # reached the trace) — render them honestly, not as 0.0 K.
            return "n/a" if value != value else f"{value:.1f} K"

        lines = [
            f"emulated {format_duration(self.emulated_seconds)} "
            f"({self.windows} windows, workload {status}) in "
            f"{format_duration(self.fpga_real_seconds)} of board time",
            f"  peak {kelvin(self.peak_temperature_k)} | "
            f"final {kelvin(self.final_temperature_k)} | "
            f"{self.frequency_transitions} DFS transitions",
        ]
        if self.instructions:
            lines.append(f"  instructions {self.instructions:.3g}")
        if "replay" in self.extras:
            replay = self.extras["replay"]
            lines.append(
                f"  replayed from trace "
                f"{str(replay.get('scenario_digest', '?'))[:12]} "
                f"({replay.get('recorded_windows', '?')} recorded windows)"
            )
        if self.freeze_breakdown:
            frozen = ", ".join(
                f"{reason} {seconds:.3g} s"
                for reason, seconds in sorted(self.freeze_breakdown.items())
            )
            lines.append(f"  clock freezes: {frozen}")
        return "\n".join(lines)


def _string_keyed(stats):
    """Recursively stringify dict keys (per-master ids are ints, NoC link
    keys are tuples) so reports stay JSON-serializable."""
    if not isinstance(stats, dict):
        return stats
    out = {}
    for key, value in stats.items():
        if isinstance(key, tuple):
            key = "->".join(str(k) for k in key)
        elif not isinstance(key, str):
            key = str(key)
        out[key] = _string_keyed(value)
    return out


class EmulationFramework:
    """One fully wired HW/SW co-emulation instance."""

    def __init__(
        self,
        platform,
        floorplan,
        workload=None,
        policy=None,
        config=None,
        library=None,
    ):
        self.config = config or FrameworkConfig()
        self.platform = platform
        self.floorplan = floorplan
        self.power_model = PowerModel(
            floorplan, library, tech_node=self.config.tech_node
        )
        self.policy = policy or NoManagementPolicy()
        cfg = self.config

        # Heterogeneous platforms (mixed static core clocks) feed the
        # power model a per-core frequency map every window; homogeneous
        # ones keep the legacy single-global-clock path bit-for-bit.
        self._hetero_core_hz = None
        if platform is not None:
            static_hz = platform.config.static_core_frequencies()
            if len(set(static_hz.values())) > 1:
                self._hetero_core_hz = static_hz

        self.vpcm = Vpcm(physical_hz=cfg.physical_hz, virtual_hz=cfg.virtual_hz)
        if platform is not None:
            self.vpcm.attach_platform(platform)
            self.sniffer_bank = SnifferBank.from_platform(platform)
        else:
            self.sniffer_bank = SnifferBank()

        self.dispatcher = EthernetDispatcher(
            link=EthernetLink(bandwidth_bps=cfg.ethernet_bandwidth_bps),
            buffer=BramBuffer(capacity_bytes=cfg.bram_capacity_bytes),
        )

        # Structure-cached assembly: sweeps over one floorplan + grid
        # configuration share a single grid/RCNetwork build per process.
        self.network = network_for(
            floorplan,
            mode=cfg.grid_mode,
            refine_critical=cfg.refine_critical,
            die_resolution=cfg.die_resolution,
            spreader_resolution=cfg.spreader_resolution,
        )
        self.grid = self.network.grid
        self.solver = ThermalSolver(
            self.network,
            initial_temperature=cfg.initial_temperature_kelvin,
            backend=cfg.solver_backend,
        )

        active_names = {c.name for c in floorplan.active_components()}
        monitored = cfg.monitored_components
        if monitored is None:
            monitored = [c.name for c in floorplan.active_components()]
        if not monitored:
            # Launch-time twin of the config-time empty-tuple check: a
            # floorplan of pure filler has nothing to monitor and the
            # closed loop (max over component temperatures) needs >= 1.
            raise ValueError(
                f"floorplan {floorplan.name!r} has no active components to "
                f"monitor; the co-emulation loop needs at least one "
                f"temperature-monitored component"
            )
        unknown = sorted(set(monitored) - active_names)
        if unknown:
            raise ValueError(
                f"monitored_components {', '.join(unknown)} not in floorplan "
                f"{floorplan.name!r} (active: {', '.join(sorted(active_names))})"
            )
        self.sensors = SensorBank(
            monitored,
            upper_kelvin=cfg.sensor_upper_kelvin,
            lower_kelvin=cfg.sensor_lower_kelvin,
        )

        # Which emulation backend drives the platform (None when the
        # caller passed a ready-made workload object).
        self.emulation_backend = None
        if workload is None:
            if platform is None:
                raise ValueError("need a workload when no platform is given")
            backend = make_emulation_backend(cfg.emulation_backend)
            workload = backend.build_workload(platform, self.power_model)
            self.emulation_backend = backend.name
        self.workload = workload
        self.trace = ThermalTrace()
        self.windows = 0
        # Per-phase wall-time accumulators (seconds); "other" is the
        # per-window residual (sensors, policy, bookkeeping) so the five
        # shares sum to step_window's wall time.  The solve slot is
        # filled by step_window — batched sweeps solve outside the
        # framework, so solve and other stay 0.0 there by design.
        self.timing = {"emulate": 0.0, "power": 0.0, "dispatch": 0.0,
                       "solve": 0.0, "other": 0.0}
        # High-water marks of what report() already pushed into the
        # metrics registry, so repeated reports never double count.
        self._published = {"windows": 0, "timing": {}, "solver": {}}
        self.stall_windows = 0  # consecutive zero-progress windows
        self._stall_bound_hit = False  # a bounds check tripped on stalling
        # Per-window capture hooks (repro.trace records the dispatcher
        # boundary through these) — called for *every* window, before
        # trace_stride decimation.
        self.captures = []
        # Peak/final run independently of the (possibly decimated) trace,
        # so trace_stride never changes the reported temperatures.
        self._peak_temp_k = float("nan")
        self._final_temp_k = float("nan")
        # Launch-time policy validation: a policy naming components with
        # no sensor (or needing floorplan defaults) finds out now, not
        # silently mid-run.  getattr keeps duck-typed legacy policies
        # without the bind hook working.
        bind = getattr(self.policy, "bind", None)
        if bind is not None:
            bind(self)

    # -- the closed loop ---------------------------------------------------------
    def step_window(self):
        """Run exactly one sampling window of the co-emulation loop."""
        tracer = obs_tracing.ACTIVE
        timing = self.timing
        t_start = time.perf_counter()
        base_emulate = timing["emulate"]
        base_power = timing["power"]
        base_dispatch = timing["dispatch"]
        powers, frequency = self._window_power()
        # 4. The SW thermal tool integrates one sampling period.
        t0 = time.perf_counter()
        self.solver.step_be(self.config.sampling_period_s)
        d_solve = time.perf_counter() - t0
        timing["solve"] += d_solve
        sample = self._window_commit(powers, frequency)
        d_emulate = timing["emulate"] - base_emulate
        d_power = timing["power"] - base_power
        d_dispatch = timing["dispatch"] - base_dispatch
        spent = d_emulate + d_power + d_dispatch + d_solve
        d_other = max(0.0, time.perf_counter() - t_start - spent)
        timing["other"] += d_other
        if tracer is not None:
            tracer.emit("window.emulate", d_emulate)
            tracer.emit("window.power", d_power)
            tracer.emit("window.dispatch", d_dispatch)
            tracer.emit("window.solve", d_solve)
            tracer.emit("window.other", d_other)
        return sample

    def _window_power(self):
        """Phases 1-3 of a window: emulate, convert to power, dispatch.

        Leaves the window's power injected into ``self.network`` and
        returns ``(powers, frequency)`` for :meth:`_window_commit`.  The
        batched sweep runner uses this split to co-step many frameworks
        through one shared multi-RHS thermal solve.
        """
        cfg = self.config
        period = cfg.sampling_period_s
        frequency = self.vpcm.virtual_hz
        t0 = time.perf_counter()

        # 1. The emulated platform runs one window while the sniffers count.
        window_cycles = self.vpcm.window_cycles(period)
        core_frequencies = self.policy.core_frequencies()
        if self._hetero_core_hz is not None and cfg.virtual_hz > 0:
            # Mixed core clocks: each core's effective frequency is its
            # static clock scaled by the global DFS ratio; per-core
            # policy overrides win over the platform-derived map.
            scale = frequency / cfg.virtual_hz
            merged = {
                index: hz * scale for index, hz in self._hetero_core_hz.items()
            }
            if core_frequencies:
                merged.update(core_frequencies)
            core_frequencies = merged
        progress_cycles = window_cycles
        if core_frequencies and frequency > 0:
            # Per-core DFS: throttled cores make proportionally less
            # progress even though the fabric keeps the global clock.
            mean_hz = sum(core_frequencies.values()) / len(core_frequencies)
            progress_cycles = int(window_cycles * min(1.0, mean_hz / frequency))
        if progress_cycles <= 0 and not self.workload.done:
            # Zero-progress window: the virtual clock is gated (or so low
            # that ``Vpcm.window_cycles`` rounds to zero cycles) while
            # work remains.  Emulated time still advances, so only the
            # consecutive count distinguishes a cooling pause from a
            # never-ending stall.
            self.stall_windows += 1
        else:
            self.stall_windows = 0
            self._stall_bound_hit = False
        activity = self.workload.advance(progress_cycles)
        t1 = time.perf_counter()
        self.timing["emulate"] += t1 - t0

        # 2. Activity -> power (per floorplan component).
        powers = self.power_model.component_power(
            activity,
            frequency_hz=frequency if frequency > 0 else 0.0,
            core_frequencies=core_frequencies,
        )
        t2 = time.perf_counter()
        self.timing["power"] += t2 - t1

        # 3. Statistics stream to the host; congestion freezes the clocks.
        payload = self.sniffer_bank.window_payload_bytes()
        self.sniffer_bank.collect_window()
        real_window = self.vpcm.window_real_seconds(period)
        freeze = self.dispatcher.dispatch_window(
            payload, real_window, num_sensors=len(self.sensors.sensors)
        )
        if freeze > 0:
            self.vpcm.freeze_seconds(freeze, FREEZE_ETHERNET)

        self.network.set_power(powers)
        self.timing["dispatch"] += time.perf_counter() - t2
        return powers, frequency

    def _window_commit(self, powers, frequency):
        """Phase 5 of a window, after the thermal solve: sensors, policy,
        trace.  Assumes the solver already integrated one period."""
        period = self.config.sampling_period_s
        temps = self.solver.component_temperatures()

        # 5. Temperatures return to the sensors; the policy reacts via VPCM.
        self.vpcm.account_window(period)
        now = self.vpcm.emulated_seconds
        transitions = self.sensors.update(temps, now)
        self.policy.react(self.sensors, self.vpcm, now)

        sample = TraceSample(
            time_s=now,
            frequency_hz=frequency,
            total_power_w=sum(powers.values()),
            max_temp_k=max(temps.values()),
            component_temps=temps,
            events=tuple(sorted(transitions.items())),
        )
        for capture in self.captures:
            capture.on_window(self, powers, frequency, sample)
        if not (self.windows % self.config.trace_stride):
            self.trace.append(sample)
        if not (self._peak_temp_k >= sample.max_temp_k):  # NaN-aware max
            self._peak_temp_k = sample.max_temp_k
        self._final_temp_k = sample.max_temp_k
        self.windows += 1
        return sample

    def attach_capture(self, capture):
        """Register a per-window capture hook (``on_window(framework,
        powers, frequency, sample)``); returns ``capture`` for chaining.
        Captures see every window, even ones ``trace_stride`` drops."""
        self.captures.append(capture)
        return capture

    @property
    def stalled(self):
        """True when the run tripped its stall bound with work left.

        A workload can stop advancing while emulated time still flows: a
        ``stop_go`` policy gates the clock to 0 Hz, or a DFS operating
        point so low that :meth:`repro.core.vpcm.Vpcm.window_cycles`
        rounds a whole sampling window to zero cycles.  ``workload.done``
        never fires then, so an unbounded :meth:`run` would spin forever
        — the ``max_stall_windows`` bound stops it and this flag records
        the diagnosis.  A run truncated by an ordinary time/window bound
        during a normal clock-gated cooling pause is *not* stalled (the
        raw streak length stays observable as ``stall_windows``); the
        flag clears again if the bound is raised and progress resumes.
        """
        return self._stall_bound_hit and not self.workload.done

    def bounds_reached(
        self, max_emulated_seconds=None, max_windows=None, max_stall_windows=None
    ):
        """True when the workload is done or a run bound has been hit."""
        if self.workload.done:
            return True
        if (
            max_emulated_seconds is not None
            and self.vpcm.emulated_seconds >= max_emulated_seconds - 1e-12
        ):
            return True
        if max_stall_windows is not None and self.stall_windows >= max_stall_windows:
            self._stall_bound_hit = True
            return True
        return max_windows is not None and self.windows >= max_windows

    def run(self, max_emulated_seconds=None, max_windows=None,
            max_stall_windows=None):
        """Run until the workload completes (or a bound is hit).

        ``max_stall_windows`` bounds *consecutive zero-progress windows*:
        a run whose virtual clock is gated (or rounds to zero cycles per
        window) under a never-cooling policy stops after that many stalled
        windows instead of spinning forever, and the returned report
        carries ``stalled=True``.
        """
        tracer = obs_tracing.ACTIVE
        if tracer is None:
            while not self.bounds_reached(
                max_emulated_seconds, max_windows, max_stall_windows
            ):
                self.step_window()
            return self.report()
        with tracer.span(
            "run", backend=self.emulation_backend or "custom"
        ) as span:
            while not self.bounds_reached(
                max_emulated_seconds, max_windows, max_stall_windows
            ):
                self.step_window()
            span.set(
                windows=self.windows,
                emulated_s=self.vpcm.emulated_seconds,
            )
        return self.report()

    def _publish_metrics(self):
        """Push run/solver counters into the default metrics registry.

        Publishes the *delta* since the last publish, so repeated
        ``report()`` calls on a long-lived framework never double
        count.  Runs at report time, not per window: the hot loop
        stays metrics-free."""
        published = self._published
        delta_windows = self.windows - published["windows"]
        if delta_windows > 0:
            obs_catalog.counter("repro_run_windows_total").inc(delta_windows)
        published["windows"] = self.windows
        phase_seconds = obs_catalog.counter(
            "repro_run_phase_seconds_total", labels=("phase",)
        )
        for phase, wall in self.timing.items():
            delta = wall - published["timing"].get(phase, 0.0)
            if delta > 0:
                phase_seconds.labels(phase=phase).inc(delta)
            published["timing"][phase] = wall
        stats = self.solver.backend.stats()
        backend = self.solver.backend.name or "custom"
        factorizations = stats.get("factorizations", 0)
        solves = stats.get("solves", 0)
        for metric, key, value in (
            ("repro_solver_factorizations_total", "factorizations",
             factorizations),
            ("repro_solver_solves_total", "solves", solves),
            ("repro_solver_reuses_total", "reuses",
             max(0, solves - factorizations)),
        ):
            delta = value - published["solver"].get(key, 0)
            if delta > 0:
                obs_catalog.counter(metric, labels=("backend",)).labels(
                    backend=backend
                ).inc(delta)
            published["solver"][key] = value

    def report(self):
        self._publish_metrics()
        extras = {
            "thermal_cells": self.network.num_cells,
            "emulation_backend": self.emulation_backend,
            "timing": dict(self.timing),
        }
        policy_report = getattr(self.policy, "report", None)
        if policy_report is not None:
            extras["policy"] = policy_report()
        if self.platform is not None:
            extras["interconnect"] = _string_keyed(self.platform.interconnect.stats())
            # The platform finish cycle: idle alignment at window
            # boundaries only grows idle_cycles, so active + stall is the
            # same end cycle `EventDrivenEngine.run_to_completion` reports.
            extras["end_cycle"] = max(
                c.active_cycles + c.stall_cycles for c in self.platform.cores
            )
            extras["components"] = sum(1 for _ in self.platform.components())
        return RunReport(
            emulated_seconds=self.vpcm.emulated_seconds,
            fpga_real_seconds=self.vpcm.real_seconds,
            windows=self.windows,
            workload_done=self.workload.done,
            peak_temperature_k=self._peak_temp_k,
            final_temperature_k=self._final_temp_k,
            freeze_breakdown=dict(self.vpcm.freezes),
            frequency_transitions=len(self.vpcm.transitions),
            dispatcher=self.dispatcher.stats(),
            instructions=getattr(self.workload, "instructions", 0.0),
            stalled=self.stalled,
            extras=extras,
        )
