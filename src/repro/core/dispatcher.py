"""BRAM statistics buffer + Ethernet dispatcher (Section 4, Figure 2).

Sniffers store their records in a buffer built from FPGA BRAM; the
Ethernet dispatcher concurrently drains it, packing records into MAC
frames in the framework's own format and sending them to the host PC.
When the link cannot keep up and the buffer fills, the dispatcher asks
the VPCM to freeze the platform's virtual clocks until the backlog
drains (Section 4.2, second use of the VPCM).
"""

from dataclasses import dataclass

from repro.emulation.ethernet import EthernetLink


@dataclass(frozen=True)
class StatisticsFrame:
    """Header of one MAC frame in the dispatcher's format."""

    sequence: int
    window: int
    payload_bytes: int

    HEADER_BYTES = 10  # sequence + window + record count

    @property
    def wire_payload(self):
        return self.payload_bytes + self.HEADER_BYTES


class BramBuffer:
    """The bounded statistics buffer in FPGA BRAM."""

    def __init__(self, capacity_bytes=64 * 1024):
        if capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.level_bytes = 0
        self.peak_bytes = 0
        self.total_pushed = 0

    @property
    def free_bytes(self):
        return self.capacity_bytes - self.level_bytes

    def push(self, nbytes):
        """Store ``nbytes``; returns the overflow that did not fit."""
        if nbytes < 0:
            raise ValueError("cannot push a negative byte count")
        accepted = min(nbytes, self.free_bytes)
        self.level_bytes += accepted
        self.total_pushed += accepted
        self.peak_bytes = max(self.peak_bytes, self.level_bytes)
        return nbytes - accepted

    def drain(self, nbytes):
        """Remove up to ``nbytes``; returns the amount actually drained."""
        drained = min(nbytes, self.level_bytes)
        self.level_bytes -= drained
        return drained


class EthernetDispatcher:
    """Drains the BRAM buffer into MAC frames over the Ethernet link."""

    def __init__(self, link=None, buffer=None, feedback_bytes_per_sensor=8):
        self.link = link or EthernetLink()
        self.buffer = buffer or BramBuffer()
        self.feedback_bytes_per_sensor = feedback_bytes_per_sensor
        self.frames = []
        self.windows = 0
        self.freeze_seconds = 0.0
        self.freeze_events = 0

    def dispatch_window(self, payload_bytes, real_window_seconds, num_sensors=0):
        """Process one statistics window.

        ``payload_bytes`` of records are produced while the platform runs
        for ``real_window_seconds`` of board time; the link drains the
        buffer concurrently.  Returns the *extra* real seconds the VPCM
        must freeze the platform because the buffer would overflow
        (0.0 when the link keeps up).  The temperature feedback from the
        host rides the return path and never blocks the platform (full
        duplex).
        """
        if payload_bytes < 0 or real_window_seconds < 0:
            raise ValueError("negative window inputs")
        frame = StatisticsFrame(
            sequence=len(self.frames), window=self.windows, payload_bytes=payload_bytes
        )
        self.frames.append(frame)
        self.windows += 1
        # Concurrent drain while the window ran.
        drain_capacity = self.link.bandwidth_bps / 8.0 * real_window_seconds
        overflow = self.buffer.push(frame.wire_payload)
        self.buffer.drain(drain_capacity)
        freeze = 0.0
        if overflow > 0:
            # Platform frozen until the backlog fits: the link drains at
            # full rate with the producers stopped.
            freeze = self.link.wire_bytes(overflow) * 8.0 / self.link.bandwidth_bps
            self.buffer.drain(overflow)  # modelled as drained during freeze
            self.freeze_events += 1
        self.link.send(frame.wire_payload)
        if num_sensors:
            self.link.send(self.feedback_bytes_per_sensor * num_sensors)
        self.freeze_seconds += freeze
        return freeze

    def stats(self):
        return {
            "windows": self.windows,
            "frames": len(self.frames),
            "bytes_sent": self.link.bytes_sent,
            "mac_frames": self.link.frames_sent,
            "buffer_peak_bytes": self.buffer.peak_bytes,
            "freeze_seconds": self.freeze_seconds,
            "freeze_events": self.freeze_events,
        }
