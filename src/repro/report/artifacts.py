"""The paper's tables and figures as named, self-checking artifacts.

Each :class:`Artifact` declares one headline result of the paper —
Table 1 (power library), Table 2 (thermal properties), Table 3 (timing),
Figure 3 (RC-model scaling) and Figure 6 (thermal runtime with/without
DFS) — as a set of scenarios from :mod:`repro.scenario` (or a pure
computation for the static tables), an extractor that turns the run
results into flat machine-readable values plus a rendered Markdown body,
and a list of :class:`Check` tolerance assertions against the published
numbers.  The :data:`ARTIFACTS` registry names them; the pipeline in
:mod:`repro.report.pipeline` runs them and writes ``REPRODUCTION.md``.

Scenario-backed artifacts run through the ordinary
:class:`~repro.scenario.runner.Runner`; the Figure 3 cell-count sweep
runs through :meth:`~repro.scenario.runner.Runner.run_batched`, so the
structure-keyed network cache and the multi-RHS solve path are exercised
by the reproduction itself.
"""

import math
import time
from dataclasses import dataclass, field

from repro.emulation.perfmodel import (
    DEFAULT_MPARM_MODEL,
    TABLE3_ROWS,
    EmulatorPerformanceModel,
)
from repro.mpsoc.bus import BusConfig
from repro.mpsoc.cache import CacheConfig
from repro.mpsoc.noc import generate_custom
from repro.mpsoc.platform import CoreConfig, MPSoCConfig
from repro.policy import example_params
from repro.policy.comparison import comparison_scenarios, outcomes_from_results
from repro.power.library import DEFAULT_LIBRARY
from repro.power.models import PowerModel
from repro.report.render import code_block, markdown_table
from repro.scenario.presets import PRESETS
from repro.scenario.runner import Runner
from repro.scenario.spec import Scenario, WorkloadSpec
from repro.scenario.sweep import Variant, sweep
from repro.thermal.calibration import uniform_floorplan
from repro.thermal.floorplan import floorplan_4xarm11, floorplan_4xarm7
from repro.thermal.properties import ThermalProperties, silicon_conductivity
from repro.thermal.rc_network import network_for
from repro.util.records import Table, format_duration
from repro.util.registry import Registry
from repro.util.units import KB, MB, MHZ, MM2, MW, W

ARTIFACTS = Registry("paper artifact")


# -- checks ----------------------------------------------------------------------


@dataclass(frozen=True)
class Check:
    """One tolerance assertion against an extracted metric.

    ``expected`` with ``rel_tol``/``abs_tol`` asserts approximate
    equality (both tolerances zero means "numerically exact": a relative
    band of 1e-9 absorbs float noise); ``low``/``high`` assert bounds.
    """

    metric: str
    expected: float | None = None
    rel_tol: float = 0.0
    abs_tol: float = 0.0
    low: float | None = None
    high: float | None = None
    note: str = ""

    @property
    def expectation(self):
        """Human-readable form of what the check demands."""
        parts = []
        if self.expected is not None:
            if self.rel_tol:
                parts.append(f"= {self.expected:g} ±{self.rel_tol:.0%}")
            elif self.abs_tol:
                parts.append(f"= {self.expected:g} ±{self.abs_tol:g}")
            else:
                parts.append(f"= {self.expected:g}")
        if self.low is not None and self.high is not None:
            parts.append(f"in [{self.low:g}, {self.high:g}]")
        elif self.low is not None:
            parts.append(f">= {self.low:g}")
        elif self.high is not None:
            parts.append(f"<= {self.high:g}")
        return " and ".join(parts) or "(recorded)"

    def evaluate(self, values):
        if self.metric not in values:
            return CheckResult(
                metric=self.metric,
                value=None,
                passed=False,
                expectation=self.expectation,
                note="metric missing from extracted values",
            )
        value = values[self.metric]
        passed = True
        if self.expected is not None:
            tolerance = max(
                self.abs_tol,
                (self.rel_tol or 1e-9) * abs(self.expected),
            )
            passed = abs(value - self.expected) <= tolerance
        if self.low is not None:
            passed = passed and value >= self.low
        if self.high is not None:
            passed = passed and value <= self.high
        return CheckResult(
            metric=self.metric,
            value=value,
            passed=passed,
            expectation=self.expectation,
            note=self.note,
        )


@dataclass
class CheckResult:
    """Outcome of one :class:`Check` against the extracted values."""

    metric: str
    value: float | None
    passed: bool
    expectation: str
    note: str = ""

    def formatted_value(self):
        return "(missing)" if self.value is None else f"{self.value:g}"

    def to_dict(self):
        return {
            "metric": self.metric,
            "value": self.value,
            "passed": self.passed,
            "expectation": self.expectation,
            "note": self.note,
        }


# -- artifacts -------------------------------------------------------------------


@dataclass
class ArtifactResult:
    """One artifact's reproduction outcome: values, body, check ledger."""

    name: str
    title: str
    paper_ref: str
    description: str
    values: dict = field(default_factory=dict)
    body: str = ""
    checks: list = field(default_factory=list)
    wall_seconds: float = 0.0
    error: str | None = None

    @property
    def ok(self):
        return self.error is None and all(c.passed for c in self.checks)

    @property
    def checks_passed(self):
        return sum(1 for c in self.checks if c.passed)

    # repro: allow[serialization-roundtrip] — body/description are regenerated prose, deliberately kept out of the golden-file JSON
    def to_dict(self):
        return {
            "name": self.name,
            "title": self.title,
            "paper_ref": self.paper_ref,
            "ok": self.ok,
            "error": self.error,
            "wall_seconds": self.wall_seconds,
            "values": dict(self.values),
            "checks": [c.to_dict() for c in self.checks],
        }


@dataclass
class Artifact:
    """A named paper table/figure: scenarios + extractor + checks.

    ``extract(results)`` receives the scenario results (empty for purely
    computed artifacts) and returns ``(values, body)`` — a flat dict of
    numeric metrics and the rendered Markdown body.  ``batched=True``
    routes the scenarios through :meth:`Runner.run_batched`, so
    structure-sharing variants co-step through one multi-RHS solve.
    ``use_trace_store=True`` gives the runner an in-memory
    :class:`repro.trace.store.TraceStore`, so sweep members that differ
    only in thermal-side knobs replay one member's recorded boundary
    stream instead of re-emulating (record once, fan out).
    """

    name: str
    title: str
    paper_ref: str
    description: str
    extract: callable
    scenarios: tuple = ()
    batched: bool = False
    capture_trace: bool = False
    use_trace_store: bool = False
    checks: tuple = ()

    def run(self, runner=None):
        """Execute scenarios, extract values, evaluate checks."""
        start = time.perf_counter()
        values, body, check_results, error = {}, "", [], None
        try:
            results = []
            if self.scenarios:
                if runner is None:
                    runner = Runner(
                        capture_trace=self.capture_trace,
                        trace_store=True if self.use_trace_store else None,
                    )
                elif (self.capture_trace and not runner.capture_trace) or (
                    self.use_trace_store and runner.trace_store is None
                ):
                    # The extractor needs traces (or the replay path); a
                    # caller-supplied runner must not silently drop them.
                    runner = Runner(
                        workers=runner.workers,
                        capture_trace=self.capture_trace or runner.capture_trace,
                        start_method=runner.start_method,
                        trace_store=(
                            True if self.use_trace_store else runner.trace_store
                        ),
                        trace_stride=runner.trace_stride,
                    )
                batch = list(self.scenarios)
                if self.batched:
                    results = runner.run_batched(batch)
                else:
                    results = runner.run(batch)
                failed = [r for r in results if not r.ok]
                if failed:
                    raise RuntimeError(
                        f"scenario {failed[0].name!r} failed: {failed[0].error}"
                    )
            values, body = self.extract(results)
            check_results = [check.evaluate(values) for check in self.checks]
        except Exception as exc:  # the report survives one broken artifact
            error = f"{type(exc).__name__}: {exc}"
        return ArtifactResult(
            name=self.name,
            title=self.title,
            paper_ref=self.paper_ref,
            description=self.description,
            values=values,
            body=body,
            checks=check_results,
            wall_seconds=time.perf_counter() - start,
            error=error,
        )


# -- Table 1: the power library --------------------------------------------------

#: (library key, paper's max power W, paper's density W/mm2) — Table 1 as printed.
PAPER_POWER_ROWS = [
    ("arm7", 5.5e-3, 0.03),
    ("arm11", 1.5, 0.5),
    ("dcache_8k_2w", 43e-3, 0.012),
    ("icache_8k_dm", 11e-3, 0.03),
    ("sram_32k", 15e-3, 0.02),
]


def _table1_extract(results):
    values = {}
    table = Table(
        ["Component", "Max power", "Max power density", "area (mm2)"],
        title="Table 1: power for most important components of an MPSoC "
        "design (130nm bulk CMOS)",
    )
    for label, power, density in DEFAULT_LIBRARY.table_rows():
        name = next(
            (k for k in DEFAULT_LIBRARY.names() if DEFAULT_LIBRARY[k].label == label),
            None,
        )
        area = DEFAULT_LIBRARY.area(name) / MM2 if name else float("nan")
        table.add_row(label, power, density, f"{area:.3f}")
    for name, _power, _density in PAPER_POWER_ROWS:
        cls = DEFAULT_LIBRARY[name]
        values[f"{name}_max_power_w"] = cls.max_power
        values[f"{name}_density_w_mm2"] = cls.power_density * MM2
        # Internal consistency: area x density must reproduce max power.
        values[f"{name}_area_consistency"] = (
            cls.area * cls.power_density / cls.max_power
        )
    peaks = Table(
        ["floorplan", "clock", "peak power"],
        title="Peak platform power implied by Table 1 (Figure 4 operating points)",
    )
    peak7 = PowerModel(floorplan_4xarm7()).peak_power(100 * MHZ)
    peak11 = PowerModel(floorplan_4xarm11()).peak_power(500 * MHZ)
    peaks.add_row("4x ARM7 (Fig 4a)", "100 MHz", f"{peak7 / MW:.1f} mW")
    peaks.add_row("4x ARM11 (Fig 4b)", "500 MHz", f"{peak11 / W:.2f} W")
    values["peak_power_4xarm7_w"] = peak7
    values["peak_power_4xarm11_w"] = peak11
    values["peak_power_ratio"] = peak11 / peak7
    body = f"{markdown_table(table)}\n\n{markdown_table(peaks)}"
    return values, body


@ARTIFACTS.register("table1")
def table1_artifact():
    checks = []
    for name, power, density in PAPER_POWER_ROWS:
        checks.append(Check(f"{name}_max_power_w", expected=power))
        checks.append(Check(f"{name}_density_w_mm2", expected=density))
        checks.append(Check(f"{name}_area_consistency", expected=1.0))
    checks.append(
        Check(
            "peak_power_4xarm11_w",
            low=6.0,
            high=12.0,
            note="the thermally interesting Figure 4b design",
        )
    )
    checks.append(Check("peak_power_ratio", low=20.0))
    return Artifact(
        name="table1",
        title="Table 1 — power of the most important MPSoC components",
        paper_ref="Table 1, Section 5.1",
        description="Regenerates the 130 nm technology power library and "
        "checks every published max-power/density pair plus the peak "
        "platform power at both Figure 4 operating points.",
        extract=_table1_extract,
        checks=tuple(checks),
    )


# -- Table 2: thermal properties -------------------------------------------------

_SILICON_RATIO_400_300 = (300.0 / 400.0) ** (4.0 / 3.0)


def _table2_extract(results):
    values = {
        "silicon_k_300": float(silicon_conductivity(300.0)),
        "silicon_k_ratio_400_300": float(
            silicon_conductivity(400.0) / silicon_conductivity(300.0)
        ),
    }
    props = ThermalProperties()
    table = Table(["property", "value"], title="Table 2: thermal properties")
    for name, value in props.table():
        table.add_row(name, value)
    curve = Table(
        ["T (K)", "k_si (W/mK)"],
        title="Non-linear silicon conductivity 150*(300/T)^(4/3)",
    )
    for t in (300, 320, 340, 360, 380, 400):
        curve.add_row(t, f"{silicon_conductivity(float(t)):.1f}")
    # The Section 5.2 fine grid, assembled through the structure-keyed
    # cache the co-emulation loop itself uses.
    net = network_for(
        uniform_floorplan(),
        mode="uniform",
        die_resolution=(18, 18),
        spreader_resolution=(18, 18),
    )
    values["grid_cells_660_class"] = float(net.num_cells)
    values["nonlinear_cells"] = float(net.is_nonlinear.sum())
    inventory = (
        f"660-cell-class grid: {net.num_cells} cells, "
        f"{len(net.edge_i)} resistive edges, "
        f"{int(net.is_nonlinear.sum())} non-linear (silicon) cells"
    )
    replay_note = _table2_replay_validation(values)
    body = (
        f"{markdown_table(table)}\n\n{markdown_table(curve)}\n\n"
        f"{inventory}\n\n{replay_note}"
    )
    return values, body


def _table2_replay_validation(values):
    """Validate the Table 2 material properties through trace replay.

    One MATRIX-TM-class stress run is recorded at the dispatcher
    boundary (repro.trace), then the SW thermal side alone is re-run
    twice from the recording: once with unchanged knobs — which must
    reproduce the live trace digest bit-for-bit — and once with the
    non-linear silicon conductivity frozen at its 300 K value.  The
    frozen-k die must come out measurably cooler (hot silicon conducts
    worse, so the paper's non-linear resistances are self-reinforcing),
    which is the property Table 2's k(T) law exists to capture.
    """
    from repro.scenario.presets import PRESETS
    from repro.thermal.properties import SILICON_VOLUMETRIC_HEAT, Material
    from repro.trace import record, replay

    scenario = PRESETS.get("matrix_tm_unmanaged")()
    scenario.name = "table2_replay_probe"
    scenario.max_emulated_seconds = 3.0
    framework, live_report, archive = record(scenario)
    faithful, faithful_report = replay(archive)
    values["replay_digest_match"] = float(
        faithful.trace.digest() == framework.trace.digest()
    )
    frozen_k = ThermalProperties(
        die_material=Material(
            name="silicon-const-k300",
            conductivity=float(silicon_conductivity(300.0)),
            volumetric_heat=SILICON_VOLUMETRIC_HEAT,
        )
    )
    _, frozen_report = replay(archive, properties=frozen_k)
    values["nonlinear_peak_excess_k"] = (
        faithful_report.peak_temperature_k - frozen_report.peak_temperature_k
    )
    return (
        f"Replay validation: a {archive.windows}-window stress recording "
        f"replayed through the thermal side alone reproduces the live "
        f"trace digest exactly "
        f"(match={int(values['replay_digest_match'])}), and freezing the "
        f"silicon conductivity at k(300 K) cools the peak by "
        f"{values['nonlinear_peak_excess_k']:.2f} K — the non-linear "
        f"resistances of Table 2 at work."
    )


@ARTIFACTS.register("table2")
def table2_artifact():
    return Artifact(
        name="table2",
        title="Table 2 — thermal properties of the RC model",
        paper_ref="Table 2, Section 5.2",
        description="Regenerates the property table, validates the "
        "non-linear silicon conductivity law and the 660-cell-class "
        "fine grid it acts on; a recorded stress run replayed through "
        "repro.trace checks the k(T) law's thermal effect end to end.",
        extract=_table2_extract,
        checks=(
            Check("silicon_k_300", expected=150.0),
            Check("silicon_k_ratio_400_300", expected=_SILICON_RATIO_400_300),
            Check(
                "grid_cells_660_class",
                expected=648.0,
                note="the 18x18x2 uniform grid of Section 5.2",
            ),
            Check("nonlinear_cells", low=1.0),
            Check(
                "replay_digest_match",
                expected=1.0,
                note="record -> replay reproduces the live trace "
                "digest bit-for-bit",
            ),
            Check(
                "nonlinear_peak_excess_k",
                low=0.02,
                note="freezing k at 300 K must cool the die: hot "
                "silicon conducts worse",
            ),
        ),
    )


# -- Table 3: timing comparison --------------------------------------------------


def _table3_platform(num_cores, interconnect="bus", noc=None, private_kb=16,
                     cache_bytes=4 * KB, shared_bytes=1 * MB):
    """The paper's Table 3 configuration: 4 KB I/D caches, 16 KB private
    memory, 1 MB shared main memory, OPB bus (or the given NoC)."""
    return MPSoCConfig(
        name=f"mx{num_cores}",
        cores=[CoreConfig(f"cpu{i}") for i in range(num_cores)],
        icache=CacheConfig(name="i", size=cache_bytes, line_size=16),
        dcache=CacheConfig(name="d", size=cache_bytes, line_size=16),
        private_mem_size=private_kb * KB,
        shared_mem_size=shared_bytes,
        interconnect=interconnect,
        bus=BusConfig(name="opb", kind="opb") if interconnect == "bus" else None,
        noc=noc,
    )


def _table3_scenarios():
    """One scenario per published row, on the declarative API."""
    dithering = WorkloadSpec(
        "dithering", {"width": 32, "height": 32, "num_images": 2}
    )
    rows = [
        ("matrix_1core", _table3_platform(1), WorkloadSpec("matrix", {"n": 8})),
        ("matrix_4core", _table3_platform(4), WorkloadSpec("matrix", {"n": 8})),
        ("matrix_8core", _table3_platform(8), WorkloadSpec("matrix", {"n": 8})),
        ("dithering_bus", _table3_platform(4), dithering),
        (
            "dithering_noc",
            _table3_platform(
                4,
                interconnect="noc",
                noc=generate_custom("noc2", 2, ring=False, buffer_flits=3),
            ),
            dithering,
        ),
        (
            "matrix_tm_noc",
            _table3_platform(
                4,
                interconnect="noc",
                noc=generate_custom(
                    "noc4", 4, extra_links=[(0, 2), (1, 3)], buffer_flits=3
                ),
                private_kb=32,
                cache_bytes=8 * KB,
                shared_bytes=32 * KB,
            ),
            WorkloadSpec("matrix", {"n": 8}),
        ),
    ]
    scenarios = []
    for name, platform, workload in rows:
        scenarios.append(
            Scenario(
                name=f"table3_{name}",
                platform=platform,
                floorplan="4xarm7",
                workload=workload,
                config={"spreader_resolution": [2, 2]},
            )
        )
    # Companion: the 4-core MATRIX row again through the fast windowed
    # emulation backend — the reproduction itself checks the fast path
    # agrees with the event-driven reference it was calibrated against.
    scenarios.append(
        Scenario(
            name="table3_matrix_4core_windowed",
            platform=_table3_platform(4),
            floorplan="4xarm7",
            workload=WorkloadSpec("matrix", {"n": 8}),
            config={
                "spreader_resolution": [2, 2],
                "emulation_backend": "windowed",
            },
        )
    )
    return tuple(scenarios)


def _table3_extract(results):
    emulator = EmulatorPerformanceModel()
    mparm = DEFAULT_MPARM_MODEL
    table = Table(
        [
            "configuration",
            "cycles (ours)",
            "MPARM (paper)",
            "HW emu (paper)",
            "speedup (paper)",
            "MPARM (model)",
            "HW emu (model)",
            "speedup (model)",
        ],
        title="Table 3: timing comparison, MPARM vs the HW/SW emulation "
        "framework (our workloads are smaller than the paper's, so "
        "absolute wall-clocks differ; the shape is the claim)",
    )
    values = {}
    emulator_walls = []
    for index, (result, row) in enumerate(zip(results, TABLE3_ROWS)):
        name, cores, _comps, switches, io_bound, thermal, mparm_s, emu_s, speedup = row
        extras = result.report.extras
        cycles = float(extras["end_cycle"])
        if thermal:
            # MATRIX-TM: the measured kernel repeats for a 100K-matrix
            # workload (25K platform iterations of 4 parallel matrices).
            cycles *= 25_000
        components = extras["components"]
        model_mparm = mparm.wall_seconds(
            cycles, cores, components, switches, io_bound, thermal
        )
        model_emu = emulator.wall_seconds(cycles)
        model_speedup = model_mparm / model_emu
        if not thermal:
            emulator_walls.append(model_emu)
        values[f"speedup_model_row{index}"] = model_speedup
        table.add_row(
            name,
            f"{cycles:.3g}",
            format_duration(mparm_s),
            format_duration(emu_s),
            f"{speedup}x",
            format_duration(model_mparm),
            format_duration(model_emu),
            f"{model_speedup:.0f}x",
        )
    matrix_walls = emulator_walls[:3]
    values["emulator_flatness"] = max(matrix_walls) / min(matrix_walls)
    values["thermal_row_speedup"] = values[f"speedup_model_row{len(TABLE3_ROWS) - 1}"]
    # The windowed-backend companion run (scenario 7) against the exact
    # matrix_4core row it mirrors (scenario 2).
    exact = results[1].report
    fast = results[len(TABLE3_ROWS)].report
    values["windowed_end_cycle_ratio"] = float(fast.extras["end_cycle"]) / float(
        exact.extras["end_cycle"]
    )
    values["windowed_peak_delta_k"] = abs(
        fast.peak_temperature_k - exact.peak_temperature_k
    )
    values["windowed_done"] = 1.0 if fast.workload_done else 0.0
    note = (
        "The emulator column is flat in system size (all components are "
        "real parallel hardware); the speedup column grows past three "
        "orders of magnitude on the thermal row — the paper's shape.\n\n"
        "Companion: the 4-core MATRIX row re-run through the `windowed` "
        "emulation backend finishes at "
        f"{values['windowed_end_cycle_ratio']:.4f}x the event-driven end "
        f"cycle with a peak-temperature delta of "
        f"{values['windowed_peak_delta_k']:.3f} K."
    )
    return values, f"{markdown_table(table)}\n\n{note}"


@ARTIFACTS.register("table3")
def table3_artifact():
    checks = [
        Check(
            f"speedup_model_row{index}",
            expected=float(row[8]),
            rel_tol=0.35,
            note=row[0],
        )
        for index, row in enumerate(TABLE3_ROWS)
    ]
    checks.append(
        Check(
            "emulator_flatness",
            high=1.20,
            note="the paper's constant 1.2 s emulator column",
        )
    )
    checks.append(Check("thermal_row_speedup", low=1000.0))
    checks.append(
        Check(
            "windowed_end_cycle_ratio",
            expected=1.0,
            rel_tol=0.02,
            note="fast windowed backend vs event-driven, matrix_4core",
        )
    )
    checks.append(
        Check(
            "windowed_peak_delta_k",
            high=0.5,
            note="peak-temperature agreement of the windowed backend",
        )
    )
    checks.append(Check("windowed_done", expected=1.0))
    return Artifact(
        name="table3",
        title="Table 3 — timing: HW/SW emulation framework vs MPARM",
        paper_ref="Table 3, Section 7",
        description="Runs every published row's platform + workload "
        "cycle-accurately through the scenario API, converts cycles to "
        "wall-clock with the calibrated emulator/MPARM models, and "
        "checks the published speedup shape.",
        extract=_table3_extract,
        scenarios=_table3_scenarios(),
        checks=tuple(checks),
    )


# -- Figure 3: RC-model scaling (batched sweep) ---------------------------------


def _fig3_scenarios(resolutions, max_windows):
    base = PRESETS.get("matrix_tm_unmanaged")()
    base.name = "fig3"
    base.max_emulated_seconds = None
    base.max_windows = max_windows
    configs = []
    for nx, ny in resolutions:
        config = base.config.to_dict()
        config.update(
            grid_mode="uniform",
            die_resolution=[nx, ny],
            spreader_resolution=[nx, ny],
        )
        configs.append(Variant(f"{nx}x{ny}", config))
    policies = [
        Variant("noTM", {"name": "none", "params": {}}),
        Variant(
            "DFS",
            {
                "name": "dual_threshold",
                "params": {"high_hz": 500 * MHZ, "low_hz": 100 * MHZ},
            },
        ),
    ]
    return tuple(sweep(base, {"config": configs, "policy": policies}))


def _fig3_extract(results):
    # Group the batched results by shared structure (cell count): both
    # policy variants of one resolution co-stepped through one BatchedLU.
    groups = {}
    for result in results:
        cells = int(result.report.extras["thermal_cells"])
        groups.setdefault(cells, []).append(result)
    table = Table(
        ["cells", "scenarios", "replayed", "windows each", "group wall (s)",
         "scenario-windows/s", "us/cell/window", "real-time factor"],
        title="Figure 3 / Section 5.2: RC-model scaling, co-stepped "
        "through one multi-RHS backward-Euler solve per window "
        "(Runner.run_batched); unmanaged variants replay one recorded "
        "power trace instead of re-emulating (repro.trace)",
    )
    values = {}
    points = []
    replayed_total = 0
    for cells in sorted(groups):
        members = groups[cells]
        # Live and replayed members of one resolution run in separate
        # co-step groups; members of one co-step group share one exact
        # wall float, so summing the distinct values gives the
        # resolution's total wall time.
        wall = sum({m.wall_seconds for m in members})
        windows = members[0].report.windows
        replayed = sum(1 for m in members if m.replayed)
        replayed_total += replayed
        scenario_windows = len(members) * windows
        rate = scenario_windows / wall if wall > 0 else float("inf")
        per_cell = wall / scenario_windows / cells * 1e6
        emulated = members[0].report.emulated_seconds
        realtime = len(members) * emulated / wall if wall > 0 else float("inf")
        points.append((cells, wall / scenario_windows))
        table.add_row(
            cells,
            len(members),
            replayed,
            windows,
            f"{wall:.3f}",
            f"{rate:,.0f}",
            f"{per_cell:.2f}",
            f"{realtime:.1f}x",
        )
        values[f"realtime_factor_{cells}"] = realtime
    cells_small, cost_small = points[0]
    cells_large, cost_large = points[-1]
    values["cells_max"] = float(cells_large)
    values["structures"] = float(len(groups))
    values["scenarios"] = float(len(results))
    values["replayed_scenarios"] = float(replayed_total)
    values["scaling_exponent"] = math.log(cost_large / cost_small) / math.log(
        cells_large / cells_small
    )
    values["realtime_factor_finest"] = values[f"realtime_factor_{cells_large}"]
    note = (
        "Each cell interacts only with its neighbours, so per-step cost "
        "must grow roughly linearly in the cell count (the paper: 2 s of "
        "simulation on a 660-cell floorplan in 1.65 s on a 3 GHz "
        "Pentium 4).  Both policy variants of each resolution share one "
        "factorization stream, and the unmanaged (open-loop) variants "
        "beyond the first replay its recorded dispatcher-boundary power "
        "stream — the thermal side re-solves, the platform never re-runs."
    )
    return values, f"{markdown_table(table)}\n\n{note}"


@ARTIFACTS.register("fig3")
def fig3_artifact(resolutions=((6, 6), (12, 12), (18, 18)), max_windows=100):
    num = 2 * len(resolutions)
    return Artifact(
        name="fig3",
        title="Figure 3 — RC model: linear-complexity scaling",
        paper_ref="Figure 3, Section 5.2",
        description="Sweeps the uniform-grid resolution up to the "
        "paper's 660-cell class and co-steps the variants through "
        "Runner.run_batched with a trace store: the unmanaged variants "
        "replay one recorded power trace across every resolution; "
        "checks linear-complexity scaling and the real-time "
        "co-emulation requirement.",
        extract=_fig3_extract,
        scenarios=_fig3_scenarios(resolutions, max_windows),
        batched=True,
        use_trace_store=True,
        checks=(
            Check("cells_max", expected=float(
                2 * resolutions[-1][0] * resolutions[-1][1]
            )),
            Check("structures", expected=float(len(resolutions))),
            Check("scenarios", expected=float(num)),
            Check(
                "replayed_scenarios",
                expected=float(len(resolutions) - 1),
                note="every open-loop resolution after the first replays "
                "the first one's recorded boundary stream",
            ),
            Check(
                "scaling_exponent",
                high=1.5,
                note="sparse direct solves carry a small superlinear term",
            ),
            Check(
                "realtime_factor_finest",
                low=1.0,
                note="one window's solve must fit inside the 10 ms window",
            ),
        ),
    )


# The Section 7 sensor thresholds, shared by the Figure 6 artifact and
# the policy comparison.
UPPER_K = 350.0
LOWER_K = 340.0


# -- Policy comparison: the Figure 6 family as design-space exploration ---------

#: The registry policies the comparison races (with their example params
#: for the 4xarm11 experiment floorplan): the paper's four plus the
#: exploration family.  ``none`` anchors the throughput-loss column.
COMPARED_POLICIES = (
    "none",
    "dual_threshold",
    "stop_go",
    "per_core",
    "dvfs_ladder",
    "pid",
    "predictive",
    "per_domain",
)


def _policy_comparison_scenarios():
    base = PRESETS.get("matrix_tm_unmanaged")()
    base.name = "policy_comparison"
    policies = [
        {"name": name, "params": example_params(name)}
        for name in COMPARED_POLICIES
    ]
    _, scenarios = comparison_scenarios(base, policies)
    return tuple(scenarios)


def _policy_stats_cell(stats):
    """Compact ``k=v`` rendering of the scalar per-policy statistics."""
    parts = []
    for key, value in stats.items():
        if key == "name" or isinstance(value, (dict, list)):
            continue
        parts.append(f"{key}={value:g}" if isinstance(value, float) else f"{key}={value}")
    return ", ".join(parts) or "—"


def _policy_comparison_extract(results):
    comparison = outcomes_from_results(
        results, threshold_kelvin=UPPER_K, base="policy_comparison"
    )
    if comparison.errors:
        name, error = next(iter(comparison.errors.items()))
        raise RuntimeError(f"policy {name!r} failed: {error}")
    table = Table(
        ["policy", "peak K", "final K", f"time > {UPPER_K:.0f} K",
         "emulated", "throughput loss", "DFS transitions", "policy stats"],
        title="Closed-loop policy comparison on the MATRIX-TM-class "
        "stress (Figure 6 generalized; all variants co-stepped through "
        "one multi-RHS solve via Runner.run_batched)",
    )
    values = {}
    managed_peaks, losses = [], []
    for outcome in comparison.outcomes:
        table.add_row(
            outcome.policy,
            f"{outcome.peak_temperature_k:.1f}",
            f"{outcome.final_temperature_k:.1f}",
            f"{outcome.time_above_threshold_s:.2f} s",
            format_duration(outcome.emulated_seconds),
            f"{outcome.throughput_loss:.0%}",
            outcome.frequency_transitions,
            _policy_stats_cell(outcome.stats),
        )
        values[f"peak_k_{outcome.policy}"] = outcome.peak_temperature_k
        values[f"time_above_s_{outcome.policy}"] = outcome.time_above_threshold_s
        values[f"throughput_loss_{outcome.policy}"] = outcome.throughput_loss
        if outcome.policy == "none":
            continue
        managed_peaks.append(outcome.peak_temperature_k)
        losses.append(outcome.throughput_loss)
    unmanaged = comparison.outcome("none")
    values["policies_compared"] = float(len(comparison.outcomes))
    values["unmanaged_peak_k"] = unmanaged.peak_temperature_k
    values["managed_peak_max_k"] = max(managed_peaks)
    values["peak_reduction_k"] = unmanaged.peak_temperature_k - max(managed_peaks)
    values["min_managed_throughput_loss"] = min(losses)
    values["all_done"] = float(
        all(o.workload_done for o in comparison.outcomes)
    )
    values["stalled_runs"] = float(
        sum(1 for o in comparison.outcomes if o.stalled)
    )
    note = (
        "Every management policy trades throughput for temperature: the "
        "unmanaged baseline overheats toward steady state while each "
        "managed variant holds the die near the "
        f"{LOWER_K:.0f}–{UPPER_K:.0f} K band and pays for it in emulated "
        "run time — the Figure 6 trade-off, explored across "
        f"{len(comparison.outcomes)} policies in one batched sweep.  "
        "Per-policy statistics come from each policy's report() hook."
    )
    return values, f"{markdown_table(table)}\n\n{note}"


@ARTIFACTS.register("policy_comparison")
def policy_comparison_artifact():
    return Artifact(
        name="policy_comparison",
        title="Policy comparison — thermal management design space",
        paper_ref="Section 7 / Figure 6 (generalized)",
        description="Races every registered thermal-management policy "
        "(the paper's four plus the exploration family) over one "
        "MATRIX-TM-class stress scenario through the batched sweep "
        "pipeline, and checks the closed-loop trade-off the paper "
        "demonstrates for DFS.",
        extract=_policy_comparison_extract,
        scenarios=_policy_comparison_scenarios(),
        batched=True,
        capture_trace=True,
        checks=(
            Check("policies_compared", low=6.0,
                  note="four ported built-ins plus the exploration family"),
            Check("unmanaged_peak_k", low=360.0,
                  note="the baseline sails past the 350 K threshold"),
            Check("managed_peak_max_k", high=358.0,
                  note="every managed policy caps the excursion"),
            Check("peak_reduction_k", low=10.0),
            Check("min_managed_throughput_loss", low=0.05,
                  note="thermal headroom is paid for in throughput"),
            Check("all_done", expected=1.0),
            Check("stalled_runs", expected=0.0),
        ),
    )


# -- Pareto front: heterogeneous design-space exploration -----------------------

#: The reduced DSE space the report sweeps (the full >= 1000-point space
#: is the ``python -m repro dse --check`` CI gate; the report's job is to
#: show the front, not to soak-test the sweep): 2 big x 3 little x 3
#: nodes x 3 operating points x 2 grids = 108 configurations.
DSE_REPORT_SPACE = dict(
    big_counts=(1, 2),
    little_counts=(0, 2, 4),
    tech_nodes=("130nm", "90nm", "65nm"),
    big_hz_steps=tuple(f * MHZ for f in (100, 250, 500)),
    grids=((2, 2), (3, 3)),
)


def _pareto_front_extract(results):
    from repro.dse.driver import run_dse
    from repro.dse.space import generate_points

    points = generate_points(**DSE_REPORT_SPACE)
    report = run_dse(points, refine_top=1)
    values = {
        "evaluated": float(report["evaluated"]),
        "failed": float(report["failed"]),
        "replayed": float(report["replayed"]),
        "front_size": float(report["front_size"]),
        "partition_consistent": float(
            report["front_size"] + report["dominated"] == report["evaluated"]
        ),
    }
    front = sorted(
        report["front"], key=lambda r: r["throughput_ips"], reverse=True
    )
    table = Table(
        ["design", "big", "little", "node", "clock", "peak K", "avg W",
         "Ginstr/s"],
        title="Pareto front of the heterogeneous design space "
        "(minimize peak temperature and power, maximize throughput; "
        f"{report['dominated']} dominated designs pruned)",
    )
    for row in front[:12]:
        table.add_row(
            row["design"],
            row["big"],
            row["little"],
            row["tech_node"],
            f"{row['big_hz'] / MHZ:g} MHz",
            f"{row['peak_temperature_k']:.2f}",
            f"{row['avg_power_w']:.3f}",
            f"{row['throughput_ips'] / 1e9:.3f}",
        )
    if len(front) > 12:
        table.add_row(f"... {len(front) - 12} more front designs",
                      "", "", "", "", "", "", "")
    refinement_lines = []
    for design, comparison in report["policy_refinement"].items():
        for outcome in comparison.get("outcomes", []):
            refinement_lines.append(
                f"  {design} under {outcome['policy']!r}: peak "
                f"{outcome['peak_temperature_k']:.2f} K, throughput loss "
                f"{outcome['throughput_loss']:.0%}"
            )
    note = (
        f"Every configuration ran through one Runner.run_batched call; "
        f"the trace store deduped the {report['replayed']} fine-grid "
        f"twins into replays of their coarse-grid leaders' recorded "
        f"boundary streams (record once, fan out — the Figure 3 pattern "
        f"at DSE scale).  Dynamic power scales as f x V(f)^2 along each "
        f"tech node's operating-point ladder, so a 65 nm design at "
        f"100 MHz and a 130 nm design at 500 MHz bracket the "
        f"temperature-throughput trade-off.\n\n"
        f"Top-throughput front design re-raced against a reactive "
        f"policy:\n" + "\n".join(refinement_lines)
    )
    return values, f"{markdown_table(table)}\n\n{note}"


@ARTIFACTS.register("pareto_front")
def pareto_front_artifact():
    num = 1
    for axis in DSE_REPORT_SPACE.values():
        num *= len(axis)
    return Artifact(
        name="pareto_front",
        title="Pareto front — heterogeneous MPSoC design-space exploration",
        paper_ref="Section 7 (methodology generalized)",
        description="Sweeps a reduced big/little x tech-node x "
        "operating-point x thermal-grid space through the batched "
        "runner with trace-store replay dedup, prunes the designs to "
        "their Pareto front (peak temperature vs average power vs "
        "throughput) and re-races the top design under a reactive "
        "policy; `python -m repro dse --check` runs the full >= 1000-"
        "configuration space as the CI gate.",
        extract=_pareto_front_extract,
        checks=(
            Check("evaluated", expected=float(num)),
            Check("failed", expected=0.0),
            Check(
                "replayed",
                expected=float(num // 2),
                note="every fine-grid twin replays its coarse-grid "
                "leader's recorded boundary stream",
            ),
            Check("front_size", low=1.0,
                  note="a non-empty front: the axes genuinely trade off"),
            Check(
                "partition_consistent",
                expected=1.0,
                note="front + dominated partitions the evaluated set",
            ),
        ),
    )


# -- Observability overview: the repro.obs layer watching a sweep ---------------


def _obs_overview_scenarios():
    """Six thermal-side variants of the MATRIX-TM stress: same platform
    and workload (one trace digest), different die/spreader grids."""
    base = PRESETS.get("matrix_tm_unmanaged")()
    base.name = "obs_overview"
    base.max_emulated_seconds = 0.5
    configs = []
    for die in (4, 6, 8):
        for spreader in (2, 3):
            config = base.config.to_dict()
            config.update(
                die_resolution=[die, die],
                spreader_resolution=[spreader, spreader],
            )
            configs.append(Variant(f"d{die}s{spreader}", config))
    return list(sweep(base, {"config": configs}))


def _obs_overview_extract(results):
    """Run the sweep under a live tracer and read the layer's own books.

    The paper's framework is a monitoring loop (hardware sniffers,
    Ethernet statistics stream, SW thermal tool); ``repro.obs`` is the
    reproduction observing itself the same way.  This artifact runs a
    replay-deduped sweep with tracing on, folds the span log into a
    :class:`~repro.obs.timeline.RunTimeline`, and checks that the
    metrics ledger agrees with what the runner reports.
    """
    from repro.obs import catalog as obs_catalog
    from repro.obs.timeline import RunTimeline
    from repro.obs.tracing import SpanTracer, activate

    hits_before = obs_catalog.counter("repro_store_hits_total").value
    puts_before = obs_catalog.counter("repro_store_puts_total").value
    tracer = SpanTracer()
    with activate(tracer):
        results = Runner(trace_store=True).run(_obs_overview_scenarios())
    failed = [r for r in results if not r.ok]
    if failed:
        raise RuntimeError(
            f"scenario {failed[0].name!r} failed: {failed[0].error}"
        )
    timeline = RunTimeline.from_events(tracer.events)
    shares = timeline.phase_shares()
    replayed = sum(1 for r in results if r.replayed)
    values = {
        "scenarios": float(len(results)),
        "replayed_scenarios": float(replayed),
        "replay_dedup_ratio": replayed / len(results),
        "store_puts_delta": (
            obs_catalog.counter("repro_store_puts_total").value - puts_before
        ),
        "store_hits_delta": (
            obs_catalog.counter("repro_store_hits_total").value - hits_before
        ),
        "phases_tracked": float(len(shares)),
        "solve_share": shares.get("solve", 0.0),
        "other_share": shares.get("other", 0.0),
        "span_events": float(len(tracer.events)),
        "runner_batch_spans": float(
            timeline.by_name.get("runner.batch", {}).get("count", 0)
        ),
        "scenario_spans": float(
            timeline.by_name.get("runner.scenario", {}).get("count", 0)
        ),
    }
    ledger = Table(
        ["signal", "value"],
        title="The sweep as the observability layer recorded it",
    )
    ledger.add_row("scenarios", len(results))
    ledger.add_row("replayed (trace-store dedup)", replayed)
    ledger.add_row("store puts / hits during the sweep",
                   f"{values['store_puts_delta']:g} / "
                   f"{values['store_hits_delta']:g}")
    ledger.add_row("span events", len(tracer.events))
    ledger.add_row("span-log structure digest",
                   timeline.digest()[:16] + "…")
    note = (
        "Per-phase wall-time breakdown of the one emulated member, folded "
        "from the JSONL span log the tracer streamed (the same view "
        "`python -m repro obs timeline` renders from `--obs-log` runs):"
    )
    body = (
        f"{markdown_table(ledger)}\n\n{note}\n\n"
        f"{code_block(timeline.render())}"
    )
    return values, body


@ARTIFACTS.register("obs_overview")
def obs_overview_artifact():
    return Artifact(
        name="obs_overview",
        title="Observability overview — repro.obs watching a sweep",
        paper_ref="Section 4 (monitoring loop, generalized)",
        description="Runs six thermal-side variants of the MATRIX-TM "
        "stress through the replay-deduped runner with span tracing "
        "active, then checks the observability layer's own ledger: "
        "replay dedup ratio from the trace-store counters, all five run "
        "phases present in the span timeline, and sane phase shares.",
        extract=_obs_overview_extract,
        checks=(
            Check("scenarios", expected=6.0),
            Check(
                "replay_dedup_ratio",
                low=0.8,
                high=1.0,
                note="five of six variants replay the first recording",
            ),
            Check("store_puts_delta", expected=1.0,
                  note="one emulation recorded, fanned out to the rest"),
            Check(
                "phases_tracked",
                expected=5.0,
                note="emulate/power/dispatch/solve/other all present",
            ),
            Check("solve_share", low=0.001, high=0.95),
            Check(
                "other_share",
                high=0.5,
                note="the sensors/policy residual must stay small",
            ),
            Check("runner_batch_spans", expected=1.0),
            Check("scenario_spans", expected=6.0),
        ),
    )


# -- Figure 6: thermal runtime with/without DFS ---------------------------------


def _fig6_extract(results):
    unmanaged, managed = results
    chart_a = unmanaged.trace.ascii_chart(
        width=68, height=14,
        title="Figure 6 (a): MATRIX-TM-class stress at 500 MHz, no thermal "
        "management (max component temperature)",
    )
    chart_b = managed.trace.ascii_chart(
        width=68, height=14,
        title="Figure 6 (b): the same stress under dual-threshold DFS "
        f"({UPPER_K:.0f}/{LOWER_K:.0f} K -> 100/500 MHz)",
    )
    summary = Table(
        ["run", "peak K", "final K", "emulated", "board time",
         "DFS switches", "100 MHz duty"],
        title="Figure 6 summary",
    )
    for label, result in (("no TM", unmanaged), ("DFS", managed)):
        report = result.report
        summary.add_row(
            label,
            f"{report.peak_temperature_k:.1f}",
            f"{report.final_temperature_k:.1f}",
            format_duration(report.emulated_seconds),
            format_duration(report.fpga_real_seconds),
            report.frequency_transitions,
            f"{result.trace.duty_cycle(100 * MHZ) * 100:.0f}%",
        )
    late = managed.trace.max_temps()[len(managed.trace) // 2:]
    values = {
        "unmanaged_peak_k": unmanaged.report.peak_temperature_k,
        "managed_peak_k": managed.report.peak_temperature_k,
        "managed_late_min_k": min(late),
        "frequency_transitions": float(managed.report.frequency_transitions),
        "slowdown": (
            managed.report.emulated_seconds / unmanaged.report.emulated_seconds
        ),
        "duty_100mhz": managed.trace.duty_cycle(100 * MHZ),
        "unmanaged_done": float(unmanaged.report.workload_done),
        "managed_done": float(managed.report.workload_done),
    }
    coverage = 0.18 / unmanaged.report.emulated_seconds * 100
    note = (
        "MPARM coverage note: in the paper, two days of MPARM simulation "
        f"covered only the first 0.18 s of this run ({coverage:.1f}% of "
        f"our {unmanaged.report.emulated_seconds:.1f} s unmanaged "
        "emulated duration) — the 'left corner of Figure 6'."
    )
    body = "\n\n".join(
        [code_block(chart_a), code_block(chart_b), markdown_table(summary), note]
    )
    return values, body


@ARTIFACTS.register("fig6")
def fig6_artifact():
    unmanaged = PRESETS.get("matrix_tm_unmanaged")()
    managed = PRESETS.get("matrix_tm_dfs")()
    return Artifact(
        name="fig6",
        title="Figure 6 — temperature evolution with and without DFS",
        paper_ref="Figure 6, Section 7",
        description="Runs the MATRIX-TM-class stress presets (unmanaged "
        "and dual-threshold DFS) and checks the published shape: the "
        "unmanaged run overheats past the 350 K threshold, the managed "
        "run clamps inside the 340-350 K hysteresis band and pays with "
        "run time.",
        extract=_fig6_extract,
        scenarios=(unmanaged, managed),
        capture_trace=True,
        checks=(
            Check(
                "unmanaged_peak_k",
                low=360.0,
                note="sails past the 350 K threshold toward steady state",
            ),
            Check(
                "managed_peak_k",
                high=UPPER_K + 2.0,
                note="one sampling period of overshoot allowed",
            ),
            Check(
                "managed_late_min_k",
                low=LOWER_K - 2.0,
                note="oscillates inside the hysteresis band",
            ),
            Check("frequency_transitions", low=4.0),
            Check(
                "slowdown",
                low=1.2,
                note="DFS pays with run time: same work, longer duration",
            ),
            Check("unmanaged_done", expected=1.0),
            Check("managed_done", expected=1.0),
        ),
    )
