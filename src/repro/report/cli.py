"""``python -m repro report`` — run the paper-reproduction pipeline.

Usage::

    python -m repro report                      # full REPRODUCTION.md + JSON
    python -m repro report --artifact table1    # a subset (repeatable)
    python -m repro report --check              # verdicts only, exit 1 on fail
    python -m repro report --list               # registered artifacts
    python -m repro report --output build/      # write elsewhere

``--check`` is the CI regression gate on the paper's numbers: it runs
the selected artifacts, prints one verdict line each, and exits nonzero
when any extracted value leaves its tolerance.
"""

import argparse
import sys

from repro.report.artifacts import ARTIFACTS
from repro.report.pipeline import (
    default_artifact_names,
    render_verdicts,
    run_artifacts,
    write_report,
)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Reproduce the paper's tables and figures as one "
        "verified Markdown report.",
    )
    parser.add_argument(
        "--artifact", action="append", metavar="NAME",
        help="run only this artifact (repeatable; default: all)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="print verdicts only (no report files); exit 1 on any "
        "failed check",
    )
    parser.add_argument(
        "--output", default=".", metavar="DIR",
        help="directory for REPRODUCTION.md and reproduction.json "
        "(default: current directory)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_artifacts",
        help="list registered artifacts and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    args = parser.parse_args(argv)

    if args.list_artifacts:
        for name in default_artifact_names():
            artifact = ARTIFACTS.get(name)()
            print(f"{name:10s} {artifact.title} [{artifact.paper_ref}]")
        return 0

    names = args.artifact or None
    if names:
        unknown = [n for n in names if n not in ARTIFACTS]
        if unknown:
            print(
                f"error: unknown artifact(s) {', '.join(unknown)} "
                f"(available: {', '.join(ARTIFACTS.names())})",
                file=sys.stderr,
            )
            return 2

    progress = None if args.quiet else (lambda line: print(line, flush=True))
    results = run_artifacts(names=names, progress=progress)

    if args.check:
        print(render_verdicts(results))
        return 0 if all(r.ok for r in results) else 1

    markdown_path, json_path = write_report(results, output_dir=args.output)
    print(render_verdicts(results))
    print(f"wrote {markdown_path} and {json_path}")
    return 0 if all(r.ok for r in results) else 1


if __name__ == "__main__":
    sys.exit(main())
