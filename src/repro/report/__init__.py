"""The one-command paper-reproduction report pipeline.

Every headline artifact of the paper — Table 1 (power library), Table 2
(thermal properties), Table 3 (timing), Figure 3 (RC-model scaling) and
Figure 6 (thermal runtime with/without DFS) — is a named
:class:`~repro.report.artifacts.Artifact`: scenarios from
:mod:`repro.scenario` plus an extractor and tolerance checks against the
published numbers.  ``python -m repro report`` runs them through
:class:`~repro.scenario.runner.Runner` (the Figure 3 sweep through
:meth:`~repro.scenario.runner.Runner.run_batched`) and renders one
self-contained ``REPRODUCTION.md`` with a machine-readable
``reproduction.json`` alongside; ``--check`` is the CI regression gate.
"""

from repro.report.artifacts import (
    ARTIFACTS,
    Artifact,
    ArtifactResult,
    Check,
    CheckResult,
)
from repro.report.pipeline import (
    default_artifact_names,
    render_markdown,
    render_verdicts,
    run_artifacts,
    to_json,
    write_report,
)

__all__ = [
    "ARTIFACTS",
    "Artifact",
    "ArtifactResult",
    "Check",
    "CheckResult",
    "default_artifact_names",
    "render_markdown",
    "render_verdicts",
    "run_artifacts",
    "to_json",
    "write_report",
]
