"""Markdown rendering helpers for the reproduction report.

The benches and the report pipeline share :class:`repro.util.records.Table`
as their tabular currency; this module converts those tables (and ASCII
charts, and pass/fail verdicts) into the GitHub-flavoured Markdown that
``REPRODUCTION.md`` is written in.
"""

from repro.util.records import Table

PASS = "PASS"
FAIL = "FAIL"


def verdict(ok):
    """The report's uniform pass/fail marker."""
    return PASS if ok else FAIL


def markdown_table(table):
    """Render a :class:`~repro.util.records.Table` as GitHub Markdown.

    The title becomes an emphasized caption line above the table; pipe
    characters inside cells are escaped so they cannot break columns.
    """
    if not isinstance(table, Table):
        raise TypeError(f"expected a records.Table, got {type(table).__name__}")

    def row(cells):
        return "| " + " | ".join(c.replace("|", "\\|") for c in cells) + " |"

    lines = []
    if table.title:
        lines.append(f"*{table.title}*")
        lines.append("")
    lines.append(row(table.headers))
    lines.append("|" + "|".join(" --- " for _ in table.headers) + "|")
    for cells in table.rows:
        lines.append(row(cells))
    return "\n".join(lines)


def code_block(text, lang=""):
    """Fence preformatted text (ASCII charts, raw tables) for Markdown."""
    return f"```{lang}\n{text.rstrip()}\n```"


def heading(level, text):
    return f"{'#' * level} {text}"


def check_table(check_results):
    """The per-artifact check ledger as a Markdown table."""
    table = Table(["check", "value", "expectation", "verdict"])
    for result in check_results:
        table.add_row(
            result.metric,
            result.formatted_value(),
            result.expectation,
            verdict(result.passed),
        )
    return markdown_table(table)
