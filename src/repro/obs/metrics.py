"""Dependency-free metrics primitives: counters, gauges, histograms.

The paper's system *is* a monitoring loop — hardware sensors streamed to
a software layer every sampling window — and :mod:`repro.obs` gives the
reproduction the same self-observation: every layer (solver backends,
the trace store, the runner, the farm) records what it did into a
:class:`MetricsRegistry`, and exporters render one snapshot either as
Prometheus text exposition (the farm service's ``GET /metrics``) or as
JSON (``python -m repro obs metrics``).

Design points, all deliberately boring:

* **Process-wide default registry** (:data:`REGISTRY`) plus injectable
  instances — library code records into the default registry; tests and
  embedders pass their own.
* **Labels** — a family (``repro_runner_scenarios_total``) fans out into
  series per label-value combination (``{mode="replayed"}``).  Series
  creation is capped (``max_series_per_family``) so an unbounded label
  value (a job id, say) cannot grow the registry without bound.
* **Stdlib only** — no client library; the text exposition follows the
  Prometheus format (``# HELP`` / ``# TYPE`` headers, escaped label
  values, cumulative ``_bucket{le=...}`` histograms).

Recording is cheap (a dict lookup and a float add) and always on for
the cold paths that use it; the *hot* per-window paths are instrumented
through :mod:`repro.obs.tracing` instead, which is a no-op until a
tracer is installed — see ``docs/observability.md`` for the overhead
budget and ``benchmarks/bench_obs_overhead.py`` for the gate.
"""

import json
import math
import re
import threading

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: wall-clock seconds from sub-millisecond
#: solver steps up to minute-scale farm jobs.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class MetricError(ValueError):
    """A metric was declared or used inconsistently."""


def escape_help(text):
    """Escape a HELP line per the Prometheus text format."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def escape_label_value(value):
    """Escape a label value per the Prometheus text format."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _format_value(value):
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def _labels_text(names, values, extra=()):
    pairs = [
        f'{name}="{escape_label_value(value)}"'
        for name, value in list(zip(names, values)) + list(extra)
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


# -- series ----------------------------------------------------------------


class CounterSeries:
    """One monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise MetricError(f"counters only go up, got inc({amount})")
        self.value += amount


class GaugeSeries:
    """One settable value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = float(value)

    def inc(self, amount=1.0):
        self.value += amount

    def dec(self, amount=1.0):
        self.value -= amount


class HistogramSeries:
    """Cumulative-bucket histogram of observed values."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # trailing +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self):
        """``[(upper_bound, cumulative_count)]`` including ``+Inf``."""
        total, rows = 0, []
        for bound, count in zip(
            list(self.buckets) + [math.inf], self.counts
        ):
            total += count
            rows.append((bound, total))
        return rows


# -- families --------------------------------------------------------------


class MetricFamily:
    """One named metric, fanned out into series by label values."""

    kind = None

    def __init__(self, name, help_text, label_names, max_series,
                 make_series):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise MetricError(
                    f"invalid label name {label!r} on metric {name!r}"
                )
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self.max_series = max_series
        self._make_series = make_series
        self._series = {}
        self._lock = threading.Lock()

    def labels(self, **labels):
        """The series for one label-value combination (created on first
        use, capped at ``max_series`` distinct combinations)."""
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"metric {self.name!r} takes labels "
                f"{list(self.label_names)}, got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.get(key)
                if series is None:
                    if len(self._series) >= self.max_series:
                        raise MetricError(
                            f"metric {self.name!r} exceeded its series "
                            f"cap ({self.max_series}); a label is "
                            f"carrying unbounded values"
                        )
                    series = self._make_series()
                    self._series[key] = series
        return series

    @property
    def _default(self):
        if self.label_names:
            raise MetricError(
                f"metric {self.name!r} is labeled "
                f"{list(self.label_names)}; address a series via "
                f".labels(...)"
            )
        return self.labels()

    def series(self):
        """``[(label_values, series)]`` sorted by label values."""
        return sorted(self._series.items())

    def clear(self):
        with self._lock:
            self._series.clear()


class Counter(MetricFamily):
    kind = "counter"

    def __init__(self, name, help_text, label_names, max_series):
        super().__init__(
            name, help_text, label_names, max_series, CounterSeries
        )

    def inc(self, amount=1.0):
        self._default.inc(amount)

    @property
    def value(self):
        return sum(s.value for s in self._series.values())


class Gauge(MetricFamily):
    kind = "gauge"

    def __init__(self, name, help_text, label_names, max_series):
        super().__init__(
            name, help_text, label_names, max_series, GaugeSeries
        )

    def set(self, value):
        self._default.set(value)

    def inc(self, amount=1.0):
        self._default.inc(amount)

    def dec(self, amount=1.0):
        self._default.dec(amount)

    @property
    def value(self):
        return self._default.value


class Histogram(MetricFamily):
    kind = "histogram"

    def __init__(self, name, help_text, label_names, max_series,
                 buckets=None):
        buckets = tuple(buckets if buckets is not None else DEFAULT_BUCKETS)
        if not buckets or any(
            b2 <= b1 for b1, b2 in zip(buckets, buckets[1:])
        ):
            raise MetricError(
                f"histogram {name!r} buckets must be strictly "
                f"increasing and non-empty, got {buckets}"
            )
        self.buckets = buckets
        super().__init__(
            name, help_text, label_names, max_series,
            lambda: HistogramSeries(buckets),
        )

    def observe(self, value):
        self._default.observe(value)


# -- registry --------------------------------------------------------------


class MetricsRegistry:
    """A named set of metric families with Prometheus/JSON exporters.

    Families are created idempotently: asking twice for the same name
    returns the same family, asking with a conflicting kind or label
    set raises.  ``max_series_per_family`` caps label cardinality.
    """

    def __init__(self, max_series_per_family=256):
        self.max_series_per_family = max_series_per_family
        self._families = {}
        self._lock = threading.Lock()

    # -- declaration -------------------------------------------------------
    def _family(self, cls, name, help_text, labels, **kwargs):
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = cls(
                        name, help_text, tuple(labels),
                        self.max_series_per_family, **kwargs
                    )
                    self._families[name] = family
                    return family
        if family.kind != cls.kind:
            raise MetricError(
                f"metric {name!r} is a {family.kind}, not a {cls.kind}"
            )
        if family.label_names != tuple(labels):
            raise MetricError(
                f"metric {name!r} is labeled {list(family.label_names)}, "
                f"not {list(labels)}"
            )
        return family

    def counter(self, name, help_text="", labels=()):
        return self._family(Counter, name, help_text, labels)

    def gauge(self, name, help_text="", labels=()):
        return self._family(Gauge, name, help_text, labels)

    def histogram(self, name, help_text="", labels=(), buckets=None):
        return self._family(
            Histogram, name, help_text, labels, buckets=buckets
        )

    # -- inspection --------------------------------------------------------
    def families(self):
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name):
        return self._families.get(name)

    def reset(self):
        """Zero every series (families and their declarations stay)."""
        for family in self._families.values():
            family.clear()

    # -- exporters ---------------------------------------------------------
    def render_prometheus(self):
        """The registry as Prometheus text exposition format."""
        lines = []
        for family in self.families():
            if family.help:
                lines.append(
                    f"# HELP {family.name} {escape_help(family.help)}"
                )
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, series in family.series():
                if family.kind == "histogram":
                    for bound, count in series.cumulative():
                        le = "+Inf" if bound == math.inf else f"{bound:g}"
                        labels = _labels_text(
                            family.label_names, values, [("le", le)]
                        )
                        lines.append(
                            f"{family.name}_bucket{labels} {count}"
                        )
                    labels = _labels_text(family.label_names, values)
                    lines.append(
                        f"{family.name}_sum{labels} "
                        f"{_format_value(series.sum)}"
                    )
                    lines.append(f"{family.name}_count{labels} {series.count}")
                else:
                    labels = _labels_text(family.label_names, values)
                    lines.append(
                        f"{family.name}{labels} "
                        f"{_format_value(series.value)}"
                    )
        return "\n".join(lines) + "\n"

    def to_json(self):
        """The registry as a JSON-compatible snapshot dict."""
        out = {}
        for family in self.families():
            rows = []
            for values, series in family.series():
                row = {"labels": dict(zip(family.label_names, values))}
                if family.kind == "histogram":
                    row["sum"] = series.sum
                    row["count"] = series.count
                    row["buckets"] = [
                        ["+Inf" if b == math.inf else b, c]
                        for b, c in series.cumulative()
                    ]
                else:
                    row["value"] = series.value
                rows.append(row)
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "series": rows,
            }
        return out

    def dump_json(self):
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"


#: The process-wide default registry library code records into.
REGISTRY = MetricsRegistry()


def default_registry():
    return REGISTRY
