"""The canonical catalog of metric and span names.

Every metric the instrumentation records and every span name the
tracers emit is registered here — and *only* here — so the
``registry-coverage`` lint rule can statically require each name to be
documented (``docs/observability.md``) and exercised by a test module
(``tests/obs/test_catalog.py``).  Instrumentation sites declare their
families through the :func:`counter` / :func:`gauge` / :func:`histogram`
helpers below, which reject uncataloged names, so catalog and call
sites cannot drift.

The registered value is the human-readable help/description string;
metric declarations (kind, labels, buckets) live with the helpers at
the bottom, which declare lazily into a target registry so injectable
registries get the same families as the process-wide default.
"""

from repro.util.registry import Registry

OBS_METRICS: Registry[str] = Registry("obs metric")
OBS_SPANS: Registry[str] = Registry("obs span")

# -- metric names ----------------------------------------------------------
# Framework / run loop
OBS_METRICS.register(
    "repro_run_windows_total",
    "Sampling windows executed across all runs in this process",
)
OBS_METRICS.register(
    "repro_run_phase_seconds_total",
    "Wall seconds spent per run phase (label: phase)",
)
# Thermal solver backends
OBS_METRICS.register(
    "repro_solver_factorizations_total",
    "Matrix factorizations performed (label: backend)",
)
OBS_METRICS.register(
    "repro_solver_solves_total",
    "Backward-Euler solves performed (label: backend)",
)
OBS_METRICS.register(
    "repro_solver_reuses_total",
    "Solves that reused a cached factorization (label: backend)",
)
# Windowed-emulation calibration cache
OBS_METRICS.register(
    "repro_emulation_calibration_hits_total",
    "Windowed-backend calibration cache hits",
)
OBS_METRICS.register(
    "repro_emulation_calibration_misses_total",
    "Windowed-backend calibration cache misses (full measurements)",
)
# Trace store
OBS_METRICS.register(
    "repro_store_hits_total",
    "TraceStore lookups that found a recorded trace",
)
OBS_METRICS.register(
    "repro_store_misses_total",
    "TraceStore lookups that found nothing",
)
OBS_METRICS.register(
    "repro_store_puts_total",
    "Trace archives written into the TraceStore",
)
# Runner
OBS_METRICS.register(
    "repro_runner_scenarios_total",
    "Scenarios executed (label: mode = emulated|replayed|failed)",
)
OBS_METRICS.register(
    "repro_runner_batches_total",
    "Runner batches executed",
)
OBS_METRICS.register(
    "repro_runner_batch_size",
    "Scenarios per runner batch (histogram)",
)
OBS_METRICS.register(
    "repro_runner_worker_utilization_ratio",
    "Sum of per-scenario wall over workers x batch wall, last batch",
)
# Farm: in-process queue counters
OBS_METRICS.register(
    "repro_farm_claims_total",
    "Queue claim attempts (label: outcome = job|empty)",
)
OBS_METRICS.register(
    "repro_farm_claim_latency_seconds",
    "Submit-to-claim latency of claimed jobs (histogram)",
)
OBS_METRICS.register(
    "repro_farm_retries_total",
    "Failed jobs re-queued for another attempt",
)
OBS_METRICS.register(
    "repro_farm_requeues_total",
    "Running jobs re-queued after a heartbeat timeout",
)
# Farm: scrape-time gauges refreshed from the on-disk queue
OBS_METRICS.register(
    "repro_farm_jobs",
    "Jobs currently in each queue state (label: state)",
)
OBS_METRICS.register(
    "repro_farm_queue_depth",
    "Jobs waiting to be claimed (submitted and eligible)",
)
OBS_METRICS.register(
    "repro_farm_workers",
    "Workers in the registry",
)
OBS_METRICS.register(
    "repro_farm_worker_heartbeat_age_seconds",
    "Seconds since each worker's last heartbeat (label: worker)",
)
OBS_METRICS.register(
    "repro_farm_job_attempts",
    "Finished attempts (completions + failures) summed over all jobs",
)
OBS_METRICS.register(
    "repro_farm_store_hit_ratio",
    "Fraction of done jobs that replayed a stored trace",
)
OBS_METRICS.register(
    "repro_farm_replayed_jobs",
    "Done jobs that replayed a stored trace",
)
OBS_METRICS.register(
    "repro_farm_emulated_jobs",
    "Done jobs that ran a fresh emulation",
)

# -- span names ------------------------------------------------------------
OBS_SPANS.register(
    "run",
    "One EmulationFramework.run(): the full window loop",
)
OBS_SPANS.register(
    "window.emulate",
    "Per-window functional emulation (instruction/event stream)",
)
OBS_SPANS.register(
    "window.power",
    "Per-window activity-to-power conversion",
)
OBS_SPANS.register(
    "window.dispatch",
    "Per-window statistics dispatch (Ethernet/BRAM model)",
)
OBS_SPANS.register(
    "window.solve",
    "Per-window backward-Euler thermal solve",
)
OBS_SPANS.register(
    "window.other",
    "Per-window residual: sensors, policy feedback, bookkeeping",
)
OBS_SPANS.register(
    "runner.batch",
    "One Runner.run() or run_batched() invocation",
)
OBS_SPANS.register(
    "runner.scenario",
    "One scenario inside a runner batch",
)
OBS_SPANS.register(
    "farm.job",
    "One farm job: claim-to-report on a FarmWorker",
)
OBS_SPANS.register(
    "emulation.calibrate",
    "Windowed-backend calibration measurement (cache miss)",
)


def metric_names():
    return OBS_METRICS.names()


def span_names():
    return OBS_SPANS.names()


def describe(name):
    """Help text for a cataloged metric or span name."""
    registry = OBS_METRICS if name in OBS_METRICS else OBS_SPANS
    return registry.get(name)


# -- catalog-backed declaration helpers ------------------------------------
# Instrumentation sites declare through these so (a) the name must be
# cataloged (unknown names raise) and (b) the Prometheus HELP line is
# the catalog description, keeping exposition and docs identical.


def _target(registry):
    from repro.obs import metrics

    return registry if registry is not None else metrics.REGISTRY


def counter(name, labels=(), registry=None):
    return _target(registry).counter(name, OBS_METRICS.get(name), labels)


def gauge(name, labels=(), registry=None):
    return _target(registry).gauge(name, OBS_METRICS.get(name), labels)


def histogram(name, labels=(), buckets=None, registry=None):
    return _target(registry).histogram(
        name, OBS_METRICS.get(name), labels, buckets=buckets
    )
