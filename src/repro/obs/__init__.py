"""repro.obs — unified metrics, tracing, and profiling layer.

Three pieces, all stdlib-only:

* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram families with
  labels, a process-wide default :data:`~repro.obs.metrics.REGISTRY`,
  and Prometheus-text / JSON exporters.
* :mod:`repro.obs.tracing` — ``span(name, **attrs)`` context manager
  producing a JSONL event log; off by default (the hot paths check
  :func:`~repro.obs.tracing.current` and skip all work when no tracer
  is active).
* :mod:`repro.obs.timeline` — :class:`~repro.obs.timeline.RunTimeline`
  folds a span log into the per-phase summary that backs
  ``RunReport.extras["timing"]``, the ``obs timeline`` CLI, and the
  ``obs_overview`` report artifact.

:mod:`repro.obs.catalog` is the single source of truth for metric and
span names; the ``registry-coverage`` lint rule holds every cataloged
name to the same tested-and-documented bar as workloads and solver
backends.  See ``docs/observability.md``.
"""

from repro.obs.catalog import OBS_METRICS, OBS_SPANS, metric_names, span_names
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    REGISTRY,
    default_registry,
)
from repro.obs.timeline import RunTimeline
from repro.obs.tracing import SpanTracer, activate, current, trace_to

__all__ = [
    "OBS_METRICS",
    "OBS_SPANS",
    "metric_names",
    "span_names",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "REGISTRY",
    "default_registry",
    "RunTimeline",
    "SpanTracer",
    "activate",
    "current",
    "trace_to",
]
