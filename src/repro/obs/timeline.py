"""Fold a span event log into a per-run, per-phase timeline summary.

:class:`RunTimeline` is the bridge between the raw JSONL span log and
everything that consumes per-phase timing: ``RunReport.extras["timing"]``
(back-filled via :meth:`RunTimeline.to_timing`), the ``python -m repro
obs timeline`` CLI (:meth:`render`), and the ``obs_overview`` report
artifact (:meth:`phase_shares`).

The :meth:`digest` covers only the *structure* of the run — sorted
``(name, count)`` pairs — never the timings, so two runs of the same
scenario produce the same digest even though their wall clocks differ.
That makes the summary safe to use in content-addressed contexts (the
JSONL round-trip test relies on it).
"""

import hashlib
import json

from repro.obs import tracing

#: Spans whose names start with this prefix are run phases; the suffix
#: is the phase key used in ``extras["timing"]``.
PHASE_PREFIX = "window."

#: Canonical phase ordering for rendering and timing dicts.
PHASE_ORDER = ("emulate", "power", "dispatch", "solve", "other")


class RunTimeline:
    """Aggregated per-name span statistics for one run."""

    def __init__(self, events):
        self.events = list(events)
        self.by_name = {}
        for event in self.events:
            stats = self.by_name.setdefault(
                event["name"],
                {"count": 0, "wall_s": 0.0, "cpu_s": 0.0},
            )
            stats["count"] += 1
            stats["wall_s"] += event.get("wall_s", 0.0)
            stats["cpu_s"] += event.get("cpu_s", 0.0)

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_events(cls, events):
        return cls(events)

    @classmethod
    def from_jsonl(cls, source):
        """Build from a JSONL span log (path, file-like, or text)."""
        return cls(tracing.read_jsonl(source))

    @classmethod
    def from_timing(cls, timing, windows=0):
        """Back-fill a timeline from a legacy ``extras["timing"]`` dict."""
        events = []
        for phase in PHASE_ORDER:
            if phase in timing:
                events.append({
                    "name": PHASE_PREFIX + phase,
                    "span_id": len(events) + 1,
                    "parent_id": None,
                    "start_s": 0.0,
                    "wall_s": float(timing[phase]),
                    "cpu_s": 0.0,
                    "attrs": {"windows": windows},
                })
        return cls(events)

    # -- views -------------------------------------------------------------
    def phases(self):
        """``{phase: wall_s}`` for the ``window.*`` spans, in order."""
        out = {}
        for phase in PHASE_ORDER:
            stats = self.by_name.get(PHASE_PREFIX + phase)
            if stats is not None:
                out[phase] = stats["wall_s"]
        for name, stats in sorted(self.by_name.items()):
            phase = name[len(PHASE_PREFIX):]
            if name.startswith(PHASE_PREFIX) and phase not in out:
                out[phase] = stats["wall_s"]
        return out

    def to_timing(self):
        """The timeline as an ``extras["timing"]``-shaped dict."""
        return self.phases()

    def total_wall_s(self):
        """Total wall time across phases (falls back to the ``run``
        span when no per-phase spans were recorded)."""
        phases = self.phases()
        if phases:
            return sum(phases.values())
        run = self.by_name.get("run")
        return run["wall_s"] if run else 0.0

    def phase_shares(self):
        """``{phase: fraction_of_total}``; empty when total is zero."""
        phases = self.phases()
        total = sum(phases.values())
        if total <= 0:
            return {}
        return {phase: wall / total for phase, wall in phases.items()}

    def digest(self):
        """SHA-256 over sorted ``(name, count)`` pairs.

        Timing-free on purpose: the digest identifies the *structure*
        of a run, which is deterministic, not its wall clocks, which
        are not.
        """
        payload = json.dumps(
            sorted(
                (name, stats["count"])
                for name, stats in self.by_name.items()
            ),
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def summary(self):
        """Compact JSON-safe summary (stamped into ``extras``)."""
        return {
            "digest": self.digest(),
            "events": len(self.events),
            "spans": {
                name: {
                    "count": stats["count"],
                    "wall_s": round(stats["wall_s"], 9),
                    "cpu_s": round(stats["cpu_s"], 9),
                }
                for name, stats in sorted(self.by_name.items())
            },
        }

    def render(self, width=40):
        """ASCII per-phase breakdown for the ``obs timeline`` CLI."""
        phases = self.phases()
        total = sum(phases.values())
        lines = ["phase      share   wall_s     count"]
        for phase, wall in phases.items():
            share = wall / total if total > 0 else 0.0
            bar = "#" * max(1, round(share * width)) if wall > 0 else ""
            count = self.by_name[PHASE_PREFIX + phase]["count"]
            lines.append(
                f"{phase:10s} {share:6.1%} {wall:9.4f} {count:9d} {bar}"
            )
        lines.append(f"{'total':10s} {'':6s} {total:9.4f}")
        extra = [
            name for name in sorted(self.by_name)
            if not name.startswith(PHASE_PREFIX)
        ]
        if extra:
            lines.append("")
            lines.append("other spans: " + ", ".join(
                f"{name} x{self.by_name[name]['count']}" for name in extra
            ))
        return "\n".join(lines)
