"""``python -m repro obs`` — inspect span logs and metric snapshots.

Subcommands:

* ``obs timeline LOG.jsonl`` — fold a recorded JSONL span log (from
  ``python -m repro run --obs-log``) into a per-phase breakdown;
  ``--json`` emits the machine-readable summary instead.
* ``obs metrics`` — print the current process-wide registry snapshot
  (mostly useful under ``--json``/``--prometheus`` from embedding
  code), or scrape a farm service with ``--url http://host:port`` and
  print its Prometheus text.
* ``obs catalog`` — list every cataloged metric and span name with its
  description.
"""

import argparse
import json
import sys
import urllib.request

from repro.obs import catalog, metrics
from repro.obs.timeline import RunTimeline


def _timeline(args):
    timeline = RunTimeline.from_jsonl(args.log)
    if args.json:
        print(json.dumps(timeline.summary(), indent=2, sort_keys=True))
    else:
        print(timeline.render())
    return 0


def _metrics(args):
    if args.url:
        url = args.url.rstrip("/") + "/metrics"
        with urllib.request.urlopen(url, timeout=10) as response:
            sys.stdout.write(response.read().decode("utf-8"))
        return 0
    registry = metrics.REGISTRY
    if args.prometheus:
        sys.stdout.write(registry.render_prometheus())
    else:
        sys.stdout.write(registry.dump_json())
    return 0


def _catalog(args):
    rows = [("metric", name) for name in catalog.metric_names()]
    rows += [("span", name) for name in catalog.span_names()]
    if args.json:
        print(json.dumps(
            {
                "metrics": {
                    name: catalog.describe(name)
                    for name in catalog.metric_names()
                },
                "spans": {
                    name: catalog.describe(name)
                    for name in catalog.span_names()
                },
            },
            indent=2, sort_keys=True,
        ))
        return 0
    width = max(len(name) for _, name in rows)
    for kind, name in rows:
        print(f"{kind:6s} {name:{width}s}  {catalog.describe(name)}")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="inspect observability data (span logs, metrics)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    timeline = sub.add_parser(
        "timeline", help="render a per-phase breakdown from a span log"
    )
    timeline.add_argument("log", help="JSONL span log path")
    timeline.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable summary",
    )
    timeline.set_defaults(func=_timeline)

    metrics_cmd = sub.add_parser(
        "metrics", help="print a metrics snapshot"
    )
    metrics_cmd.add_argument(
        "--url", help="scrape a farm service instead (GET <url>/metrics)"
    )
    metrics_cmd.add_argument(
        "--prometheus", action="store_true",
        help="Prometheus text instead of JSON",
    )
    metrics_cmd.set_defaults(func=_metrics)

    catalog_cmd = sub.add_parser(
        "catalog", help="list cataloged metric and span names"
    )
    catalog_cmd.add_argument("--json", action="store_true")
    catalog_cmd.set_defaults(func=_catalog)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
