"""Span-based tracing: nested timed regions logged as JSONL events.

A :class:`SpanTracer` records *spans* — named regions with wall and CPU
time, nesting (span id / parent id), and free-form attributes — into an
in-memory event list and optionally a JSONL sink (one JSON object per
finished span).  :class:`~repro.obs.timeline.RunTimeline` folds the
events back into a per-phase summary.

Tracing is **off by default**: the hot paths check the module-level
:data:`ACTIVE` tracer and skip all work when it is ``None``, so a run
without tracing pays only a global read and an ``is None`` branch per
window (gated to <1% by ``benchmarks/bench_obs_overhead.py``).  Install
a tracer for a region with :func:`activate`, or :func:`trace_to` to
also stream the JSONL log to a path.

Tracers are not fork-safe by design: each records the pid it was
created in and turns into a no-op in child processes, so a tracer
captured by a multiprocessing pool cannot interleave half-updated
state — workers that want spans create their own tracer (the farm
worker does exactly this).
"""

import contextlib
import io
import json
import os
import time

_EPOCH = time.perf_counter()


class Span:
    """One open region; finished via the ``span()`` context manager."""

    __slots__ = (
        "name", "span_id", "parent_id", "attrs",
        "_wall0", "_cpu0", "start_s",
    )

    def __init__(self, name, span_id, parent_id, attrs):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_s = time.perf_counter() - _EPOCH
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()

    def set(self, **attrs):
        """Attach attributes to the span before it closes."""
        self.attrs.update(attrs)


class SpanTracer:
    """Collects span events; optionally streams them as JSONL.

    ``sink`` may be ``None`` (in-memory only), a path, or a file-like
    object opened for text writing.  Finished spans land in ``events``
    (dicts, oldest first) regardless of sink.
    """

    def __init__(self, sink=None):
        self.events = []
        self._stack = []
        self._next_id = 1
        self._pid = os.getpid()
        self._owns_sink = False
        if sink is None or hasattr(sink, "write"):
            self._sink = sink
        else:
            # Truncate: a path names *this* tracer's log.  Pass an
            # already-open file object to append across tracers.
            self._sink = open(sink, "w", encoding="utf-8")
            self._owns_sink = True

    # -- lifecycle ---------------------------------------------------------
    def close(self):
        if self._owns_sink and self._sink is not None:
            self._sink.close()
            self._sink = None
            self._owns_sink = False

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- recording ---------------------------------------------------------
    @property
    def _foreign(self):
        # A tracer inherited across fork must not interleave with the
        # parent's stack or sink; children record nothing.
        return os.getpid() != self._pid

    @contextlib.contextmanager
    def span(self, name, **attrs):
        """Time a nested region; yields the open :class:`Span`."""
        if self._foreign:
            yield Span(name, 0, None, attrs)
            return
        span = Span(
            name, self._next_id,
            self._stack[-1].span_id if self._stack else None, attrs,
        )
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        finally:
            wall_s = time.perf_counter() - span._wall0
            cpu_s = time.process_time() - span._cpu0
            self._stack.pop()
            self._record(span, wall_s, cpu_s)

    def emit(self, name, wall_s, cpu_s=0.0, **attrs):
        """Record a pre-measured leaf event (no nesting of its own)."""
        if self._foreign:
            return
        span = Span(
            name, self._next_id,
            self._stack[-1].span_id if self._stack else None, attrs,
        )
        self._next_id += 1
        span.start_s -= wall_s
        self._record(span, wall_s, cpu_s)

    def _record(self, span, wall_s, cpu_s):
        event = {
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "start_s": round(span.start_s, 9),
            "wall_s": round(wall_s, 9),
            "cpu_s": round(cpu_s, 9),
        }
        if span.attrs:
            event["attrs"] = span.attrs
        self.events.append(event)
        if self._sink is not None:
            self._sink.write(json.dumps(event, sort_keys=True) + "\n")
            self._sink.flush()


#: The process-wide active tracer the hot paths consult; ``None`` means
#: tracing is off and instrumented code skips all span work.
ACTIVE = None


def current():
    """The active tracer, or ``None`` when tracing is off."""
    return ACTIVE


@contextlib.contextmanager
def activate(tracer):
    """Install ``tracer`` as the process-wide active tracer."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = tracer
    try:
        yield tracer
    finally:
        ACTIVE = previous


@contextlib.contextmanager
def trace_to(path):
    """Activate a fresh tracer streaming JSONL events to ``path``."""
    with SpanTracer(sink=path) as tracer:
        with activate(tracer):
            yield tracer


def read_jsonl(source):
    """Parse a JSONL span log (path, file-like, or text) into events."""
    if hasattr(source, "read"):
        text = source.read()
    elif isinstance(source, str) and "\n" not in source and os.path.exists(
        source
    ):
        with open(source, encoding="utf-8") as handle:
            text = handle.read()
    elif isinstance(source, (str, bytes)):
        text = source if isinstance(source, str) else source.decode("utf-8")
    else:
        text = io.TextIOWrapper(source).read()
    events = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events
