"""Pareto-dominance pruning over design-point metric rows.

A metric row is a plain dict carrying at least the objective keys.  The
default objectives are the DSE report's three axes: peak die
temperature and average platform power are minimized, workload
throughput is maximized.
"""

#: (key, sense) objective table; sense is ``"min"`` or ``"max"``.
OBJECTIVES = (
    ("peak_temperature_k", "min"),
    ("avg_power_w", "min"),
    ("throughput_ips", "max"),
)


def dominates(a, b, objectives=OBJECTIVES):
    """True when row ``a`` Pareto-dominates row ``b``.

    ``a`` dominates ``b`` when it is at least as good on every
    objective and strictly better on at least one; ties on every
    objective dominate in neither direction.
    """
    strictly_better = False
    for key, sense in objectives:
        av, bv = a[key], b[key]
        if sense == "min":
            if av > bv:
                return False
            if av < bv:
                strictly_better = True
        elif sense == "max":
            if av < bv:
                return False
            if av > bv:
                strictly_better = True
        else:
            raise ValueError(f"objective sense must be 'min' or 'max', "
                             f"got {sense!r} for {key!r}")
    return strictly_better


def pareto_front(rows, objectives=OBJECTIVES):
    """Split ``rows`` into ``(front, dominated)``, preserving order.

    A row lands on the front iff no other row dominates it; rows with
    identical objective values all stay on the front (neither dominates
    the other).  O(n^2) with early exit — fine for the few-thousand-row
    spaces the DSE driver evaluates.
    """
    rows = list(rows)
    front, dominated = [], []
    for i, row in enumerate(rows):
        if any(
            dominates(other, row, objectives)
            for j, other in enumerate(rows)
            if j != i
        ):
            dominated.append(row)
        else:
            front.append(row)
    return front, dominated
