"""Design-space exploration over heterogeneous MPSoC platforms.

The paper's Section 7 ablations (core counts, interconnects, DFS
thresholds) are one-axis sweeps; this package turns them into a real
DSE loop: :mod:`repro.dse.space` generates thousands of heterogeneous
platform configurations (big/little core mixes x tech nodes x
operating points x thermal grids), :mod:`repro.dse.driver` evaluates
them through :meth:`repro.scenario.runner.Runner.run_batched` with
:class:`repro.trace.store.TraceStore` replay dedup, and
:mod:`repro.dse.pareto` prunes the metric rows (peak temperature vs
throughput vs power) to their Pareto front.  ``python -m repro dse``
is the command-line entry; the ``pareto_front`` report artifact
(:mod:`repro.report.artifacts`) runs a reduced space inside the
reproduction report.
"""

from repro.dse.driver import run_dse
from repro.dse.pareto import OBJECTIVES, dominates, pareto_front
from repro.dse.space import (
    DesignPoint,
    default_points,
    generate_points,
    point_scenario,
)

__all__ = [
    "OBJECTIVES",
    "DesignPoint",
    "default_points",
    "dominates",
    "generate_points",
    "pareto_front",
    "point_scenario",
    "run_dse",
]
