"""Heterogeneous design-space generation.

A :class:`DesignPoint` is one platform configuration on five axes:

* ``big`` — number of big cores (PowerPC405 hard cores, ARM11-class
  power rectangles on the floorplan);
* ``little`` — number of little cores (Microblaze soft cores,
  ARM7-class rectangles) fixed at 100 MHz;
* ``tech_node`` — a :data:`repro.power.models.TECH_NODES` name whose
  V(f) ladder scales dynamic power as ``f * V(f)^2``;
* ``big_hz`` — the big cluster's operating-point clock (also the
  platform/system clock);
* ``spreader_resolution`` — the thermal-grid fidelity axis.  Under the
  open-loop policy the grid is a thermal-side knob excluded from the
  scenario trace digest, so the finer-grid twin of every design point
  *replays* the coarse twin's recorded boundary stream instead of
  re-emulating — the Figure 3 record-once/replay-many pattern at DSE
  scale.

``point_scenario`` turns a point into a runnable declarative
:class:`~repro.scenario.spec.Scenario`: a profiled stress workload over
the generated platform, the parameterized ``"hetero"`` floorplan, and a
:class:`~repro.core.framework.FrameworkConfig` carrying the tech node.
"""

from dataclasses import dataclass

from repro.core.framework import FrameworkConfig
from repro.core.workload_model import ActivityProfile
from repro.mpsoc.platform import CoreConfig, MPSoCConfig
from repro.scenario.spec import Scenario
from repro.util.units import KB, MHZ

BIG_SPEC = "ppc405"
LITTLE_SPEC = "microblaze"
LITTLE_HZ = 100 * MHZ

DEFAULT_BIG_COUNTS = (1, 2, 3, 4)
DEFAULT_LITTLE_COUNTS = (0, 1, 2, 3, 4, 5)
DEFAULT_TECH_NODES = ("130nm", "90nm", "65nm")
DEFAULT_BIG_HZ = tuple(
    f * MHZ for f in (100, 150, 200, 250, 300, 400, 500)
)
DEFAULT_GRIDS = ((2, 2), (3, 3))


@dataclass(frozen=True)
class DesignPoint:
    """One heterogeneous platform configuration of the design space."""

    big: int
    little: int
    tech_node: str
    big_hz: float
    spreader_resolution: tuple = (3, 3)

    def __post_init__(self):
        if self.big < 1:
            raise ValueError(
                f"a design point needs at least one big core, got {self.big}"
            )
        if self.little < 0:
            raise ValueError(f"negative little-core count {self.little}")
        if self.big_hz <= 0:
            raise ValueError(f"big-cluster clock must be positive, "
                             f"got {self.big_hz}")
        object.__setattr__(
            self, "spreader_resolution", tuple(self.spreader_resolution)
        )

    @property
    def label(self):
        grid = "x".join(str(n) for n in self.spreader_resolution)
        return (
            f"dse_{self.big}b{self.little}l_{self.tech_node}_"
            f"{int(self.big_hz / MHZ)}MHz_g{grid}"
        )

    def to_dict(self):
        return {
            "big": self.big,
            "little": self.little,
            "tech_node": self.tech_node,
            "big_hz": self.big_hz,
            "spreader_resolution": list(self.spreader_resolution),
        }


def generate_points(
    big_counts=DEFAULT_BIG_COUNTS,
    little_counts=DEFAULT_LITTLE_COUNTS,
    tech_nodes=DEFAULT_TECH_NODES,
    big_hz_steps=DEFAULT_BIG_HZ,
    grids=DEFAULT_GRIDS,
):
    """Cross product of the five axes, grid axis innermost so each
    coarse-grid leader immediately precedes its fine-grid replayer."""
    return [
        DesignPoint(big, little, node, hz, grid)
        for big in big_counts
        for little in little_counts
        for node in tech_nodes
        for hz in big_hz_steps
        for grid in grids
    ]


def default_points():
    """The default space: 4 x 6 core mixes x 3 nodes x 7 operating
    points x 2 grids = 1008 configurations."""
    return generate_points()


def stress_profile(big, little):
    """A steady-state activity signature for a big/little platform.

    Big cores run hot (0.85), littles lighter (0.6); caches, private
    memories, the shared memory and the bus carry proportionate traffic.
    Iteration size is arbitrary (it cancels out of the utilizations) but
    instructions-per-iteration make throughput comparable across mixes.
    """
    utilization = {}
    for i in range(big + little):
        utilization[("core", i)] = 0.85 if i < big else 0.6
        utilization[("icache", i)] = 0.5
        utilization[("private_mem", i)] = 0.3
    utilization[("shared_mem", None)] = 0.25
    utilization[("bus", None)] = 0.3
    return ActivityProfile(
        name=f"dse_stress_{big}b{little}l",
        cycles_per_iteration=2000.0,
        utilization=utilization,
        instructions_per_iteration=1500.0 * (big + little),
    )


def point_scenario(point, max_windows=12, sampling_period_s=1e-4):
    """The declarative scenario evaluating one :class:`DesignPoint`."""
    cores = [
        CoreConfig(f"big{i}", spec=BIG_SPEC, frequency_hz=point.big_hz)
        for i in range(point.big)
    ]
    cores += [
        CoreConfig(f"lil{i}", spec=LITTLE_SPEC, frequency_hz=LITTLE_HZ)
        for i in range(point.little)
    ]
    platform = MPSoCConfig(
        name=(
            f"plat_{point.big}x{BIG_SPEC}_{point.little}x{LITTLE_SPEC}_"
            f"{int(point.big_hz / MHZ)}MHz"
        ),
        cores=cores,
        private_mem_size=4 * KB,
        shared_mem_size=16 * KB,
    )
    profile = stress_profile(point.big, point.little)
    return Scenario(
        name=point.label,
        workload={
            "name": "profiled",
            "params": {
                "profile": profile.to_dict(),
                # Far more iterations than max_windows can complete, so
                # every design point is measured at steady state and
                # throughput is progress-limited, not workload-limited.
                "total_iterations": 1_000_000,
            },
        },
        platform=platform,
        floorplan={
            "name": "hetero",
            "params": {"big": point.big, "little": point.little},
        },
        policy="none",
        config=FrameworkConfig(
            sampling_period_s=sampling_period_s,
            virtual_hz=point.big_hz,
            tech_node=point.tech_node,
            spreader_resolution=point.spreader_resolution,
        ),
        max_windows=max_windows,
        description=(
            f"{point.big} big {BIG_SPEC} @ {point.big_hz / MHZ:g} MHz + "
            f"{point.little} little {LITTLE_SPEC} @ {LITTLE_HZ / MHZ:g} MHz, "
            f"{point.tech_node}"
        ),
    )
