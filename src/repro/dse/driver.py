"""The DSE evaluation loop: sweep, measure, prune, refine.

``run_dse`` takes a list of :class:`~repro.dse.space.DesignPoint`
objects, evaluates every one through a single
:meth:`~repro.scenario.runner.Runner.run_batched` call (structure-
sharing groups co-step through shared multi-RHS thermal solves; the
trace store dedups the thermal-grid twins into replays), distills one
metric row per design, prunes the rows with
:func:`~repro.dse.pareto.pareto_front`, and finally re-runs the top
front designs through :func:`~repro.policy.comparison.compare_policies`
so the report shows how a reactive policy changes the winners.

The returned dict is plain JSON data — the ``pareto_front`` report
artifact and the ``python -m repro dse`` CLI both consume it.
"""

from repro.dse.pareto import OBJECTIVES, pareto_front
from repro.dse.space import default_points, point_scenario
from repro.policy.comparison import compare_policies
from repro.scenario.runner import Runner


def _mean_power_w(trace):
    """Mean per-window total platform power over a ThermalTrace."""
    if trace is None or not trace.samples:
        return float("nan")
    return sum(s.total_power_w for s in trace.samples) / len(trace.samples)


def metric_row(point, result):
    """One JSON-compatible metric row for a finished design point."""
    report = result.report
    emulated = report.emulated_seconds
    row = point.to_dict()
    row.update(
        design=point.label,
        peak_temperature_k=report.peak_temperature_k,
        avg_power_w=_mean_power_w(result.trace),
        throughput_ips=(report.instructions / emulated) if emulated > 0 else 0.0,
        replayed=result.replayed,
        windows=report.windows,
    )
    return row


def run_dse(
    points=None,
    max_windows=12,
    sampling_period_s=1e-4,
    refine_top=2,
    refine_policies=("none", "dual_threshold"),
    runner=None,
):
    """Evaluate a design space and return its Pareto report dict.

    ``points`` defaults to the full 1008-configuration space of
    :func:`repro.dse.space.default_points`.  ``refine_top`` front
    designs (highest throughput first) are re-run through
    :func:`compare_policies` with ``refine_policies``; pass 0 to skip
    the refinement stage.
    """
    if points is None:
        points = default_points()
    points = list(points)
    scenarios = [
        point_scenario(p, max_windows=max_windows,
                       sampling_period_s=sampling_period_s)
        for p in points
    ]
    if runner is None:
        # capture_trace feeds the power metric; the in-memory trace
        # store turns every thermal-grid twin into a replay.
        runner = Runner(capture_trace=True, trace_store=True)
    results = runner.run_batched(scenarios)

    rows, errors = [], {}
    for point, result in zip(points, results):
        if result.ok:
            rows.append(metric_row(point, result))
        else:
            errors[point.label] = result.error
    front, dominated = pareto_front(rows)

    refinement = {}
    by_throughput = sorted(
        front, key=lambda r: r["throughput_ips"], reverse=True
    )
    for row in by_throughput[: max(0, refine_top)]:
        point = points[[p.label for p in points].index(row["design"])]
        base = point_scenario(point, max_windows=max_windows,
                              sampling_period_s=sampling_period_s)
        comparison = compare_policies(base, list(refine_policies))
        refinement[row["design"]] = comparison.to_dict()

    return {
        "evaluated": len(rows),
        "failed": len(errors),
        "errors": errors,
        "replayed": sum(1 for r in rows if r["replayed"]),
        "objectives": [list(obj) for obj in OBJECTIVES],
        "front": front,
        "front_size": len(front),
        "dominated": len(dominated),
        "policy_refinement": refinement,
    }
