"""``python -m repro dse`` — heterogeneous design-space exploration.

Sweeps the big/little x tech-node x operating-point x thermal-grid
space through one batched run (with trace-store replay dedup), prunes
the metric rows to their Pareto front and prints it.  ``--check`` is
the CI gate: the full default space (>= 1000 configurations) must
evaluate cleanly, dedup its thermal-grid twins into replays, and
produce a non-empty front.
"""

import argparse
import json
import pathlib
import sys

from repro.dse.driver import run_dse
from repro.dse.space import (
    DEFAULT_BIG_COUNTS,
    DEFAULT_GRIDS,
    DEFAULT_LITTLE_COUNTS,
    DEFAULT_TECH_NODES,
    generate_points,
)
from repro.util.units import MHZ


def _front_lines(report, top):
    rows = sorted(
        report["front"], key=lambda r: r["throughput_ips"], reverse=True
    )
    lines = [
        f"{'design':42s} {'peak K':>8s} {'avg W':>8s} {'Ginstr/s':>9s}"
    ]
    for row in rows[:top]:
        lines.append(
            f"{row['design']:42s} {row['peak_temperature_k']:8.2f} "
            f"{row['avg_power_w']:8.3f} {row['throughput_ips'] / 1e9:9.3f}"
        )
    if len(rows) > top:
        lines.append(f"... {len(rows) - top} more front designs")
    return lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro dse",
        description="Sweep heterogeneous platform configurations and "
        "emit the Pareto front (peak temperature vs throughput vs power).",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI gate: full default space, assert >= 1000 configs, "
        "replay dedup and a non-empty front",
    )
    parser.add_argument(
        "--max-windows", type=int, default=12,
        help="sampling windows per design evaluation (default 12)",
    )
    parser.add_argument(
        "--nodes", nargs="+", default=None, metavar="NODE",
        help=f"tech nodes to sweep (default {' '.join(DEFAULT_TECH_NODES)})",
    )
    parser.add_argument(
        "--big-hz", nargs="+", type=float, default=None, metavar="MHZ",
        help="big-cluster operating points in MHz (default 7 steps, "
        "100..500)",
    )
    parser.add_argument(
        "--refine-top", type=int, default=2,
        help="front designs to re-run through compare_policies (default 2; "
        "0 skips)",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="front rows to print (default 10)",
    )
    parser.add_argument(
        "--out", metavar="PATH", help="write the full report JSON here"
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the full report JSON to stdout",
    )
    args = parser.parse_args(argv)

    kwargs = {}
    if args.nodes is not None:
        kwargs["tech_nodes"] = tuple(args.nodes)
    if args.big_hz is not None:
        kwargs["big_hz_steps"] = tuple(f * MHZ for f in args.big_hz)
    points = generate_points(**kwargs)

    report = run_dse(
        points,
        max_windows=args.max_windows,
        refine_top=args.refine_top,
    )

    if args.out:
        pathlib.Path(args.out).write_text(json.dumps(report, indent=2))
    if args.as_json:
        print(json.dumps(report, indent=2))
    else:
        print(
            f"evaluated {report['evaluated']} designs "
            f"({report['replayed']} replayed from recorded traces, "
            f"{report['failed']} failed): front {report['front_size']}, "
            f"dominated {report['dominated']}"
        )
        print("\n".join(_front_lines(report, args.top)))

    if args.check:
        mixes = len(DEFAULT_BIG_COUNTS) * len(DEFAULT_LITTLE_COUNTS)
        failures = []
        if len(points) < 1000:
            failures.append(f"space has {len(points)} configs, need >= 1000")
        if report["failed"]:
            failures.append(f"{report['failed']} designs failed: "
                            f"{report['errors']}")
        if not report["front"]:
            failures.append("empty Pareto front")
        if report["front_size"] + report["dominated"] != report["evaluated"]:
            failures.append("front + dominated != evaluated")
        if len(DEFAULT_GRIDS) > 1 and not report["replayed"]:
            failures.append(
                f"no replays across the {mixes}-mix grid axis — trace-store "
                f"dedup is broken"
            )
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(f"dse check OK: {len(points)} configs, "
              f"{report['replayed']} replays, front {report['front_size']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
