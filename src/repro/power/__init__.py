"""Power modelling: the Table 1 technology library and activity-based
run-time power estimation (Section 5.1).

The paper derives component power from industrial models for 0.13 um
bulk CMOS and ignores leakage ("in this technology the impact of
leakage is very limited, particularly for low-power system design");
run-time power is switching-activity-scaled from the sniffer statistics.
"""

from repro.power.library import DEFAULT_LIBRARY, PowerClass, PowerLibrary
from repro.power.models import (
    ACTIVE_WEIGHT,
    IDLE_WEIGHT,
    STALL_WEIGHT,
    ActivityVector,
    PowerModel,
)

__all__ = [
    "ACTIVE_WEIGHT",
    "ActivityVector",
    "DEFAULT_LIBRARY",
    "IDLE_WEIGHT",
    "PowerClass",
    "PowerLibrary",
    "PowerModel",
    "STALL_WEIGHT",
]
